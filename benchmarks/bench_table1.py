"""Table 1 — design statistics of the three reference filters."""

from repro.experiments import table1


def test_table1(benchmark, ctx, emit):
    result = benchmark.pedantic(table1, args=(ctx,), rounds=1, iterations=1)
    emit("table1", result.render())
    assert len(result.rows) == 3
