"""Figure 10 — fault-simulation curves, lowpass filter."""

from repro.experiments import figure10


def test_figure10(benchmark, ctx, emit):
    result = benchmark.pedantic(figure10, args=(ctx,), rounds=1, iterations=1)
    emit("figure10", result.render())
    assert result.scalars["LFSR-1 final"] > result.scalars["LFSR-D final"]
