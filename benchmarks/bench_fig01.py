"""Figure 1 — test zones over a primary-input density."""

from repro.experiments import figure1


def test_figure1(benchmark, emit):
    result = benchmark.pedantic(figure1, rounds=1, iterations=1)
    emit("figure01", result.render())
    assert "T5b" in result.text
