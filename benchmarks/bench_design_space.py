"""CSD cost/quality trade-off of the lowpass design (FIRGEN-style).

Sweeps the digit budget and coefficient precision and reports the
realized operator count against the achieved stopband — the trade the
paper's reduced-complexity designs (refs [6-8]) sit on.  The reference
designs' operating point (budget 4, 15 bits) should buy > 15 dB of
stopband over budget 1 at roughly twice the operators.
"""

from repro.experiments.render import ascii_table
from repro.filters import LOWPASS_SPEC, explore_design_space


def test_design_space(benchmark, emit):
    def run():
        return explore_design_space(LOWPASS_SPEC, budgets=(1, 2, 3, 4),
                                    fracs=(12, 15))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["digits", "coef bits", "operators", "stopband dB", "ripple dB"],
        [p.row() for p in points],
        title="CSD design space, lowpass spec",
    )
    emit("design_space", text)
    by_key = {(p.max_nonzeros, p.coef_frac): p for p in points}
    ref = by_key[(4, 15)]
    cheap = by_key[(1, 15)]
    assert ref.stopband_db > cheap.stopband_db + 15.0
    assert ref.adders > cheap.adders
