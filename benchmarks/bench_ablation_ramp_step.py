"""Ablation: arithmetic test generators with non-unit increments.

The paper's ref [10] (Gupta/Rajski/Tyszer) generates patterns with
accumulator hardware; a count-by-C counter (odd C, full 2**N period) is
its simplest form, and the increment *steers the spectrum*: C near
(2/3)·2**N concentrates power at high frequencies.  The bench asks
whether spectrum steering alone rescues the Ramp's hopeless highpass
result — answer: it moves the power (+34 dB in the passband) but the
sequence's rigid arithmetic structure still leaves it far behind the
LFSR schemes, i.e. spectrum compatibility is necessary but not
sufficient.
"""

import numpy as np

from repro.analysis import band_power, generator_spectrum
from repro.experiments.render import ascii_table
from repro.faultsim import run_fault_coverage
from repro.generators import RampGenerator

N_VECTORS = 4096
STEPS = (1, 3, 1365, 2731)


def test_ramp_step_ablation(benchmark, ctx, emit):
    design = ctx.designs["HP"]
    universe = ctx.universe("HP")

    def run():
        rows = []
        for step in STEPS:
            gen = RampGenerator(12, step=step)
            freqs, power = generator_spectrum(gen)
            hi = band_power(freqs, power, 0.3, 0.5)
            result = run_fault_coverage(design, gen, N_VECTORS,
                                        universe=universe)
            rows.append([step, f"{10 * np.log10(max(hi, 1e-12)):.1f} dB",
                         result.missed()])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lfsrd = ctx.coverage("HP", ctx.standard_generators()["LFSR-D"],
                         N_VECTORS).missed()
    text = ascii_table(
        ["count step", "passband power", "HP missed@4k"], rows,
        title=f"Ablation: arithmetic-generator increment, highpass design "
              f"(LFSR-D reference: {lfsrd} missed)",
    )
    emit("ablation_ramp_step", text)
    by_step = {r[0]: r for r in rows}
    # steering the spectrum helps ...
    assert by_step[2731][2] < by_step[1][2]
    # ... but structure still loses to a pseudorandom flat-spectrum scheme
    assert by_step[2731][2] > 2 * lfsrd
