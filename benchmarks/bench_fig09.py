"""Figure 9 — predicted vs simulated tap-20 distribution (decorrelated)."""

from repro.experiments import figure9


def test_figure9(benchmark, ctx, emit):
    result = benchmark.pedantic(figure9, args=(ctx,), rounds=1, iterations=1)
    emit("figure09", result.render())
    assert result.scalars["overlap coefficient"] > 0.9
