"""Table 5 — Table 4 normalized by operator count."""

from repro.experiments import table5


def test_table5(benchmark, ctx, emit):
    result = benchmark.pedantic(table5, args=(ctx,), rounds=1, iterations=1)
    emit("table5", result.render())
    assert all(isinstance(v, float) for row in result.rows for v in row[1:])
