"""Empirical MISR aliasing check.

The paper assumes "no aliasing in the response analyzer".  This bench
screens a sample of engine-detected faults through a *real* 16-bit MISR
session end to end (bit-true injection, signature comparison) and counts
how many alias to the golden signature — expected 0 given the 2**-16
asymptotic aliasing probability.
"""

import numpy as np

from repro.bist import BistSession
from repro.generators import Type1Lfsr
from repro.rtl import design_from_coefficients
from scipy import signal as sp_signal

N_VECTORS = 1024
SAMPLE = 120


def test_misr_aliasing(benchmark, emit):
    # a mid-size design keeps per-fault injection affordable
    coefs = sp_signal.firwin(21, 0.3)
    design = design_from_coefficients(coefs, name="alias-check",
                                      coef_frac=12, max_nonzeros=3)
    session = BistSession(design, Type1Lfsr(12), n_vectors=N_VECTORS)
    grade = session.grade()
    detected = [f for f in session.universe.faults
                if grade.detect_time[f.index] < N_VECTORS]
    rng = np.random.default_rng(7)
    sample_idx = rng.choice(len(detected), size=min(SAMPLE, len(detected)),
                            replace=False)

    def run():
        aliased = 0
        for i in sample_idx:
            if session.screen_fault(detected[int(i)]).passed:
                aliased += 1
        return aliased

    aliased = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (f"MISR aliasing check: {len(sample_idx)} detected faults "
            f"screened through a 16-bit MISR session; {aliased} aliased "
            f"(asymptotic expectation {len(sample_idx) * 2**-16:.4f})")
    emit("misr_aliasing", text)
    assert aliased == 0
