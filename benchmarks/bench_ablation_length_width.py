"""Ablation: test length and LFSR width (the conclusion's "longer test
sequences (with larger LFSRs to avoid input cycling)").

A 12-bit LFSR cycles after 4095 vectors — extending the session beyond
one period re-applies the same words.  Wider LFSRs keep producing fresh
vectors; the bench quantifies how much of the lowpass residue that
recovers for the plain Type 1 LFSR.
"""

import numpy as np

from repro.experiments.render import ascii_table
from repro.faultsim import run_fault_coverage
from repro.generators import Type1Lfsr, match_width

LENGTHS = (2048, 4096, 8192, 16384)
WIDTHS = (12, 16, 20)


def test_length_and_width_sweep(benchmark, ctx, emit):
    design = ctx.designs["LP"]
    universe = ctx.universe("LP")

    def run():
        rows = []
        for width in WIDTHS:
            row = [f"LFSR-1/{width}"]
            for n in LENGTHS:
                result = run_fault_coverage(design, Type1Lfsr(width), n,
                                            universe=universe)
                row.append(result.missed())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["generator", *[f"missed@{n}" for n in LENGTHS]], rows,
        title="Ablation: test length x LFSR width, lowpass design",
    )
    emit("ablation_length_width", text)
    by_gen = {r[0]: r[1:] for r in rows}
    # a 12-bit LFSR gains almost nothing past its 4095-vector period ...
    assert by_gen["LFSR-1/12"][3] > by_gen["LFSR-1/12"][1] - 25
    # ... while a 20-bit LFSR keeps converging
    assert by_gen["LFSR-1/20"][3] < by_gen["LFSR-1/20"][1]
