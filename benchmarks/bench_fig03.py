"""Figure 3 — location of the serious missed fault."""

from repro.experiments import figure3


def test_figure3(benchmark, ctx, emit):
    result = benchmark.pedantic(figure3, args=(ctx,), rounds=1, iterations=1)
    emit("figure03", result.render())
    assert 1 <= result.scalars["bits_below_msb"] <= 4
