"""Exact gate-level cross-validation of the fast coverage engine at scale.

The fast engine grades faults by cell-level excitation; the fault-parallel
gate simulator (64 faulty circuit copies per machine word) computes exact
output-difference detection.  On a 6 400-fault random sample of the full
lowpass design the two must agree up to the (tiny) propagation-masking
gap — the quantitative license for the paper-style detection model.
"""

import numpy as np

from repro.experiments.render import ascii_table
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.gates import elaborate, enumerate_cell_faults, gate_level_missed
from repro.generators import Type1Lfsr, match_width

N_VECTORS = 1024
SAMPLE = 6400


def test_gate_level_crossvalidation(benchmark, ctx, emit):
    design = ctx.designs["LP"]
    nl = elaborate(design.graph)
    faults = enumerate_cell_faults(design.graph, nl)
    rng = np.random.default_rng(17)
    idx = rng.choice(len(faults), size=SAMPLE, replace=False)
    sample = [faults[i] for i in idx]
    raw = match_width(Type1Lfsr(12).sequence(N_VECTORS), 12, 12)

    def run():
        return gate_level_missed(nl, raw, sample)

    missed = benchmark.pedantic(run, rounds=1, iterations=1)

    universe = build_fault_universe(design.graph, name="LP",
                                    prune_untestable=False)
    cov = run_fault_coverage(design, Type1Lfsr(12), N_VECTORS,
                             universe=universe)
    key = lambda f: (f.node_id, f.bit, f.cell_fault.name)
    fast_missed = {key(f) for f in cov.missed_faults()}
    sample_keys = {key(f) for f in sample}
    gate_keys = {key(f) for f in missed}
    fast_in_sample = fast_missed & sample_keys
    masked = gate_keys - fast_in_sample

    text = ascii_table(
        ["quantity", "count"],
        [["sampled faults", len(sample)],
         ["gate-level exact missed", len(gate_keys)],
         ["cell-level (excitation) missed", len(fast_in_sample)],
         ["excited-but-masked (the model gap)", len(masked)]],
        title=f"Gate-level cross-validation, lowpass design, "
              f"{N_VECTORS}-vector LFSR-1 session",
    )
    emit("gate_crossvalidation", text)
    # Excitation is necessary for detection ...
    assert fast_in_sample <= gate_keys
    # ... and sufficient in all but a fraction of a percent of faults.
    assert len(masked) / len(sample) < 0.005
