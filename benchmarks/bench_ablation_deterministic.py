"""Ablation: deterministic matched-burst top-off (conclusion's
"deterministic BIST" option).

Starts from the paper's best low-cost scheme (mixed LFSR-1/LFSR-M, 8k
vectors) and appends matched-filter bursts aimed at the operators still
hosting missed faults.
"""

from repro.bist import deterministic_topoff
from repro.experiments.render import ascii_table


def test_deterministic_topoff(benchmark, ctx, emit):
    def run():
        rows = []
        for name in ("LP", "HP"):
            design = ctx.designs[name]
            base, combined, n_det = deterministic_topoff(
                design, ctx.universe(name), ctx.mixed_generator(),
                n_base=ctx.config.table6_vectors)
            rows.append([name, base.missed(), combined.missed(), n_det])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["design", "mixed@8k missed", "after top-off", "burst vectors"],
        rows,
        title="Ablation: deterministic matched-burst top-off",
    )
    emit("ablation_deterministic", text)
    for _, base_missed, combined_missed, _ in rows:
        assert combined_missed < 0.7 * base_missed
