"""Figure 6 — attenuated LFSR-1 test signal at tap 20 of the lowpass."""

from repro.experiments import figure6


def test_figure6(benchmark, ctx, emit):
    result = benchmark.pedantic(figure6, args=(ctx,), rounds=1, iterations=1)
    emit("figure06", result.render())
    assert result.scalars["std"] < 0.06  # paper: 0.036
    assert result.scalars["untested upper bits"] >= 2
