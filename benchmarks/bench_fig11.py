"""Figure 11 — fault-simulation curves, bandpass filter."""

from repro.experiments import figure11


def test_figure11(benchmark, ctx, emit):
    result = benchmark.pedantic(figure11, args=(ctx,), rounds=1, iterations=1)
    emit("figure11", result.render())
    assert result.scalars["Ramp final"] > result.scalars["LFSR-D final"]
