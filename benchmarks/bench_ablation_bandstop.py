"""Ablation: a band-stop design exposes the averaged metric's blind spot.

The paper's compatibility estimate ``sigma_y^2 = mean(|G|^2 |H|^2)``
summarizes compatibility in one number.  On a two-passband (band-stop)
filter that number can be gamed: a Ramp floods the DC passband and rates
"compatible" on average while leaving the upper passband — and every
fault whose excitation rides on it — starved.  The per-band variant
(minimum over unity bands) restores the honest verdict, and exact fault
simulation arbitrates.
"""

from repro.analysis import generator_spectrum, per_band_compatibility
from repro.analysis.compatibility import compatibility_ratio
from repro.experiments.render import ascii_table
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.filters import BANDSTOP_SPEC
from repro.filters.reference import build_reference
from repro.generators import DecorrelatedLfsr, RampGenerator, Type1Lfsr

N_VECTORS = 4096
PASSBANDS = [(0.0, 0.1), (0.37, 0.5)]


def test_bandstop_exposes_averaged_metric(benchmark, emit):
    design = build_reference(BANDSTOP_SPEC)
    universe = build_fault_universe(design.graph, name="BS")

    def run():
        rows = []
        for gen in (RampGenerator(12), Type1Lfsr(12), DecorrelatedLfsr(12)):
            freqs, power = generator_spectrum(gen)
            sigma_y2, flat = compatibility_ratio(freqs, power,
                                                 design.coefficients)
            worst, _ = per_band_compatibility(freqs, power, PASSBANDS)
            missed = run_fault_coverage(design, gen, N_VECTORS,
                                        universe=universe).missed()
            rows.append([gen.name, round(sigma_y2 / flat, 3),
                         round(worst, 4), missed])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["generator", "averaged ratio", "worst-band ratio", "missed@4k"],
        rows,
        title="Band-stop design: averaged vs per-band compatibility "
              "vs fault simulation",
    )
    emit("ablation_bandstop", text)
    by_gen = {r[0].split("/")[0]: r for r in rows}
    # the averaged metric rates the Ramp compatible ...
    assert by_gen["Ramp"][1] > 0.55
    # ... the per-band metric does not ...
    assert by_gen["Ramp"][2] < 0.01
    # ... and fault simulation sides with the per-band metric.
    assert by_gen["Ramp"][3] > 1.5 * by_gen["LFSR-D"][3]
