"""Figure 2 — the serious missed fault's spike train on a sine response."""

from repro.experiments import figure2


def test_figure2(benchmark, ctx, emit):
    result = benchmark.pedantic(figure2, args=(ctx,), rounds=1, iterations=1)
    emit("figure02", result.render())
    assert result.scalars["error samples"] >= 2
    assert result.scalars["peak |error|"] > 0.01
