"""Figure 4 — power spectra of the five test generators."""

import numpy as np

from repro.experiments import figure4


def test_figure4(benchmark, ctx, emit):
    result = benchmark.pedantic(figure4, args=(ctx,), rounds=1, iterations=1)
    emit("figure04", result.render())
    spectra = {k.split(" ")[0]: y for k, (x, y) in result.series.items()}
    # dB shapes: LFSR-1 rolls off at the left, Ramp falls off to the right
    assert spectra["LFSR-1"][0] < spectra["LFSR-1"][30] - 10
    assert spectra["Ramp"][0] > spectra["Ramp"][30] + 20
