"""Table 3 — frequency-domain generator/filter compatibility grid."""

from repro.experiments import table3


def test_table3(benchmark, ctx, emit):
    result = benchmark.pedantic(table3, args=(ctx,), rounds=1, iterations=1)
    emit("table3", result.render())
    grid = {row[0]: row[1:] for row in result.rows}
    assert grid["Ramp"][0].startswith("+") and grid["Ramp"][2].startswith("-")
