"""Raw throughput of the core machinery (uncached, honest timings):

* full-universe fault coverage of the lowpass design, 4k vectors;
* bit-true datapath simulation alone;
* fault universe construction (incl. structural pruning).
"""

import numpy as np

from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.generators import DecorrelatedLfsr
from repro.rtl import simulate


def test_fault_coverage_throughput(benchmark, ctx):
    design = ctx.designs["LP"]
    universe = ctx.universe("LP")

    def run():
        return run_fault_coverage(design, DecorrelatedLfsr(12), 4096,
                                  universe=universe)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.universe.fault_count > 50_000


def test_datapath_simulation_throughput(benchmark, ctx):
    design = ctx.designs["LP"]
    rng = np.random.default_rng(0)
    raw = rng.integers(-2048, 2048, size=4096)

    result = benchmark.pedantic(
        lambda: simulate(design.graph, raw), rounds=5, iterations=1)
    assert result.length == 4096


def test_universe_construction(benchmark, ctx):
    design = ctx.designs["LP"]
    uni = benchmark.pedantic(
        lambda: build_fault_universe(design.graph, name="LP"),
        rounds=3, iterations=1)
    assert uni.untestable_count > 0
