"""Hardware cost of the test schemes ("at little added cost").

Quantifies the paper's economic argument: the mixed LFSR-1/LFSR-M scheme
adds only an output multiplexer over a plain LFSR, while the decorrelator
adds an XOR network and deterministic top-off adds ROM.
"""

from repro.bist import DeterministicGenerator, deterministic_sequence
from repro.bist.cost import cost_table, cut_gate_estimate
from repro.experiments.render import ascii_table
from repro.generators import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    MixedModeLfsr,
    RampGenerator,
    Type1Lfsr,
)


def test_scheme_costs(benchmark, ctx, emit):
    design = ctx.designs["LP"]

    def run():
        nodes = [design.taps[20].operators[0]]
        rom = DeterministicGenerator(
            deterministic_sequence(design, nodes), width=12,
            name="Deterministic (1 target)")
        gens = [Type1Lfsr(12), DecorrelatedLfsr(12), MaxVarianceLfsr(12),
                MixedModeLfsr(12, 2048), RampGenerator(12), rom]
        return cost_table(design, gens), cut_gate_estimate(design)

    (rows, cut_size) = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["scheme", "dff", "gates", "ROM words", "overhead %"], rows,
        title=f"Test-scheme hardware cost (CUT ~ {cut_size} gate equivalents)",
    )
    emit("scheme_cost", text)
    by_name = {r[0].split("/")[0]: r for r in rows}
    # every pseudorandom scheme costs ~1% of the CUT or less ...
    for key in ("LFSR-1", "LFSR-D", "LFSR-M", "LFSR-1+M", "Ramp"):
        assert by_name[key][4] < 2.0
    # ... and the mixed scheme's premium over the plain LFSR is small
    assert by_name["LFSR-1+M"][4] - by_name["LFSR-1"][4] < 1.0
