"""OPTIONAL: exact gate-level grading of a full fault universe.

Set ``REPRO_EXACT=1`` to run.  The fault-parallel engine grades the
*entire* lowpass universe (~66k faults) at 4k vectors — the experiment
the paper's authors ran with their gate-level fault simulator — in a few
minutes, and compares against the fast cell-level engine.
"""

import os

import pytest

from repro.experiments.render import ascii_table
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.gates import elaborate, enumerate_cell_faults, gate_level_missed
from repro.generators import Type1Lfsr, match_width

requires_exact = pytest.mark.skipif(
    not os.environ.get("REPRO_EXACT"),
    reason="full exact gate-level run takes minutes; set REPRO_EXACT=1",
)


@requires_exact
def test_exact_full_universe(benchmark, ctx, emit):
    design = ctx.designs["LP"]
    nl = elaborate(design.graph)
    faults = enumerate_cell_faults(design.graph, nl)
    n = ctx.config.table4_vectors
    raw = match_width(Type1Lfsr(12).sequence(n), 12, 12)

    def run():
        return gate_level_missed(nl, raw, faults)

    missed = benchmark.pedantic(run, rounds=1, iterations=1)
    universe = build_fault_universe(design.graph, name="LP",
                                    prune_untestable=False)
    fast = run_fault_coverage(design, Type1Lfsr(12), n, universe=universe)
    text = ascii_table(
        ["engine", "universe", "missed"],
        [["gate-level exact", len(faults), len(missed)],
         ["cell-level fast", universe.fault_count, fast.missed()]],
        title=f"Exact full-universe grading, lowpass, {n} vectors",
    )
    emit("exact_full_universe", text)
    assert len(missed) >= fast.missed()  # excitation necessary
    assert len(missed) <= 1.2 * fast.missed()  # masking gap small
