"""Table 4 — missed faults after 4k vectors, 4 generators x 3 designs.

This is the paper's main quantitative result; the benchmark times the
full 12-session fault-simulation sweep (cached sessions are reused by
later benchmarks)."""

from repro.experiments import table4


def test_table4(benchmark, ctx, emit):
    result = benchmark.pedantic(table4, args=(ctx,), rounds=1, iterations=1)
    emit("table4", result.render())
    grid = {row[0]: dict(zip(result.headers[1:], row[1:]))
            for row in result.rows}
    # headline orderings
    assert grid["LP"]["LFSR-1"] > grid["LP"]["LFSR-D"]
    assert grid["HP"]["Ramp"] > grid["HP"]["LFSR-D"]
