"""Figure 5 — a segment of the Type 1 LFSR test sequence."""

from repro.experiments import figure5


def test_figure5(benchmark, ctx, emit):
    result = benchmark.pedantic(figure5, args=(ctx,), rounds=1, iterations=1)
    emit("figure05", result.render())
    assert abs(result.scalars["std"] - 0.577) < 0.01
