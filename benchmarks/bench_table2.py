"""Table 2 — the difficult test classes at the next-to-MSB cell."""

from repro.experiments import table2


def test_table2(benchmark, ctx, emit):
    result = benchmark.pedantic(table2, args=(ctx,), rounds=1, iterations=1)
    emit("table2", result.render())
    assert len(result.rows) == 8
