"""Analytic test-length prediction vs bit-true fault simulation.

The "more advanced techniques ... based on computing the signal
probability distributions at each adder" of Section 7: predict the
missed-fault count of a 4k-vector session *without simulating a single
vector*, then compare against the measured Table 4 numbers.
"""

from repro.analysis import (
    decorrelated_lfsr_model,
    predicted_missed_count,
    type1_lfsr_model,
)
from repro.experiments.render import ascii_table


def test_predicted_vs_measured_missed(benchmark, ctx, emit):
    design = ctx.designs["LP"]
    universe = ctx.universe("LP")
    n = ctx.config.table4_vectors
    gens = ctx.standard_generators()

    def run():
        rows = []
        for model, key in ((type1_lfsr_model(12), "LFSR-1"),
                           (decorrelated_lfsr_model(12), "LFSR-D")):
            predicted = predicted_missed_count(design, universe, model, n,
                                               bins=512)
            measured = ctx.coverage("LP", gens[key], n).missed()
            rows.append([key, round(predicted), measured])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["generator", "predicted missed@4k", "measured missed@4k"], rows,
        title="Distribution-based prediction vs fault simulation (lowpass)",
    )
    emit("testlength_prediction", text)
    by_gen = {r[0]: r for r in rows}
    # the prediction reproduces the LFSR-1 penalty analytically and stays
    # within a small factor of the measurement (iid over-approximation)
    assert by_gen["LFSR-1"][1] > by_gen["LFSR-D"][1]
    for _, pred, meas in rows:
        assert 0.5 * meas <= pred <= 3.0 * meas
