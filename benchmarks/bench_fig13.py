"""Figure 13 — mixed-mode scheme beats both single modes (lowpass)."""

from repro.experiments import figure13


def test_figure13(benchmark, ctx, emit):
    result = benchmark.pedantic(figure13, args=(ctx,), rounds=1, iterations=1)
    emit("figure13", result.render())
    mixed_key = next(k for k in result.scalars if k.startswith("mixed"))
    assert result.scalars[mixed_key] < result.scalars["LFSR-1 final"]
    assert result.scalars[mixed_key] < result.scalars["LFSR-M final"]
