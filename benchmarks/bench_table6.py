"""Table 6 — mixed LFSR-1/LFSR-M misses at 8k vectors (LP and HP)."""

from repro.experiments import table4, table6


def test_table6(benchmark, ctx, emit):
    result = benchmark.pedantic(table6, args=(ctx,), rounds=1, iterations=1)
    emit("table6", result.render())
    t4 = {row[0]: row[1] for row in table4(ctx).rows}  # LFSR-1 column
    mixed = {row[0]: row[1] for row in result.rows}
    # the paper's headline: 2-3.5x fewer misses than basic LFSR testing
    assert t4["LP"] / mixed["LP"] > 2.0
