"""Figure 8 — predicted vs simulated tap-20 distribution (Type 1 LFSR)."""

from repro.experiments import figure8


def test_figure8(benchmark, ctx, emit):
    result = benchmark.pedantic(figure8, args=(ctx,), rounds=1, iterations=1)
    emit("figure08", result.render())
    assert result.scalars["overlap coefficient"] > 0.9
