"""Ablation: polynomial and seed insensitivity of the Type 1 LFSR.

Section 6: the Type 1 spectrum "is not sensitive to the particular seed
or polynomial used as long as the bit stream generated has reasonable
properties ... generally satisfied by choosing a primitive polynomial".
This bench sweeps several primitive polynomials and seeds and checks
that low-band power and lowpass missed-fault counts barely move.
"""

import numpy as np

from repro.analysis import band_power, generator_spectrum
from repro.experiments.render import ascii_table
from repro.faultsim import run_fault_coverage
from repro.generators import Type1Lfsr, search_primitive_polys

N_VECTORS = 4096
WIDTH = 12
N_POLYS = 4
SEEDS = (1, 0x5A5)


def test_polynomial_and_seed_insensitivity(benchmark, ctx, emit):
    design = ctx.designs["LP"]
    universe = ctx.universe("LP")
    polys = search_primitive_polys(WIDTH, N_POLYS)

    def run():
        rows = []
        for poly in polys:
            for seed in SEEDS:
                gen = Type1Lfsr(WIDTH, poly=poly, seed=seed)
                freqs, power = generator_spectrum(gen)
                lo = band_power(freqs, power, 0.0005, 0.01)
                result = run_fault_coverage(design, gen, N_VECTORS,
                                            universe=universe)
                rows.append([f"{poly:#06x}", seed,
                             f"{10 * np.log10(lo):.1f} dB",
                             result.missed()])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["polynomial", "seed", "low-band power", "missed@4k"], rows,
        title="Ablation: Type 1 LFSR polynomial/seed insensitivity (lowpass)",
    )
    emit("ablation_polynomial", text)
    misses = np.array([r[3] for r in rows], dtype=float)
    los = np.array([float(r[2].split()[0]) for r in rows])
    # spectra within a few dB of each other; miss counts within ~15%
    assert los.max() - los.min() < 6.0
    assert misses.max() < 1.2 * misses.min()
