"""Benchmark fixtures.

The experiment context is session-scoped and memoizes designs and
coverage runs, so each underlying fault-simulation session is executed
exactly once per benchmark session; every benchmark also writes the
regenerated table/figure to ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext()


@pytest.fixture(scope="session")
def results_dir():
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    return out


@pytest.fixture()
def emit(results_dir):
    """Write a rendered experiment to results/ and echo it."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit
