"""Figure 12 — fault-simulation curves, highpass filter (Ramp worst)."""

from repro.experiments import figure12


def test_figure12(benchmark, ctx, emit):
    result = benchmark.pedantic(figure12, args=(ctx,), rounds=1, iterations=1)
    emit("figure12", result.render())
    assert result.scalars["Ramp final"] > result.scalars["LFSR-1 final"]
