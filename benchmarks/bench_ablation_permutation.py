"""Ablation: output-bit permutation networks on a Type 1 LFSR.

Section 6: the Type 1 spectrum "can be altered by some permutations of
the output bits; an interconnection network can be used at the output of
the LFSR to accomplish this".  The bench measures the low-frequency
power recovered by a bit-reversal permutation and its effect on the
lowpass session.
"""

import numpy as np

from repro.analysis import band_power, generator_spectrum
from repro.experiments.render import ascii_table
from repro.faultsim import run_fault_coverage
from repro.generators import PermutedLfsr, Type1Lfsr

N_VECTORS = 4096
WIDTH = 12

PERMUTATIONS = {
    "identity": list(range(WIDTH)),
    "bit-reverse": list(range(WIDTH - 1, -1, -1)),
    "odd-even": [*range(1, WIDTH, 2), *range(0, WIDTH, 2)],
}


def test_permutation_ablation(benchmark, ctx, emit):
    design = ctx.designs["LP"]
    universe = ctx.universe("LP")

    def run():
        rows = []
        for name, perm in PERMUTATIONS.items():
            gen = PermutedLfsr(WIDTH, perm)
            freqs, power = generator_spectrum(gen)
            lo = band_power(freqs, power, 0.0005, 0.02)
            result = run_fault_coverage(design, gen, N_VECTORS,
                                        universe=universe)
            rows.append([name, f"{10 * np.log10(lo):.1f} dB",
                         result.missed()])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["permutation", "low-band power", "missed@4k"], rows,
        title="Ablation: Type 1 LFSR output permutations, lowpass design",
    )
    emit("ablation_permutation", text)
    by_name = {r[0]: r for r in rows}
    identity = by_name["identity"]
    # some permutation must recover low-frequency power vs the identity
    best_lo = max(float(r[1].split()[0]) for r in rows)
    assert best_lo > float(identity[1].split()[0])
