"""Ablation: accumulation architecture vs testability.

Section 3 of the paper: carry-save arrays are the higher-performance
alternative "at the cost of doubling the number of registers", and "the
analysis is more complex".  This bench realizes the *same* lowpass
coefficients three ways — transposed ripple-carry (the reference),
direct-form ripple-carry, and carry-save with a vector-merge adder — and
grades each under the same decorrelated-LFSR session.
"""

from repro.experiments.render import ascii_table
from repro.faultsim import build_csa_universe, run_csa_fault_coverage, \
    build_fault_universe, run_fault_coverage
from repro.filters.design import LOWPASS_SPEC, design_prototype
from repro.generators import DecorrelatedLfsr
from repro.rtl import OpKind, carry_save_from_coefficients, \
    design_from_coefficients

N_VECTORS = 4096


def _reg_bits(design):
    return sum(n.fmt.width for n in design.graph.nodes
               if n.kind is OpKind.DELAY)


def test_architecture_ablation(benchmark, emit):
    coefs = design_prototype(LOWPASS_SPEC)

    def run():
        rows = []
        for form in ("transposed", "direct"):
            design = design_from_coefficients(coefs, name=f"LP-{form}",
                                              form=form)
            uni = build_fault_universe(design.graph, name=design.name)
            result = run_fault_coverage(design, DecorrelatedLfsr(12),
                                        N_VECTORS, universe=uni)
            rows.append([form, design.adder_count, _reg_bits(design),
                         uni.fault_count, result.missed(),
                         f"{100 * result.coverage():.2f}%"])
        csa = carry_save_from_coefficients(coefs, name="LP-csa")
        csa_uni = build_csa_universe(csa)
        csa_result = run_csa_fault_coverage(csa, DecorrelatedLfsr(12),
                                            N_VECTORS, universe=csa_uni)
        rows.append(["carry-save", csa.operator_count, csa.register_bits,
                     csa_uni.fault_count, csa_result.missed(),
                     f"{100 * csa_result.coverage():.2f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ascii_table(
        ["architecture", "operators", "register bits", "faults",
         "missed@4k", "coverage"],
        rows,
        title="Ablation: same lowpass filter, three accumulation "
              "architectures, LFSR-D @4k",
    )
    emit("ablation_arch", text)
    by_arch = {r[0]: r for r in rows}
    # the paper's register-cost claim: carry-save doubles register bits
    assert by_arch["carry-save"][2] > 1.8 * by_arch["transposed"][2]
    # and its redundant (S, C) upper bits are harder to exercise
    assert by_arch["carry-save"][4] > by_arch["transposed"][4]
