"""Figure 7 — decorrelated test signal at tap 20 (attenuation relieved)."""

from repro.experiments import figure6, figure7


def test_figure7(benchmark, ctx, emit):
    result = benchmark.pedantic(figure7, args=(ctx,), rounds=1, iterations=1)
    emit("figure07", result.render())
    f6 = figure6(ctx)
    # paper: sigma rises 3.4x and untested upper bits shrink
    assert result.scalars["std"] > 2.0 * f6.scalars["std"]
    assert (result.scalars["untested upper bits"]
            < f6.scalars["untested upper bits"])
