"""Progress streams, absorb-merge discipline, histogram edge cases."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import Telemetry
from repro.telemetry.metrics import Histogram
from repro.telemetry.progress import ProgressState, ProgressStream, progress_eta
from repro.telemetry.propagate import TraceContext, child_collector, \
    collector_payload


class TestHistogramEdges:
    def test_empty_histogram_summary_is_zero(self):
        h = Histogram("latency")
        assert h.count == 0
        assert h.percentile(0.5) == 0.0
        assert h.summary() == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        assert h.mean == 0.0

    def test_single_observation_pins_every_quantile(self):
        h = Histogram("latency", edges=(1.0, 10.0))
        h.observe(3.5)
        # One value: min == max == 3.5 clamps the bucket to a point.
        for q in (0.01, 0.5, 0.9, 0.99, 1.0):
            assert h.percentile(q) == pytest.approx(3.5)
        assert h.summary() == {"p50": pytest.approx(3.5),
                               "p90": pytest.approx(3.5),
                               "p99": pytest.approx(3.5)}

    def test_all_in_overflow_bucket_bounded_by_observed_range(self):
        h = Histogram("latency", edges=(0.1, 1.0))
        h.observe_many([50.0, 60.0, 70.0])
        assert h.counts[-1] == 3  # everything landed past the last edge
        for q in (0.5, 0.99):
            assert 50.0 <= h.percentile(q) <= 70.0
        assert h.percentile(1.0) == pytest.approx(70.0)

    def test_all_in_underflow_bucket(self):
        h = Histogram("latency", edges=(10.0, 100.0))
        h.observe_many([2.0, 3.0])
        assert h.counts[0] == 2
        assert 2.0 <= h.percentile(0.5) <= 3.0

    def test_quantile_domain_checked(self):
        h = Histogram("latency")
        with pytest.raises(TelemetryError):
            h.percentile(0.0)
        with pytest.raises(TelemetryError):
            h.percentile(1.5)

    def test_observe_many_empty_is_noop(self):
        h = Histogram("latency")
        h.observe_many(np.array([]))
        assert h.count == 0 and h.min == np.inf


class TestProgressStream:
    def test_done_is_monotone_per_name(self):
        stream = ProgressStream()
        stream.update("grade", 100, 1000)
        state = stream.update("grade", 40)  # stale update
        assert state.done == 100.0
        assert state.total == 1000.0
        assert stream.update("grade", 250).done == 250.0

    def test_fields_adopt_newest_values(self):
        stream = ProgressStream()
        stream.update("grade", 10, 100, coverage=0.1)
        state = stream.update("grade", 20, coverage=0.25, dropped=3)
        assert state.fields == {"coverage": 0.25, "dropped": 3}

    def test_merge_event_never_rewinds(self):
        stream = ProgressStream()
        stream.update("grade", 512, 1024)
        merged = stream.merge_event({"type": "progress", "name": "grade",
                                     "done": 256.0, "total": 1024.0,
                                     "unix": 0.0, "elapsed_seconds": 1.0,
                                     "coverage": 0.5})
        assert merged.done == 512.0          # stale snapshot ignored
        assert merged.fields["coverage"] == 0.5  # annotations still adopted

    def test_doc_carries_fraction_rate_eta(self):
        state = ProgressState(name="grade", done=250.0, total=1000.0,
                              updated_unix=1.0, elapsed_seconds=5.0)
        doc = state.to_doc()
        assert doc["fraction"] == pytest.approx(0.25)
        assert doc["rate"] == pytest.approx(50.0)
        assert doc["eta_seconds"] == pytest.approx(15.0)

    def test_eta_undefined_without_total_or_rate(self):
        assert progress_eta(10.0, None, 5.0) is None
        assert progress_eta(0.0, 100.0, 5.0) is None
        assert progress_eta(100.0, 100.0, 5.0) == 0.0


class TestAbsorbProgress:
    def test_crashed_chunk_fallback_does_not_rewind(self):
        """A pool chunk that died mid-flight ships a stale snapshot;
        the parent's serial fallback has already finished the work."""
        parent = Telemetry(sinks=[])
        with parent.span("dispatch"):
            ctx = TraceContext(trace_id=parent.trace_id)
            # Worker chunk: progressed 256/1024, then "crashed" — its
            # payload (captured at crash time) carries the stale cursor.
            with child_collector(ctx) as handle:
                from repro.telemetry import get_telemetry
                get_telemetry().progress("gates.grade", 256, 1024,
                                         coverage=0.5)
            crashed_payload = handle.payload
            # Parent re-ran the chunk serially and completed it.
            parent.progress("gates.grade", 1024, 1024, coverage=0.93)
            parent.absorb(crashed_payload)
        state = parent.progress_streams.get("gates.grade")
        assert state.done == 1024.0          # no rewind
        assert state.fields["coverage"] == 0.5  # newest-write-wins field

    def test_absorb_advances_and_notifies_listeners(self):
        parent = Telemetry(sinks=[])
        seen = []
        parent.on_progress(lambda s: seen.append((s.name, s.done)))
        parent.progress("grade", 100, 1000)
        with parent.span("dispatch"):
            ctx = TraceContext(trace_id=parent.trace_id)
            with child_collector(ctx) as handle:
                from repro.telemetry import get_telemetry
                get_telemetry().progress("grade", 700, 1000)
            parent.absorb(handle.payload)
        assert parent.progress_streams.get("grade").done == 700.0
        assert ("grade", 700.0) in seen

    def test_untraced_on_progress_still_fires(self):
        """ctx=None + a listener: progress flows, payload stays None."""
        seen = []
        with child_collector(None, on_progress=seen.append) as handle:
            from repro.telemetry import get_telemetry
            get_telemetry().progress("grade", 5, 10)
        assert handle.payload is None
        assert [s.done for s in seen] == [5.0]

    def test_untraced_without_listener_is_passthrough(self):
        with child_collector(None) as handle:
            pass
        assert handle.payload is None

    def test_payload_carries_latest_stream_state(self):
        tel = Telemetry(sinks=[])
        tel.progress("grade", 10, 100)
        tel.progress("grade", 60, 100)
        events = collector_payload(tel)["progress"]
        assert len(events) == 1
        assert events[0]["done"] == 60.0
