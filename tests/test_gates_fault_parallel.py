"""Fault-parallel gate simulation: agreement with the serial injector."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gates import (
    elaborate,
    enumerate_cell_faults,
    fault_parallel_detect,
    gate_level_missed,
    netlist_fault_detected,
    simulate_netlist,
)

from helpers import build_small_design


@pytest.fixture(scope="module")
def setup(rng=None):
    rng = np.random.default_rng(5)
    design = build_small_design("plain")
    nl = elaborate(design.graph)
    faults = enumerate_cell_faults(design.graph, nl)
    raw = rng.integers(-2048, 2048, size=120)
    golden = simulate_netlist(nl, raw)["output"]
    return design, nl, faults, raw, golden


class TestFaultParallel:
    def test_matches_serial_injector_everywhere(self, setup):
        """Every verdict of every batch must equal the serial result —
        the fault-parallel engine is a pure speedup."""
        design, nl, faults, raw, golden = setup
        for start in range(0, min(len(faults), 320), 64):
            batch = faults[start:start + 64]
            fast = fault_parallel_detect(
                nl, raw, [f.netlist_fault for f in batch], golden=golden)
            slow = [netlist_fault_detected(nl, raw, f.netlist_fault,
                                           golden=golden) for f in batch]
            assert list(fast) == slow

    def test_partial_batch(self, setup):
        design, nl, faults, raw, golden = setup
        batch = faults[:5]
        fast = fault_parallel_detect(nl, raw,
                                     [f.netlist_fault for f in batch],
                                     golden=golden)
        assert len(fast) == 5

    def test_oversized_batch_rejected(self, setup):
        design, nl, faults, raw, golden = setup
        with pytest.raises(SimulationError):
            fault_parallel_detect(nl, raw,
                                  [faults[0].netlist_fault] * 65)

    def test_gate_level_missed_full_universe(self, setup):
        """Whole-universe exact miss list equals the serial engine's."""
        design, nl, faults, raw, golden = setup
        missed = gate_level_missed(nl, raw, faults)
        serial_missed = [
            f for f in faults
            if not netlist_fault_detected(nl, raw, f.netlist_fault,
                                          golden=golden)
        ]
        assert {f.label for f in missed} == {f.label for f in serial_missed}

    def test_progress_callback(self, setup):
        design, nl, faults, raw, golden = setup
        ticks = []
        gate_level_missed(nl, raw, faults[:130],
                          progress=lambda done, total: ticks.append((done,
                                                                     total)))
        assert ticks[-1] == (130, 130)
        assert len(ticks) == 3  # ceil(130/64)

    def test_excitation_necessity_on_sample(self, setup):
        """Gate-level detection implies cell-level excitation."""
        from repro.faultsim import build_fault_universe
        from repro.faultsim.patterns import track_patterns
        from repro.faultsim.engine import coverage_of_tracker
        design, nl, faults, raw, golden = setup
        uni = build_fault_universe(design.graph, prune_untestable=False)
        tracker = track_patterns(design.graph, uni, raw)
        cov = coverage_of_tracker(tracker)
        key = lambda f: (f.node_id, f.bit, f.cell_fault.name)
        fast_missed = {key(f) for f in cov.missed_faults()}
        gate_missed = {key(f) for f in gate_level_missed(nl, raw, faults)}
        assert fast_missed <= gate_missed
