"""Accumulator-based compaction vs the MISR."""

import numpy as np
import pytest

from repro.bist import AccumulatorCompactor, Misr
from repro.errors import GeneratorError


class TestAccumulatorCompactor:
    def test_deterministic(self):
        words = list(range(-40, 40))
        assert AccumulatorCompactor(16).signature(words) == \
            AccumulatorCompactor(16).signature(words)

    def test_state_is_modular_sum_without_rotation(self):
        acc = AccumulatorCompactor(8, rotate=False)
        words = [5, 7, 250, -3]
        expect = sum(w & 0xFF for w in words) & 0xFF
        assert acc.signature(words) == expect

    def test_rotating_carry_differs_from_plain_sum(self):
        words = [200] * 10  # forces carries out of 8 bits
        plain = AccumulatorCompactor(8, rotate=False).signature(words)
        rot = AccumulatorCompactor(8, rotate=True).signature(words)
        assert plain != rot

    def test_absorb_continues_state(self):
        a = AccumulatorCompactor(16)
        whole = a.signature(list(range(64)))
        a.reset()
        a.absorb(list(range(32)))
        assert a.absorb(list(range(32, 64))) == whole

    def test_width_validation(self):
        with pytest.raises(GeneratorError):
            AccumulatorCompactor(1)

    def test_order_insensitivity_is_the_known_weakness(self):
        """Unlike the MISR, a plain accumulator cannot see word order —
        the structural reason MISRs are preferred for compaction."""
        a = AccumulatorCompactor(16, rotate=False)
        m = Misr(16)
        fwd = [3, 1, 4, 1, 5, 9, 2, 6]
        rev = list(reversed(fwd))
        assert a.signature(fwd) == a.signature(rev)
        assert m.signature(fwd) != m.signature(rev)

    def test_sign_symmetric_error_aliases_accumulator_not_misr(self):
        """A +e / −e error pair sums to zero for the accumulator but
        scrambles differently through the MISR's feedback."""
        good = list(range(32))
        bad = list(good)
        bad[5] += 8
        bad[20] -= 8
        a = AccumulatorCompactor(16, rotate=False)
        m = Misr(16)
        assert a.signature(bad) == a.signature(good)   # aliased!
        assert m.signature(bad) != m.signature(good)   # caught
