"""Loadtest generator: units, thresholds, and a short live run."""

from __future__ import annotations

import pytest

from repro.cluster.loadtest import (
    LOADTEST_SCHEMA,
    LoadtestReport,
    _percentile,
    _Sample,
    _vary,
    run_loadtest,
)
from repro.errors import ClusterError
from repro.reports import validate_report
from repro.service.lifecycle import ServiceConfig
from repro.service.testing import ServiceThread


def _report(outcomes):
    samples = [_Sample("spectrum", outcome, latency)
               for outcome, latency in outcomes]
    return LoadtestReport(url="http://x", concurrency=1,
                          duration_seconds=1.0, elapsed_seconds=2.0,
                          samples=samples)


class TestUnits:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 50) == 2.0
        assert _percentile(values, 99) == 4.0
        assert _percentile([], 99) == 0.0
        assert _percentile([7.0], 50) == 7.0

    def test_vary_preserves_and_bounds(self):
        import random
        rng = random.Random(0)
        for _ in range(50):
            out = _vary({"vectors": 256, "design": "LP"}, rng)
            assert out["design"] == "LP"
            assert out["vectors"] in (64, 128, 256)
        assert _vary({"points": 4}, rng)["points"] >= 2

    def test_report_rates(self):
        report = _report([("ok", 0.5), ("ok", 1.5), ("busy", 0.0),
                          ("error", 0.1)])
        assert report.requests == 4
        assert report.completed == 2
        assert report.busy == 1
        assert report.errors == 1
        assert report.busy_rate == 0.25
        assert report.error_rate == 0.25
        assert report.throughput == pytest.approx(1.0)
        assert report.latencies == [0.5, 1.5]


class TestCheck:
    def test_passing_run_has_no_failures(self):
        report = _report([("ok", 0.2)] * 10)
        assert report.check(max_p99=1.0, min_throughput=1.0,
                            max_busy_rate=0.0, max_error_rate=0.0,
                            min_completed=10) == []

    def test_each_threshold_trips(self):
        report = _report([("ok", 2.0), ("busy", 0.0), ("error", 0.0)])
        failures = report.check(max_p99=1.0, min_throughput=10.0,
                                max_busy_rate=0.1, max_error_rate=0.1,
                                min_completed=5)
        assert len(failures) == 5
        assert any("p99" in f for f in failures)
        assert any("throughput" in f for f in failures)
        assert any("busy" in f for f in failures)
        assert any("error rate" in f for f in failures)
        assert any("completed" in f for f in failures)

    def test_none_thresholds_check_nothing(self):
        assert _report([("error", 0.1)]).check() == []


class TestDoc:
    def test_to_doc_validates_against_schema(self):
        report = _report([("ok", 0.5), ("busy", 0.0)])
        doc = report.to_doc()
        assert doc["schema"] == LOADTEST_SCHEMA
        assert validate_report(doc) == LOADTEST_SCHEMA
        assert doc["by_kind"]["spectrum"]["requests"] == 2
        assert doc["by_kind"]["spectrum"]["latency_seconds"]["p50"] == 0.5


class TestRunValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ClusterError):
            run_loadtest("http://x", concurrency=0)
        with pytest.raises(ClusterError):
            run_loadtest("http://x", duration=0)
        with pytest.raises(ClusterError, match="mix offers"):
            run_loadtest("http://x", kinds=["nope"])


class TestLiveRun:
    def test_short_spectrum_loadtest(self):
        with ServiceThread(ServiceConfig(port=0, no_cache=True)) as svc:
            report = run_loadtest(svc.base_url, concurrency=2,
                                  duration=1.5, kinds=("spectrum",),
                                  job_timeout=30.0)
        assert report.completed >= 1
        assert report.errors == 0
        assert report.elapsed_seconds >= 1.5
        doc = report.to_doc()
        assert validate_report(doc) == LOADTEST_SCHEMA
        assert set(doc["by_kind"]) == {"spectrum"}
