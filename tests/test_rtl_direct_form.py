"""Direct-form FIR builder: equivalence with the transposed form."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.rtl import design_from_coefficients, simulate

from helpers import SMALL_COEFSETS


def _build(form, key="plain"):
    return design_from_coefficients(SMALL_COEFSETS[key], name=f"{form}-{key}",
                                    coef_frac=8, acc_frac=10, form=form)


class TestDirectForm:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_matches_convolution(self, key, rng):
        design = _build("direct", key)
        raw = rng.integers(-2048, 2048, size=300)
        out = simulate(design.graph, raw).engineering(design.graph.output_id)
        ref = np.convolve(raw / 2**11, design.coefficients)[:300]
        n_terms = sum(len(t.plan.terms) for t in design.taps)
        assert np.max(np.abs(out - ref)) <= (n_terms + 2) * design.output_fmt.lsb

    def test_same_coefficients_as_transposed(self):
        d = _build("direct")
        t = _build("transposed")
        assert np.array_equal(d.coefficients, t.coefficients)

    def test_registers_carry_the_input_format(self):
        design = _build("direct")
        from repro.rtl import OpKind
        regs = [n for n in design.graph.nodes if n.kind is OpKind.DELAY]
        assert len(regs) == len(SMALL_COEFSETS["plain"]) - 1
        assert all(r.fmt == design.input_fmt for r in regs)

    def test_register_width_profiles_differ(self):
        """Direct-form registers are all input-width; transposed-form
        registers track the (L1-scaled) accumulation chain, narrow at
        the far end and output-width at the near end."""
        from repro.rtl import OpKind

        def widths(design):
            return [n.fmt.width for n in design.graph.nodes
                    if n.kind is OpKind.DELAY]

        direct = widths(_build("direct"))
        transposed = widths(_build("transposed"))
        assert len(set(direct)) == 1                  # uniform (input width)
        assert len(set(transposed)) > 1               # grows along the chain
        assert transposed == sorted(transposed)       # monotone toward output

    def test_unknown_form_rejected(self):
        with pytest.raises(DesignError):
            design_from_coefficients([0.5, 0.2], form="lattice")

    def test_fault_coverage_runs_on_direct_form(self):
        from repro.faultsim import run_fault_coverage
        from repro.generators import DecorrelatedLfsr
        design = _build("direct")
        result = run_fault_coverage(design, DecorrelatedLfsr(12), 1024)
        assert result.coverage() > 0.8
