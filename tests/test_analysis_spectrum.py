"""Tests for spectrum estimation and the Figure 4 characterizations."""

import numpy as np
import pytest

from repro.analysis import (
    band_power,
    exact_period_spectrum,
    generator_spectrum,
    power_db,
    welch_spectrum,
)
from repro.errors import AnalysisError
from repro.generators import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    RampGenerator,
    Type1Lfsr,
    Type2Lfsr,
)


class TestEstimators:
    def test_parseval_normalization(self, rng):
        x = rng.normal(0, 0.3, size=1024)
        freqs, power = exact_period_spectrum(x)
        assert np.mean(power) == pytest.approx(np.mean(x**2), rel=1e-9)

    def test_pure_tone_concentrates(self):
        n = 512
        x = np.sin(2 * np.pi * 16 * np.arange(n) / n)
        freqs, power = exact_period_spectrum(x)
        assert power.argmax() == 16

    def test_welch_matches_exact_total_power(self, rng):
        x = rng.normal(0, 0.5, size=8192)
        _, pw = welch_spectrum(x, nperseg=512)
        assert np.mean(pw) == pytest.approx(np.mean(x**2), rel=0.1)

    def test_too_short_signal(self):
        with pytest.raises(AnalysisError):
            exact_period_spectrum(np.array([1.0]))

    def test_power_db_floor(self):
        db = power_db(np.array([0.0, 1.0]))
        assert db[0] == -120.0
        assert db[1] == 0.0

    def test_band_power_empty_band(self):
        f = np.linspace(0, 0.5, 10)
        with pytest.raises(AnalysisError):
            band_power(f, np.ones(10), 0.61, 0.62)


class TestGeneratorSpectra:
    """The Figure 4 shapes, asserted quantitatively."""

    @staticmethod
    def _lo_over_mid(gen):
        f, p = generator_spectrum(gen)
        return band_power(f, p, 0.0005, 0.01) / band_power(f, p, 0.2, 0.3)

    def test_type1_has_deep_low_frequency_rolloff(self):
        assert self._lo_over_mid(Type1Lfsr(12)) < 0.01

    def test_type2_rolloff_between_type1_and_flat(self):
        t1 = self._lo_over_mid(Type1Lfsr(12))
        t2 = self._lo_over_mid(Type2Lfsr(12))
        assert t1 * 3 < t2 < 0.5

    def test_decorrelated_is_flat(self):
        assert 0.5 < self._lo_over_mid(DecorrelatedLfsr(12)) < 2.0

    def test_max_variance_is_flat(self):
        assert 0.5 < self._lo_over_mid(MaxVarianceLfsr(12)) < 2.0

    def test_ramp_concentrates_at_low_frequency(self):
        assert self._lo_over_mid(RampGenerator(12)) > 100.0

    def test_type1_insensitive_to_shift_direction(self):
        f1, p1 = generator_spectrum(Type1Lfsr(12, direction="msb_to_lsb"))
        f2, p2 = generator_spectrum(Type1Lfsr(12, direction="lsb_to_msb"))
        # Same power per band (the sequences are time reversals).
        for lo, hi in ((0.001, 0.05), (0.1, 0.2), (0.3, 0.5)):
            assert band_power(f1, p1, lo, hi) == pytest.approx(
                band_power(f2, p2, lo, hi), rel=0.05)

    def test_total_power_equals_variance(self):
        for gen, var in ((Type1Lfsr(12), 1 / 3), (MaxVarianceLfsr(12), 1.0)):
            f, p = generator_spectrum(gen)
            assert np.mean(p) == pytest.approx(var, rel=0.02)

    def test_welch_path(self):
        f, p = generator_spectrum(Type1Lfsr(12), n=4096, exact=False)
        assert len(f) == len(p)
        assert np.mean(p) == pytest.approx(1 / 3, rel=0.1)


class TestBatchedSpectra:
    """generator_spectra (the service's batched path) must agree with
    per-generator generator_spectrum bit for bit."""

    def _gens(self):
        from repro.generators import (
            DecorrelatedLfsr,
            MaxVarianceLfsr,
            MixedModeLfsr,
            RampGenerator,
            Type1Lfsr,
            Type2Lfsr,
        )
        return [Type1Lfsr(8), Type2Lfsr(8), DecorrelatedLfsr(8),
                MaxVarianceLfsr(8), RampGenerator(8),
                MixedModeLfsr(8, switch_after=128)]

    def test_bit_identical_to_serial_path(self):
        from repro.analysis.spectrum import generator_spectra

        gens = self._gens()
        batched = generator_spectra(gens)
        assert len(batched) == len(gens)
        for gen, (freqs, power) in zip(gens, batched):
            f_ref, p_ref = generator_spectrum(gen)
            assert np.array_equal(freqs, f_ref), gen.name
            assert np.array_equal(power, p_ref), gen.name

    def test_mixed_period_groups(self):
        # Ramp has period 2^w, LFSRs 2^w - 1: the batch groups by
        # period internally but the output order must follow the input.
        from repro.analysis.spectrum import generator_spectra
        from repro.generators import RampGenerator, Type1Lfsr

        gens = [RampGenerator(8), Type1Lfsr(8), RampGenerator(10)]
        batched = generator_spectra(gens)
        for gen, (freqs, power) in zip(gens, batched):
            f_ref, p_ref = generator_spectrum(gen)
            assert np.array_equal(freqs, f_ref)
            assert np.array_equal(power, p_ref)

    def test_empty_batch(self):
        from repro.analysis.spectrum import generator_spectra

        assert generator_spectra([]) == []

    def test_exact_period_spectra_matches_rows(self, rng):
        from repro.analysis.spectrum import (
            exact_period_spectra,
            exact_period_spectrum,
        )

        matrix = rng.normal(size=(4, 255))
        freqs, power = exact_period_spectra(matrix)
        assert power.shape == (4, len(freqs))
        for row, row_power in zip(matrix, power):
            f_ref, p_ref = exact_period_spectrum(row)
            assert np.array_equal(freqs, f_ref)
            assert np.array_equal(row_power, p_ref)
