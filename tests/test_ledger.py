"""Run ledger: records, content addressing, trend gate, ``repro runs``."""

import json

import pytest

from repro.cli import main
from repro.errors import LedgerError
from repro.ledger import (RUN_KINDS, RunLedger, build_record, metric_value,
                          summarize_telemetry, trend_check, validate_record)
from repro.telemetry import Telemetry


def bench_record(fps, day=0, **over):
    config = {"design": "LP", "vectors": 4096, "faults": 2048}
    config.update(over.pop("config", {}))
    return build_record(
        "bench-gates", config=config,
        created_unix=1753900000.0 + 86400.0 * day,
        bench=dict({"faults_per_sec": float(fps), "speedup": 4.2},
                   **over.pop("bench", {})),
        metrics={"gates.faults_graded": 2048},
        git_sha="b2fb45b98c20cfc89265c3f8e2558d36caddb85c", **over)


class TestRecords:
    def test_build_is_valid_and_content_addressed(self):
        rec = bench_record(100000.0)
        validate_record(rec)  # does not raise
        assert rec["schema"] == "repro-ledger/1"
        assert len(rec["id"]) == 64
        assert rec["config_fingerprint"]
        # Same content -> same id; different content -> different id.
        assert bench_record(100000.0)["id"] == rec["id"]
        assert bench_record(100001.0)["id"] != rec["id"]

    def test_tampered_record_detected(self):
        rec = bench_record(100000.0)
        rec["bench"]["faults_per_sec"] = 999999.0
        with pytest.raises(LedgerError, match="content address"):
            validate_record(rec)

    def test_unknown_kind_rejected(self):
        rec = bench_record(1.0)
        rec["kind"] = "mystery"
        with pytest.raises(LedgerError, match="unknown run kind"):
            validate_record(rec)
        assert "bench-gates" in RUN_KINDS

    def test_missing_fields_rejected(self):
        with pytest.raises(LedgerError, match="missing required"):
            validate_record({"schema": "repro-ledger/1"})

    def test_metric_value_paths(self):
        rec = bench_record(100000.0,
                           extra={"coverage": 0.93, "identical": True})
        assert metric_value(rec, "faults_per_sec") == 100000.0
        assert metric_value(rec, "bench.faults_per_sec") == 100000.0
        assert metric_value(rec, "metrics.gates.faults_graded") == 2048.0
        assert metric_value(rec, "gates.faults_graded") == 2048.0
        assert metric_value(rec, "coverage") is None  # top-level, not dotted
        assert metric_value(rec, "identical") is None  # bools are not metrics
        assert metric_value(rec, "no.such.metric") is None


class TestLedgerFile:
    def test_append_and_read_back(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger"))
        rid = led.append(bench_record(100000.0))
        assert len(led) == 1
        assert led.get(rid)["bench"]["faults_per_sec"] == 100000.0
        assert led.records(kind="bench-gates", validate=True)

    def test_append_is_idempotent(self, tmp_path):
        led = RunLedger(str(tmp_path))
        rec = bench_record(100000.0)
        assert led.append(rec) == led.append(dict(rec))
        assert len(led) == 1

    def test_validate_flags_corrupt_line(self, tmp_path):
        led = RunLedger(str(tmp_path))
        led.append(bench_record(100000.0))
        rec = json.loads(open(led.path).read())
        rec["bench"]["faults_per_sec"] = 1.0  # edit without re-addressing
        with open(led.path, "w") as fh:
            fh.write(json.dumps(rec) + "\n")
        assert led.records()  # non-validating read still returns it
        with pytest.raises(LedgerError):
            led.records(validate=True)

    def test_summarize_telemetry_counters(self):
        tel = Telemetry(sinks=[])
        tel.counter("gates.faults_graded").add(512)
        summary = summarize_telemetry(tel)
        assert summary["gates.faults_graded"] == 512


class TestTrendCheck:
    def history(self, *fps):
        return [bench_record(v, day=i) for i, v in enumerate(fps)]

    def test_stable_history_passes(self):
        report = trend_check(self.history(101000, 99000, 100500),
                             "faults_per_sec")
        assert report.ok
        assert report.baseline == 100000.0  # median of the two priors
        assert "ok" in report.describe()

    def test_thirty_percent_drop_fails(self):
        report = trend_check(self.history(101000, 99000, 100500, 70000),
                             "faults_per_sec", tolerance=0.2)
        assert not report.ok
        assert "REGRESSION" in report.describe()

    def test_direction_lower_inverts_band(self):
        recs = [bench_record(1.0, day=i, bench={"optimized_seconds": s})
                for i, s in enumerate([10.0, 10.0, 14.0])]
        assert not trend_check(recs, "optimized_seconds", tolerance=0.2,
                               direction="lower").ok
        assert trend_check(recs, "optimized_seconds", tolerance=0.5,
                           direction="lower").ok

    def test_window_is_bounded_by_last(self):
        # Old fast runs outside the window must not drag the median up.
        report = trend_check(self.history(500000, 500000, 100, 100, 100, 95),
                             "faults_per_sec", last=3)
        assert report.window == 3
        assert report.baseline == 100.0
        assert report.ok

    def test_needs_two_usable_records(self):
        with pytest.raises(LedgerError, match="at least 2"):
            trend_check(self.history(100.0), "faults_per_sec")
        with pytest.raises(LedgerError, match="at least 2"):
            trend_check(self.history(100.0, 200.0), "no_such_metric")

    def test_parameter_validation(self):
        recs = self.history(1.0, 2.0)
        with pytest.raises(LedgerError):
            trend_check(recs, "faults_per_sec", direction="sideways")
        with pytest.raises(LedgerError):
            trend_check(recs, "faults_per_sec", tolerance=1.5)
        with pytest.raises(LedgerError):
            trend_check(recs, "faults_per_sec", last=0)


class TestRunsCli:
    """``repro runs`` against a seeded ledger directory."""

    @pytest.fixture()
    def ledger_dir(self, tmp_path):
        led = RunLedger(str(tmp_path / "led"))
        for day, fps in enumerate([101250.0, 104800.0, 99400.0]):
            led.append(bench_record(fps, day=day))
        return led.root

    def test_list_and_show(self, ledger_dir, capsys):
        assert main(["runs", "--ledger-dir", ledger_dir, "list"]) == 0
        out = capsys.readouterr().out
        assert "bench-gates" in out and "faults/s" in out
        rid = out.strip().splitlines()[-1].split()[0]
        assert main(["runs", "--ledger-dir", ledger_dir, "show", rid]) == 0
        assert "config_fingerprint" in capsys.readouterr().out

    def test_trend_check_passes_on_stable_history(self, ledger_dir, capsys):
        rc = main(["runs", "--ledger-dir", ledger_dir, "trend",
                   "--metric", "faults_per_sec", "--check"])
        assert rc == 0
        assert "trend ok" in capsys.readouterr().out

    def test_trend_check_fails_on_regression(self, ledger_dir, capsys):
        RunLedger(ledger_dir).append(bench_record(70000.0, day=3))
        rc = main(["runs", "--ledger-dir", ledger_dir, "trend",
                   "--metric", "faults_per_sec", "--check"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_shows_metric_delta(self, ledger_dir, capsys):
        led = RunLedger(ledger_dir)
        a, b = [r["id"] for r in led.tail(2)]
        assert main(["runs", "--ledger-dir", ledger_dir,
                     "compare", a, b]) == 0
        assert "faults_per_sec" in capsys.readouterr().out

    def test_validate_reports_counts(self, ledger_dir, capsys):
        assert main(["runs", "--ledger-dir", ledger_dir, "validate"]) == 0
        assert "3" in capsys.readouterr().out

    def test_committed_fixture_gates_green(self, capsys):
        import os
        fixture = os.path.join(os.path.dirname(__file__), os.pardir,
                               "benchmarks", "ledger_fixture")
        rc = main(["runs", "--ledger-dir", fixture,
                   "trend", "--metric", "faults_per_sec", "--check"])
        assert rc == 0
