"""Shared test helpers (importable from any test module)."""

from __future__ import annotations

from repro.rtl import design_from_coefficients

#: A handful of coefficient sets exercising adds, subs, leading-negative
#: taps, zero taps and single-digit taps.
SMALL_COEFSETS = {
    "plain": [0.3, -0.45, 0.12, 0.08, -0.2],
    "leading_negative": [0.4, 0.3, -0.2],  # far-end tap negative
    "with_zero": [0.25, 0.0, -0.125, 0.5],
    "single_digit": [0.5, -0.25],
}


def build_small_design(key: str = "plain", **kwargs):
    """A compact design for exhaustive / gate-level tests."""
    defaults = dict(name=f"small-{key}", coef_frac=8, acc_frac=10,
                    max_nonzeros=4)
    defaults.update(kwargs)
    return design_from_coefficients(SMALL_COEFSETS[key], **defaults)
