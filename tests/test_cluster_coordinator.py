"""Coordinator against a live in-process fleet: dispatch, failure
reassignment, dead endpoints, and single-node identity."""

from __future__ import annotations

import pytest

from repro.cluster import run_cluster_sweep
from repro.cluster.coordinator import ClusterCoordinator
from repro.errors import ClusterError
from repro.service.lifecycle import ServiceConfig
from repro.service.testing import ServiceThread

#: Nothing listens here — connections are refused instantly, which is
#: exactly the "worker died" failure mode the coordinator must survive.
DEAD_ENDPOINT = "http://127.0.0.1:9"

# 600 faults split on the 512-fault cone-batch boundary -> 2 shards.
SWEEP = dict(vectors=96, faults_limit=600, shard_faults=512,
             poll=0.3, shard_timeout=120.0)


@pytest.fixture(scope="module")
def fleet():
    with ServiceThread(ServiceConfig(port=0, no_cache=True)) as a, \
            ServiceThread(ServiceConfig(port=0, no_cache=True)) as b:
        yield a, b


class TestFleetSweep:
    def test_two_workers_match_single_node(self, fleet):
        a, b = fleet
        report = run_cluster_sweep([a.base_url, b.base_url], verify=True,
                                   **SWEEP)
        assert report.verified is True
        assert report.shards == 2
        assert report.merged.total == 600
        doc = report.to_doc()
        assert doc["signature"].startswith("0x")
        assert "endpoint_health" not in doc  # heartbeat_poll off
        assert sum(w["shards"] for w in doc["workers"]) >= report.shards
        assert sum(t["faults"] for t in doc["shard_timings"]
                   if not t["duplicate"]) == 600

    def test_engine_sweep_verifies_cross_engine(self, fleet):
        """engine="event" ships the tier to every shard worker, the
        verify oracle runs the *other* tier, and the merge is still
        bit-identical — a live cross-engine equivalence proof."""
        a, b = fleet
        report = run_cluster_sweep([a.base_url, b.base_url], verify=True,
                                   engine="event", **SWEEP)
        assert report.verified is True
        assert report.merged.total == 600
        assert report.to_doc()["params"]["engine"] == "event"

    def test_unknown_engine_rejected_before_dispatch(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="unknown gate engine"):
            run_cluster_sweep([DEAD_ENDPOINT], engine="warp", **SWEEP)

    def test_dead_worker_is_survived(self, fleet):
        a, _b = fleet
        # Generous retry budget: the dead dispatcher burns attempts
        # fast (instant connection refusals) while the live worker is
        # busy grading; the sweep must not go fatal before the live
        # worker picks the shard up.
        report = run_cluster_sweep(
            [DEAD_ENDPOINT, a.base_url], verify=True, max_retries=8,
            **SWEEP)
        assert report.verified is True
        doc = report.to_doc()
        tallies = {w["endpoint"]: w for w in doc["workers"]}
        assert tallies[DEAD_ENDPOINT]["shards"] == 0
        assert tallies[DEAD_ENDPOINT]["failures"] > 0
        assert tallies[a.base_url]["shards"] == report.shards
        assert report.retries > 0

    def test_heartbeat_monitor_marks_dead_endpoint(self, fleet):
        a, _b = fleet
        report = run_cluster_sweep(
            [DEAD_ENDPOINT, a.base_url], max_retries=8,
            heartbeat_poll=0.2, **SWEEP)
        doc = report.to_doc()
        health = doc["endpoint_health"]
        # Two consecutive refused polls: the dead endpoint decays and
        # its dispatcher stops pulling shards; the live one keeps the
        # last fleet snapshot totals from its own /v1/fleet.
        assert health[DEAD_ENDPOINT]["state"] == "dead"
        assert health[DEAD_ENDPOINT]["consecutive_failures"] >= 2
        assert health[a.base_url]["state"] == "live"
        assert health[a.base_url]["polls"] >= 1
        assert health[a.base_url]["totals"] is not None
        assert report.merged.total == 600

    def test_heartbeat_poll_off_omits_endpoint_health(self):
        coord = ClusterCoordinator([DEAD_ENDPOINT], {}, total=10,
                                   test_length=16)
        assert coord.heartbeat_poll == 0.0
        with pytest.raises(ClusterError, match="heartbeat_poll"):
            ClusterCoordinator([DEAD_ENDPOINT], {}, total=10,
                               test_length=16, heartbeat_poll=-1.0)

    def test_all_workers_dead_is_fatal(self):
        with pytest.raises(ClusterError, match="failed after"):
            run_cluster_sweep([DEAD_ENDPOINT], vectors=96,
                              faults_limit=100, shard_faults=100,
                              poll=0.2, shard_timeout=10.0,
                              max_retries=1)


class TestSchedulingUnits:
    def _coordinator(self, **kwargs):
        defaults = dict(total=10, test_length=16)
        defaults.update(kwargs)
        return ClusterCoordinator(["http://127.0.0.1:9"], {}, **defaults)

    def test_backoff_grows_and_caps(self):
        coord = self._coordinator(backoff_base=0.5, backoff_cap=4.0)
        # Jitter is 0.5x-1.5x, so bound by [0.5*delay, 1.5*delay].
        for consecutive, delay in ((1, 0.5), (2, 1.0), (3, 2.0),
                                   (4, 4.0), (10, 4.0)):
            measured = coord._backoff(consecutive)
            assert 0.5 * delay <= measured <= 1.5 * delay

    def test_straggler_deadline_floors_and_scales(self):
        coord = self._coordinator(straggler_factor=3.0, straggler_min=5.0,
                                  shard_timeout=100.0)
        # No completions yet: half the shard timeout.
        assert coord._straggler_deadline() == 50.0
        coord._completed_seconds = [1.0, 1.0, 1.0]
        assert coord._straggler_deadline() == 5.0  # floor wins
        coord._completed_seconds = [2.0, 10.0, 4.0]
        assert coord._straggler_deadline() == 12.0  # 3x median

    def test_requires_endpoints(self):
        with pytest.raises(ClusterError):
            ClusterCoordinator([], {}, total=1, test_length=1)

    def test_run_requires_shards(self):
        with pytest.raises(ClusterError, match="no shards"):
            self._coordinator().run([])
