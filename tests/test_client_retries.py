"""ServiceClient's opt-in 429/503 retry loop (no live server needed)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.service.client import ServiceBusy, ServiceClient


def _scripted(monkeypatch, client, responses):
    """Replace the transport with a canned status/header sequence."""
    calls = []

    def fake_request(method, path, body=None):
        calls.append((method, path))
        status, headers = responses[min(len(calls), len(responses)) - 1]
        return status, headers, ({"error": "busy"}
                                 if status in (429, 503)
                                 else {"state": "queued"})

    monkeypatch.setattr(client, "_request", fake_request)
    return calls


def _no_sleep(monkeypatch):
    slept = []
    import repro.service.client as mod
    monkeypatch.setattr(mod.time, "sleep", slept.append)
    return slept


class TestConstruction:
    def test_defaults_off(self):
        client = ServiceClient("http://127.0.0.1:1")
        assert client.retries == 0
        assert client.retry_cap == 10.0

    def test_validation(self):
        with pytest.raises(ReproError):
            ServiceClient("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ReproError):
            ServiceClient("http://127.0.0.1:1", retry_cap=0.0)


class TestRetryLoop:
    def test_zero_retries_raises_immediately(self, monkeypatch):
        client = ServiceClient("http://x:1")
        calls = _scripted(monkeypatch, client,
                          [(429, {"retry-after": "0.2"})])
        slept = _no_sleep(monkeypatch)
        with pytest.raises(ServiceBusy):
            client.submit("rank", {})
        assert len(calls) == 1
        assert slept == []

    def test_busy_then_success(self, monkeypatch):
        client = ServiceClient("http://x:1", retries=3)
        calls = _scripted(monkeypatch, client,
                          [(429, {"retry-after": "0.2"}),
                           (503, {"retry-after": "0.4"}),
                           (202, {})])
        slept = _no_sleep(monkeypatch)
        doc = client.submit("rank", {})
        assert doc == {"state": "queued"}
        assert len(calls) == 3
        assert len(slept) == 2
        # attempt 0: hint 0.2 -> [0.1, 0.2]; attempt 1: 0.4*2 -> [0.4, 0.8]
        assert 0.1 <= slept[0] <= 0.2
        assert 0.4 <= slept[1] <= 0.8

    def test_exhaustion_raises_last_busy(self, monkeypatch):
        client = ServiceClient("http://x:1", retries=2)
        calls = _scripted(monkeypatch, client,
                          [(429, {"retry-after": "0.1"})] * 5)
        slept = _no_sleep(monkeypatch)
        with pytest.raises(ServiceBusy):
            client.submit("rank", {})
        assert len(calls) == 3  # initial + 2 retries
        assert len(slept) == 2

    def test_backoff_capped(self, monkeypatch):
        client = ServiceClient("http://x:1", retries=1, retry_cap=0.5)
        exc = ServiceBusy(429, "busy", {}, retry_after=100.0)
        for attempt in range(4):
            assert client._busy_backoff(exc, attempt) <= 0.5

    def test_backoff_floors_tiny_hints(self):
        client = ServiceClient("http://x:1", retries=1)
        exc = ServiceBusy(429, "busy", {}, retry_after=0.0)
        assert client._busy_backoff(exc, 0) >= 0.025  # 0.05 * 0.5 jitter

    def test_non_busy_errors_not_retried(self, monkeypatch):
        from repro.service.client import ServiceClientError
        client = ServiceClient("http://x:1", retries=5)
        calls = _scripted(monkeypatch, client, [(500, {})])
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("rank", {})
        assert not isinstance(excinfo.value, ServiceBusy)
        assert len(calls) == 1
