"""Artifact cache: keys, store behaviour, codecs, pipeline wiring."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache import (
    ArtifactCache,
    cached_coverage,
    cached_universe,
    code_version,
    default_cache_dir,
    design_fingerprint,
    generator_fingerprint,
    stable_hash,
)
from repro.cache.artifacts import (
    decode_coverage,
    decode_golden,
    decode_netlist,
    decode_universe,
    encode_coverage,
    encode_golden,
    encode_netlist,
    encode_universe,
)
from repro.errors import CacheError
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.gates.gatesim import simulate_netlist
from repro.gates.netlist import elaborate
from repro.generators import Type1Lfsr

from helpers import build_small_design


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "store"))


class TestKeys:
    def test_stable_hash_deterministic(self):
        payload = {"a": 1, "b": [1.5, "x"], "c": np.arange(4)}
        assert stable_hash(payload) == stable_hash(dict(payload))

    def test_key_order_independent(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        base = stable_hash({"n": 1024})
        assert stable_hash({"n": 1025}) != base
        assert stable_hash({"n": 1024.0}) != base  # int vs float differ

    def test_array_content_hashed(self):
        a = stable_hash({"w": np.array([1, 2, 3])})
        b = stable_hash({"w": np.array([1, 2, 4])})
        assert a != b

    def test_unhashable_payload_rejected(self):
        with pytest.raises(CacheError):
            stable_hash({"bad": object()})

    def test_design_fingerprint_distinguishes_designs(self):
        d1 = build_small_design("plain")
        d2 = build_small_design("with_zero")
        assert (stable_hash(design_fingerprint(d1))
                != stable_hash(design_fingerprint(d2)))

    def test_generator_fingerprint_captures_config(self):
        assert (stable_hash(generator_fingerprint(Type1Lfsr(12)))
                != stable_hash(generator_fingerprint(Type1Lfsr(10))))

    def test_code_version_in_key(self, cache):
        assert "schema" in code_version()
        # kind participates in the key: same payload, different kind
        assert cache.key("universe", {"x": 1}) != cache.key("golden", {"x": 1})

    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == str(tmp_path / "env")


class TestStore:
    def test_miss_then_hit(self, cache):
        payload = {"design": "X", "n": 64}
        assert cache.load("golden", payload) is None
        cache.store("golden", payload, {"wave": np.arange(8)})
        loaded = cache.load("golden", payload)
        assert loaded is not None
        np.testing.assert_array_equal(loaded["wave"], np.arange(8))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.by_kind["golden"] == {
            "misses": 1, "hits": 1, "stores": 1}

    def test_meta_roundtrip(self, cache):
        cache.store("universe", {"k": 1}, {"a": np.zeros(2)},
                    meta={"fault_count": 42})
        loaded = cache.load("universe", {"k": 1})
        assert loaded["__meta__"]["fault_count"] == 42

    def test_reserved_array_name_rejected(self, cache):
        with pytest.raises(CacheError):
            cache.store("x", {"k": 1}, {"__meta__": np.zeros(1)})

    def test_corrupted_entry_recovered(self, cache):
        payload = {"k": "corrupt-me"}
        path = cache.store("golden", payload, {"wave": np.arange(100)})
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage")
        assert cache.load("golden", payload) is None  # miss, not crash
        assert cache.stats.recovered == 1
        assert not os.path.exists(path)  # broken file evicted
        # the slot is rebuildable afterwards
        cache.store("golden", payload, {"wave": np.arange(100)})
        assert cache.load("golden", payload) is not None

    def test_lru_eviction_under_size_cap(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), max_bytes=1)  # nothing fits
        cache.store("x", {"k": 1}, {"a": np.arange(1000)})
        assert cache.entries() == []
        assert cache.stats.evictions == 1

    def test_lru_keeps_recently_used(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), max_bytes=None)
        p1 = cache.store("x", {"k": 1}, {"a": np.arange(500)})
        p2 = cache.store("x", {"k": 2}, {"a": np.arange(500)})
        # make entry 1 the most recently used, then shrink the cap so
        # only one entry fits: the LRU entry (2) must go.
        os.utime(p2, (1, 1))
        cache.load("x", {"k": 1})
        size = os.path.getsize(p1)
        cache.max_bytes = size + os.path.getsize(p2) // 2
        cache.evict()
        assert os.path.exists(p1) and not os.path.exists(p2)

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(CacheError):
            ArtifactCache(str(tmp_path), max_bytes=0)

    def test_clear(self, cache):
        cache.store("x", {"k": 1}, {"a": np.zeros(4)})
        cache.clear()
        assert cache.entries() == []


class TestArtifactCodecs:
    def test_universe_roundtrip(self, small_design):
        fresh = build_fault_universe(small_design.graph, name="small")
        arrays, meta = encode_universe(small_design.graph, fresh)
        decoded = decode_universe(
            {k: np.asarray(v) for k, v in arrays.items()}, meta)
        assert decoded.fault_count == fresh.fault_count
        for a, b in zip(fresh.faults, decoded.faults):
            assert a.node_id == b.node_id
            assert a.bit == b.bit
            assert a.effective_mask == b.effective_mask
            assert a.cell_fault.name == b.cell_fault.name

    def test_netlist_roundtrip_simulates_identically(self, small_design):
        nl = elaborate(small_design.graph)
        arrays, meta = encode_netlist(nl)
        decoded = decode_netlist(
            {k: np.asarray(v) for k, v in arrays.items()}, meta)
        raw = Type1Lfsr(small_design.input_fmt.width).sequence(64)
        np.testing.assert_array_equal(
            simulate_netlist(nl, raw)["output"],
            simulate_netlist(decoded, raw)["output"])

    def test_golden_roundtrip(self):
        wave = np.arange(-8, 8, dtype=np.int64)
        arrays, meta = encode_golden(wave)
        np.testing.assert_array_equal(decode_golden(arrays, meta), wave)

    def test_coverage_roundtrip(self, small_design):
        universe = build_fault_universe(small_design.graph, name="small")
        gen = Type1Lfsr(small_design.input_fmt.width)
        result = run_fault_coverage(small_design, gen, 128,
                                    universe=universe)
        arrays, meta = encode_coverage(result)
        decoded = decode_coverage(
            {k: np.asarray(v) for k, v in arrays.items()}, meta, universe)
        np.testing.assert_array_equal(decoded.detect_time,
                                      result.detect_time)
        assert decoded.coverage() == result.coverage()
        assert decoded.n_vectors == result.n_vectors


class TestPipeline:
    def test_none_cache_computes(self, small_design):
        calls = []

        def compute():
            calls.append(1)
            return build_fault_universe(small_design.graph, name="small")

        u1 = cached_universe(None, small_design, compute)
        u2 = cached_universe(None, small_design, compute)
        assert len(calls) == 2
        assert u1.fault_count == u2.fault_count

    def test_universe_cached_second_call_hits(self, cache, small_design):
        def compute():
            return build_fault_universe(small_design.graph, name="small")

        u1 = cached_universe(cache, small_design, compute)
        u2 = cached_universe(cache, small_design, compute)
        assert cache.stats.by_kind["universe"] == {
            "misses": 1, "stores": 1, "hits": 1}
        assert u2.fault_count == u1.fault_count

    def test_coverage_cache_identical_to_fresh(self, cache, small_design):
        """Cached results are byte-identical to a --no-cache run."""
        universe = build_fault_universe(small_design.graph, name="small")
        gen = Type1Lfsr(small_design.input_fmt.width)

        def compute():
            return run_fault_coverage(small_design, gen, 128,
                                      universe=universe)

        cold = cached_coverage(cache, small_design, gen, 128, universe,
                               compute)
        warm = cached_coverage(cache, small_design, gen, 128, universe,
                               compute)
        no_cache = cached_coverage(None, small_design, gen, 128, universe,
                                   compute)
        assert cache.stats.by_kind["coverage"]["hits"] == 1
        np.testing.assert_array_equal(cold.detect_time, warm.detect_time)
        np.testing.assert_array_equal(cold.detect_time, no_cache.detect_time)


class TestExperimentContextIntegration:
    def test_warm_rerun_skips_recompute(self, tmp_path):
        """Second context over the same store: pure hits, no recompute."""
        from repro.experiments import ExperimentContext

        root = str(tmp_path / "store")
        gen_vectors = 128

        cold = ExperimentContext(cache=ArtifactCache(root))
        gen = cold.standard_generators()["LFSR-1"]
        r1 = cold.coverage("LP", gen, gen_vectors)
        assert cold.cache.stats.hits == 0
        assert cold.cache.stats.stores >= 3  # design + universe + coverage

        warm = ExperimentContext(cache=ArtifactCache(root))
        gen = warm.standard_generators()["LFSR-1"]
        r2 = warm.coverage("LP", gen, gen_vectors)
        assert warm.cache.stats.misses == 0
        assert warm.cache.stats.stores == 0
        assert warm.cache.stats.hits >= 3
        np.testing.assert_array_equal(r1.detect_time, r2.detect_time)

    def test_rehydrated_design_keeps_spec(self, tmp_path):
        from repro.experiments import ExperimentContext

        root = str(tmp_path / "store")
        ExperimentContext(cache=ArtifactCache(root)).designs  # populate
        warm = ExperimentContext(cache=ArtifactCache(root))
        design = warm.designs["LP"]
        assert "spec" in design.extra  # figures.py reads this
        assert design.kind == "lowpass"
