"""Tests for repro.fixedpoint.qformat."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import Fixed, bit, sign_bit, wrap


class TestWrap:
    def test_identity_in_range(self):
        assert wrap(100, 8) == 100
        assert wrap(-128, 8) == -128
        assert wrap(127, 8) == 127

    def test_positive_overflow_wraps_negative(self):
        assert wrap(128, 8) == -128
        assert wrap(129, 8) == -127

    def test_negative_overflow_wraps_positive(self):
        assert wrap(-129, 8) == 127

    def test_array_input(self):
        out = wrap(np.array([127, 128, -129]), 8)
        assert list(out) == [127, -128, 127]

    def test_invalid_width(self):
        with pytest.raises(FixedPointError):
            wrap(0, 0)

    @given(st.integers(-10**9, 10**9), st.integers(2, 24))
    def test_wrap_is_modular(self, raw, width):
        span = 1 << width
        w = wrap(raw, width)
        assert -(span // 2) <= w < span // 2
        assert (w - raw) % span == 0


class TestBits:
    def test_sign_bit(self):
        assert sign_bit(-1, 8) == 1
        assert sign_bit(5, 8) == 0

    def test_bit_of_negative_numbers_is_sign_extended(self):
        # -1 in two's complement is all ones at any position.
        assert bit(-1, 0) == 1
        assert bit(-1, 17) == 1
        assert bit(-2, 0) == 0

    @given(st.integers(-(1 << 15), (1 << 15) - 1))
    def test_bits_reassemble_value(self, raw):
        width = 17
        total = -(int(bit(raw, width - 1)) << (width - 1))
        for k in range(width - 1):
            total += int(bit(raw, k)) << k
        assert total == raw


class TestFixed:
    def test_ranges(self):
        q = Fixed(12, 11)
        assert q.min_raw == -2048
        assert q.max_raw == 2047
        assert q.lsb == pytest.approx(2**-11)
        assert q.min_value == pytest.approx(-1.0)
        assert q.max_value == pytest.approx(1.0 - 2**-11)
        assert q.half_scale == pytest.approx(1.0)

    def test_half_scale_with_headroom(self):
        q = Fixed(16, 12)
        assert q.half_scale == pytest.approx(8.0)

    def test_from_float_round(self):
        q = Fixed(8, 7)
        assert q.from_float(0.5) == 64
        assert q.from_float(-0.5) == -64

    def test_from_float_floor_truncates_toward_minus_inf(self):
        q = Fixed(8, 7)
        assert q.from_float(0.509, rounding="floor") == 65
        assert q.from_float(-0.509, rounding="floor") == -66

    def test_from_float_out_of_range(self):
        q = Fixed(8, 7)
        with pytest.raises(FixedPointError):
            q.from_float(1.5)

    def test_from_float_unknown_mode(self):
        with pytest.raises(FixedPointError):
            Fixed(8, 7).from_float(0.1, rounding="bogus")

    def test_normalize_covers_unit_interval(self):
        q = Fixed(10, 4)
        assert q.normalize(q.min_raw) == pytest.approx(-1.0)
        assert q.normalize(q.max_raw) == pytest.approx(1.0 - 2**-9)

    def test_rescale_raw_exact_up(self):
        a = Fixed(8, 4)
        b = Fixed(12, 8)
        assert a.rescale_raw(5, b) == 5 * 16

    def test_rescale_raw_truncates_down(self):
        a = Fixed(12, 8)
        b = Fixed(8, 4)
        assert a.rescale_raw(0x7F, b) == 0x7
        assert a.rescale_raw(-1, b) == -1  # floor, not toward zero

    @given(st.integers(2, 20), st.integers(0, 24))
    def test_roundtrip_float(self, width, frac):
        q = Fixed(width, frac)
        raw = q.max_raw
        assert q.from_float(q.to_float(raw)) == raw

    def test_invalid_width(self):
        with pytest.raises(FixedPointError):
            Fixed(0, 0)

    def test_contains(self):
        q = Fixed(8, 0)
        assert q.contains([127, -128])
        assert not q.contains([128])

    def test_saturate(self):
        q = Fixed(8, 0)
        assert list(q.saturate(np.array([200, -200, 5]))) == [127, -128, 5]
