"""Observability audit for the ideal-observability detection model."""

import numpy as np
import pytest

from repro.faultsim import audit_observability, build_fault_universe, \
    downstream_gains
from repro.fixedpoint import Fixed
from repro.rtl import Graph, OpKind
from repro.rtl.build import FilterDesign
from repro.rtl.scaling import ScalingReport

from helpers import build_small_design


class TestDownstreamGains:
    def test_output_gain_is_one(self, small_design):
        gains = downstream_gains(small_design.graph)
        assert gains[small_design.graph.output_id] == 1.0

    def test_all_operators_reach_output(self, small_design):
        gains = downstream_gains(small_design.graph)
        for node in small_design.graph.arithmetic_nodes:
            assert gains[node.nid] > 0.0

    def test_no_truncation_downstream_of_operators(self, small_design):
        """In the digit-folded architecture nothing narrows after an
        operator, so every operator has unit downstream gain."""
        gains = downstream_gains(small_design.graph)
        for node in small_design.graph.arithmetic_nodes:
            assert gains[node.nid] == 1.0


class TestAudit:
    def test_reference_architecture_has_no_maskable_faults(self, small_design):
        """The justification of the fast engine's detection model: on
        these datapaths an excited fault's error always reaches the
        output at >= 1 LSB."""
        uni = build_fault_universe(small_design.graph)
        audit = audit_observability(small_design, uni)
        assert audit.maskable_count == 0
        assert np.all(audit.min_output_error_lsb >= 1.0 - 1e-12)

    def test_full_lp_design_also_clean(self, ctx):
        audit = audit_observability(ctx.designs["LP"], ctx.universe("LP"))
        assert audit.maskable_count == 0

    def test_truncating_path_is_flagged(self):
        """A hand-built graph with a narrowing shift after its adder must
        flag the adder's low-bit faults as maskable."""
        g = Graph(name="truncating")
        x = g.add(OpKind.INPUT, fmt=Fixed(8, 7), role="input", name="x")
        t = g.add(OpKind.SHIFT, (x.nid,), fmt=Fixed(8, 7), shift=1,
                  role="term", name="x>>1")
        a = g.add(OpKind.ADD, (x.nid, t.nid), fmt=Fixed(9, 7),
                  role="accumulator", tap=0, name="acc")
        # output keeps only the top 5 bits: a 4-bit truncation
        o = g.add(OpKind.SHIFT, (a.nid,), fmt=Fixed(5, 3), shift=0,
                  role="output", name="trunc")
        g.add(OpKind.OUTPUT, (o.nid,), fmt=Fixed(5, 3), role="output",
              name="y")
        design = FilterDesign(
            name="truncating", graph=g, taps=[],
            scaling=ScalingReport(mode="l1", frac=7, bounds={}, widths={},
                                  iterations=0),
            input_fmt=Fixed(8, 7), acc_frac=7,
        )
        uni = build_fault_universe(g, prune_untestable=False)
        audit = audit_observability(design, uni)
        flagged_bits = {uni.faults[i].bit
                        for i in np.nonzero(audit.maskable)[0]}
        assert audit.maskable_count > 0
        assert flagged_bits <= {0, 1, 2, 3}  # only sub-LSB-weight bits
