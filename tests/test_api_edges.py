"""Edge-case and API-surface tests across modules.

Covers interfaces the main suites exercise only on the happy path:
gate-simulator fault kinds and net observation, coverage-curve options,
CSA analysis aids, spectrum estimator options, generator misuse.
"""

import numpy as np
import pytest

from repro.errors import GeneratorError, SimulationError
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.gates import NetlistFault, elaborate, simulate_netlist
from repro.generators import (
    GaloisLfsr,
    SineGenerator,
    Type1Lfsr,
    UniformWhiteGenerator,
)
from repro.rtl import carry_save_from_coefficients, simulate

from helpers import SMALL_COEFSETS, build_small_design


class TestGateSimInterface:
    def test_observe_nets(self, small_design, rng):
        nl = elaborate(small_design.graph)
        raw = rng.integers(-100, 100, size=8)
        target = nl.output_bits[0]
        result = simulate_netlist(nl, raw, observe_nets=[target])
        assert target in result["nets"]
        assert result["nets"][target].shape == (8,)

    def test_unknown_fault_kind_rejected(self, small_design, rng):
        nl = elaborate(small_design.graph)
        raw = rng.integers(-100, 100, size=8)
        bad = NetlistFault(lines=("bus", 3), value=1)
        with pytest.raises(SimulationError):
            simulate_netlist(nl, raw, fault=bad)

    def test_stuck_output_net(self, small_design, rng):
        nl = elaborate(small_design.graph)
        raw = rng.integers(-100, 100, size=8)
        out_net = nl.output_bits[-1]  # the output sign bit
        fault = NetlistFault(lines=("net", out_net), value=1)
        faulty = simulate_netlist(nl, raw, fault=fault)["output"]
        assert np.all(faulty < 0)  # sign bit forced on


class TestCoverageCurveOptions:
    def test_custom_points(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 256)
        pts, undetected = result.curve(points=[1, 64, 256])
        assert list(pts) == [1, 64, 256]
        assert undetected[-1] == result.missed()

    def test_percent_curve_reaches_coverage(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 256)
        pts, pct = result.coverage_percent_curve(points=[256])
        assert pct[0] == pytest.approx(100.0 * result.coverage())

    def test_missed_at_intermediate_point(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 512)
        assert result.missed(1) >= result.missed(256) >= result.missed(512)


class TestCsaAnalysisAids:
    def test_value_after_stage_matches_prefix_convolution(self, rng):
        csa = carry_save_from_coefficients(SMALL_COEFSETS["plain"],
                                           coef_frac=8, acc_frac=10,
                                           width=12)
        raw = rng.integers(-2048, 2048, size=64)
        last = csa.stages[-1]
        v = csa.value_after_stage(last.stage_id, raw)
        full = csa.simulate(raw)["output"] / (1 << (csa.fmt.width - 1))
        assert np.allclose(v, full)


class TestGeneratorMisuse:
    def test_width_too_small(self):
        with pytest.raises(GeneratorError):
            Type1Lfsr(1)

    def test_galois_direction_variants_differ(self):
        a = GaloisLfsr(10, direction="lsb_to_msb").sequence(64)
        b = GaloisLfsr(10, direction="msb_to_lsb").sequence(64)
        assert not np.array_equal(a, b)

    def test_sine_phase(self):
        base = SineGenerator(12, freq=0.01).sequence(100)
        shifted = SineGenerator(12, freq=0.01, phase=np.pi).sequence(100)
        assert np.allclose(base, -shifted, atol=2)

    def test_generate_zero_vectors(self):
        assert len(Type1Lfsr(12).generate(0)) == 0

    def test_normalized_helper(self):
        vals = UniformWhiteGenerator(12).normalized(100)
        assert np.all(np.abs(vals) <= 1.0)


class TestUniverseReuseGuards:
    def test_same_graph_fresh_universes_are_equivalent(self, small_design):
        a = build_fault_universe(small_design.graph)
        b = build_fault_universe(small_design.graph)
        assert a.fault_count == b.fault_count
        assert np.array_equal(a.fault_mask, b.fault_mask)

    def test_coverage_independent_of_universe_instance(self, small_design):
        a = run_fault_coverage(small_design, Type1Lfsr(12), 128)
        b = run_fault_coverage(small_design, Type1Lfsr(12), 128,
                               universe=build_fault_universe(small_design.graph))
        assert a.missed() == b.missed()


class TestSimulatorFaultEdges:
    def test_fault_bit_out_of_range(self, small_design, rng):
        from repro.rtl import InjectedFault
        node = small_design.graph.arithmetic_nodes[0]
        bad = InjectedFault(node_id=node.nid, bit=99,
                            sum_lut=np.zeros(8, dtype=np.uint8),
                            cout_lut=np.zeros(8, dtype=np.uint8))
        with pytest.raises(SimulationError):
            simulate(small_design.graph, rng.integers(-10, 10, size=4),
                     fault=bad)

    def test_fault_on_unrelated_node_is_noop(self, small_design, rng):
        """A fault spec pointing at a non-existent operator id simply
        never triggers (the simulator matches by node id)."""
        from repro.rtl import InjectedFault
        raw = rng.integers(-100, 100, size=16)
        good = simulate(small_design.graph, raw).output
        fault = InjectedFault(node_id=10**6, bit=0,
                              sum_lut=np.zeros(8, dtype=np.uint8),
                              cout_lut=np.zeros(8, dtype=np.uint8))
        bad = simulate(small_design.graph, raw, fault=fault).output
        assert np.array_equal(good, bad)
