"""Report generator, Type-2 polynomial selection, CLI export commands."""

import numpy as np
import pytest

from repro.analysis import (
    flattest_type2_polynomial,
    model_power_spectrum,
    type2_lfsr_model,
)
from repro.cli import main
from repro.experiments import full_report
from repro.generators import PAPER_TYPE2_POLY_12, is_maximal_length


class TestFullReport:
    def test_tables_only(self, ctx):
        text = full_report(ctx, include=["Table"])
        assert "## Table 4" in text
        assert "## Figure 4" not in text
        assert "519" in text  # paper comparison embedded

    def test_sections_are_fenced(self, ctx):
        text = full_report(ctx, include=["Table 2"])
        assert text.count("```") == 2


class TestPolynomialSelection:
    def test_selected_poly_is_primitive_and_flatter(self):
        best, best_power = flattest_type2_polynomial(12)
        assert is_maximal_length(best)
        # flatter than (or equal to) the paper's example polynomial
        f, p = model_power_spectrum(type2_lfsr_model(12, PAPER_TYPE2_POLY_12),
                                    n_points=256)
        mask = (f > 1e-6) & (f <= 0.02)
        paper_power = float(np.mean(p[mask]))
        assert best_power >= paper_power * 0.999

    def test_explicit_candidates(self):
        best, _ = flattest_type2_polynomial(
            12, candidates=[PAPER_TYPE2_POLY_12])
        assert best == PAPER_TYPE2_POLY_12


class TestCliExport:
    def test_export_json(self, tmp_path, capsys):
        out = tmp_path / "lp.json"
        assert main(["export", "--design", "LP", "--format", "json",
                     "--out", str(out)]) == 0
        assert out.exists() and out.stat().st_size > 1000
        from repro.rtl import load_design
        clone = load_design(str(out))
        assert clone.register_count == 60

    def test_export_verilog(self, tmp_path, capsys):
        out = tmp_path / "lp.v"
        assert main(["export", "--design", "LP", "--format", "verilog",
                     "--out", str(out)]) == 0
        text = out.read_text()
        assert "module lp_cut" in text
        assert text.rstrip().endswith("endmodule")

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--only", "tables"]) == 0
        assert "## Table 6" in out.read_text()
