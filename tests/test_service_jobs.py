"""Unit tests for the service job model and store."""

import pytest

from repro.errors import ServiceError
from repro.service import JOB_KINDS, Job, JobState, JobStore, canonical_params


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCanonicalParams:
    def test_unknown_kind(self):
        with pytest.raises(ServiceError) as err:
            canonical_params("train", {})
        assert err.value.status == 400
        for kind in JOB_KINDS:
            assert kind in str(err.value)

    def test_rank_defaults_and_aliases(self):
        assert canonical_params("rank", {"design": "bp"}) == {
            "design": "BP", "vectors": 4096}

    def test_grade_resolves_both_namespaces(self):
        got = canonical_params("grade", {"design": "lp",
                                         "generator": "lfsr-d",
                                         "vectors": "256"})
        assert got == {"design": "LP", "generator": "LFSR-D",
                       "vectors": 256, "width": 12}

    def test_spectrum_uses_cli_namespace(self):
        got = canonical_params("spectrum", {"generator": "LFSR-1"})
        assert got["generator"] == "lfsr1"

    def test_serious_fault_takes_no_params(self):
        assert canonical_params("serious-fault", None) == {}
        with pytest.raises(ServiceError):
            canonical_params("serious-fault", {"design": "LP"})

    @pytest.mark.parametrize("params", [
        {"vectors": 0}, {"vectors": "many"}, {"vectors": 1 << 30},
        {"nonsense": 1},
    ])
    def test_rejections(self, params):
        with pytest.raises(ServiceError) as err:
            canonical_params("rank", params)
        assert err.value.status == 400

    def test_unknown_name_is_http_400(self):
        # Resolver errors must surface as client errors, not 500s.
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            canonical_params("rank", {"design": "XXL"})

    def test_grade_shard_engine_canonicalizes(self):
        base = {"total": 100, "indices": [0, 1, 2]}
        # Empty/missing means "worker's default" and stays empty.
        assert canonical_params("grade-shard", dict(base))["engine"] == ""
        assert canonical_params(
            "grade-shard", dict(base, engine=""))["engine"] == ""
        for name in ("event", "word", "reference"):
            got = canonical_params("grade-shard",
                                   dict(base, engine=name))
            assert got["engine"] == name
        with pytest.raises(ServiceError) as err:
            canonical_params("grade-shard", dict(base, engine="warp"))
        assert err.value.status == 400

    def test_equivalent_spellings_share_cache_key(self):
        store = JobStore()
        a, _ = store.create("grade", {"design": "lp", "generator": "lfsr1"})
        b, _ = store.create("grade", {"design": "LP",
                                      "generator": "LFSR-1"})
        assert a.cache_key == b.cache_key
        c, _ = store.create("grade", {"design": "BP",
                                      "generator": "LFSR-1"})
        assert c.cache_key != a.cache_key


class TestJobStore:
    def test_create_assigns_unique_ids(self):
        store = JobStore()
        a, created_a = store.create("rank", {})
        b, created_b = store.create("rank", {})
        assert created_a and created_b
        assert a.id != b.id
        assert store.get(a.id) is a

    def test_idempotency_replays_same_job(self):
        store = JobStore()
        a, first = store.create("rank", {}, client="c1",
                                idempotency_key="k")
        b, second = store.create("rank", {}, client="c1",
                                 idempotency_key="k")
        assert first and not second
        assert b is a

    def test_idempotency_is_per_client(self):
        store = JobStore()
        a, _ = store.create("rank", {}, client="c1", idempotency_key="k")
        b, created = store.create("rank", {}, client="c2",
                                  idempotency_key="k")
        assert created and b is not a

    def test_ttl_purges_finished_jobs(self):
        clock = FakeClock()
        store = JobStore(result_ttl=60, clock=clock)
        job, _ = store.create("rank", {}, idempotency_key="k")
        job.finish(JobState.DONE, clock(), result={"ok": 1})
        clock.advance(59)
        assert store.get(job.id) is job
        clock.advance(2)
        assert store.get(job.id) is None
        # ... and the idempotency slot is free again
        fresh, created = store.create("rank", {}, idempotency_key="k")
        assert created and fresh.id != job.id

    def test_unfinished_jobs_never_purged(self):
        clock = FakeClock()
        store = JobStore(result_ttl=60, clock=clock)
        job, _ = store.create("rank", {})
        clock.advance(10_000)
        assert store.get(job.id) is job

    def test_discard_forgets_idempotency(self):
        store = JobStore()
        job, _ = store.create("rank", {}, client="c", idempotency_key="k")
        store.discard(job)
        assert store.get(job.id) is None
        again, created = store.create("rank", {}, client="c",
                                      idempotency_key="k")
        assert created

    def test_counts_by_state(self):
        clock = FakeClock()
        store = JobStore(clock=clock)
        a, _ = store.create("rank", {})
        b, _ = store.create("rank", {"vectors": 8})
        b.finish(JobState.FAILED, clock(), error="boom")
        counts = store.counts()
        assert counts["queued"] == 1 and counts["failed"] == 1

    def test_bad_priority_rejected(self):
        with pytest.raises(ServiceError):
            JobStore().create("rank", {}, priority="urgent")


class TestJobSnapshot:
    def test_result_only_when_done(self):
        clock = FakeClock()
        store = JobStore(clock=clock)
        job, _ = store.create("rank", {}, priority="high")
        doc = job.to_dict()
        assert doc["state"] == "queued" and doc["priority"] == "high"
        assert "result" not in doc and "error" not in doc

        job.state = JobState.RUNNING
        job.started = clock() + 1
        job.finish(JobState.DONE, clock() + 3, result={"x": 1})
        doc = job.to_dict()
        assert doc["result"] == {"x": 1}
        assert doc["queued_seconds"] == pytest.approx(1.0)
        assert doc["running_seconds"] == pytest.approx(2.0)
        assert job.done.is_set()

    def test_failed_snapshot_carries_error_not_result(self):
        clock = FakeClock()
        store = JobStore(clock=clock)
        job, _ = store.create("rank", {})
        job.finish(JobState.FAILED, clock(), error="exploded")
        doc = job.to_dict()
        assert doc["error"] == "exploded" and "result" not in doc
