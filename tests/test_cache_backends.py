"""Pluggable cache backends: local store, HTTP store + artifact server.

The remote path is exercised against a real in-process
:class:`~repro.cache.server.ArtifactServer`, including the failure
contract — a dead or corrupted server must only ever cost a
recomputation (miss + ``cache.remote_error``), never an exception.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.cache import (
    ArtifactCache,
    ArtifactServer,
    HttpStore,
    LocalStore,
    safe_component,
)
from repro.errors import CacheError
from repro.telemetry import Telemetry, set_telemetry


@pytest.fixture()
def tel():
    """A fresh enabled collector installed for the test's duration."""
    collector = Telemetry()
    previous = set_telemetry(collector)
    try:
        yield collector
    finally:
        set_telemetry(previous)


@pytest.fixture()
def server(tmp_path):
    with ArtifactServer(str(tmp_path / "served")) as srv:
        yield srv


def _counter(tel, name):
    return tel.counter(name).value


class TestSafeComponent:
    def test_accepts_hashes_and_kinds(self):
        assert safe_component("universe") == "universe"
        assert safe_component("a1-b2.c_3") == "a1-b2.c_3"

    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "a\\b",
                                     "k\x00ey", "sp ace"])
    def test_rejects_traversal(self, bad):
        with pytest.raises(CacheError):
            safe_component(bad)


class TestLocalStore:
    def test_roundtrip_and_entries(self, tmp_path):
        store = LocalStore(str(tmp_path))
        assert store.get("kind", "key1") is None
        store.put("kind", "key1", b"abc")
        store.put("kind", "key2", b"defgh")
        assert store.get("kind", "key1") == b"abc"
        entries = store.entries()
        assert len(entries) == 2
        assert sum(size for _p, _m, size in entries) == 8
        store.delete("kind", "key1")
        assert store.get("kind", "key1") is None
        assert len(store.entries()) == 1

    def test_evict_drops_oldest_first(self, tmp_path, tel):
        store = LocalStore(str(tmp_path))
        import os
        import time
        for i, key in enumerate(["old", "mid", "new"]):
            store.put("kind", key, b"x" * 10)
            # mtime granularity on some filesystems is coarse; force
            # a strict ordering.
            os.utime(store.path("kind", key), (time.time() + i,) * 2)
        removed = store.evict(max_bytes=20)
        assert removed == 1
        assert store.get("kind", "old") is None
        assert store.get("kind", "new") == b"x" * 10
        assert _counter(tel, "cache.evict") == 1


class TestArtifactServer:
    def test_put_get_head_delete(self, server):
        http_store = HttpStore(server.url)
        assert http_store.get("netlist", "deadbeef") is None
        http_store.put("netlist", "deadbeef", b"payload")
        assert http_store.get("netlist", "deadbeef") == b"payload"

        conn = http.client.HTTPConnection(server.host, server.port)
        conn.request("HEAD", "/v1/artifacts/netlist/deadbeef")
        assert conn.getresponse().status == 200
        conn.close()

        http_store.delete("netlist", "deadbeef")
        assert http_store.get("netlist", "deadbeef") is None

    def test_healthz_and_metrics(self, server):
        HttpStore(server.url).put("golden", "cafe", b"12345")
        conn = http.client.HTTPConnection(server.host, server.port)
        conn.request("GET", "/healthz")
        health = json.loads(conn.getresponse().read())
        assert health["status"] == "ok"
        assert health["entries"] == 1
        assert health["bytes"] == 5
        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        conn.close()
        assert metrics["artifacts.store"] == 1
        assert metrics["artifacts.bytes_in"] == 5

    def test_server_side_lru_eviction(self, tmp_path):
        with ArtifactServer(str(tmp_path), max_bytes=25) as srv:
            store = HttpStore(srv.url)
            for key in ("k1", "k2", "k3"):
                store.put("kind", key, b"y" * 10)
            entries = srv.store.entries()
            assert sum(size for _p, _m, size in entries) <= 25

    def test_unknown_route_404(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        conn.request("GET", "/v1/nope")
        assert conn.getresponse().status == 404
        conn.close()

    def test_rejects_bad_max_bytes(self, tmp_path):
        with pytest.raises(CacheError):
            ArtifactServer(str(tmp_path), max_bytes=0)


class TestHttpStoreCache:
    def test_remote_cache_roundtrip_counts(self, server, tel):
        cache = ArtifactCache(server.url)
        payload = {"design": "LP", "vectors": 64}
        assert cache.load("universe", payload) is None
        assert _counter(tel, "cache.remote_miss") == 1
        cache.store("universe", payload,
                    {"times": np.arange(8, dtype=np.int64)},
                    meta={"note": "remote"})
        out = cache.load("universe", payload)
        assert out is not None
        np.testing.assert_array_equal(out["times"], np.arange(8))
        assert out["__meta__"] == {"note": "remote"}
        assert _counter(tel, "cache.remote_hit") == 1
        assert _counter(tel, "cache.remote_store") == 1
        assert _counter(tel, "cache.remote_bytes_out") > 0
        assert _counter(tel, "cache.remote_bytes_in") > 0
        # Remote stores never evict client-side.
        assert cache.evict() == 0

    def test_url_root_selects_http_backend(self, server):
        cache = ArtifactCache(server.url)
        assert isinstance(cache.backend, HttpStore)
        assert cache.backend.remote is True
        assert cache.root == server.url
        assert cache.entry_path("kind", "abc").startswith(server.url)

    def test_dead_server_degrades_to_miss(self, tel):
        cache = ArtifactCache("http://127.0.0.1:9")  # discard port
        payload = {"x": 1}
        assert cache.load("universe", payload) is None
        # put() must swallow the failure too.
        cache.store("universe", payload, {"a": np.zeros(2)})
        assert _counter(tel, "cache.remote_error") >= 2
        assert _counter(tel, "cache.remote_miss") == 1
        assert _counter(tel, "cache.remote_bytes_out") == 0

    def test_corrupted_remote_entry_recovered(self, server, tel):
        cache = ArtifactCache(server.url)
        payload = {"design": "LP"}
        key = cache.key("universe", payload)
        HttpStore(server.url).put("universe", key, b"not an npz")
        assert cache.load("universe", payload) is None
        assert cache.stats.recovered == 1
        # The broken entry was deleted server-side.
        assert HttpStore(server.url).get("universe", key) is None

    def test_https_rejected(self):
        with pytest.raises(CacheError):
            HttpStore("https://example.invalid:1")
