"""Correlation structure of the generators — the Section 6 claims."""

import numpy as np
import pytest

from repro.analysis import (
    bit_correlation_matrix,
    successive_vector_correlation,
    word_autocorrelation,
)
from repro.errors import AnalysisError
from repro.generators import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    RampGenerator,
    Type1Lfsr,
)


class TestWordAutocorrelation:
    def test_lag_zero_is_one(self):
        auto = word_autocorrelation(Type1Lfsr(12), max_lag=4)
        assert auto[0] == pytest.approx(1.0)

    def test_type1_successive_words_negatively_correlated(self):
        """The cause of the low-frequency rolloff: the MSB (weight -1)
        of word t+1 is a fresh bit while the rest is word t shifted, so
        successive words anti-correlate."""
        auto = word_autocorrelation(Type1Lfsr(12), max_lag=1)
        assert auto[1] == pytest.approx(-0.25, abs=0.03)

    def test_decorrelator_removes_it(self):
        auto = word_autocorrelation(DecorrelatedLfsr(12), max_lag=4)
        assert np.max(np.abs(auto[1:])) < 0.05

    def test_ramp_is_strongly_correlated(self):
        auto = word_autocorrelation(RampGenerator(12), max_lag=1,
                                    n_vectors=4096)
        assert auto[1] > 0.99

    def test_constant_sequence_rejected(self):
        class Constant(RampGenerator):
            def generate(self, n):
                return np.zeros(n, dtype=np.int64)

        with pytest.raises(AnalysisError):
            word_autocorrelation(Constant(12), max_lag=2, n_vectors=64)


class TestBitCorrelations:
    def test_same_vector_bits_independent_for_lfsr1(self):
        m = bit_correlation_matrix(Type1Lfsr(12), lag=0)
        off = m - np.eye(12)
        assert np.max(np.abs(off)) < 0.1

    def test_lag1_shift_structure_of_lfsr1(self):
        """Word t+1 holds word t shifted by one place: bit i at time t
        equals bit i-1 at time t+1 (msb_to_lsb), a perfect correlation
        on the shifted diagonal."""
        m = bit_correlation_matrix(Type1Lfsr(12), lag=1)
        diag = [m[i, i - 1] for i in range(1, 12)]
        assert min(diag) > 0.999

    def test_decorrelator_flattens_lag1_structure(self):
        m = bit_correlation_matrix(DecorrelatedLfsr(12), lag=1)
        assert np.max(np.abs(m)) < 0.1

    def test_max_variance_bits_fully_correlated(self):
        """All word bits carry (essentially) the same value — the cause
        of LFSR-M's low-bit pattern blindness."""
        m = bit_correlation_matrix(MaxVarianceLfsr(12), lag=0)
        # 0x7FF vs 0x800: bits 0..10 identical, the sign bit inverted
        assert np.min(m[:11, :11]) > 0.999
        assert np.max(m[11, :11]) < -0.999

    def test_negative_lag_rejected(self):
        with pytest.raises(AnalysisError):
            bit_correlation_matrix(Type1Lfsr(12), lag=-1)


class TestSummary:
    def test_summary_orders_generators_as_the_paper_describes(self):
        w1, b1 = successive_vector_correlation(Type1Lfsr(12))
        wd, bd = successive_vector_correlation(DecorrelatedLfsr(12))
        assert abs(w1) > 10 * max(abs(wd), 1e-3)
        assert b1 > 10 * max(bd, 1e-3)
