"""Release hygiene: examples stay runnable, the module entry point works."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "generator_selection", "serious_fault_demo",
                "tap_attenuation_analysis", "custom_filter_bist",
                "export_and_verify", "service_client"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_examples_have_docstring_and_main(self, path):
        src = path.read_text()
        assert src.lstrip().startswith('"""')
        assert 'if __name__ == "__main__":' in src

    def test_quickstart_runs_end_to_end(self):
        proc = subprocess.run(
            [sys.executable, "examples/quickstart.py"],
            capture_output=True, text=True, timeout=300,
            cwd=pathlib.Path(__file__).parent.parent,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "coverage" in proc.stdout

    def test_export_example_runs_end_to_end(self):
        proc = subprocess.run(
            [sys.executable, "examples/export_and_verify.py"],
            capture_output=True, text=True, timeout=300,
            cwd=pathlib.Path(__file__).parent.parent,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "round-trip verified" in proc.stdout

    def test_service_example_runs_end_to_end(self):
        import os

        env = dict(os.environ, REPRO_FAST="1")  # small fault universes
        proc = subprocess.run(
            [sys.executable, "examples/service_client.py"],
            capture_output=True, text=True, timeout=300,
            cwd=pathlib.Path(__file__).parent.parent, env=env,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "proposed scheme" in proc.stdout
        assert "idempotent retry" in proc.stdout
        assert "0 failed" in proc.stdout


class TestModuleEntry:
    def test_python_dash_m_repro(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table", "2"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "T1a" in proc.stdout

    def test_help_lists_commands(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        for cmd in ("stats", "grade", "rank", "spectrum", "table", "figure",
                    "report", "export"):
            assert cmd in proc.stdout
