"""Report schema validators and the ``runs validate --schema`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.reports import (
    REPORT_SCHEMAS,
    ReportSchemaError,
    validate_report,
    validate_report_file,
    validate_report_files,
)


def _bench_parallel():
    side = {"seconds": 1.0, "vectors_per_sec": 100.0,
            "faults_per_sec": 50.0}
    return {"schema": "repro-bench-parallel/1", "serial": dict(side),
            "parallel": dict(side), "speedup": 1.0, "identical": True}


def _bench_gatesim():
    return {"schema": "repro-bench-gatesim/1",
            "reference": {"seconds": 2.0, "faults_per_sec": 10.0},
            "optimized": {"seconds": 1.0, "faults_per_sec": 20.0,
                          "counters": {"gates.fault_batches": 3}},
            "speedup": 2.0, "identical": True}


def _bench_gatesim_v2():
    def engine(seconds, counters=False):
        doc = {"seconds": seconds,
               "faults_per_sec": 100.0 / seconds,
               "phases": {"compile_seconds": 0.1, "golden_seconds": 0.1,
                          "grade_seconds": seconds - 0.2}}
        if counters:
            doc["counters"] = {"gates.fault_batches": 3}
        return doc

    return {"schema": "repro-bench-gatesim/2",
            "engines": {"event": engine(1.0, counters=True),
                        "word": engine(2.0),
                        "reference": engine(8.0)},
            "speedups": {"event_vs_reference": 8.0,
                         "word_vs_reference": 4.0,
                         "event_vs_word": 2.0},
            "identical": True}


def _bench_schedule():
    entry = {"work_total": 100.0, "work_to_90": {"0.5": 10}}
    return {"schema": "repro-bench-schedule/1", "identical": True,
            "rank_correlation": 0.9,
            "orderings": {"cone": dict(entry), "predicted": dict(entry),
                          "random": dict(entry)}}


def _cluster_sweep():
    return {
        "schema": "repro-cluster-sweep/1",
        "params": {"design": "LP"},
        "faults": 10, "detected": 8, "coverage": 0.8,
        "signature": "0xbeef",
        "checkpoints": [{"vectors": 64, "coverage": 0.8}],
        "shards": 2,
        "workers": [{"endpoint": "http://w:1", "shards": 2, "faults": 10,
                     "busy_seconds": 1.0, "failures": 0}],
        "shard_timings": [
            {"shard": 0, "faults": 6, "duplicate": False},
            {"shard": 1, "faults": 4, "duplicate": False},
            {"shard": 1, "faults": 4, "duplicate": True},
        ],
    }


def _loadtest():
    return {
        "schema": "repro-loadtest/1", "url": "http://s:1",
        "concurrency": 2, "duration_seconds": 5.0, "requests": 10,
        "completed": 8, "busy": 1, "errors": 1,
        "throughput_jobs_per_second": 1.6,
        "latency_seconds": {"p50": 0.1, "p90": 0.2, "p99": 0.3,
                            "mean": 0.15, "max": 0.3},
        "by_kind": {},
    }


def _fleet():
    return {
        "schema": "repro-fleet/1",
        "generated_unix": 1700000000.0,
        "beats": 12,
        "workers": [
            {"worker": "w1", "state": "live", "pid": 100,
             "last_seen_unix": 1700000000.0},
            {"worker": "w2", "state": "dead", "pid": 200,
             "last_seen_unix": 1699999990.0},
        ],
        "totals": {"workers": 2, "live": 1, "suspect": 0, "dead": 1},
    }


_VALID = {
    "repro-fleet/1": _fleet,
    "repro-bench-parallel/1": _bench_parallel,
    "repro-bench-gatesim/1": _bench_gatesim,
    "repro-bench-gatesim/2": _bench_gatesim_v2,
    "repro-bench-schedule/1": _bench_schedule,
    "repro-cluster-sweep/1": _cluster_sweep,
    "repro-loadtest/1": _loadtest,
}


class TestValidDocs:
    @pytest.mark.parametrize("schema", sorted(REPORT_SCHEMAS))
    def test_valid_doc_passes(self, schema):
        assert validate_report(_VALID[schema]()) == schema

    def test_every_schema_has_a_fixture(self):
        assert set(_VALID) == set(REPORT_SCHEMAS)


class TestRejections:
    def test_unknown_schema(self):
        with pytest.raises(ReportSchemaError, match="unknown report"):
            validate_report({"schema": "repro-nope/9"})

    def test_non_object(self):
        with pytest.raises(ReportSchemaError, match="JSON object"):
            validate_report([1, 2])

    def test_bench_parallel_not_identical(self):
        doc = _bench_parallel()
        doc["identical"] = False
        with pytest.raises(ReportSchemaError, match="bit-identical"):
            validate_report(doc)

    def test_bench_gatesim_zero_rate(self):
        doc = _bench_gatesim()
        doc["optimized"]["faults_per_sec"] = 0
        with pytest.raises(ReportSchemaError, match="positive"):
            validate_report(doc)

    def test_bench_gatesim_v2_missing_engine(self):
        doc = _bench_gatesim_v2()
        del doc["engines"]["word"]
        with pytest.raises(ReportSchemaError, match="engines"):
            validate_report(doc)

    def test_bench_gatesim_v2_not_identical(self):
        doc = _bench_gatesim_v2()
        doc["identical"] = False
        with pytest.raises(ReportSchemaError, match="identical"):
            validate_report(doc)

    def test_bench_gatesim_v2_missing_phases(self):
        doc = _bench_gatesim_v2()
        del doc["engines"]["event"]["phases"]
        with pytest.raises(ReportSchemaError, match="phases"):
            validate_report(doc)

    def test_bench_schedule_wrong_orderings(self):
        doc = _bench_schedule()
        del doc["orderings"]["random"]
        with pytest.raises(ReportSchemaError, match="orderings"):
            validate_report(doc)

    def test_cluster_sweep_fault_accounting(self):
        doc = _cluster_sweep()
        doc["shard_timings"][0]["faults"] = 99
        with pytest.raises(ReportSchemaError, match="shard timings"):
            validate_report(doc)

    def test_cluster_sweep_bad_signature(self):
        doc = _cluster_sweep()
        doc["signature"] = "beef"
        with pytest.raises(ReportSchemaError, match="0x-prefixed"):
            validate_report(doc)

    def test_loadtest_non_monotonic_percentiles(self):
        doc = _loadtest()
        doc["latency_seconds"]["p90"] = 0.05
        with pytest.raises(ReportSchemaError, match="monotonic"):
            validate_report(doc)

    def test_loadtest_bad_accounting(self):
        doc = _loadtest()
        doc["completed"] = 5
        with pytest.raises(ReportSchemaError, match="requests"):
            validate_report(doc)

    def test_fleet_unknown_state(self):
        doc = _fleet()
        doc["workers"][0]["state"] = "zombie"
        with pytest.raises(ReportSchemaError, match="unknown state"):
            validate_report(doc)

    def test_fleet_bad_accounting(self):
        doc = _fleet()
        doc["totals"]["live"] = 2
        with pytest.raises(ReportSchemaError, match="workers"):
            validate_report(doc)


class TestFiles:
    def test_validate_file_and_summary(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(_loadtest()))
        assert validate_report_file(str(path)) == "repro-loadtest/1"
        lines = validate_report_files([str(path)])
        assert lines == [f"{path}: repro-loadtest/1 ok"]

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(ReportSchemaError):
            validate_report_file(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ReportSchemaError, match="not valid JSON"):
            validate_report_file(str(bad))


class TestCli:
    def test_runs_validate_schema(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(_cluster_sweep()))
        b = tmp_path / "b.json"
        b.write_text(json.dumps(_bench_parallel()))
        rc = main(["runs", "validate", "--schema", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro-cluster-sweep/1 ok" in out
        assert "repro-bench-parallel/1 ok" in out
