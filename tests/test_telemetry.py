"""Unit tests for the telemetry layer: spans, metrics, sinks, no-op path."""

import json
import logging

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_INSTRUMENT,
    NULL_TELEMETRY,
    Histogram,
    InMemorySink,
    JsonlSink,
    LoggingSummarySink,
    Telemetry,
    format_duration,
    format_span_tree,
    get_telemetry,
    reconstruct_spans,
    set_telemetry,
    telemetry_session,
    traced,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("middle"):
                with tel.span("inner"):
                    pass
            with tel.span("sibling"):
                pass
        assert [s.name for s in tel.roots] == ["outer"]
        outer = tel.roots[0]
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]
        assert outer.duration >= outer.children[0].duration >= 0.0

    def test_parent_ids_link_the_events(self):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        with tel.span("a"):
            with tel.span("b"):
                pass
        by_name = {e["name"]: e for e in sink.span_events()}
        assert by_name["a"]["parent"] is None
        assert by_name["b"]["parent"] == by_name["a"]["id"]

    def test_exception_marks_error_and_unwinds(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("outer"):
                with tel.span("boom"):
                    raise ValueError("bad")
        assert tel.current_span is None  # stack fully unwound
        outer = tel.roots[0]
        assert outer.error and "ValueError" in outer.error
        assert outer.children[0].error == "ValueError: bad"
        # the collector stays usable
        with tel.span("after"):
            pass
        assert [s.name for s in tel.roots] == ["outer", "after"]

    def test_mid_span_attributes(self):
        tel = Telemetry()
        with tel.span("work", phase=1) as sp:
            sp.set(items=42)
        assert tel.roots[0].attrs == {"phase": 1, "items": 42}

    def test_format_tree(self):
        tel = Telemetry()
        with tel.span("root", design="LP"):
            with tel.span("child"):
                pass
        text = format_span_tree(tel.roots)
        assert "root" in text and "`- child" in text and "design=LP" in text
        assert format_span_tree([]) == "(no spans recorded)"

    def test_format_duration_units(self):
        assert format_duration(2.5) == "2.50s"
        assert format_duration(0.0123) == "12.3ms"
        assert format_duration(45e-6) == "45us"


class TestMetrics:
    def test_counter_accumulates(self):
        tel = Telemetry()
        tel.counter("n").add()
        tel.counter("n").add(4)
        assert tel.metrics()["n"].value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(TelemetryError):
            Telemetry().counter("n").add(-1)

    def test_gauge_keeps_last_value(self):
        tel = Telemetry()
        tel.gauge("rate").set(1.0)
        tel.gauge("rate").set(2.5)
        assert tel.metrics()["rate"].value == 2.5

    def test_kind_conflict_raises(self):
        tel = Telemetry()
        tel.counter("x")
        with pytest.raises(TelemetryError):
            tel.gauge("x")

    def test_histogram_bucketing(self):
        h = Histogram("lat", edges=[1.0, 10.0, 100.0])
        h.observe_many([0.5, 1.0, 5.0, 10.0, 99.9, 100.0, 1000.0])
        # buckets: <1, [1,10), [10,100), >=100
        assert list(h.counts) == [1, 2, 2, 2]
        assert h.count == 7
        assert h.min == 0.5 and h.max == 1000.0
        assert h.total == pytest.approx(1216.4)
        assert h.bucket_label(0) == "<1"
        assert h.bucket_label(3) == ">=100"

    def test_histogram_observe_many_matches_observe(self):
        a = Histogram("a", edges=[1, 2, 4])
        b = Histogram("b", edges=[1, 2, 4])
        values = [0.1, 1, 1.5, 3, 8]
        a.observe_many(np.array(values))
        for v in values:
            b.observe(v)
        assert list(a.counts) == list(b.counts)
        assert a.total == pytest.approx(b.total)

    def test_histogram_empty_observe_is_noop(self):
        h = Histogram("h")
        h.observe_many([])
        assert h.count == 0 and h.mean == 0.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(TelemetryError):
            Histogram("h", edges=[2, 1])
        with pytest.raises(TelemetryError):
            Histogram("h", edges=[])


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry_session(sinks=[JsonlSink(str(path))]) as tel:
            with tel.span("outer", design="LP"):
                with tel.span("inner"):
                    pass
            tel.counter("vectors").add(256)
            tel.histogram("lat", edges=[1, 10]).observe_many([0.5, 5])
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {e["type"] for e in events}
        assert kinds == {"span", "counter", "histogram"}
        roots = reconstruct_spans(events)
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].attrs == {"design": "LP"}
        counter = next(e for e in events if e["type"] == "counter")
        assert counter == {"type": "counter", "name": "vectors", "value": 256}
        hist = next(e for e in events if e["type"] == "histogram")
        assert hist["counts"] == [1, 1, 0] and hist["count"] == 2

    def test_in_memory_sink_splits_events(self):
        sink = InMemorySink()
        with telemetry_session(sinks=[sink]) as tel:
            with tel.span("s"):
                pass
            tel.counter("c").add(1)
        assert [e["name"] for e in sink.span_events()] == ["s"]
        assert [e["name"] for e in sink.metric_events()] == ["c"]

    def test_logging_summary_sink(self, caplog):
        sink = LoggingSummarySink()
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            with telemetry_session(sinks=[sink]) as tel:
                with tel.span("faultsim.run"):
                    pass
                tel.counter("faultsim.vectors").add(64)
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "faultsim.run" in message and "faultsim.vectors" in message
        caplog.clear()
        sink.flush()  # second flush must not duplicate
        assert not caplog.records


class TestCurrentCollector:
    def test_default_is_disabled(self):
        tel = get_telemetry()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled

    def test_null_collector_is_free_and_safe(self):
        tel = NULL_TELEMETRY
        with tel.span("anything", k=1) as sp:
            sp.set(more=2)
        assert tel.counter("c") is NULL_INSTRUMENT
        tel.counter("c").add(5)
        tel.gauge("g").set(1)
        tel.histogram("h").observe_many([1, 2])
        assert tel.metrics() == {}
        assert tel.render() == "(telemetry disabled)"
        tel.flush()
        tel.close()

    def test_set_telemetry_returns_previous(self):
        tel = Telemetry()
        previous = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            assert set_telemetry(previous) is tel
        assert get_telemetry() is previous

    def test_session_restores_on_exception(self):
        before = get_telemetry()
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError
        assert get_telemetry() is before

    def test_traced_decorator(self):
        @traced("unit.work", flavor="test")
        def work(x):
            return x + 1

        with telemetry_session() as tel:
            assert work(1) == 2
        assert [s.name for s in tel.roots] == ["unit.work"]
        assert tel.roots[0].attrs == {"flavor": "test"}

    def test_traced_is_noop_when_disabled(self):
        @traced("unit.work")
        def work():
            return "ok"

        assert work() == "ok"


class TestFreeFormEvents:
    def test_event_reaches_sinks(self):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        tel.event("request", route="/healthz", status=200)
        assert sink.events == [
            {"type": "request", "route": "/healthz", "status": 200}]

    def test_null_telemetry_event_is_noop(self):
        NULL_TELEMETRY.event("request", route="/x")  # must not raise


class TestRequestLogSink:
    def test_filters_to_request_events_and_flushes(self, tmp_path):
        from repro.telemetry import RequestLogSink

        path = tmp_path / "access.jsonl"
        sink = RequestLogSink(str(path))
        tel = Telemetry(sinks=[sink])
        with tel.span("noise"):
            pass
        tel.counter("noise").add(1)
        tel.event("request", route="/v1/jobs", method="POST", status=202,
                  latency_ms=1.5)
        tel.event("other", route="/ignored")
        # Flushed per record: readable before close (tail -f semantics).
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert lines == [{"type": "request", "route": "/v1/jobs",
                          "method": "POST", "status": 202,
                          "latency_ms": 1.5}]
        tel.flush()
        tel.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert len(lines) == 1  # span/counter snapshots never leak in

    def test_appends_across_restarts(self, tmp_path):
        from repro.telemetry import RequestLogSink

        path = tmp_path / "access.jsonl"
        for round_no in range(2):
            sink = RequestLogSink(str(path))
            tel = Telemetry(sinks=[sink])
            tel.event("request", route="/healthz", status=200,
                      round=round_no)
            tel.close()
        rounds = [json.loads(line)["round"]
                  for line in path.read_text().splitlines() if line]
        assert rounds == [0, 1]

    def test_jsonl_sink_mode_override(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"old": true}\n')
        sink = JsonlSink(str(path), mode="a")
        sink.on_event({"type": "span", "name": "s"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2 and json.loads(lines[0]) == {"old": True}
        # Default mode still truncates.
        sink = JsonlSink(str(path))
        sink.on_event({"type": "span", "name": "t"})
        sink.close()
        assert len(path.read_text().splitlines()) == 1
