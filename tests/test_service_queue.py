"""Unit tests for the fair bounded queue and the token-bucket limiter."""

import asyncio

import pytest

from repro.service import (
    FairJobQueue,
    JobStore,
    QueueClosedError,
    QueueFullError,
    RateLimitedError,
    RateLimiter,
    TokenBucket,
)
from repro.service.jobs import JobState


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_jobs(n, *, client="c", kind="rank", priority="normal"):
    store = JobStore()
    return [store.create(kind, {"vectors": 2 + i}, client=client,
                         priority=priority)[0] for i in range(n)]


def run(coro):
    return asyncio.run(coro)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire() == 0.0

    def test_rate_limiter_per_client(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("a")
        limiter.check("b")  # separate bucket
        with pytest.raises(RateLimitedError) as err:
            limiter.check("a")
        assert err.value.status == 429
        assert err.value.retry_after > 0

    def test_zero_rate_disables_limiting(self):
        limiter = RateLimiter(rate=0.0)
        assert not limiter.enabled
        for _ in range(1000):
            limiter.check("a")


class TestBackpressure:
    def test_put_beyond_depth_raises_429(self):
        async def main():
            q = FairJobQueue(depth=2)
            jobs = make_jobs(3)
            q.put_nowait(jobs[0])
            q.put_nowait(jobs[1])
            with pytest.raises(QueueFullError) as err:
                q.put_nowait(jobs[2])
            assert err.value.status == 429
            assert err.value.retry_after >= 1.0

        run(main())

    def test_retry_after_scales_with_load(self):
        async def main():
            q = FairJobQueue(depth=100)
            for _ in range(20):
                q.observe_service_seconds(2.0)
            empty_hint = q.retry_after()
            for job in make_jobs(50):
                q.put_nowait(job)
            assert q.retry_after() > empty_hint
            assert q.retry_after() <= 60.0

        run(main())

    def test_closed_queue_rejects_puts(self):
        async def main():
            q = FairJobQueue(depth=2)
            q.close()
            with pytest.raises(QueueClosedError):
                q.put_nowait(make_jobs(1)[0])

        run(main())


class TestFairScheduling:
    def test_round_robin_across_clients(self):
        async def main():
            q = FairJobQueue(depth=16)
            store = JobStore()
            for client, count in (("a", 3), ("b", 3)):
                for i in range(count):
                    job, _ = store.create("rank", {"vectors": 2 + i},
                                          client=client)
                    q.put_nowait(job)
            order = [(await q.get()).client for _ in range(6)]
            # Interleaved, not a-a-a-b-b-b: client a never gets two
            # consecutive slots while b still has queued work.
            assert order == ["a", "b", "a", "b", "a", "b"]

        run(main())

    def test_priority_drains_first(self):
        async def main():
            q = FairJobQueue(depth=16)
            store = JobStore()
            low, _ = store.create("rank", {"vectors": 2}, priority="low")
            high, _ = store.create("rank", {"vectors": 3}, priority="high")
            normal, _ = store.create("rank", {"vectors": 4})
            for job in (low, normal, high):
                q.put_nowait(job)
            got = [await q.get() for _ in range(3)]
            assert [j.id for j in got] == [high.id, normal.id, low.id]

        run(main())

    def test_get_waits_for_put(self):
        async def main():
            q = FairJobQueue(depth=4)
            job = make_jobs(1)[0]

            async def producer():
                await asyncio.sleep(0.01)
                q.put_nowait(job)

            task = asyncio.ensure_future(producer())
            got = await asyncio.wait_for(q.get(), timeout=5)
            await task
            assert got is job

        run(main())

    def test_close_wakes_idle_getter(self):
        async def main():
            q = FairJobQueue(depth=4)

            async def getter():
                with pytest.raises(QueueClosedError):
                    await q.get()

            task = asyncio.ensure_future(getter())
            await asyncio.sleep(0.01)
            q.close()
            await asyncio.wait_for(task, timeout=5)

        run(main())

    def test_close_drains_before_raising(self):
        async def main():
            q = FairJobQueue(depth=4)
            jobs = make_jobs(2)
            for job in jobs:
                q.put_nowait(job)
            q.close()
            assert (await q.get()) is jobs[0]
            assert (await q.get()) is jobs[1]
            with pytest.raises(QueueClosedError):
                await q.get()

        run(main())


class TestCancelAndBatch:
    def test_cancel_removes_from_queue(self):
        async def main():
            q = FairJobQueue(depth=8)
            jobs = make_jobs(3)
            for job in jobs:
                q.put_nowait(job)
            assert q.cancel(jobs[1])
            assert not q.cancel(jobs[1])  # already gone
            assert len(q) == 2
            got = [await q.get() for _ in range(2)]
            assert [j.id for j in got] == [jobs[0].id, jobs[2].id]

        run(main())

    def test_get_skips_externally_cancelled(self):
        async def main():
            q = FairJobQueue(depth=8)
            jobs = make_jobs(2)
            for job in jobs:
                q.put_nowait(job)
            jobs[0].state = JobState.CANCELLED
            assert (await q.get()) is jobs[1]

        run(main())

    def test_take_matching_only_same_kind(self):
        async def main():
            q = FairJobQueue(depth=16)
            store = JobStore()
            ranks = [store.create("rank", {"vectors": 2 + i})[0]
                     for i in range(3)]
            spec = store.create("spectrum", {})[0]
            for job in (ranks[0], spec, ranks[1], ranks[2]):
                q.put_nowait(job)
            leader = await q.get()
            assert leader.kind == "rank"
            batch = q.take_matching("rank", limit=10)
            assert [j.kind for j in batch] == ["rank", "rank"]
            assert (await q.get()) is spec

        run(main())

    def test_take_matching_respects_limit(self):
        async def main():
            q = FairJobQueue(depth=16)
            for job in make_jobs(5):
                q.put_nowait(job)
            await q.get()
            assert len(q.take_matching("rank", limit=2)) == 2
            assert len(q) == 2

        run(main())
