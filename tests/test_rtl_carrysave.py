"""Carry-save accumulation chain: value correctness, structure, coverage."""

import numpy as np
import pytest

from repro.errors import DesignError, SimulationError
from repro.faultsim import build_csa_universe, run_csa_fault_coverage
from repro.generators import DecorrelatedLfsr, UniformWhiteGenerator
from repro.rtl import carry_save_from_coefficients, design_from_coefficients, simulate

from helpers import SMALL_COEFSETS


def build_csa(key="plain", **kwargs):
    defaults = dict(name=f"csa-{key}", coef_frac=8, acc_frac=10, width=12,
                    max_nonzeros=4)
    defaults.update(kwargs)
    return carry_save_from_coefficients(SMALL_COEFSETS[key], **defaults)


class TestValueCorrectness:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_matches_convolution(self, key, rng):
        csa = build_csa(key)
        raw = rng.integers(-2048, 2048, size=300)
        out = csa.simulate(raw)["output"] * csa.fmt.lsb
        ref = np.convolve(raw / 2**11, csa.coefficients)[:300]
        budget = (len(csa.stages) + 2) * csa.fmt.lsb
        assert np.max(np.abs(out - ref)) <= budget

    def test_matches_ripple_realization(self, rng):
        """Same coefficients, same binary point: carry-save and ripple
        chains compute the same filter (up to identical truncation)."""
        ripple = design_from_coefficients(SMALL_COEFSETS["plain"],
                                          name="r", coef_frac=8, acc_frac=10)
        csa = build_csa("plain", acc_frac=10, width=12)
        raw = rng.integers(-2048, 2048, size=256)
        y_r = simulate(ripple.graph, raw).engineering(ripple.graph.output_id)
        y_c = csa.simulate(raw)["output"] * csa.fmt.lsb
        assert np.array_equal(
            np.asarray(y_r), np.asarray(y_c)
        ) or np.max(np.abs(y_r - y_c)) <= 2 * csa.fmt.lsb

    def test_zero_tap_still_delays(self, rng):
        csa = build_csa("with_zero")
        raw = rng.integers(-2048, 2048, size=200)
        out = csa.simulate(raw)["output"] * csa.fmt.lsb
        ref = np.convolve(raw / 2**11, csa.coefficients)[:200]
        assert np.max(np.abs(out - ref)) <= (len(csa.stages) + 2) * csa.fmt.lsb


class TestStructure:
    def test_register_pairs_equal_tap_boundaries(self):
        csa = build_csa("plain")
        assert csa.register_pairs == len(SMALL_COEFSETS["plain"]) - 1

    def test_register_bits_double_a_uniform_ripple_chain(self):
        csa = build_csa("plain")
        assert csa.register_bits == 2 * csa.fmt.width * csa.register_pairs

    def test_compressor_count_is_digit_count(self):
        csa = build_csa("plain")
        from repro.csd import quantize_filter
        import numpy as np
        coefs = np.asarray(SMALL_COEFSETS["plain"])
        coefs = coefs * (0.99 / np.sum(np.abs(coefs)))
        qs = quantize_filter(coefs, frac=8, max_nonzeros=4)
        assert csa.compressor_count == sum(q.nonzeros for q in qs)

    def test_all_zero_rejected(self):
        with pytest.raises(DesignError):
            carry_save_from_coefficients([0.0, 0.0], scale=False)

    def test_bad_input_rejected(self):
        csa = build_csa()
        with pytest.raises(SimulationError):
            csa.simulate([10**6])


class TestFaultCoverage:
    def test_universe_covers_all_cells(self):
        csa = build_csa()
        uni = build_csa_universe(csa)
        width = csa.fmt.width
        assert uni.cell_count == (csa.compressor_count + 1) * width

    def test_coverage_session_runs(self):
        csa = build_csa()
        result = run_csa_fault_coverage(csa, DecorrelatedLfsr(12), 1024)
        assert 0.5 < result.coverage() < 1.0

    def test_observer_codes_are_consistent_with_values(self, rng):
        """sum of per-cell FA outputs reconstructs the compressor output."""
        csa = build_csa("single_digit")
        raw = rng.integers(-2048, 2048, size=64)
        seen = {}
        csa.simulate(raw, observer=lambda sid, codes: seen.update({sid: codes}))
        assert set(seen) == {s.stage_id for s in csa.stages} | {csa.MERGE_ID}
        for codes in seen.values():
            assert codes.shape == (csa.fmt.width, 64)

    def test_more_vectors_never_hurt(self):
        csa = build_csa()
        gen = UniformWhiteGenerator(12)
        short = run_csa_fault_coverage(csa, gen, 128)
        long = run_csa_fault_coverage(csa, gen, 1024)
        assert long.missed() <= short.missed()
