"""Tests for fault universe assembly and structural pruning."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faultsim import build_fault_universe
from repro.gates import variant_for_bit
from repro.rtl import OpKind

from helpers import build_small_design


class TestUniverseStructure:
    def test_cells_cover_every_operator_bit(self, small_design):
        uni = build_fault_universe(small_design.graph, prune_untestable=False)
        expected = sum(n.fmt.width for n in small_design.graph.arithmetic_nodes)
        assert uni.cell_count == expected

    def test_unpruned_count_matches_variant_sums(self, small_design):
        uni = build_fault_universe(small_design.graph, prune_untestable=False)
        expected = 0
        for node in small_design.graph.arithmetic_nodes:
            for bit in range(node.fmt.width):
                v = variant_for_bit(bit, node.fmt.width,
                                    node.kind is OpKind.SUB)
                expected += v.fault_count
        assert uni.fault_count == expected
        assert uni.untestable_count == 0

    def test_cells_of_one_operator_are_contiguous(self, small_design):
        uni = build_fault_universe(small_design.graph)
        for node in small_design.graph.arithmetic_nodes:
            base = uni.cell_index[(node.nid, 0)]
            for bit in range(node.fmt.width):
                assert uni.cell_index[(node.nid, bit)] == base + bit

    def test_fault_arrays_consistent(self, small_design):
        uni = build_fault_universe(small_design.graph)
        assert len(uni.fault_cell) == uni.fault_count
        assert len(uni.fault_mask) == uni.fault_count
        for f in uni.faults[:50]:
            assert uni.fault_cell[f.index] == uni.cell_index[(f.node_id, f.bit)]
            assert uni.fault_mask[f.index] == f.effective_mask

    def test_pruning_only_removes(self, small_design):
        full = build_fault_universe(small_design.graph, prune_untestable=False)
        pruned = build_fault_universe(small_design.graph)
        assert pruned.fault_count + pruned.untestable_count == full.fault_count

    def test_effective_masks_subset_of_detect_masks(self, small_design):
        uni = build_fault_universe(small_design.graph)
        for f in uni.faults:
            assert f.effective_mask != 0
            assert f.effective_mask & ~f.cell_fault.detect_mask == 0

    def test_faults_at_lookup(self, small_design):
        uni = build_fault_universe(small_design.graph)
        node = small_design.graph.arithmetic_nodes[0]
        fs = uni.faults_at(node.nid, 1)
        assert fs and all(f.bit == 1 and f.node_id == node.nid for f in fs)

    def test_faults_at_unknown_cell(self, small_design):
        uni = build_fault_universe(small_design.graph)
        with pytest.raises(FaultModelError):
            uni.faults_at(10**6, 0)


class TestPrunedFaultsAreUndetectable:
    def test_no_input_ever_detects_a_pruned_fault(self, rng):
        """Gate-level ground truth: faults pruned as structurally
        untestable must never be detected, even by an aggressive mix of
        random, extreme and two-valued stimuli."""
        from repro.gates import elaborate, enumerate_cell_faults, \
            netlist_fault_detected, simulate_netlist
        design = build_small_design("plain")
        full = build_fault_universe(design.graph, prune_untestable=False)
        pruned = build_fault_universe(design.graph)
        kept = {(f.node_id, f.bit, f.cell_fault.name) for f in pruned.faults}
        removed = [f for f in full.faults
                   if (f.node_id, f.bit, f.cell_fault.name) not in kept]
        if not removed:
            pytest.skip("no faults pruned on this small design")
        nl = elaborate(design.graph)
        by_loc = {(f.node_id, f.bit, f.cell_fault.name): f
                  for f in enumerate_cell_faults(design.graph, nl)}
        stimulus = np.concatenate([
            rng.integers(-2048, 2048, size=512),
            np.tile([2047, -2048], 64),
            np.tile([2047, 0, -2048, 0], 32),
        ])
        golden = simulate_netlist(nl, stimulus)["output"]
        for f in removed:
            ef = by_loc[(f.node_id, f.bit, f.cell_fault.name)]
            assert not netlist_fault_detected(nl, stimulus, ef.netlist_fault,
                                              golden=golden), f.label
