"""Signature-dictionary fault diagnosis and Verilog testbench generation."""

import numpy as np
import pytest

from repro.bist import SignatureDictionary
from repro.errors import DesignError, SimulationError
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.gates import elaborate, generate_testbench
from repro.generators import DecorrelatedLfsr, Type1Lfsr, UniformWhiteGenerator
from repro.rtl import simulate

from helpers import build_small_design


@pytest.fixture(scope="module")
def dictionary():
    design = build_small_design("plain")
    uni = build_fault_universe(design.graph)
    result = run_fault_coverage(design, Type1Lfsr(12), 256, universe=uni)
    detected = [f for f in uni.faults
                if result.detect_time[f.index] < 256][:160]
    sd = SignatureDictionary(
        design,
        sessions=[(Type1Lfsr(12), 256), (DecorrelatedLfsr(12), 256)],
    )
    sd.build(detected)
    return design, detected, sd


class TestSignatureDictionary:
    def test_every_built_fault_diagnosable(self, dictionary):
        design, detected, sd = dictionary
        assert sd.size > 0.9 * len(detected)

    def test_injected_device_is_diagnosed(self, dictionary):
        design, detected, sd = dictionary
        for fault in detected[:20]:
            result = sd.diagnose_device(fault)
            labels = {f.label for f in result.candidates}
            assert fault.label in labels

    def test_two_sessions_shrink_ambiguity(self, dictionary):
        design, detected, sd = dictionary
        single = SignatureDictionary(design, sessions=[(Type1Lfsr(12), 256)])
        single.build(detected)
        hist2 = sd.ambiguity_histogram()
        hist1 = single.ambiguity_histogram()
        unique2 = hist2.get(1, 0)
        unique1 = hist1.get(1, 0)
        assert unique2 >= unique1

    def test_most_faults_uniquely_resolved(self, dictionary):
        design, detected, sd = dictionary
        hist = sd.ambiguity_histogram()
        unique = hist.get(1, 0)
        assert unique / max(1, sum(hist.values())) > 0.6

    def test_unknown_signature_gives_empty_candidates(self, dictionary):
        design, detected, sd = dictionary
        result = sd.diagnose((0xDEAD, 0xBEEF))
        assert result.candidates == [] and not result.resolved

    def test_signature_count_validated(self, dictionary):
        design, detected, sd = dictionary
        with pytest.raises(SimulationError):
            sd.diagnose((1,))

    def test_session_validation(self, dictionary):
        design, detected, sd = dictionary
        with pytest.raises(SimulationError):
            SignatureDictionary(design, sessions=[])
        with pytest.raises(SimulationError):
            SignatureDictionary(design, sessions=[(Type1Lfsr(12), 0)])


class TestTestbenchGeneration:
    def test_files_and_structure(self, small_design, rng):
        nl = elaborate(small_design.graph)
        raw = rng.integers(-2048, 2048, size=32)
        golden = simulate(small_design.graph, raw).raw(
            small_design.graph.output_id)
        files = generate_testbench(nl, raw, golden)
        assert set(files) == {"testbench", "stimulus.hex", "golden.hex"}
        tb = files["testbench"]
        assert "module tb_filter_bist_cut;" in tb
        assert '$readmemh("stimulus.hex", stimulus);' in tb
        assert "$finish" in tb

    def test_hex_images_roundtrip(self, small_design, rng):
        nl = elaborate(small_design.graph)
        raw = rng.integers(-2048, 2048, size=16)
        golden = simulate(small_design.graph, raw).raw(
            small_design.graph.output_id)
        files = generate_testbench(nl, raw, golden)
        in_w = small_design.input_fmt.width
        parsed = [int(line, 16) for line in
                  files["stimulus.hex"].strip().splitlines()]
        recovered = [(v - (1 << in_w)) if v >= (1 << (in_w - 1)) else v
                     for v in parsed]
        assert recovered == list(raw)

    def test_length_mismatch_rejected(self, small_design, rng):
        nl = elaborate(small_design.graph)
        with pytest.raises(DesignError):
            generate_testbench(nl, [1, 2, 3], [1, 2])
