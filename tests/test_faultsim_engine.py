"""The fast coverage engine: internal consistency and gate-level ground
truth cross-validation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faultsim import (
    UNSEEN,
    build_fault_universe,
    coverage_of_tracker,
    run_fault_coverage,
    track_patterns,
)
from repro.faultsim.patterns import PatternTracker
from repro.fixedpoint import cell_pattern_codes
from repro.generators import (
    MaxVarianceLfsr,
    Type1Lfsr,
    UniformWhiteGenerator,
    match_width,
)
from repro.rtl import OpKind

from helpers import build_small_design


class TestPatternTracker:
    def test_first_seen_matches_brute_force(self, small_design, rng):
        """Tracker's first-occurrence indices vs direct recomputation."""
        uni = build_fault_universe(small_design.graph)
        raw = rng.integers(-2048, 2048, size=300)
        tracker = track_patterns(small_design.graph, uni, raw)

        from repro.rtl import simulate
        captured = {}
        def hook(node, a, b):
            captured[node.nid] = (a.copy(), b.copy())
        simulate(small_design.graph, raw, adder_hook=hook)

        for node in small_design.graph.arithmetic_nodes:
            a, b = captured[node.nid]
            codes = cell_pattern_codes(
                a, b, 1 if node.kind is OpKind.SUB else 0,
                node.fmt.width, invert_b=node.kind is OpKind.SUB)
            for bit in range(node.fmt.width):
                row = uni.cell_index[(node.nid, bit)]
                for p in range(8):
                    hits = np.nonzero(codes[bit] == p)[0]
                    expect = hits[0] if len(hits) else UNSEEN
                    assert tracker.first_seen[row, p] == expect

    def test_incremental_sessions_continue_indices(self, small_design, rng):
        uni = build_fault_universe(small_design.graph)
        raw = rng.integers(-2048, 2048, size=200)
        t_whole = track_patterns(small_design.graph, uni, raw)
        t_parts = PatternTracker(uni)
        track_patterns(small_design.graph, uni, raw[:120], tracker=t_parts)
        track_patterns(small_design.graph, uni, raw[120:], tracker=t_parts)
        # Segment two replays registers from reset, so indices can only
        # be found at equal or later positions; first segment must agree.
        mask_first = t_whole.first_seen < 120
        assert np.array_equal(t_whole.first_seen[mask_first],
                              t_parts.first_seen[mask_first])

    def test_wrong_universe_rejected(self, small_design, rng):
        uni_a = build_fault_universe(small_design.graph)
        uni_b = build_fault_universe(small_design.graph)
        tracker = PatternTracker(uni_a)
        with pytest.raises(SimulationError):
            track_patterns(small_design.graph, uni_b,
                           rng.integers(-10, 10, size=4), tracker=tracker)

    def test_untested_patterns_query(self, small_design):
        uni = build_fault_universe(small_design.graph)
        tracker = PatternTracker(uni)
        node = small_design.graph.arithmetic_nodes[0]
        assert tracker.untested_patterns(node.nid, 1) == list(range(8))


class TestCoverageResult:
    def test_monotone_curve(self, small_design, rng):
        result = run_fault_coverage(small_design, UniformWhiteGenerator(12),
                                    512)
        pts, undetected = result.curve()
        assert np.all(np.diff(undetected) <= 0)
        assert undetected[-1] == result.missed()

    def test_detected_plus_missed_is_total(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 256)
        total = result.universe.fault_count
        assert result.detected() + result.missed() == total
        assert result.coverage() == pytest.approx(result.detected() / total)

    def test_at_parameter_counts_prefix(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 512)
        assert result.detected(1) <= result.detected(256) <= result.detected()

    def test_missed_faults_objects(self, small_design):
        result = run_fault_coverage(small_design, MaxVarianceLfsr(12), 64)
        missed = result.missed_faults()
        assert len(missed) == result.missed()

    def test_detect_time_definition(self, small_design):
        """A fault's detect time is the first vector whose cell pattern is
        in its (effective) detecting set."""
        result = run_fault_coverage(small_design, Type1Lfsr(12), 256)
        uni = result.universe
        gen = Type1Lfsr(12)
        raw = gen.sequence(256)
        tracker = track_patterns(small_design.graph, uni, raw)
        for f in uni.faults[::17]:
            row = uni.fault_cell[f.index]
            times = [tracker.first_seen[row, p] for p in range(8)
                     if f.effective_mask & (1 << p)]
            assert result.detect_time[f.index] == min(times)

    def test_zero_vectors_rejected(self, small_design):
        with pytest.raises(SimulationError):
            run_fault_coverage(small_design, Type1Lfsr(12), 0)

    def test_curve_agrees_with_missed_at_every_point(self, small_design):
        """The curve and missed(at=...) share one definition: a fault
        with detect time t is in after t+1 vectors.  Checking every
        prefix pins the boundary semantics exactly (no off-by-one)."""
        result = run_fault_coverage(small_design, Type1Lfsr(12), 200)
        pts = np.arange(1, 201)
        _, undetected = result.curve(points=pts)
        for p, u in zip(pts, undetected):
            assert u == result.missed(at=int(p)), p


class TestGateLevelCrossValidation:
    """The central correctness claim of the fast engine: cell-level
    detection (excitation with ideal observability) is consistent with
    exact gate-level injection."""

    @pytest.fixture(scope="class")
    def setup(self, rng=None):
        from repro.gates import elaborate, enumerate_cell_faults, \
            simulate_netlist, netlist_fault_detected
        rng = np.random.default_rng(99)
        design = build_small_design("plain")
        uni = build_fault_universe(design.graph)
        raw = rng.integers(-2048, 2048, size=192)
        result_tracker = track_patterns(design.graph, uni, raw)
        cov = coverage_of_tracker(result_tracker)
        nl = elaborate(design.graph)
        gate_faults = {(f.node_id, f.bit, f.cell_fault.name): f
                       for f in enumerate_cell_faults(design.graph, nl)}
        golden = simulate_netlist(nl, raw)["output"]
        return design, uni, raw, cov, nl, gate_faults, golden

    def test_gate_detection_implies_excitation(self, setup):
        """Anything the exact simulator detects, the fast engine must
        count as excited (excitation is necessary for detection)."""
        from repro.gates import netlist_fault_detected
        design, uni, raw, cov, nl, gate_faults, golden = setup
        undetected = {f.index for f in cov.missed_faults()}
        for f in uni.faults[::7]:
            gf = gate_faults[(f.node_id, f.bit, f.cell_fault.name)]
            gate_hit = netlist_fault_detected(nl, raw, gf.netlist_fault,
                                              golden=golden)
            if gate_hit:
                assert f.index not in undetected, f.label

    def test_excitation_mostly_propagates(self, setup):
        """The ideal-observability assumption: excited faults reach the
        output in the overwhelming majority of cases on these linear
        datapaths."""
        from repro.gates import netlist_fault_detected
        design, uni, raw, cov, nl, gate_faults, golden = setup
        sample = uni.faults[::7]
        excited = [f for f in sample
                   if cov.detect_time[f.index] != UNSEEN]
        propagated = 0
        for f in excited:
            gf = gate_faults[(f.node_id, f.bit, f.cell_fault.name)]
            if netlist_fault_detected(nl, raw, gf.netlist_fault,
                                      golden=golden):
                propagated += 1
        assert propagated / len(excited) > 0.93
