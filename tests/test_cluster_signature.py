"""MISR partial-signature algebra: shards XOR back to the real MISR."""

from __future__ import annotations

import random

import pytest

from repro.bist.misr import Misr
from repro.cluster.signature import (
    combine_partials,
    mat_mul,
    mat_vec,
    shard_signature_partial,
    step_matrix,
    stream_signature,
)
from repro.errors import GeneratorError


def _random_stream(rng: random.Random, width: int, n: int):
    return [rng.getrandbits(width + 3) for _ in range(n)]


class TestStepMatrix:
    def test_matches_one_misr_clock(self):
        width = 8
        cols = step_matrix(width)
        for state in (0, 1, 0x80, 0xA5, 0xFF):
            misr = Misr(width, seed=state)
            misr.absorb([0])  # one clock, nothing injected
            assert mat_vec(cols, state) == misr.state

    def test_mat_mul_composes(self):
        cols = step_matrix(8)
        squared = mat_mul(cols, cols)
        for v in (1, 2, 0x55, 0xC3):
            assert mat_vec(squared, v) == mat_vec(cols, mat_vec(cols, v))

    def test_width_validation(self):
        with pytest.raises(GeneratorError):
            step_matrix(1)

    def test_poly_degree_validation(self):
        with pytest.raises(GeneratorError):
            step_matrix(8, poly=0b111)  # degree 2 poly, width 8


class TestPartials:
    @pytest.mark.parametrize("width", [8, 16])
    @pytest.mark.parametrize("n", [1, 5, 37, 200])
    def test_partition_xor_equals_full_signature(self, width, n):
        rng = random.Random(width * 1000 + n)
        words = _random_stream(rng, width, n)
        expected = Misr(width, seed=0).signature(words)
        indices = list(range(n))
        rng.shuffle(indices)
        parts = 1 if n == 1 else rng.randint(2, min(5, n))
        bounds = sorted(rng.sample(range(1, n), parts - 1)) if parts > 1 \
            else []
        partials = []
        lo = 0
        for hi in bounds + [n]:
            chunk = indices[lo:hi]
            partials.append(shard_signature_partial(
                width, chunk, [words[i] for i in chunk], n))
            lo = hi
        assert combine_partials(partials) == expected

    def test_stream_signature_matches_misr(self):
        words = [3, 1, 4, 1, 5, 9, 2, 6]
        assert stream_signature(16, words) == \
            Misr(16, seed=0).signature(words)

    def test_single_full_shard_is_the_signature(self):
        words = [7, 11, 13]
        assert shard_signature_partial(16, [0, 1, 2], words, 3) == \
            stream_signature(16, words)

    def test_duplicate_partial_cancels(self):
        # XORing a duplicated shard wipes its contribution — the reason
        # the merge deduplicates by shard id instead of blindly XORing.
        partial = shard_signature_partial(16, [0], [0x123], 4)
        assert partial != 0
        assert combine_partials([partial, partial]) == 0

    def test_empty_and_zero_cases(self):
        assert combine_partials([]) == 0
        assert shard_signature_partial(16, [], [], 0) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GeneratorError):
            shard_signature_partial(16, [0, 1], [5], 4)

    def test_position_out_of_range_rejected(self):
        with pytest.raises(GeneratorError):
            shard_signature_partial(16, [4], [5], 4)
        with pytest.raises(GeneratorError):
            shard_signature_partial(16, [-1], [5], 4)

    def test_words_masked_to_width(self):
        # Detection times overflow a narrow MISR's width; the partial
        # must mask exactly like the real MISR's injection.
        wide = [0x1FFFF, 0x10000 + 42]
        assert shard_signature_partial(16, [0, 1], wide, 2) == \
            stream_signature(16, wide)
