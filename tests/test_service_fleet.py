"""Fleet health plane over real sockets: the self-observing worker,
pushed heartbeats, liveness decay and alerting, the events_dropped
counter, keepalive resolution, and request-log trace correlation."""

from __future__ import annotations

import argparse
import json
import time

import pytest

from repro.cli import _resolve_keepalive
from repro.errors import ReproError
from repro.service import ServiceConfig, ServiceThread
from repro.telemetry import RequestLogSink, Telemetry, build_heartbeat
from repro.telemetry.alerts import ALERT_RULES_SCHEMA


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met within %.1fs" % timeout)


def worker_doc(fleet_doc, worker):
    for doc in fleet_doc["workers"]:
        if doc["worker"] == worker:
            return doc
    return None


@pytest.fixture(scope="module")
def rules_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("alerts") / "rules.json"
    path.write_text(json.dumps({
        "schema": ALERT_RULES_SCHEMA,
        "rules": [{"name": "dead-workers",
                   "metric": "fleet.workers.dead",
                   "op": ">=", "threshold": 1, "severity": "page",
                   "description": "a worker stopped heartbeating"}],
    }))
    return str(path)


@pytest.fixture(scope="module")
def svc(ctx, rules_path):
    service = ServiceThread(
        ServiceConfig(port=0, no_cache=True, workers=1,
                      heartbeat_interval=0.2, events_keepalive=0.3,
                      alert_rules=rules_path, worker_id="w-self"),
        context=ctx)
    with service:
        service.client().wait_ready(60)
        yield service


@pytest.fixture(scope="module")
def client(svc):
    return svc.client("fleet-tests")


class TestFleetEndpoint:
    def test_service_observes_itself(self, client):
        # Beats predating warmup carry ready=0; wait for a ready one so
        # the assertion below sees post-warmup state annotations.
        doc = wait_for(
            lambda: (d := client.fleet())["workers"] and
            (w := worker_doc(d, "w-self")) is not None and
            w["extra"]["ready"] == 1 and d)
        assert doc["schema"] == "repro-fleet/1"
        self_doc = worker_doc(doc, "w-self")
        assert self_doc["state"] == "live"
        assert self_doc["pid"] > 0
        assert doc["totals"]["workers"] >= 1

    def test_pushed_heartbeat_joins_then_dies_and_alerts(self, client):
        # A foreign worker beats twice at a 0.2s interval, then goes
        # silent; the server's own beats keep sweeping liveness.
        tel = Telemetry()
        tel.counter("gates.evaluated").add(100)
        for seq in (1, 2):
            ack = client.heartbeat(build_heartbeat(
                tel, worker="w-ghost", seq=seq, interval=0.2,
                queue_depth=0))
            assert ack["ok"] is True and ack["worker"] == "w-ghost"
            time.sleep(0.2)
        assert worker_doc(client.fleet(), "w-ghost")["state"] == "live"
        doc = wait_for(
            lambda: (d := client.fleet()) and
            worker_doc(d, "w-ghost")["state"] == "dead" and d,
            timeout=10.0)
        # Two missed beats at 0.2s: death comes quickly, not minutes.
        assert worker_doc(doc, "w-ghost")["missed_beats"] >= 2.0
        assert doc["totals"]["dead"] >= 1
        # The rule file fires on the merged view and rides the snapshot.
        alerts = wait_for(lambda: client.fleet()["alerts"], timeout=10.0)
        assert any(a["alert"] == "dead-workers" and a["severity"] == "page"
                   for a in alerts)

    def test_fleet_and_alert_events_on_the_sse_stream(self, client):
        # Another short-lived worker produces fleet.worker transitions
        # observable on the global stream alongside heartbeats.
        seen = set()
        deadline = time.monotonic() + 10.0
        for event in client.events(timeout=5, deadline=15):
            seen.add(event["event"])
            if event["event"] == "fleet.heartbeat":
                assert "worker" in event["data"]
            if {"fleet.heartbeat", "fleet.worker"} <= seen \
                    or time.monotonic() > deadline:
                break
        assert "fleet.heartbeat" in seen

    def test_metrics_carry_fleet_and_drop_counters(self, svc, client):
        doc = wait_for(lambda: client.fleet()["workers"] and
                       client.metrics())
        # SSE overflow is a first-class counter from startup, 0 included.
        assert doc["counters"].get("service.events_dropped", 0) >= 0
        assert "service.events_dropped" in doc["counters"]
        assert doc["service"]["events"]["dropped"] >= 0
        assert "fleet" in doc["service"]
        assert doc["service"]["fleet"]["live"] >= 1
        from test_service_http import raw_request

        raw = raw_request(
            svc,
            b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
            b"Accept: text/plain\r\nConnection: close\r\n\r\n")
        text = raw.partition(b"\r\n\r\n")[2].decode("utf-8")
        assert "repro_service_events_dropped_total" in text
        assert 'repro_fleet_worker_up{worker="w-self"} 1' in text
        assert 'repro_fleet_workers{state="live"}' in text


class TestKeepalive:
    def _args(self, keepalive_secs=None, events_keepalive=None):
        return argparse.Namespace(keepalive_secs=keepalive_secs,
                                  events_keepalive=events_keepalive)

    def test_flag_beats_env_beats_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SSE_KEEPALIVE", raising=False)
        assert _resolve_keepalive(self._args()) == 15.0
        monkeypatch.setenv("REPRO_SSE_KEEPALIVE", "2.5")
        assert _resolve_keepalive(self._args()) == 2.5
        assert _resolve_keepalive(self._args(events_keepalive=9.0)) == 9.0
        assert _resolve_keepalive(
            self._args(keepalive_secs=1.0, events_keepalive=9.0)) == 1.0

    def test_rejects_non_numeric_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSE_KEEPALIVE", "soon")
        with pytest.raises(ReproError, match="REPRO_SSE_KEEPALIVE"):
            _resolve_keepalive(self._args())

    def test_client_stream_tolerates_fast_keepalives(self, client):
        # The module service ships comments every 0.3s; the parsed
        # stream must surface only real events regardless.
        events = []
        for event in client.events(timeout=5, deadline=3):
            events.append(event)
            if len(events) >= 3:
                break
        assert events, "no events decoded between keepalive comments"
        assert all(e["event"] for e in events)


class TestRequestLogCorrelation:
    def test_records_join_spans_and_jobs(self, ctx, tmp_path):
        path = str(tmp_path / "access.jsonl")
        tel = Telemetry(sinks=[RequestLogSink(path)])
        tel.sinks[0].open()
        service = ServiceThread(
            ServiceConfig(port=0, no_cache=True, workers=1,
                          heartbeat_interval=0.0),
            context=ctx, telemetry=tel)
        with service:
            c = service.client("corr-client")
            c.wait_ready(60)
            job = c.submit("spectrum", {"generator": "ramp", "width": 8,
                                        "points": 2})
            c.wait(job["id"], timeout=60)
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert records
        # Every request line carries the serving span's identity so it
        # joins against Chrome-trace exports of the same run.
        assert all(r["trace_id"] for r in records)
        assert all(r["span_id"] for r in records)
        submit = next(r for r in records if r["route"] == "/v1/jobs"
                      and r["method"] == "POST")
        assert submit["job_id"] == job["id"]
        polls = [r for r in records
                 if r["route"].startswith("/v1/jobs/")]
        assert any(r.get("job_id") == job["id"] for r in polls)
