"""Cross-process trace propagation: one span tree end to end.

Covers the propagation layer (TraceContext / child_collector / absorb),
its integration with ``parallel_map`` (pooled vs serial-fallback tree
shape parity), the gate-level pool, and the evaluation service's
request → job chain.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.parallel import parallel_map
from repro.telemetry import (
    InMemorySink,
    Telemetry,
    TraceContext,
    child_collector,
    collector_payload,
    get_telemetry,
    set_telemetry,
    telemetry_session,
    use_telemetry,
)


# ----------------------------------------------------------------------
# Worker functions (module-level so they pickle).
# ----------------------------------------------------------------------
def _traced_square(x):
    tel = get_telemetry()
    with tel.span("work.item", x=x):
        tel.counter("work.items").add(1)
        tel.histogram("work.value").observe(float(x))
    return x * x


def _traced_crash_in_child(x):
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return _traced_square(x)


def _tree_shape(span):
    """(name, sorted child shapes) — the pid- and timing-free shape."""
    return (span.name,
            tuple(sorted(_tree_shape(c) for c in span.children)))


class TestTraceContext:
    def test_none_when_disabled(self):
        assert not get_telemetry().enabled
        assert TraceContext.current() is None

    def test_carries_trace_and_span(self):
        with telemetry_session() as tel:
            top = TraceContext.current()
            assert top == TraceContext(trace_id=tel.trace_id, span_id=None)
            with tel.span("outer") as sp:
                ctx = TraceContext.current()
                assert ctx.trace_id == tel.trace_id
                assert ctx.span_id == sp.sid

    def test_picklable(self):
        import pickle

        ctx = TraceContext(trace_id="aa", span_id="bb")
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestChildCollector:
    def test_passthrough_when_no_context(self):
        with child_collector(None) as handle:
            assert not get_telemetry().enabled
        assert handle.payload is None

    def test_payload_joins_parent_trace(self):
        ctx = TraceContext(trace_id="feedface", span_id="root-1")
        with child_collector(ctx) as handle:
            child = get_telemetry()
            assert child.enabled and child.trace_id == "feedface"
            with child.span("child.work"):
                child.counter("c").add(2)
        payload = handle.payload
        assert payload["pid"] == os.getpid()
        (span_event,) = payload["spans"]
        assert span_event["name"] == "child.work"
        assert span_event["trace"] == "feedface"
        assert span_event["parent"] == "root-1"
        assert {"type": "counter", "name": "c", "value": 2} \
            in payload["metrics"]

    def test_use_telemetry_is_context_local(self):
        child = Telemetry()
        assert not get_telemetry().enabled
        with use_telemetry(child):
            assert get_telemetry() is child
        assert not get_telemetry().enabled


class TestAbsorb:
    def _child_payload(self, ctx):
        with child_collector(ctx) as handle:
            child = get_telemetry()
            with child.span("remote.op", k=1):
                child.counter("remote.count").add(3)
                child.histogram("remote.time").observe(0.25)
        return handle.payload

    def test_grafts_under_dispatching_span(self):
        tel = Telemetry()
        with use_telemetry(tel):
            with tel.span("dispatch") as sp:
                payload = self._child_payload(TraceContext.current())
                tel.absorb(payload)
            assert [c.name for c in sp.children] == ["remote.op"]
            assert tel.find_span(sp.children[0].sid) is sp.children[0]
        assert tel.counter("remote.count").value == 3
        assert tel.histogram("remote.time").count == 1

    def test_unknown_parent_becomes_root(self):
        tel = Telemetry()
        payload = self._child_payload(
            TraceContext(trace_id=tel.trace_id, span_id="no-such-span"))
        tel.absorb(payload)
        assert [r.name for r in tel.roots] == ["remote.op"]

    def test_absorb_none_is_noop(self):
        tel = Telemetry()
        tel.absorb(None)
        tel.absorb({})
        assert tel.roots == []

    def test_mismatched_histogram_dropped_not_fatal(self):
        tel = Telemetry()
        tel.histogram("h", edges=[1.0, 2.0]).observe(1.5)
        bad = Telemetry()
        with use_telemetry(bad):
            bad.histogram("h", edges=[5.0]).observe(1.0)
        tel.absorb(collector_payload(bad))
        assert tel.histogram("h").count == 1  # child snapshot dropped

    def test_collector_payload_walks_finished_spans(self):
        tel = Telemetry()
        with use_telemetry(tel):
            with tel.span("a"):
                with tel.span("b"):
                    pass
        payload = collector_payload(tel)
        assert sorted(e["name"] for e in payload["spans"]) == ["a", "b"]


class TestParallelMapPropagation:
    def test_pooled_spans_merge_under_dispatch(self):
        with telemetry_session() as tel:
            out = parallel_map(_traced_square, list(range(8)), jobs=2,
                               chunk_size=2, label="parallel.traced")
            assert out == [x * x for x in range(8)]
            (root,) = tel.roots
            assert root.name == "parallel.traced"
            items = [c for c in root.children if c.name == "work.item"]
            assert len(items) == 8
            assert {c.attrs["x"] for c in items} == set(range(8))
            # Worker spans carry worker pids and the parent's trace id.
            assert all(c.trace_id == tel.trace_id for c in items)
            assert any(c.pid != os.getpid() for c in items)
            # Metric deltas merged too.
            assert tel.counter("work.items").value == 8
            assert tel.histogram("work.value").count == 8

    def test_fallback_tree_shape_matches_pooled(self):
        items = list(range(6))
        with telemetry_session() as pooled_tel:
            pooled = parallel_map(_traced_square, items, jobs=2,
                                  chunk_size=2, label="parallel.shape")
        with telemetry_session() as fallback_tel:
            degraded = parallel_map(_traced_crash_in_child, items, jobs=2,
                                    chunk_size=2, label="parallel.shape")
        assert pooled == degraded == [x * x for x in items]
        (pooled_root,) = pooled_tel.roots
        (fallback_root,) = fallback_tel.roots
        assert _tree_shape(pooled_root) == _tree_shape(fallback_root)
        # The pooled tree crossed processes; the fallback one did not.
        assert {c.pid for c in fallback_root.children} == {os.getpid()}
        assert fallback_tel.counter("parallel.fallbacks").value == 1

    def test_serial_jobs1_shape_matches_pooled(self):
        items = list(range(4))
        with telemetry_session() as serial_tel:
            parallel_map(_traced_square, items, jobs=1,
                         label="parallel.shape")
        with telemetry_session() as pooled_tel:
            parallel_map(_traced_square, items, jobs=2, chunk_size=2,
                         label="parallel.shape")
        assert _tree_shape(serial_tel.roots[0]) == \
            _tree_shape(pooled_tel.roots[0])

    def test_disabled_telemetry_ships_no_payloads(self):
        assert not get_telemetry().enabled
        assert parallel_map(_traced_square, [1, 2, 3], jobs=2) == [1, 4, 9]


class TestGateworkPropagation:
    def test_worker_fault_batches_under_pool_span(self, small_design):
        from repro.gates.faults import enumerate_cell_faults
        from repro.gates.netlist import elaborate
        from repro.generators import Type1Lfsr
        from repro.parallel import gate_level_missed_parallel

        nl = elaborate(small_design.graph)
        faults = enumerate_cell_faults(small_design.graph, nl)
        raw = Type1Lfsr(small_design.input_fmt.width).sequence(48)
        with telemetry_session() as tel:
            gate_level_missed_parallel(nl, raw, faults, jobs=2)
            (root,) = tel.roots
            assert root.name == "gates.fault_parallel_pool"
            (pool,) = [c for c in root.children
                       if c.name == "gates.fault_pool"]
            batches = [s for s in pool.children
                       if s.name == "gates.fault_batch"]
            assert batches, "worker batch spans did not merge back"
            assert tel.counter("gates.faults_graded").value == len(faults)


class TestServicePropagation:
    def test_request_to_job_tree(self, ctx):
        from repro.service import ServiceConfig, ServiceThread

        tel = Telemetry(sinks=[InMemorySink()])
        config = ServiceConfig(port=0, no_cache=True, workers=1,
                               batch_max=1)
        with ServiceThread(config, context=ctx, telemetry=tel) as svc:
            client = svc.client("trace-test")
            client.wait_ready(60)
            result = client.run("spectrum", {"generator": "ramp",
                                             "width": 8, "points": 2})
            assert result["width"] == 8
        submit_requests = [
            r for r in tel.roots
            if r.name == "service.request" and r.attrs.get("route") ==
            "/v1/jobs" and r.attrs.get("method") == "POST"]
        assert submit_requests, [r.name for r in tel.roots]
        jobs = [c for r in submit_requests for c in r.children
                if c.name == "service.job"]
        assert jobs, "job span did not merge under its request span"
        assert jobs[0].trace_id == tel.trace_id

    def test_job_to_dict_carries_trace_id(self):
        from repro.service.jobs import JobStore

        store = JobStore()
        job, created = store.create("spectrum", {"width": 8})
        assert created
        assert "trace_id" not in job.to_dict()  # telemetry off at submit
        job.trace = TraceContext(trace_id="cafe", span_id="s-1")
        assert job.to_dict()["trace_id"] == "cafe"


class TestWorkerInheritanceHygiene:
    def test_forked_workers_do_not_write_parent_sinks(self, tmp_path):
        """Workers must not inherit the parent's JSONL sink handle."""
        import json

        from repro.telemetry import JsonlSink

        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sinks=[JsonlSink(str(path))])
        previous = set_telemetry(tel)
        try:
            parallel_map(_traced_square, list(range(6)), jobs=2,
                         chunk_size=2, label="parallel.hygiene")
        finally:
            set_telemetry(previous)
            tel.flush()
            tel.close()
        events = [json.loads(line) for line in
                  path.read_text().splitlines() if line]
        # Every event arrived exactly once, through the parent collector.
        names = [e["name"] for e in events if e["type"] == "span"]
        assert names.count("work.item") == 6
        assert names.count("parallel.hygiene") == 1
