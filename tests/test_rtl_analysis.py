"""Tests for impulse-response extraction, scaling and interval analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DesignError
from repro.rtl import (
    impulse_responses,
    simulate,
    subfilter_response,
    value_intervals,
    width_for_bound,
)
from repro.rtl.scaling import redundant_sign_bits

from helpers import SMALL_COEFSETS, build_small_design


class TestImpulseResponses:
    def test_output_response_equals_realized_coefficients(self):
        design = build_small_design("plain")
        h = subfilter_response(design.graph, design.graph.output_id)
        assert h == pytest.approx(design.coefficients)

    def test_matches_simulated_impulse(self, rng):
        """Linear model == simulation for an impulse small enough to make
        truncation exact (input scaled so every shift is exact)."""
        design = build_small_design("plain")
        responses = impulse_responses(design.graph)
        raw = np.zeros(16, dtype=np.int64)
        raw[0] = 1024
        nid = design.graph.arithmetic_nodes[-1].nid
        sim = simulate(design.graph, raw, keep_nodes=[nid]).engineering(nid)
        h = responses[nid].h
        expect = np.zeros(16)
        expect[: len(h)] = h * 0.5  # impulse amplitude 0.5
        lsb = design.graph.node(nid).fmt.lsb
        assert sim == pytest.approx(expect, abs=len(design.taps) * 4 * lsb)

    def test_l1_and_energy(self):
        design = build_small_design("plain")
        resp = impulse_responses(design.graph)[design.graph.output_id]
        assert resp.l1 == pytest.approx(np.sum(np.abs(design.coefficients)))
        assert resp.energy == pytest.approx(np.sum(design.coefficients**2))

    def test_truncation_bound_nonnegative_and_finite(self):
        design = build_small_design("plain")
        for resp in impulse_responses(design.graph).values():
            assert 0.0 <= resp.truncation_bound < 0.1


class TestWidthForBound:
    def test_exact_powers(self):
        # bound 1.0 at frac 15 needs raw 32768 -> 17 bits; just below fits 16.
        assert width_for_bound(1.0, 15) == 17
        assert width_for_bound(1.0 - 2**-15, 15) == 16

    def test_zero_bound_gets_minimum(self):
        assert width_for_bound(0.0, 15) == 2

    def test_negative_bound_rejected(self):
        with pytest.raises(DesignError):
            width_for_bound(-1.0, 4)

    @given(st.floats(1e-6, 4.0), st.integers(0, 20))
    def test_width_covers_bound(self, bound, frac):
        w = width_for_bound(bound, frac)
        assert (1 << (w - 1)) - 1 >= int(np.ceil(bound * (1 << frac) - 1e-9))


class TestScaling:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_assigned_widths_cover_worst_case_simulation(self, key, rng):
        design = build_small_design(key)
        raw = rng.integers(-2048, 2048, size=1000)
        raw[::7] = 2047
        raw[::11] = -2048
        keep = [n.nid for n in design.graph.nodes if n.fmt is not None]
        result = simulate(design.graph, raw, keep_nodes=keep)
        for nid in keep:
            node = design.graph.node(nid)
            assert node.fmt.contains(result.raw(nid)), node

    def test_statistical_mode_narrower_than_l1(self):
        d_l1 = build_small_design("plain", scaling_mode="l1")
        d_st = build_small_design("plain", scaling_mode="statistical",
                                  name="small-stat")
        w_l1 = sum(n.fmt.width for n in d_l1.graph.arithmetic_nodes)
        w_st = sum(n.fmt.width for n in d_st.graph.arithmetic_nodes)
        assert w_st <= w_l1

    def test_unknown_mode_rejected(self):
        with pytest.raises(DesignError):
            build_small_design("plain", scaling_mode="wishful")

    def test_forced_accumulator_width_creates_headroom(self):
        forced = build_small_design("plain", accumulator_width=14,
                                    acc_frac=10, name="small-forced")
        headroom = redundant_sign_bits(forced.graph)
        assert max(headroom.values()) > 0

    def test_forced_width_below_requirement_rejected(self):
        with pytest.raises(DesignError):
            build_small_design("plain", accumulator_width=3, acc_frac=10)

    def test_l1_design_has_no_redundant_sign_bits(self):
        design = build_small_design("plain")
        headroom = redundant_sign_bits(design.graph)
        assert max(headroom.values()) == 0


class TestValueIntervals:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_intervals_contain_simulated_values(self, key, rng):
        design = build_small_design(key)
        intervals = value_intervals(design.graph)
        raw = rng.integers(-2048, 2048, size=2000)
        raw[:4] = [2047, -2048, 2047, -2048]
        keep = [n.nid for n in design.graph.nodes]
        result = simulate(design.graph, raw, keep_nodes=keep)
        for nid in keep:
            lo, hi = intervals[nid]
            values = result.raw(nid)
            assert values.min() >= lo and values.max() <= hi

    def test_truncating_shift_interval_is_asymmetric(self):
        """x>>15-style terms reach -1 but not +1 (floor truncation)."""
        design = build_small_design("plain", coef_frac=12, acc_frac=12)
        intervals = value_intervals(design.graph)
        from repro.rtl import OpKind
        deep_shifts = [
            n for n in design.graph.nodes
            if n.kind is OpKind.SHIFT and n.shift >= 12
        ]
        for n in deep_shifts:
            lo, hi = intervals[n.nid]
            assert -lo > hi  # negative side strictly larger
