"""Deterministic matched-burst BIST top-off."""

import numpy as np
import pytest

from repro.bist import (
    DeterministicGenerator,
    deterministic_sequence,
    deterministic_topoff,
    matched_burst,
)
from repro.errors import DesignError
from repro.faultsim import build_fault_universe
from repro.generators import Type1Lfsr
from repro.rtl import simulate

from helpers import build_small_design


def _reachable(design, node):
    """Max normalized value full-scale input can produce at a node."""
    from repro.rtl.impulse import impulse_responses
    h = impulse_responses(design.graph)[node.nid].h
    l1 = float(np.abs(h).sum())
    return l1 * design.input_fmt.max_value / node.fmt.half_scale


class TestMatchedBurst:
    def test_burst_reaches_the_target_value(self, small_design):
        """The defining property: the burst drives the operator's value
        to the requested level, clipped at the input-reachable maximum
        (L1 scaling can leave a guard bit that no input overcomes)."""
        node = small_design.graph.arithmetic_nodes[-1]
        reachable = _reachable(small_design, node)
        for target in (0.9, 0.5, 0.3):
            burst = matched_burst(small_design, node.nid, target)
            values = simulate(small_design.graph, burst,
                              keep_nodes=[node.nid]).normalized(node.nid)
            peak = float(np.max(np.abs(values)))
            assert peak == pytest.approx(min(target, reachable), abs=0.08)

    def test_polarity(self, small_design):
        node = small_design.graph.arithmetic_nodes[-1]
        bound = 0.8 * _reachable(small_design, node)
        pos = matched_burst(small_design, node.nid, 0.9, polarity=1)
        v_pos = simulate(small_design.graph, pos,
                         keep_nodes=[node.nid]).normalized(node.nid)
        neg = matched_burst(small_design, node.nid, 0.9, polarity=-1)
        v_neg = simulate(small_design.graph, neg,
                         keep_nodes=[node.nid]).normalized(node.nid)
        assert np.max(v_pos) > bound
        assert np.min(v_neg) < -bound

    def test_amplitude_clipped_to_input_range(self, small_design):
        node = small_design.graph.arithmetic_nodes[0]
        burst = matched_burst(small_design, node.nid, 0.999)
        assert small_design.input_fmt.contains(burst)


class TestSequenceAndGenerator:
    def test_sequence_length(self, small_design):
        nodes = [n.nid for n in small_design.graph.arithmetic_nodes[:2]]
        seq = deterministic_sequence(small_design, nodes,
                                     targets=(0.9, 0.5), gap=4)
        expected = sum(
            2 * (len(matched_burst(small_design, nid, t)) + 4)
            for nid in nodes for t in (0.9, 0.5)
        )
        assert len(seq) == expected

    def test_empty_targets(self, small_design):
        assert len(deterministic_sequence(small_design, [])) == 0

    def test_generator_cycles(self, small_design):
        node = small_design.graph.arithmetic_nodes[0]
        seq = deterministic_sequence(small_design, [node.nid])
        gen = DeterministicGenerator(seq, width=12)
        a = gen.sequence(len(seq))
        b = gen.generate(len(seq))
        assert np.array_equal(a, b)
        assert np.array_equal(a, seq)

    def test_empty_sequence_rejected(self):
        with pytest.raises(DesignError):
            DeterministicGenerator(np.zeros(0, dtype=np.int64), width=12)

    def test_rom_cost_reported(self, small_design):
        node = small_design.graph.arithmetic_nodes[0]
        seq = deterministic_sequence(small_design, [node.nid])
        cost = DeterministicGenerator(seq, width=12).hardware_cost()
        assert cost["rom_words"] == len(seq)


class TestTopoff:
    def test_topoff_never_hurts_and_usually_helps(self, small_design):
        uni = build_fault_universe(small_design.graph)
        base, combined, n_det = deterministic_topoff(
            small_design, uni, Type1Lfsr(12), n_base=128)
        assert combined.missed() <= base.missed()
        assert combined.n_vectors == base.n_vectors + n_det

    def test_topoff_closes_upper_bit_misses_on_lowpass(self, ctx):
        """On the real LP design the matched bursts must close a large
        share of the pseudorandom residue."""
        design = ctx.designs["LP"]
        uni = ctx.universe("LP")
        base, combined, _ = deterministic_topoff(
            design, uni, ctx.mixed_generator(), n_base=8192)
        assert combined.missed() < 0.6 * base.missed()
