"""Cross-process merge discipline of ``Telemetry.absorb``: histogram
bucket merging around empty and partial snapshots, and the monotone
progress cursor across a worker restart."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Telemetry, collector_payload


def payload(metrics=(), progress=()):
    return {"spans": [], "metrics": list(metrics),
            "progress": list(progress), "pid": 4242}


class TestHistogramAbsorb:
    EDGES = [0.1, 1.0, 10.0]

    def _hist_event(self, values):
        child = Telemetry()
        hist = child.histogram("lat", edges=self.EDGES)
        hist.observe_many(values)
        return hist.to_event()

    def test_empty_child_histogram_is_a_noop(self):
        tel = Telemetry()
        tel.histogram("lat", edges=self.EDGES).observe(0.5)
        tel.absorb(payload(metrics=[self._hist_event([])]))
        hist = tel.metrics()["lat"]
        assert hist.count == 1
        assert hist.mean == pytest.approx(0.5)

    def test_absorb_into_empty_parent(self):
        tel = Telemetry()
        tel.absorb(payload(metrics=[self._hist_event([0.5, 5.0])]))
        hist = tel.metrics()["lat"]
        assert hist.count == 2
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(5.0)

    def test_partial_overlap_merges_bucketwise(self):
        tel = Telemetry()
        parent = tel.histogram("lat", edges=self.EDGES)
        parent.observe_many([0.05, 0.5])
        tel.absorb(payload(metrics=[self._hist_event([5.0, 50.0])]))
        hist = tel.metrics()["lat"]
        assert hist.count == 4
        assert list(hist.counts) == [1, 1, 1, 1]
        assert hist.total == pytest.approx(55.55)

    def test_mismatched_edges_dropped_not_fatal(self, caplog):
        tel = Telemetry()
        tel.histogram("lat", edges=self.EDGES).observe(0.5)
        child = Telemetry()
        alien = child.histogram("lat", edges=[7.0])
        alien.observe(1.0)
        with caplog.at_level("WARNING", logger="repro.telemetry"):
            tel.absorb(payload(metrics=[alien.to_event()]))
        # The unmergeable snapshot is dropped with a warning; the
        # parent's instrument is untouched.
        assert "unmergeable" in caplog.text
        assert tel.metrics()["lat"].count == 1

    def test_direct_merge_event_raises_on_edge_mismatch(self):
        tel = Telemetry()
        hist = tel.histogram("lat", edges=self.EDGES)
        child = Telemetry()
        alien = child.histogram("lat", edges=[7.0])
        alien.observe(1.0)
        with pytest.raises(TelemetryError, match="edges differ"):
            hist.merge_event(alien.to_event())


class TestProgressAbsorb:
    def _progress_event(self, done, total=1000.0, **fields):
        child = Telemetry()
        child.progress("gates.grade", done, total, **fields)
        return collector_payload(child)["progress"]

    def test_restarted_worker_cannot_rewind_the_cursor(self):
        tel = Telemetry()
        tel.absorb(payload(progress=self._progress_event(800)))
        assert tel.progress_streams.get("gates.grade").done == 800.0
        # The worker restarted and re-graded from zero: its next shipped
        # snapshot is behind the parent's high-water mark.
        tel.absorb(payload(progress=self._progress_event(50)))
        state = tel.progress_streams.get("gates.grade")
        assert state.done == 800.0
        # Once the rebooted worker passes the mark, the cursor moves.
        tel.absorb(payload(progress=self._progress_event(900)))
        assert tel.progress_streams.get("gates.grade").done == 900.0

    def test_annotation_fields_adopt_newest_values(self):
        tel = Telemetry()
        tel.absorb(payload(progress=self._progress_event(10,
                                                         coverage=0.1)))
        tel.absorb(payload(progress=self._progress_event(5,
                                                         coverage=0.4)))
        state = tel.progress_streams.get("gates.grade")
        assert state.done == 10.0  # max-merged
        assert state.fields["coverage"] == 0.4  # newest annotation wins

    def test_local_update_is_monotone_too(self):
        tel = Telemetry()
        tel.progress("gates.grade", 10, 100)
        state = tel.progress("gates.grade", 4)
        assert state.done == 10.0
        assert state.total == 100.0
