"""FleetView heartbeat merging: rates, liveness decay, restarts,
snapshots and the per-worker Prometheus exposition."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    FLEET_SCHEMA,
    HEARTBEAT_SCHEMA,
    FleetView,
    Telemetry,
    build_heartbeat,
)

T0 = 1_700_000_000.0


def beat(worker, seq, unix, *, pid=100, interval=1.0, counters=None,
         progress=None, **extra):
    """A hand-rolled heartbeat document (same shape build_heartbeat
    produces)."""
    doc = {
        "schema": HEARTBEAT_SCHEMA,
        "worker": worker,
        "pid": pid,
        "host": "testhost",
        "seq": seq,
        "interval": interval,
        "unix": unix,
        "metrics": [{"type": "counter", "name": n, "value": v}
                    for n, v in (counters or {}).items()],
        "progress": [dict(p, type="progress") for p in (progress or [])],
    }
    doc.update(extra)
    return doc


class TestBuildHeartbeat:
    def test_carries_collector_state(self):
        tel = Telemetry()
        tel.counter("gates.evaluated").add(7)
        tel.progress("gates.grade", 3, 10)
        doc = build_heartbeat(tel, worker="w1", seq=4, interval=2.0,
                              queue_depth=5, inflight=["j-1"],
                              engine="event")
        assert doc["schema"] == HEARTBEAT_SCHEMA
        assert doc["worker"] == "w1"
        assert doc["seq"] == 4
        assert doc["queue_depth"] == 5
        assert doc["inflight"] == ["j-1"]
        names = {e["name"] for e in doc["metrics"]}
        assert "gates.evaluated" in names
        streams = {e["name"] for e in doc["progress"]}
        assert "gates.grade" in streams

    def test_disabled_collector_yields_empty_payload(self):
        from repro.telemetry import get_telemetry

        doc = build_heartbeat(get_telemetry(), worker="w1", seq=1,
                              interval=1.0)
        assert doc["metrics"] == []
        assert doc["progress"] == []


class TestObserve:
    def test_first_beat_registers_live_worker(self):
        view = FleetView()
        events = view.observe(beat("w1", 1, T0), now=T0)
        assert [name for name, _ in events] == ["fleet.heartbeat"]
        assert view.worker_state("w1") == "live"
        assert view.workers["w1"].beats == 1

    def test_rejects_foreign_schema_and_shapeless_beats(self):
        view = FleetView()
        with pytest.raises(TelemetryError, match="schema"):
            view.observe({"schema": "repro-heartbeat/9", "worker": "w"})
        with pytest.raises(TelemetryError, match="worker"):
            view.observe({"schema": HEARTBEAT_SCHEMA})

    def test_counter_rates_from_consecutive_beats(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0, counters={"gates.evaluated": 100}),
                     now=T0)
        view.observe(beat("w1", 2, T0 + 2,
                          counters={"gates.evaluated": 300}),
                     now=T0 + 2)
        assert view.workers["w1"].rates["gates.evaluated.rate"] \
            == pytest.approx(100.0)

    def test_progress_rates_feed_faults_per_sec(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0,
                          progress=[{"name": "gates.grade", "done": 0,
                                     "total": 1000}]), now=T0)
        view.observe(beat("w1", 2, T0 + 2,
                          progress=[{"name": "gates.grade", "done": 500,
                                     "total": 1000}]), now=T0 + 2)
        health = view.workers["w1"]
        assert health.rates["gates.grade"] == pytest.approx(250.0)
        assert health.faults_per_sec == pytest.approx(250.0)

    def test_future_clock_is_clamped_for_liveness(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0 + 3600), now=T0)
        assert view.workers["w1"].last_seen == T0


class TestRestart:
    def test_pid_change_resets_rate_baseline_not_progress(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0, pid=100,
                          counters={"gates.evaluated": 900},
                          progress=[{"name": "gates.grade", "done": 800,
                                     "total": 1000}]), now=T0)
        view.observe(beat("w1", 2, T0 + 1, pid=100,
                          counters={"gates.evaluated": 950},
                          progress=[{"name": "gates.grade", "done": 900,
                                     "total": 1000}]), now=T0 + 1)
        # Restart: new pid, counters back near zero.
        view.observe(beat("w1", 1, T0 + 2, pid=200,
                          counters={"gates.evaluated": 10},
                          progress=[{"name": "gates.grade", "done": 50,
                                     "total": 1000}]), now=T0 + 2)
        health = view.workers["w1"]
        assert health.restarts == 1
        # The cursor never rewinds below the pre-restart high-water mark.
        assert health.progress["gates.grade"]["done"] == 900.0
        # The rebooted counter snapshot replaced the old one wholesale.
        assert health.metrics["gates.evaluated"]["value"] == 10
        # And no negative rate leaked out of the restart.
        assert all(rate >= 0.0 for rate in health.rates.values())

    def test_seq_regression_counts_as_restart(self):
        view = FleetView()
        view.observe(beat("w1", 7, T0), now=T0)
        view.observe(beat("w1", 1, T0 + 1), now=T0 + 1)
        assert view.workers["w1"].restarts == 1


class TestLiveness:
    def test_decay_ladder_and_recovery(self):
        view = FleetView(suspect_misses=1.5, dead_misses=2.0)
        view.observe(beat("w1", 1, T0, interval=1.0), now=T0)
        assert view.sweep(now=T0 + 1.4) == []
        events = view.sweep(now=T0 + 1.7)
        assert events[0][1]["state"] == "suspect"
        events = view.sweep(now=T0 + 2.5)
        assert events[0][1]["state"] == "dead"
        # Transitions only decay forward: a later sweep at a smaller
        # missed count must not resurrect the worker by itself.
        assert view.sweep(now=T0 + 2.5) == []
        # A fresh heartbeat does.
        events = view.observe(beat("w1", 2, T0 + 10), now=T0 + 10)
        transitions = [d for name, d in events if name == "fleet.worker"]
        assert transitions[0]["previous"] == "dead"
        assert view.worker_state("w1") == "live"

    def test_counts(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0, interval=1.0), now=T0)
        view.observe(beat("w2", 1, T0 + 9, interval=1.0), now=T0 + 9)
        view.sweep(now=T0 + 9.1)
        assert view.counts() == {"live": 1, "suspect": 0, "dead": 1}


class TestAggregation:
    def _two_worker_view(self):
        view = FleetView()
        for seq, unix in ((1, T0), (2, T0 + 1)):
            view.observe(beat("w1", seq, unix,
                              counters={"gates.evaluated": 100 * seq}),
                         now=unix)
            view.observe(beat("w2", seq, unix,
                              counters={"gates.evaluated": 200 * seq}),
                         now=unix)
        return view

    def test_merged_values_sum_counters_and_rates(self):
        values = self._two_worker_view().merged_values()
        assert values["gates.evaluated"] == pytest.approx(600.0)
        assert values["gates.evaluated.rate"] == pytest.approx(300.0)
        assert values["fleet.workers"] == 2.0
        assert values["fleet.workers.live"] == 2.0

    def test_merged_histograms_and_edge_mismatch_skip(self):
        view = FleetView()
        hist_a = {"type": "histogram", "name": "lat", "edges": [1.0, 2.0],
                  "counts": [1, 1, 0], "count": 2, "sum": 2.0,
                  "min": 0.5, "max": 1.5}
        hist_b = dict(hist_a, counts=[0, 0, 2], sum=6.0, min=3.0, max=3.0)
        hist_alien = dict(hist_a, edges=[5.0, 9.0])
        view.observe(dict(beat("w1", 1, T0), metrics=[hist_a]), now=T0)
        view.observe(dict(beat("w2", 1, T0), metrics=[hist_b]), now=T0)
        view.observe(dict(beat("w3", 1, T0), metrics=[hist_alien]),
                     now=T0)
        values = view.merged_values()
        # w3's incompatible edges are skipped, not fatal; w1+w2 merge.
        assert values["lat.count"] == 4.0
        assert values["lat.mean"] == pytest.approx(2.0)
        assert "lat.p99" in values

    def test_dead_workers_excluded_from_throughput_totals(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0, interval=1.0, queue_depth=4),
                     now=T0)
        view.observe(beat("w2", 1, T0 + 9, interval=1.0, queue_depth=2),
                     now=T0 + 9)
        view.sweep(now=T0 + 9.1)
        values = view.merged_values()
        assert values["fleet.workers.dead"] == 1.0
        assert values["fleet.queue_depth"] == 2.0


class TestSnapshot:
    def test_snapshot_is_schema_valid(self):
        from repro.reports import validate_report

        view = FleetView()
        view.observe(beat("w1", 1, T0, queue_depth=1), now=T0)
        view.observe(beat("w2", 1, T0, inflight=["j-1", "j-2"]), now=T0)
        doc = view.snapshot(now=T0 + 0.5)
        assert doc["schema"] == FLEET_SCHEMA
        assert validate_report(doc) == FLEET_SCHEMA
        assert [w["worker"] for w in doc["workers"]] == ["w1", "w2"]
        assert doc["totals"]["inflight"] == 2


class TestPrometheus:
    def test_per_worker_labels(self):
        view = FleetView()
        view.observe(beat("w1", 1, T0, queue_depth=3,
                          counters={"gates.evaluated": 10}), now=T0)
        text = view.prometheus(now=T0 + 0.5)
        assert 'repro_fleet_workers{state="live"} 1' in text
        assert 'repro_fleet_worker_up{worker="w1"} 1' in text
        assert 'repro_fleet_worker_queue_depth{worker="w1"} 3' in text
        assert 'repro_gates_evaluated_total{worker="w1"} 10' in text

    def test_label_escaping(self):
        view = FleetView()
        view.observe(beat('w"x\\y', 1, T0), now=T0)
        text = view.prometheus(now=T0)
        assert 'worker="w\\"x\\\\y"' in text
