"""Verify Table 2 and the Figure 1 test zones against bit-level truth.

These tests exhaustively enumerate operand pairs of a real ripple-carry
adder and check that the behavioural conditions of Table 2 coincide with
the actual (a, b, c) pattern at the next-to-MSB cell.
"""

import numpy as np
import pytest

from repro.analysis import (
    DIFFICULT_TESTS,
    classes_for_code,
    difficult_test_table,
    zone_probabilities,
)
from repro.analysis.testzones import test_zones as zones_for_beta
from repro.analysis.distribution import AmplitudeDistribution
from repro.analysis.testzones import next_to_msb_code
from repro.errors import AnalysisError
from repro.fixedpoint import wrap

WIDTH = 8
HALF = 1 << (WIDTH - 1)


def _norm(raw):
    return raw / HALF


def _condition_holds(cls, a_raw, b_raw):
    """Evaluate one Table 2 class on normalized operands.

    The table's output conditions are on the adder's wrapped output; the
    (ovf) marker distinguishes classes that additionally require the true
    sum to overflow the representable range.
    """
    a = _norm(a_raw)
    true_sum = _norm(a_raw + b_raw)
    overflowed = not (-1.0 <= true_sum < 1.0)
    if overflowed != cls.overflow:
        return False
    out = _norm(wrap(a_raw + b_raw, WIDTH))  # wrapped adder output
    lo, hi = cls.input_range
    if not (lo <= a < hi):
        return False
    cond = cls.output_condition
    if cond.startswith("A+B >= "):
        return out >= float(cond.split(">= ")[1].split(" ")[0])
    if cond.startswith("A+B < "):
        return out < float(cond.split("< ")[1].split(" ")[0])
    raise AssertionError(cond)


class TestTable2:
    def test_eight_classes_over_four_tests(self):
        table = difficult_test_table()
        assert len(table) == 8
        assert sorted({c.test for c in table}) == list(DIFFICULT_TESTS)

    def test_conditions_match_cell_patterns_exhaustively(self):
        """For every (A, B) pair with B constrained to |B| < 0.5 (the
        variance-mismatch setting), the next-to-MSB cell receives code n
        iff exactly one Tn class condition holds."""
        b_values = np.arange(-HALF // 2 + 1, HALF // 2 - 1, 3)
        a_values = np.arange(-HALF, HALF, 1)
        for b_raw in b_values[::9]:
            codes = next_to_msb_code(a_values, np.full_like(a_values, b_raw),
                                     WIDTH)
            for a_raw, code in zip(a_values[::7], codes[::7]):
                if int(code) not in DIFFICULT_TESTS:
                    continue
                matches = [c for c in classes_for_code(int(code))
                           if _condition_holds(c, int(a_raw), int(b_raw))]
                assert len(matches) == 1, (a_raw, b_raw, code)

    def test_conditions_imply_pattern(self):
        """Conversely: when a class condition holds, the cell sees that
        class's test number."""
        rng = np.random.default_rng(3)
        a_values = rng.integers(-HALF, HALF, size=3000)
        b_values = rng.integers(-HALF // 4, HALF // 4, size=3000)
        codes = next_to_msb_code(a_values, b_values, WIDTH)
        for cls in difficult_test_table():
            held = np.array([
                _condition_holds(cls, int(a), int(b))
                for a, b in zip(a_values, b_values)
            ])
            if not held.any():
                continue
            assert np.all(codes[held] == cls.test), cls.label

    def test_overflow_classes_marked(self):
        ovf = [c.label for c in difficult_test_table() if c.overflow]
        assert ovf == ["T2b", "T5b"]


class TestZones:
    def test_zone_layout(self):
        zones = zones_for_beta(0.1)
        assert zones["T1a"] == (pytest.approx(0.4), 0.5)
        assert zones["T5b"] == (pytest.approx(0.9), 1.0)
        assert zones["T2b"][0] == -1.0

    def test_zone_width_proportional_to_beta(self):
        narrow = zones_for_beta(0.05)
        wide = zones_for_beta(0.2)
        for label in narrow:
            n = narrow[label][1] - narrow[label][0]
            w = wide[label][1] - wide[label][0]
            assert w == pytest.approx(4 * n)

    def test_invalid_beta(self):
        with pytest.raises(AnalysisError):
            zones_for_beta(0.0)
        with pytest.raises(AnalysisError):
            zones_for_beta(0.9)

    def test_zones_are_where_patterns_happen(self):
        """Empirically: T1 at the next-to-MSB only fires when the primary
        input is inside the T1a/T1b zones (plus B-grid slack)."""
        rng = np.random.default_rng(11)
        beta = 0.25
        b_half = int(HALF * beta)
        a_values = rng.integers(-HALF, HALF, size=20000)
        b_values = rng.integers(-b_half, b_half, size=20000)
        codes = next_to_msb_code(a_values, b_values, WIDTH)
        t1 = codes == 1
        zones = zones_for_beta(beta)
        in_zone = np.zeros(len(a_values), dtype=bool)
        for label in ("T1a", "T1b"):
            lo, hi = zones[label]
            in_zone |= (a_values >= lo * HALF) & (a_values < hi * HALF)
        assert np.all(in_zone[t1])

    def test_zone_probabilities_from_distribution(self):
        grid = np.linspace(-1.2, 1.2, 1201)
        pdf = np.where(np.abs(grid) < 0.2, 2.5, 0.0)  # uniform on [-0.2,0.2)
        dist = AmplitudeDistribution(grid=grid, pdf=pdf)
        probs = zone_probabilities(dist, beta=0.1)
        # An attenuated signal never reaches the T1/T6 zones near ±0.5 ...
        assert probs["T1a"] == pytest.approx(0.0, abs=1e-6)
        assert probs["T6b"] == pytest.approx(0.0, abs=1e-6)
        # ... but hits the T2a/T5a zones around 0 easily.
        assert probs["T2a"] > 0.1
        assert probs["T5a"] > 0.1
