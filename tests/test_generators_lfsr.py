"""Tests for LFSR cores and polynomials."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeneratorError
from repro.generators import (
    FibonacciLfsr,
    GaloisLfsr,
    PAPER_TYPE2_POLY_12,
    PRIMITIVE_POLYS,
    default_poly,
    degree,
    is_maximal_length,
    reciprocal,
)


class TestPolynomials:
    @pytest.mark.parametrize("width", [2, 4, 7, 8, 12, 15, 16])
    def test_table_entries_are_primitive(self, width):
        assert is_maximal_length(PRIMITIVE_POLYS[width])

    def test_paper_type2_polynomial_is_maximal(self):
        assert is_maximal_length(PAPER_TYPE2_POLY_12)
        assert degree(PAPER_TYPE2_POLY_12) == 12

    def test_reciprocal_involution(self):
        p = PRIMITIVE_POLYS[12]
        assert reciprocal(reciprocal(p)) == p

    def test_reciprocal_preserves_primitivity(self):
        assert is_maximal_length(reciprocal(PRIMITIVE_POLYS[12]))

    def test_non_primitive_detected(self):
        # x^4 + 1 factors; period far below 15.
        assert not is_maximal_length(0x11)

    def test_missing_width_raises(self):
        with pytest.raises(GeneratorError):
            default_poly(99)

    def test_degree_invalid(self):
        with pytest.raises(GeneratorError):
            degree(0)


@pytest.mark.parametrize("cls", [FibonacciLfsr, GaloisLfsr])
class TestLfsrCore:
    def test_maximal_word_period(self, cls):
        g = cls(8)
        period = (1 << 8) - 1
        first = g.sequence(period)
        second = g.generate(period)
        assert np.array_equal(first, second)
        # no shorter period
        assert len(np.unique(first)) == period

    def test_words_cover_all_nonzero_states(self, cls):
        g = cls(6)
        words = g.sequence((1 << 6) - 1)
        # every value except one appears exactly once over a period
        assert len(set(words.tolist())) == 63

    def test_zero_seed_rejected(self, cls):
        with pytest.raises(GeneratorError):
            cls(8, seed=0)

    def test_wrong_degree_rejected(self, cls):
        with pytest.raises(GeneratorError):
            cls(8, poly=PRIMITIVE_POLYS[12])

    def test_bad_direction_rejected(self, cls):
        with pytest.raises(GeneratorError):
            cls(8, direction="sideways")

    def test_generate_is_continuous(self, cls):
        g = cls(10)
        whole = g.sequence(200)
        g.reset()
        parts = np.concatenate([g.generate(70), g.generate(130)])
        assert np.array_equal(whole, parts)

    def test_variance_one_third(self, cls):
        g = cls(12)
        x = g.sequence(4095) / 2**11
        assert x.var() == pytest.approx(1.0 / 3.0, rel=0.01)
        assert abs(x.mean()) < 0.01


class TestFibonacciSpecifics:
    def test_word_is_sliding_window_of_bitstream(self):
        g = FibonacciLfsr(8, direction="msb_to_lsb")
        words = g.sequence(50)
        # MSB-to-LSB shifting: contents move down one place per clock, so
        # word t's low 7 bits equal word t-1's high 7 bits.
        for t in range(1, 50):
            prev = int(words[t - 1]) & 0xFF
            cur = int(words[t]) & 0xFF
            assert (cur & 0x7F) == (prev >> 1)

    def test_lsb_to_msb_reverses_window(self):
        g1 = FibonacciLfsr(8, direction="lsb_to_msb")
        words = g1.sequence(50)
        for t in range(1, 50):
            prev = int(words[t - 1]) & 0xFF
            cur = int(words[t]) & 0xFF
            assert (cur >> 1) == (prev & 0x7F)

    def test_figure5_standard_deviation(self):
        """Paper Figure 5: the 12-bit maximal sequence has sigma 0.577."""
        g = FibonacciLfsr(12, direction="lsb_to_msb")
        x = g.sequence(4095) / 2**11
        assert x.std() == pytest.approx(0.577, abs=0.01)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, (1 << 12) - 1))
    def test_any_seed_gives_same_period_orbit(self, seed):
        g = FibonacciLfsr(12, seed=seed)
        w = g.sequence(10)
        assert len(w) == 10
