"""HTTP-level tests for the evaluation service (real sockets, one
in-process server shared by the module)."""

import json
import socket

import pytest

from repro.service import ServiceConfig, ServiceThread
from repro.service.client import ServiceClientError
from repro.telemetry import RequestLogSink, Telemetry


@pytest.fixture(scope="module")
def svc(ctx):
    service = ServiceThread(
        ServiceConfig(port=0, no_cache=True, workers=2, queue_depth=32),
        context=ctx)
    with service:
        service.client().wait_ready(60)
        yield service


@pytest.fixture(scope="module")
def client(svc):
    return svc.client("http-tests")


def raw_request(svc, data: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", svc.port), timeout=30) as s:
        s.sendall(data)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestHealthAndMetrics:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok" and doc["uptime_seconds"] >= 0

    def test_readyz(self, client):
        assert client.readyz()["status"] == "ready"

    def test_metrics_shape(self, client):
        client.run("spectrum", {"generator": "ramp", "width": 8,
                                "points": 2})
        doc = client.metrics()
        svc_doc = doc["service"]
        assert svc_doc["ready"] is True and svc_doc["draining"] is False
        assert svc_doc["queue_capacity"] == 32
        assert svc_doc["jobs_done"] >= 1
        assert "service.requests" in doc["counters"]
        assert "service.request_seconds" in doc["histograms"]

    def test_metrics_json_histograms_carry_buckets(self, client):
        client.run("spectrum", {"generator": "ramp", "width": 8,
                                "points": 2})
        hist = client.metrics()["histograms"]["service.request_seconds"]
        assert hist["count"] >= 1
        assert len(hist["counts"]) == len(hist["edges"]) + 1
        assert {"p50", "p90", "p99"} <= set(hist)

    def test_metrics_prometheus_negotiated(self, client, svc):
        client.run("spectrum", {"generator": "ramp", "width": 8,
                                "points": 2})
        raw = raw_request(
            svc,
            b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
            b"Accept: text/plain\r\nConnection: close\r\n\r\n")
        head, _, body = raw.partition(b"\r\n\r\n")
        header_text = head.decode("ascii")
        assert header_text.startswith("HTTP/1.1 200")
        assert "text/plain; version=0.0.4; charset=utf-8" in header_text
        text = body.decode("utf-8")
        assert "# TYPE repro_service_requests_total counter" in text
        assert "# TYPE repro_service_request_seconds histogram" in text
        assert 'repro_service_request_seconds_bucket{le="+Inf"}' in text
        assert "repro_service_ready 1" in text
        # No Accept header (the stdlib client) keeps the JSON document.
        raw = raw_request(
            svc,
            b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
            b"Connection: close\r\n\r\n")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"application/json" in head
        assert "service" in json.loads(body.decode("utf-8"))


class TestJobEndpoints:
    def test_submit_poll_result_roundtrip(self, client):
        job = client.submit("spectrum", {"generator": "lfsr1", "width": 8,
                                         "points": 4})
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"]["generator"] == "LFSR-1/8"
        again = client.result(job["id"])
        assert again["result"] == done["result"]

    def test_long_poll_returns_finished_job(self, client):
        job = client.submit("rank", {"design": "LP", "vectors": 128})
        doc = client.job(job["id"], wait=30)
        # A single long-poll is enough for a small job.
        assert doc["state"] == "done"
        assert doc["result"]["proposed_scheme"]

    def test_idempotency_key_replays_job(self, client):
        params = {"generator": "ramp", "width": 8, "points": 2}
        a = client.submit("spectrum", params, idempotency_key="idem-1")
        b = client.submit("spectrum", params, idempotency_key="idem-1")
        assert a["id"] == b["id"]

    def test_cancel_finished_job_is_ok(self, client):
        job = client.submit("spectrum", {"generator": "ramp", "width": 8,
                                         "points": 2})
        client.wait(job["id"], timeout=60)
        doc = client.cancel(job["id"])
        assert doc["state"] == "done"  # finishing won the race; no 409

    def test_result_before_finish_is_409(self, client):
        # serious-fault is the slowest kind; immediately asking for the
        # result races ahead of the worker with near-certainty, but
        # tolerate a DONE if the machine is absurdly fast.
        job = client.submit("rank", {"design": "HP", "vectors": 256})
        try:
            doc = client.result(job["id"])
            assert "result" in doc
        except ServiceClientError as err:
            assert err.status == 409
        client.wait(job["id"], timeout=60)


class TestErrorPaths:
    def test_unknown_job_404(self, client):
        for call in (client.job, client.result, client.cancel):
            with pytest.raises(ServiceClientError) as err:
                call("j-nope-000000")
            assert err.value.status == 404

    def test_unknown_kind_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit("train-model", {})
        assert err.value.status == 400
        assert "rank" in str(err.value)

    def test_unknown_generator_400_lists_choices(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit("spectrum", {"generator": "perlin"})
        assert err.value.status == 400
        assert "lfsr1" in str(err.value)

    def test_out_of_range_vectors_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit("rank", {"vectors": 1 << 30})
        assert err.value.status == 400

    def test_unknown_priority_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit("rank", {}, priority="asap")
        assert err.value.status == 400

    def test_method_not_allowed(self, svc):
        resp = raw_request(
            svc, b"PUT /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
        assert resp.startswith(b"HTTP/1.1 405")

    def test_unknown_route_404(self, svc):
        resp = raw_request(svc, b"GET /v2/nope HTTP/1.1\r\nHost: x\r\n\r\n")
        assert resp.startswith(b"HTTP/1.1 404")

    def test_malformed_request_line_400(self, svc):
        resp = raw_request(svc, b"NONSENSE\r\n\r\n")
        assert resp.startswith(b"HTTP/1.1 400")

    def test_invalid_json_400(self, svc):
        body = b"{not json"
        req = (b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
               b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert raw_request(svc, req).startswith(b"HTTP/1.1 400")

    def test_non_object_json_400(self, svc):
        body = b"[1, 2]"
        req = (b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
               b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert raw_request(svc, req).startswith(b"HTTP/1.1 400")

    def test_oversized_body_413(self, svc):
        req = (b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
               b"Content-Length: 9999999\r\n\r\n")
        assert raw_request(svc, req).startswith(b"HTTP/1.1 413")

    def test_bad_wait_param_400(self, svc, client):
        job = client.submit("spectrum", {"generator": "ramp", "width": 8,
                                         "points": 2})
        req = (f"GET /v1/jobs/{job['id']}?wait=soon HTTP/1.1\r\n"
               f"Host: x\r\n\r\n").encode()
        assert raw_request(svc, req).startswith(b"HTTP/1.1 400")
        client.wait(job["id"], timeout=60)


class TestAccessLog:
    def test_requests_logged_as_jsonl(self, ctx, tmp_path):
        path = str(tmp_path / "access.jsonl")
        tel = Telemetry(sinks=[RequestLogSink(path)])
        tel.sinks[0].open()
        service = ServiceThread(
            ServiceConfig(port=0, no_cache=True, workers=1),
            context=ctx, telemetry=tel)
        with service:
            c = service.client("logged-client")
            c.wait_ready(60)
            c.run("spectrum", {"generator": "ramp", "width": 8,
                               "points": 2})
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert records, "no access log records written"
        routes = {r["route"] for r in records}
        assert "/v1/jobs" in routes
        submit = next(r for r in records if r["route"] == "/v1/jobs")
        assert submit["type"] == "request"
        assert submit["method"] == "POST"
        assert submit["status"] == 202
        assert submit["cache"] == "miss"
        assert submit["latency_ms"] >= 0
        assert submit["client"] == "logged-client"
        # Only request events land in the access log, never spans.
        assert all(r["type"] == "request" for r in records)
