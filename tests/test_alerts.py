"""Alert rules: parsing, the stateful engine's fire/resolve machine,
and the stateless CI gate."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.alerts import (
    ALERT_RULES_SCHEMA,
    AlertEngine,
    AlertError,
    AlertRule,
    check_rules,
    load_rules,
    parse_rules,
)


def rules_doc(*rules):
    return {"schema": ALERT_RULES_SCHEMA, "rules": list(rules)}


DEAD_RULE = {"name": "dead-workers", "metric": "fleet.workers.dead",
             "op": ">=", "threshold": 1, "severity": "page",
             "description": "a worker stopped heartbeating"}


class TestParse:
    def test_round_trip(self):
        rules = parse_rules(rules_doc(DEAD_RULE))
        assert rules == [AlertRule(
            name="dead-workers", metric="fleet.workers.dead", op=">=",
            threshold=1.0, severity="page",
            description="a worker stopped heartbeating")]
        assert rules[0].describe() == "fleet.workers.dead >= 1"
        assert rules[0].to_doc()["missing"] == "skip"

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.update(schema="repro-alert-rules/9"), "schema"),
        (lambda d: d.update(rules=[]), "non-empty"),
        (lambda d: d["rules"][0].pop("threshold"), "threshold"),
        (lambda d: d["rules"][0].update(op="=="), "unknown op"),
        (lambda d: d["rules"][0].update(threshold="lots"), "number"),
        (lambda d: d["rules"][0].update(for_beats=0), "for_beats"),
        (lambda d: d["rules"][0].update(severity="meh"), "severity"),
        (lambda d: d["rules"][0].update(missing="explode"), "missing"),
        (lambda d: d["rules"].append(dict(DEAD_RULE)), "duplicate"),
    ])
    def test_rejections(self, mutate, match):
        doc = rules_doc(dict(DEAD_RULE))
        mutate(doc)
        with pytest.raises(AlertError, match=match):
            parse_rules(doc)

    def test_load_rules_prefixes_path(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(rules_doc(DEAD_RULE)))
        assert len(load_rules(str(path))) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(AlertError, match="bad.json"):
            load_rules(str(bad))
        with pytest.raises(AlertError, match="absent.json"):
            load_rules(str(tmp_path / "absent.json"))


class TestEngine:
    def test_fires_and_resolves(self):
        engine = AlertEngine(parse_rules(rules_doc(DEAD_RULE)))
        assert engine.evaluate({"fleet.workers.dead": 0}, now=1.0) == []
        events = engine.evaluate({"fleet.workers.dead": 1}, now=2.0)
        assert [n for n, _ in events] == ["alert.fired"]
        doc = events[0][1]
        assert doc["alert"] == "dead-workers"
        assert doc["severity"] == "page"
        assert doc["value"] == 1
        assert engine.active()[0]["alert"] == "dead-workers"
        # Still breached: no duplicate fire.
        assert engine.evaluate({"fleet.workers.dead": 2}, now=3.0) == []
        events = engine.evaluate({"fleet.workers.dead": 0}, now=5.0)
        assert [n for n, _ in events] == ["alert.resolved"]
        assert events[0][1]["fired_seconds"] == pytest.approx(3.0)
        assert engine.active() == []

    def test_for_beats_debounces(self):
        rule = dict(DEAD_RULE, name="slow", metric="p99", op=">",
                    threshold=1.0, for_beats=3)
        engine = AlertEngine(parse_rules(rules_doc(rule)))
        assert engine.evaluate({"p99": 2.0}) == []
        assert engine.evaluate({"p99": 2.0}) == []
        # A clean beat resets the consecutive-breach counter.
        assert engine.evaluate({"p99": 0.5}) == []
        assert engine.evaluate({"p99": 2.0}) == []
        assert engine.evaluate({"p99": 2.0}) == []
        events = engine.evaluate({"p99": 2.0})
        assert [n for n, _ in events] == ["alert.fired"]

    def test_missing_metric_policies(self):
        skip = dict(DEAD_RULE, name="skipper", metric="absent")
        fire = dict(DEAD_RULE, name="firer", metric="absent",
                    missing="fire")
        engine = AlertEngine(parse_rules(rules_doc(skip, fire)))
        events = engine.evaluate({})
        assert [d["alert"] for _, d in events] == ["firer"]
        # The skipping rule held state; absence never resolves a firing
        # alert either.
        assert engine.evaluate({}) == []


class TestCheckRules:
    def test_violation_strings(self):
        rules = parse_rules(rules_doc(DEAD_RULE))
        assert check_rules(rules, {"fleet.workers.dead": 0}) == []
        failures = check_rules(rules, {"fleet.workers.dead": 2})
        assert failures == ["dead-workers: fleet.workers.dead >= 1 "
                            "breached (value 2) — a worker stopped "
                            "heartbeating"]

    def test_ignores_for_beats(self):
        rule = dict(DEAD_RULE, for_beats=5)
        failures = check_rules(parse_rules(rules_doc(rule)),
                               {"fleet.workers.dead": 1})
        assert len(failures) == 1

    def test_loadtest_namespace(self):
        from repro.cluster.loadtest import LoadtestReport, _Sample

        report = LoadtestReport(url="http://s:1", concurrency=2,
                                duration_seconds=1.0, elapsed_seconds=1.0)
        report.samples = [_Sample("rank", "ok", 0.1),
                          _Sample("rank", "busy", 0.0)]
        values = report.alert_values()
        assert values["loadtest.completed"] == 1.0
        assert values["loadtest.busy_rate"] == pytest.approx(0.5)
        rule = {"name": "throughput-floor",
                "metric": "loadtest.throughput_jobs_per_second",
                "op": "<", "threshold": 10.0}
        assert check_rules(parse_rules(rules_doc(rule)), values)
