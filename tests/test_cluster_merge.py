"""Shard planning + merge determinism against the single-node oracle.

The property the whole cluster rests on: for ANY partition of the fault
universe into shards, ANY delivery order, and even duplicated
deliveries of a shard (straggler re-dispatch), the merged verdicts,
detection times, coverage checkpoints and MISR signature are
bit-identical to one single-node :func:`gate_level_missed` pass.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cluster import (
    MergedGrade,
    grade_shard,
    merge_shard_results,
    plan_shards,
    single_node_grade,
)
from repro.cluster.shards import coverage_checkpoints
from repro.errors import ClusterError
from repro.gates import elaborate, enumerate_cell_faults
from repro.generators.base import match_width
from repro.resolve import make_generator

VECTORS = 96
FAULTS = 240


@pytest.fixture(scope="module")
def lp_universe(ctx):
    dsg = ctx.designs["LP"]
    nl = elaborate(dsg.graph)
    faults = enumerate_cell_faults(dsg.graph, nl)[:FAULTS]
    gen = make_generator("lfsr1", 12, VECTORS)
    raw = match_width(gen.sequence(VECTORS), gen.width,
                      dsg.input_fmt.width)
    return nl, raw, faults


@pytest.fixture(scope="module")
def oracle(lp_universe):
    nl, raw, faults = lp_universe
    return single_node_grade(nl, raw, faults)


def _random_partition(rng, n, parts):
    indices = list(range(n))
    rng.shuffle(indices)
    bounds = sorted(rng.sample(range(1, n), parts - 1))
    out, lo = [], 0
    for hi in bounds + [n]:
        out.append(indices[lo:hi])
        lo = hi
    return out


class TestMergeDeterminism:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_any_partition_matches_single_node(self, lp_universe, oracle,
                                               seed):
        nl, raw, faults = lp_universe
        rng = random.Random(seed)
        parts = _random_partition(rng, len(faults), rng.randint(2, 5))
        results = []
        for sid, indices in enumerate(parts):
            res = grade_shard(nl, raw, faults, indices, len(faults))
            res["shard"] = sid
            results.append(res)
        # Deliveries arrive in arbitrary order, one shard twice.
        rng.shuffle(results)
        results.append(dict(results[0]))
        merged = merge_shard_results(len(faults), results,
                                     test_length=len(raw))
        assert merged.identical_to(oracle)
        assert merged.signature == oracle.signature
        assert merged.checkpoints == oracle.checkpoints

    def test_planned_shards_match_single_node(self, lp_universe, oracle):
        nl, raw, faults = lp_universe
        shards = plan_shards(faults, max_faults=96, batch_size=48)
        assert len(shards) > 1
        results = []
        for shard in shards:
            res = grade_shard(nl, raw, faults, shard.indices, len(faults))
            res["shard"] = shard.shard_id
            results.append(res)
        merged = merge_shard_results(len(faults), results,
                                     test_length=len(raw))
        assert merged.identical_to(oracle)

    def test_mixed_engine_fleet_merges_identically(self, lp_universe,
                                                   oracle):
        """A fleet whose workers run different engine tiers still
        merges bit-identically — verdicts, detection times, signature
        and checkpoints — because every tier is exact."""
        nl, raw, faults = lp_universe
        shards = plan_shards(faults, max_faults=96, batch_size=48)
        engines = ("event", "word", None)  # None = worker default
        results = []
        for shard in shards:
            res = grade_shard(nl, raw, faults, shard.indices,
                              len(faults),
                              engine=engines[shard.shard_id
                                             % len(engines)])
            res["shard"] = shard.shard_id
            results.append(res)
        merged = merge_shard_results(len(faults), results,
                                     test_length=len(raw))
        assert merged.identical_to(oracle)

    def test_single_node_engines_agree(self, lp_universe, oracle):
        nl, raw, faults = lp_universe
        assert single_node_grade(nl, raw, faults,
                                 engine="word").identical_to(oracle)
        assert single_node_grade(nl, raw, faults,
                                 engine="event").identical_to(oracle)

    def test_oracle_properties(self, oracle):
        assert oracle.total == FAULTS
        assert 0.0 < oracle.coverage <= 1.0
        assert oracle.test_length == VECTORS
        assert oracle.checkpoints[-1][0] == VECTORS
        assert oracle.checkpoints[-1][1] == pytest.approx(oracle.coverage)
        assert len(oracle.missed_indices) == oracle.total - oracle.detected


class TestPlanShards:
    def test_covers_universe_without_overlap(self, lp_universe):
        _nl, _raw, faults = lp_universe
        shards = plan_shards(faults, max_faults=64)
        seen = [i for s in shards for i in s.indices]
        assert sorted(seen) == list(range(len(faults)))
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_respects_max_faults(self, lp_universe):
        _nl, _raw, faults = lp_universe
        # batch_size below max_faults so packing (not splitting) rules.
        shards = plan_shards(faults, max_faults=100, batch_size=50)
        assert all(len(s) <= 100 for s in shards)

    def test_invalid_max_faults(self, lp_universe):
        _nl, _raw, faults = lp_universe
        with pytest.raises(ClusterError):
            plan_shards(faults, max_faults=0)

    def test_scheduler_shapes_packing(self, lp_universe):
        _nl, _raw, faults = lp_universe

        def reversed_scheduler(fs, batch_size):
            order = list(range(len(fs)))[::-1]
            return [order[i:i + batch_size]
                    for i in range(0, len(order), batch_size)]

        shards = plan_shards(faults, max_faults=64,
                             scheduler=reversed_scheduler)
        assert shards[0].indices[0] == len(faults) - 1
        seen = [i for s in shards for i in s.indices]
        assert sorted(seen) == list(range(len(faults)))


class TestMergeRefusals:
    def _results(self, lp_universe, parts):
        nl, raw, faults = lp_universe
        out = []
        for sid, indices in enumerate(parts):
            res = grade_shard(nl, raw, faults, indices, len(faults))
            res["shard"] = sid
            out.append(res)
        return out

    def test_gap_refused(self, lp_universe):
        _nl, raw, faults = lp_universe
        half = list(range(len(faults) // 2))
        results = self._results(lp_universe, [half])
        with pytest.raises(ClusterError, match="incomplete"):
            merge_shard_results(len(faults), results,
                                test_length=len(raw))

    def test_overlap_refused(self, lp_universe):
        _nl, raw, faults = lp_universe
        n = len(faults)
        results = self._results(
            lp_universe, [list(range(n)), list(range(4))])
        with pytest.raises(ClusterError, match="overlap"):
            merge_shard_results(n, results, test_length=len(raw))

    def test_missing_shard_id_refused(self, lp_universe):
        _nl, raw, faults = lp_universe
        results = self._results(lp_universe,
                                [list(range(len(faults)))])
        del results[0]["shard"]
        with pytest.raises(ClusterError, match="shard id"):
            merge_shard_results(len(faults), results,
                                test_length=len(raw))

    def test_disagreeing_duplicate_refused(self, lp_universe):
        _nl, raw, faults = lp_universe
        results = self._results(lp_universe,
                                [list(range(len(faults)))])
        tampered = dict(results[0])
        tampered["signature_partial"] = results[0]["signature_partial"] ^ 1
        with pytest.raises(ClusterError, match="disagree"):
            merge_shard_results(len(faults), results + [tampered],
                                test_length=len(raw))

    def test_out_of_range_indices_refused(self, lp_universe):
        _nl, raw, faults = lp_universe
        n = len(faults)
        results = self._results(lp_universe, [list(range(n))])
        results[0]["indices"][0] = n
        with pytest.raises(ClusterError, match="out-of-range"):
            merge_shard_results(n, results, test_length=len(raw))


class TestGradeShard:
    def test_index_validation(self, lp_universe):
        nl, raw, faults = lp_universe
        with pytest.raises(ClusterError, match="out of range"):
            grade_shard(nl, raw, faults, [len(faults)], len(faults))
        with pytest.raises(ClusterError, match="stream length"):
            grade_shard(nl, raw, faults, [5], 5)

    def test_checkpoints_pure_function(self):
        times = np.array([-1, 64, 32, 64, -1], dtype=np.int64)
        points = coverage_checkpoints(times, 5, 96)
        assert points == [(32, 0.2), (64, 0.6), (96, 0.6)]
