"""Randomized equivalence: cone engine vs the reference fault simulator.

The optimized gate-level engine (compiled programs, cone restriction,
word-widened batches, time chunking with fault dropping, iterative
deepening) must be a *pure speedup*: verdict-for-verdict identical to
the retained pre-optimization reference engine on every design, batch
shape, chunk size and word width.  These tests sweep randomized small
designs and stimulus to pin that contract down.
"""

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.gates import (
    elaborate,
    enumerate_cell_faults,
    fault_parallel_detect,
    fault_parallel_grade,
    fault_parallel_reference,
    gate_level_missed,
    gate_level_missed_reference,
    schedule_fault_batches,
)
from repro.rtl import design_from_coefficients

from helpers import SMALL_COEFSETS, build_small_design


def _fault_key(fault):
    return (fault.node_id, fault.bit, fault.cell_fault)


def _random_design(rng, tag):
    """A small random FIR-style design: random taps, widths and depth."""
    n_taps = int(rng.integers(2, 6))
    coefs = [float(c) for c in rng.uniform(-0.6, 0.6, size=n_taps)]
    # Ensure at least one tap is representable (non-tiny).
    coefs[0] = float(np.sign(coefs[0]) or 1.0) * max(abs(coefs[0]), 0.1)
    return design_from_coefficients(
        coefs, name=f"rand-{tag}",
        coef_frac=int(rng.integers(6, 9)),
        acc_frac=int(rng.integers(8, 11)),
        max_nonzeros=int(rng.integers(2, 5)))


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20260806)


class TestRandomizedEquivalence:
    def test_random_designs_full_universe(self, rng):
        """Missed lists match the reference on randomized designs."""
        for trial in range(4):
            design = _random_design(rng, trial)
            nl = elaborate(design.graph)
            faults = enumerate_cell_faults(design.graph, nl)
            raw = rng.integers(-2048, 2048, size=int(rng.integers(70, 400)))
            expect = [_fault_key(f)
                      for f in gate_level_missed_reference(nl, raw, faults)]
            got = [_fault_key(f) for f in gate_level_missed(nl, raw, faults)]
            assert got == expect, f"trial {trial}"

    def test_chunk_sizes_and_word_widths(self, rng):
        """Chunking/widening are evaluation details, not semantics."""
        design = build_small_design("with_zero")
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        raw = rng.integers(-2048, 2048, size=333)
        expect = [_fault_key(f)
                  for f in gate_level_missed_reference(nl, raw, faults)]
        for chunk in (1, 17, 64, 512, 10_000):
            for words in (1, 2, 5):
                got = [_fault_key(f)
                       for f in gate_level_missed(nl, raw, faults,
                                                  chunk=chunk, words=words)]
                assert got == expect, (chunk, words)

    def test_straddling_batches_match_reference(self, rng):
        """fault_parallel_detect == fault_parallel_reference on any
        64-fault window, including ones straddling scheduler batches."""
        design = build_small_design("leading_negative")
        nl = elaborate(design.graph)
        faults = [f.netlist_fault
                  for f in enumerate_cell_faults(design.graph, nl)]
        raw = rng.integers(-2048, 2048, size=200)
        for _ in range(6):
            lo = int(rng.integers(0, max(1, len(faults) - 64)))
            batch = faults[lo:lo + int(rng.integers(1, 65))]
            fast = fault_parallel_detect(nl, raw, batch)
            slow = fault_parallel_reference(nl, raw, batch)
            assert np.array_equal(fast, slow), lo

    def test_grade_matches_reference_on_permutations(self, rng):
        """Verdicts are independent of fault order (scatter-back)."""
        design = build_small_design("single_digit")
        nl = elaborate(design.graph)
        enumerated = enumerate_cell_faults(design.graph, nl)
        faults = [f.netlist_fault for f in enumerated]
        raw = rng.integers(-2048, 2048, size=150)
        base = fault_parallel_grade(nl, raw, faults)
        assert base.shape == (len(faults),)
        for _ in range(3):
            perm = rng.permutation(len(faults))
            shuffled = fault_parallel_grade(nl, raw,
                                            [faults[i] for i in perm])
            assert np.array_equal(shuffled, base[perm])

    def test_schedule_covers_every_fault_exactly_once(self, rng):
        """The cone-aware scheduler is a permutation in batches."""
        design = build_small_design("plain")
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        for batch_size in (64, 512, 64 * 8):
            batches = schedule_fault_batches(faults, batch_size)
            flat = sorted(i for b in batches for i in b)
            assert flat == list(range(len(faults)))
            assert all(len(b) <= batch_size for b in batches)


class TestEngineEquivalence:
    """Three-way engine identity: event == word == reference.

    Verdicts must match the reference oracle for every engine tier,
    and — because detection times are recorded at canonical-chunk-end
    granularity — detection times and the MISR signature of the
    detection-time stream must be identical across engines, word
    widths and schedulers *at a fixed chunk size*.
    """

    def _schedulers(self, design):
        from repro.schedule import FaultPredictor, make_scheduler

        yield "cone", None
        yield "random", make_scheduler("random")
        yield "predicted", make_scheduler(
            "predicted", predictor=FaultPredictor(design, "lfsr1",
                                                  bins=8))

    def test_engines_verdicts_times_and_signatures(self, rng):
        from repro.cluster.signature import stream_signature

        for trial in range(2):
            design = _random_design(rng, f"eng-{trial}")
            nl = elaborate(design.graph)
            faults = enumerate_cell_faults(design.graph, nl)
            raw = rng.integers(-2048, 2048,
                               size=int(rng.integers(120, 320)))
            expect = [_fault_key(f)
                      for f in gate_level_missed_reference(nl, raw,
                                                           faults)]
            ref = [_fault_key(f)
                   for f in gate_level_missed(nl, raw, faults,
                                              engine="reference")]
            assert ref == expect
            base = {}  # chunk -> (detect_times, signature)
            for engine in ("word", "event"):
                for chunk, words in ((None, None), (64, 2), (64, 1),
                                     (512, 8)):
                    for mode, sched in self._schedulers(design):
                        tag = (trial, engine, chunk, words, mode)
                        dt = np.full(len(faults), -1, dtype=np.int64)
                        missed = gate_level_missed(
                            nl, raw, faults, chunk=chunk, words=words,
                            engine=engine, scheduler=sched,
                            detect_times=dt)
                        assert [_fault_key(f)
                                for f in missed] == expect, tag
                        sig = stream_signature(16,
                                               [int(t) for t in dt])
                        if chunk not in base:
                            base[chunk] = (dt.copy(), sig)
                        else:
                            bdt, bsig = base[chunk]
                            assert np.array_equal(dt, bdt), tag
                            assert sig == bsig, tag

    def test_partial_misr_signatures_merge_identically(self, rng):
        """Sharded partial signatures over each engine's detection
        times combine to the same full-stream MISR signature."""
        from repro.cluster.signature import (combine_partials,
                                             shard_signature_partial,
                                             stream_signature)

        design = build_small_design("plain")
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        raw = rng.integers(-2048, 2048, size=256)
        sigs = set()
        total = len(faults)
        for engine in ("word", "event"):
            dt = np.full(total, -1, dtype=np.int64)
            gate_level_missed(nl, raw, faults, engine=engine,
                              detect_times=dt)
            words = [int(t) for t in dt]
            full = stream_signature(16, words)
            cut = total // 3
            partials = [
                shard_signature_partial(16, range(0, cut),
                                        words[:cut], total),
                shard_signature_partial(16, range(cut, total),
                                        words[cut:], total),
            ]
            assert combine_partials(partials) == full
            sigs.add(full)
        assert len(sigs) == 1  # engines agree bit for bit


class TestCachedEquivalence:
    def test_cached_run_is_identical_and_hits(self, rng, tmp_path):
        """gate_level_missed(cache=...) returns identical verdicts and
        the second run reloads program + golden waves from the cache."""
        cache = ArtifactCache(tmp_path / "cache")
        design = build_small_design("plain")
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        raw = rng.integers(-2048, 2048, size=128)
        plain = [_fault_key(f) for f in gate_level_missed(nl, raw, faults)]

        first = [_fault_key(f)
                 for f in gate_level_missed(nl, raw, faults, cache=cache)]
        assert first == plain
        stores = cache.stats.stores
        assert stores >= 2  # program + net waves

        # A fresh netlist object defeats the in-memory memo, so the
        # second run must come from the on-disk artifacts.
        nl2 = elaborate(design.graph)
        second = [_fault_key(f)
                  for f in gate_level_missed(nl2, raw, faults, cache=cache)]
        assert second == plain
        assert cache.stats.hits >= 2
        assert cache.stats.stores == stores

    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_all_small_coefsets(self, key, rng):
        design = build_small_design(key)
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        raw = rng.integers(-2048, 2048, size=96)
        expect = [_fault_key(f)
                  for f in gate_level_missed_reference(nl, raw, faults)]
        got = [_fault_key(f) for f in gate_level_missed(nl, raw, faults)]
        assert got == expect
