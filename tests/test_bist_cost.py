"""Hardware cost accounting and polynomial search."""

import pytest

from repro.bist import DeterministicGenerator, cost_table, cut_gate_estimate, \
    scheme_cost
from repro.bist.deterministic import deterministic_sequence
from repro.errors import GeneratorError
from repro.generators import (
    MixedModeLfsr,
    PRIMITIVE_POLYS,
    Type1Lfsr,
    is_maximal_length,
    search_primitive_polys,
)

from helpers import build_small_design


class TestSchemeCost:
    def test_cut_estimate_positive_and_scales(self, small_design, lp_design):
        assert 0 < cut_gate_estimate(small_design) < cut_gate_estimate(lp_design)

    def test_plain_lfsr_cost(self):
        c = scheme_cost(Type1Lfsr(12))
        assert c.dff == 12
        assert c.rom_words == 0
        assert c.gate_equivalents == c.gates + 12 * 6

    def test_mixed_mode_premium_is_muxes_only(self):
        plain = scheme_cost(Type1Lfsr(12))
        mixed = scheme_cost(MixedModeLfsr(12, 100))
        assert mixed.dff == plain.dff
        assert 0 < mixed.gates - plain.gates <= 3 * 12

    def test_rom_scheme_counts_words(self, small_design):
        nodes = [small_design.graph.arithmetic_nodes[0].nid]
        seq = deterministic_sequence(small_design, nodes)
        gen = DeterministicGenerator(seq, width=12)
        c = scheme_cost(gen)
        assert c.rom_words == len(seq)

    def test_overhead_percent(self, small_design):
        c = scheme_cost(Type1Lfsr(12))
        pct = c.overhead_percent(small_design)
        assert 0.0 < pct < 100.0

    def test_cost_table_rows(self, small_design):
        rows = cost_table(small_design, [Type1Lfsr(12), MixedModeLfsr(12, 8)])
        assert len(rows) == 2
        assert rows[0][0].startswith("LFSR-1")


class TestPolynomialSearch:
    def test_finds_known_polynomial(self):
        polys = search_primitive_polys(8, 6)
        assert len(polys) == 6
        assert len(set(polys)) == 6
        assert all(is_maximal_length(p) for p in polys)

    def test_table_entry_is_discoverable(self):
        # degree 8 has exactly phi(255)/8 = 16 primitive polynomials; the
        # curated table's entry must be among them
        polys = search_primitive_polys(8, 16)
        assert PRIMITIVE_POLYS[8] in polys

    def test_count_validation(self):
        with pytest.raises(GeneratorError):
            search_primitive_polys(8, 0)

    def test_impossible_count(self):
        # degree 2 has exactly one primitive polynomial (x^2+x+1)
        with pytest.raises(GeneratorError):
            search_primitive_polys(2, 5)
