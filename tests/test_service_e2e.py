"""End-to-end acceptance test for the evaluation service.

The ISSUE's bar: an in-process service instance takes 20 mixed
rank/spectrum jobs from 3 simulated clients and returns results
identical to direct library calls; submissions past ``--queue-depth``
get 429; SIGTERM (here: the same in-process shutdown path) drains
in-flight jobs without losing any.
"""

import threading

import pytest

from repro.service import ServiceConfig, ServiceThread, canonical_params
from repro.service.client import ServiceBusy
from repro.service.workers import execute_job

# 20 mixed jobs: every (kind, params) also evaluated directly against
# the library for the equality check.  Several specs repeat across
# clients on purpose — they exercise the coalescer.
JOB_SPECS = [
    ("rank", {"design": "LP", "vectors": 256}),
    ("rank", {"design": "BP", "vectors": 256}),
    ("rank", {"design": "HP", "vectors": 256}),
    ("rank", {"design": "LP", "vectors": 512}),
    ("rank", {"design": "BP", "vectors": 1024}),
    ("rank", {"design": "hp", "vectors": 512}),       # alias spelling
    ("rank", {"design": "LP", "vectors": 256}),       # duplicate
    ("spectrum", {"generator": "lfsr1", "width": 8, "points": 8}),
    ("spectrum", {"generator": "lfsr2", "width": 8, "points": 8}),
    ("spectrum", {"generator": "lfsrd", "width": 8, "points": 8}),
    ("spectrum", {"generator": "lfsrm", "width": 8, "points": 8}),
    ("spectrum", {"generator": "ramp", "width": 8, "points": 8}),
    ("spectrum", {"generator": "mixed", "width": 8, "points": 8}),
    ("spectrum", {"generator": "white", "width": 8, "points": 8}),
    ("spectrum", {"generator": "LFSR-1", "width": 8, "points": 4}),
    ("spectrum", {"generator": "lfsr1", "width": 10, "points": 8}),
    ("spectrum", {"generator": "ramp", "width": 10, "points": 8}),
    ("spectrum", {"generator": "lfsr1", "width": 8, "points": 8}),  # dup
    ("rank", {"design": "HP", "vectors": 256}),       # duplicate
    ("spectrum", {"generator": "ramp", "width": 8, "points": 8}),   # dup
]


def test_mixed_load_matches_direct_calls(ctx):
    config = ServiceConfig(port=0, no_cache=True, workers=2,
                           queue_depth=64, batch_max=4)
    with ServiceThread(config, context=ctx) as svc:
        svc.client().wait_ready(60)

        # 3 simulated clients submit their share concurrently.
        shares = [JOB_SPECS[0::3], JOB_SPECS[1::3], JOB_SPECS[2::3]]
        results = {}
        errors = []

        def drive(client_idx, specs):
            client = svc.client(f"client-{client_idx}")
            try:
                submitted = [
                    (seq, spec,
                     client.submit_retry(spec[0], spec[1], deadline=120))
                    for seq, spec in enumerate(specs)]
                for seq, spec, job in submitted:
                    doc = client.wait(job["id"], timeout=120)
                    results[(client_idx, seq, spec[0],
                             tuple(sorted(spec[1].items())))] = doc
            except Exception as exc:  # surfaced after join
                errors.append((client_idx, exc))

        threads = [threading.Thread(target=drive, args=(i, share))
                   for i, share in enumerate(shares)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, f"client failures: {errors}"
        assert len(results) == len(JOB_SPECS)

        # Every service answer must equal the direct library call.
        for doc in results.values():
            assert doc["state"] == "done", doc
        for (client_idx, seq, kind, items), doc in results.items():
            params = dict(items)
            direct = execute_job(ctx, kind, canonical_params(kind, params))
            assert doc["result"] == direct, (kind, params)

        metrics = svc.client().metrics()["service"]
        assert metrics["jobs_done"] >= len(JOB_SPECS)

    summary = svc.summary
    assert summary["clean"] == 1
    assert summary["failed"] == 0


def test_backpressure_past_queue_depth(ctx):
    # One worker, no batching, tiny queue: the leader job occupies the
    # worker while the queue fills, so the 4th submission must see 429.
    config = ServiceConfig(port=0, no_cache=True, workers=1,
                           queue_depth=2, batch_max=1)
    with ServiceThread(config, context=ctx) as svc:
        client = svc.client("flooder")
        client.wait_ready(60)
        admitted = []
        rejected = 0
        for i in range(8):
            try:
                admitted.append(
                    client.submit("grade", {"design": "LP",
                                            "generator": "LFSR-1",
                                            "vectors": 64 + i}))
            except ServiceBusy as exc:
                rejected += 1
                assert exc.status == 429
                assert exc.retry_after >= 1.0
        assert rejected > 0, "queue never pushed back"
        assert len(admitted) >= 3  # leader + queue_depth

        # Cancel what is still queued to keep the drain short; queued
        # cancels succeed, the running leader reports 409.
        outcomes = set()
        for job in admitted[1:]:
            try:
                outcomes.add(client.cancel(job["id"])["state"])
            except Exception:
                outcomes.add("conflict")
        summary = svc.stop()
    assert summary["clean"] == 1
    assert "cancelled" in outcomes


def test_shutdown_drains_without_losing_jobs(ctx):
    config = ServiceConfig(port=0, no_cache=True, workers=2,
                           queue_depth=64, batch_max=4,
                           drain_deadline=120)
    svc = ServiceThread(config, context=ctx).start()
    client = svc.client("drainer")
    client.wait_ready(60)
    jobs = [client.submit("spectrum", {"generator": g, "width": 8,
                                       "points": 4})
            for g in ("lfsr1", "lfsr2", "lfsrd", "lfsrm", "ramp")]
    jobs.append(client.submit("rank", {"design": "LP", "vectors": 128}))

    store = svc.service.store  # in-process: inspect after drain
    summary = svc.stop()

    assert summary["clean"] == 1, "drain hit the deadline"
    states = {j["id"]: store.get(j["id"]).state.value for j in jobs}
    assert all(state == "done" for state in states.values()), states
    assert summary["failed"] == 0
    assert summary["done"] >= len(jobs)


def test_draining_service_refuses_submissions(ctx):
    config = ServiceConfig(port=0, no_cache=True, workers=1)
    with ServiceThread(config, context=ctx) as svc:
        client = svc.client()
        client.wait_ready(60)
        svc.request_shutdown("test")
        # The listener may close at any moment; until it does, new
        # submissions must be 503, never enqueued.
        try:
            client.submit("rank", {"vectors": 64})
        except ServiceBusy as exc:
            assert exc.status == 503
        except (ConnectionError, OSError):
            pass  # listener already closed: equally refused
        else:
            pytest.fail("draining service accepted a submission")
