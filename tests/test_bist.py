"""MISR compaction, BIST sessions and generator selection."""

import numpy as np
import pytest

from repro.bist import (
    BistSession,
    Misr,
    default_candidates,
    ideal_signature,
    propose_scheme,
    rank_generators,
)
from repro.errors import GeneratorError, SimulationError
from repro.faultsim import run_fault_coverage
from repro.generators import (
    DecorrelatedLfsr,
    MixedModeLfsr,
    SwitchedGenerator,
    Type1Lfsr,
)

from helpers import build_small_design


class TestMisr:
    def test_deterministic(self):
        words = list(range(-50, 50))
        assert Misr(16).signature(words) == Misr(16).signature(words)

    def test_sensitive_to_single_word_change(self):
        words = list(range(100))
        base = Misr(16).signature(words)
        words[37] ^= 1
        assert Misr(16).signature(words) != base

    def test_sensitive_to_order(self):
        a = Misr(16).signature([1, 2, 3, 4])
        b = Misr(16).signature([4, 3, 2, 1])
        assert a != b

    def test_absorb_continues_state(self):
        m = Misr(16)
        whole = m.signature(list(range(64)))
        m.reset()
        m.absorb(list(range(32)))
        assert m.absorb(list(range(32, 64))) == whole

    def test_aliasing_probability(self):
        assert Misr(16).aliasing_probability(4096) == pytest.approx(2**-16)
        with pytest.raises(GeneratorError):
            Misr(16).aliasing_probability(0)

    def test_width_validation(self):
        with pytest.raises(GeneratorError):
            Misr(1)

    def test_negative_words_folded_consistently(self):
        sig = Misr(8).signature([-1, -128, 127])
        assert isinstance(sig, int)

    def test_ideal_signature_alias_free(self):
        a = ideal_signature([1, 2, 3])
        b = ideal_signature([1, 2, 3])
        c = ideal_signature([1, 2, 4])
        assert a == b != c

    def test_empirical_aliasing_is_rare(self, small_design, rng):
        """Screen faults whose output sequence provably differs from
        gold: the MISR must never alias them.  (Cell-level-detected
        faults whose effect is masked before the output are excluded —
        their response is *identical*, which is masking, not aliasing.)"""
        import numpy as np
        from repro.faultsim.inject import to_injected_fault
        from repro.rtl import simulate
        session = BistSession(small_design, Type1Lfsr(12), n_vectors=256)
        grade = session.grade()
        uni = session.universe
        detected = [f for f in uni.faults
                    if grade.detect_time[f.index] < 256]
        stim = session.stimulus()
        golden_out = simulate(small_design.graph, stim).raw(
            small_design.graph.output_id)
        aliased = 0
        screened = 0
        for f in detected[:: max(1, len(detected) // 60)]:
            bad = simulate(small_design.graph, stim,
                           fault=to_injected_fault(f)).raw(
                small_design.graph.output_id)
            if np.array_equal(bad, golden_out):
                continue  # masked, not compactable either way
            screened += 1
            if session.screen_fault(f).passed:
                aliased += 1
        assert screened > 20
        assert aliased == 0


class TestBistSession:
    def test_golden_signature_cached_and_stable(self, small_design):
        s = BistSession(small_design, Type1Lfsr(12), n_vectors=128)
        assert s.golden_signature() == s.golden_signature()

    def test_screen_detects_engine_detected_fault(self, small_design):
        s = BistSession(small_design, Type1Lfsr(12), n_vectors=256)
        grade = s.grade()
        f = next(f for f in s.universe.faults
                 if grade.detect_time[f.index] < 256)
        assert not s.screen_fault(f).passed

    def test_screen_passes_unexcited_fault(self, small_design):
        s = BistSession(small_design, Type1Lfsr(12), n_vectors=64)
        grade = s.grade()
        missed = grade.missed_faults()
        if not missed:
            pytest.skip("no missed faults")
        assert s.screen_fault(missed[0]).passed

    def test_invalid_vector_count(self, small_design):
        with pytest.raises(SimulationError):
            BistSession(small_design, Type1Lfsr(12), n_vectors=0)


class TestSelection:
    def test_candidates_cover_paper_menagerie(self):
        names = {type(g).__name__ for g in default_candidates(12)}
        assert names == {"Type1Lfsr", "Type2Lfsr", "DecorrelatedLfsr",
                         "MaxVarianceLfsr", "RampGenerator"}

    def test_ranking_sorted_best_first(self, ctx):
        ranks = rank_generators(ctx.designs["LP"])
        ratios = [r.ratio for r in ranks]
        assert ratios == sorted(ratios, reverse=True)

    def test_lowpass_proposal_avoids_type1_front_end(self, ctx):
        """On the narrowband LP the Type 1 spectrum is incompatible; the
        proposal must lead with a decorrelated phase."""
        scheme = propose_scheme(ctx.designs["LP"], n_vectors=8192)
        assert isinstance(scheme, SwitchedGenerator)
        assert isinstance(scheme.phases[0][0], DecorrelatedLfsr)

    def test_highpass_proposal_uses_single_lfsr_mixed_mode(self, ctx):
        scheme = propose_scheme(ctx.designs["HP"], n_vectors=8192)
        assert isinstance(scheme, MixedModeLfsr)

    def test_single_mode_proposal(self, ctx):
        gen = propose_scheme(ctx.designs["LP"], n_vectors=4096,
                             prefer_mixed=False)
        ranks = rank_generators(ctx.designs["LP"])
        # fresh generator objects each call: compare identity by name
        assert gen.name == ranks[0].generator.name

    def test_proposed_scheme_beats_type1_on_lowpass(self, ctx):
        """End-to-end: the selector's scheme must miss fewer faults than
        the naive Type 1 LFSR baseline."""
        design = ctx.designs["LP"]
        uni = ctx.universe("LP")
        n = 4096
        baseline = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"], n)
        scheme = propose_scheme(design, n_vectors=n)
        proposed = run_fault_coverage(design, scheme, n, universe=uni)
        assert proposed.missed() < baseline.missed()
