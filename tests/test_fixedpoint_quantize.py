"""Tests for repro.fixedpoint.quantize."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import (
    Fixed,
    dynamic_range_db,
    quantization_noise_power,
    quantize_signal,
)


class TestQuantizeSignal:
    def test_round_mode(self):
        q = Fixed(8, 7)
        raw = quantize_signal([0.25, -0.25], q)
        assert list(raw) == [32, -32]

    def test_error_on_overflow(self):
        with pytest.raises(FixedPointError):
            quantize_signal([1.5], Fixed(8, 7))

    def test_saturate_mode(self):
        raw = quantize_signal([1.5, -1.5], Fixed(8, 7), overflow="saturate")
        assert list(raw) == [127, -128]

    def test_wrap_mode(self):
        raw = quantize_signal([1.0], Fixed(8, 7), overflow="wrap")
        assert list(raw) == [-128]

    def test_unknown_overflow_mode(self):
        with pytest.raises(FixedPointError):
            quantize_signal([0.0], Fixed(8, 7), overflow="clamp")

    def test_unknown_rounding_mode(self):
        with pytest.raises(FixedPointError):
            quantize_signal([0.0], Fixed(8, 7), rounding="stochastic")

    def test_quantization_error_bounded_by_half_lsb(self):
        q = Fixed(10, 9)
        x = np.linspace(-0.99, 0.99, 1001)
        raw = quantize_signal(x, q)
        err = np.abs(raw * q.lsb - x)
        assert np.max(err) <= 0.5 * q.lsb + 1e-12


class TestNoiseFigures:
    def test_noise_power(self):
        q = Fixed(8, 7)
        assert quantization_noise_power(q) == pytest.approx(q.lsb**2 / 12)

    def test_dynamic_range_follows_six_db_per_bit(self):
        d12 = dynamic_range_db(Fixed(12, 11))
        d16 = dynamic_range_db(Fixed(16, 15))
        assert d16 - d12 == pytest.approx(4 * 6.0206, abs=0.01)
