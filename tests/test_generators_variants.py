"""Tests for the named generator variants and auxiliary sources."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.generators import (
    BernoulliSignGenerator,
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    MixedModeLfsr,
    PermutedLfsr,
    RampGenerator,
    SineGenerator,
    SwitchedGenerator,
    Type1Lfsr,
    Type2Lfsr,
    UniformWhiteGenerator,
    match_width,
)


class TestDecorrelated:
    def test_decorrelator_rule(self):
        core = Type1Lfsr(12)
        dec = DecorrelatedLfsr(12)
        words = core.sequence(200)
        out = dec.sequence(200)
        invert = ((1 << 12) - 1) & ~1
        for w, o in zip(words, out):
            w_u = int(w) & 0xFFF
            o_u = int(o) & 0xFFF
            if w_u & 1:
                assert o_u == w_u ^ invert
            else:
                assert o_u == w_u

    def test_variance_preserved(self):
        x = DecorrelatedLfsr(12).sequence(4095) / 2**11
        assert x.var() == pytest.approx(1.0 / 3.0, rel=0.01)

    def test_no_repeated_vectors_over_period(self):
        out = DecorrelatedLfsr(10).sequence((1 << 10) - 1)
        assert len(set(out.tolist())) == len(out)

    def test_flat_spectrum(self):
        x = DecorrelatedLfsr(12).sequence(4095) / 2**11
        p = np.abs(np.fft.rfft(x))**2
        lo = p[1:50].mean()
        mid = p[900:1100].mean()
        assert 0.5 < lo / mid < 2.0


class TestMaxVariance:
    def test_only_two_values(self):
        out = MaxVarianceLfsr(12).sequence(500)
        assert set(out.tolist()) <= {2047, -2048}

    def test_unit_variance(self):
        x = MaxVarianceLfsr(12).sequence(4095) / 2**11
        assert x.var() == pytest.approx(1.0, rel=0.01)

    def test_balanced(self):
        out = MaxVarianceLfsr(12).sequence(4095)
        assert abs(np.sum(out > 0) - np.sum(out < 0)) <= 1


class TestPermuted:
    def test_identity_permutation_is_type1(self):
        p = PermutedLfsr(8, list(range(8)))
        t = Type1Lfsr(8)
        assert np.array_equal(p.sequence(100), t.sequence(100))

    def test_permutation_preserves_bit_multiset(self):
        perm = [7, 6, 5, 4, 3, 2, 1, 0]
        p = PermutedLfsr(8, perm)
        t = Type1Lfsr(8)
        a = p.sequence(100)
        b = t.sequence(100)
        for x, y in zip(a, b):
            assert bin(int(x) & 0xFF).count("1") == bin(int(y) & 0xFF).count("1")

    def test_invalid_permutation_rejected(self):
        with pytest.raises(GeneratorError):
            PermutedLfsr(8, [0, 0, 1, 2, 3, 4, 5, 6])


class TestRamp:
    def test_sawtooth_shape(self):
        out = RampGenerator(8).sequence(512) / 2**7
        assert out[0] == 0.0
        assert out.max() == pytest.approx(1.0 - 2**-7)
        assert out.min() == -1.0
        # strictly increasing between wraps
        diffs = np.diff(out)
        assert np.sum(diffs < 0) == 2  # two wraps in 512 samples of period 256

    def test_step_parameter(self):
        out = RampGenerator(8, step=3).sequence(10)
        assert list(np.diff(out))[:2] == [3, 3]

    def test_degenerate_step_rejected(self):
        with pytest.raises(GeneratorError):
            RampGenerator(8, step=256)


class TestSine:
    def test_frequency(self):
        gen = SineGenerator(12, freq=1.0 / 64, amplitude=0.9)
        x = gen.sequence(640) / 2**11
        spec = np.abs(np.fft.rfft(x))
        assert spec.argmax() == 10  # 640/64 cycles

    def test_amplitude_respected(self):
        x = SineGenerator(12, freq=0.01, amplitude=0.5).sequence(1000) / 2**11
        assert np.max(np.abs(x)) <= 0.5 + 2**-10

    def test_bad_parameters(self):
        with pytest.raises(GeneratorError):
            SineGenerator(12, freq=0.7)
        with pytest.raises(GeneratorError):
            SineGenerator(12, freq=0.1, amplitude=0.0)


class TestNoise:
    def test_uniform_range_and_variance(self):
        x = UniformWhiteGenerator(12, seed=1).sequence(1 << 14) / 2**11
        assert x.var() == pytest.approx(1.0 / 3.0, rel=0.05)
        assert x.min() >= -1.0 and x.max() < 1.0

    def test_reproducible_after_reset(self):
        g = UniformWhiteGenerator(12, seed=5)
        a = g.sequence(64)
        b = g.sequence(64)
        assert np.array_equal(a, b)

    def test_sign_generator_values(self):
        out = BernoulliSignGenerator(12).sequence(100)
        assert set(out.tolist()) <= {2047, -2048}


class TestMixedMode:
    def test_switch_point(self):
        gen = MixedModeLfsr(12, switch_after=50)
        out = gen.sequence(100)
        normal = Type1Lfsr(12).sequence(50)
        assert np.array_equal(out[:50], normal)
        assert set(out[50:].tolist()) <= {2047, -2048}

    def test_lfsr_state_runs_through_switch(self):
        """The register keeps clocking: the max-variance phase must not
        replay the normal phase's bit stream."""
        gen = MixedModeLfsr(12, switch_after=10)
        out = gen.sequence(20)
        ref_bits = Type1Lfsr(12)
        ref_bits.sequence(10)                 # consume the normal phase
        stream = ref_bits.bit_stream(10)
        expect = np.where(stream.astype(bool), 2047, -2048)
        assert np.array_equal(out[10:], expect)

    def test_chunked_generation_matches_single_call(self):
        a = MixedModeLfsr(12, switch_after=30)
        b = MixedModeLfsr(12, switch_after=30)
        whole = a.sequence(100)
        b.reset()
        parts = np.concatenate([b.generate(25), b.generate(50), b.generate(25)])
        assert np.array_equal(whole, parts)

    def test_negative_switch_rejected(self):
        with pytest.raises(GeneratorError):
            MixedModeLfsr(12, switch_after=-1)


class TestSwitchedGenerator:
    def test_phases_in_order(self):
        g = SwitchedGenerator([(RampGenerator(8), 4),
                               (MaxVarianceLfsr(8), None)])
        out = g.sequence(8)
        assert list(out[:4]) == [0, 1, 2, 3]
        assert set(out[4:].tolist()) <= {127, -128}

    def test_exhausted_phases_raise(self):
        g = SwitchedGenerator([(RampGenerator(8), 4)])
        g.sequence(4)
        with pytest.raises(GeneratorError):
            g.generate(1)

    def test_width_mismatch_rejected(self):
        with pytest.raises(GeneratorError):
            SwitchedGenerator([(RampGenerator(8), 4), (RampGenerator(9), None)])

    def test_unbounded_middle_phase_rejected(self):
        with pytest.raises(GeneratorError):
            SwitchedGenerator([(RampGenerator(8), None), (RampGenerator(8), 4)])


class TestMatchWidth:
    def test_identity(self):
        raw = np.array([1, -5])
        assert np.array_equal(match_width(raw, 12, 12), raw)

    def test_widening_preserves_normalized_value(self):
        raw = np.array([1024])  # 0.5 in 12 bits
        out = match_width(raw, 12, 16)
        assert out[0] / 2**15 == 1024 / 2**11

    def test_narrowing_truncates(self):
        raw = np.array([0x7FFF])
        out = match_width(raw, 16, 12)
        assert out[0] == 0x7FF


class TestHardwareCost:
    def test_costs_reported(self):
        for gen in (Type1Lfsr(12), Type2Lfsr(12), DecorrelatedLfsr(12),
                    MaxVarianceLfsr(12), RampGenerator(12),
                    MixedModeLfsr(12, 10)):
            cost = gen.hardware_cost()
            assert cost["dff"] >= 0 and cost["gates"] >= 0

    def test_decorrelator_costs_extra_gates(self):
        base = Type1Lfsr(12).hardware_cost()["gates"]
        dec = DecorrelatedLfsr(12).hardware_cost()["gates"]
        assert dec == base + 11
