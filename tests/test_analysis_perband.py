"""Per-band compatibility and the band-stop generality check."""

import numpy as np
import pytest

from repro.analysis import generator_spectrum, per_band_compatibility
from repro.errors import AnalysisError
from repro.filters import BANDSTOP_SPEC
from repro.filters.design import design_prototype, response_magnitude
from repro.filters.reference import build_reference
from repro.generators import DecorrelatedLfsr, RampGenerator

PASSBANDS = [(0.0, 0.1), (0.37, 0.5)]


class TestPerBandCompatibility:
    def test_flat_generator_scores_near_one_everywhere(self):
        f, p = generator_spectrum(DecorrelatedLfsr(12))
        worst, ratios = per_band_compatibility(f, p, PASSBANDS)
        assert worst > 0.9
        assert all(abs(r - 1.0) < 0.15 for r in ratios)

    def test_ramp_fails_the_upper_band(self):
        f, p = generator_spectrum(RampGenerator(12))
        worst, ratios = per_band_compatibility(f, p, PASSBANDS)
        assert ratios[0] > 1.0   # floods DC
        assert ratios[1] < 0.01  # starves the upper passband
        assert worst == ratios[1]

    def test_empty_passbands_rejected(self):
        f, p = generator_spectrum(DecorrelatedLfsr(12))
        with pytest.raises(AnalysisError):
            per_band_compatibility(f, p, [])

    def test_out_of_grid_band_rejected(self):
        f, p = generator_spectrum(DecorrelatedLfsr(12))
        with pytest.raises(AnalysisError):
            per_band_compatibility(f, p, [(0.6, 0.7)])


class TestBandstopDesign:
    def test_prototype_has_a_notch(self):
        coefs = design_prototype(BANDSTOP_SPEC)
        freqs, mag = response_magnitude(coefs)
        notch = (freqs >= 0.17) & (freqs <= 0.3)
        lower = (freqs >= 0.0) & (freqs <= 0.1)
        upper = (freqs >= 0.37) & (freqs <= 0.5)
        assert np.max(mag[notch]) < 0.15
        assert np.min(mag[lower]) > 0.85
        assert np.min(mag[upper]) > 0.85

    def test_bandstop_builds_into_a_valid_datapath(self, rng):
        design = build_reference(BANDSTOP_SPEC)
        from repro.rtl import simulate
        raw = rng.integers(-2048, 2048, size=200)
        out = simulate(design.graph, raw).engineering(design.graph.output_id)
        ref = np.convolve(raw / 2**11, design.coefficients)[:200]
        n_terms = sum(len(t.plan.terms) for t in design.taps)
        assert np.max(np.abs(out - ref)) <= (n_terms + 2) * design.output_fmt.lsb
