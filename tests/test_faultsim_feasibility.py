"""Property tests for the structural feasibility analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultModelError
from repro.faultsim import feasible_cell_mask, interval_low_bits
from repro.fixedpoint import cell_pattern_codes


def brute_force_mask(a_iv, b_iv, k, is_sub, a_step=1, b_step=1):
    """Enumerate the interval product and collect actual cell codes."""
    mask = 0
    width = k + 2
    a_vals = np.arange(a_iv[0], a_iv[1] + 1, a_step, dtype=np.int64)
    for b in range(b_iv[0], b_iv[1] + 1, b_step):
        codes = cell_pattern_codes(a_vals, np.full_like(a_vals, b),
                                   1 if is_sub else 0, width,
                                   invert_b=is_sub)
        for c in np.unique(codes[k]):
            mask |= 1 << int(c)
    return mask


class TestIntervalLowBits:
    @given(st.integers(-200, 200), st.integers(0, 400), st.integers(0, 6))
    def test_matches_enumeration(self, lo, span, k):
        hi = lo + span
        stats = interval_low_bits(lo, hi, k)
        half = 1 << k
        expected = {}
        for x in range(lo, hi + 1):
            b = (x >> k) & 1
            low = x & (half - 1)
            cur = expected.get(b)
            expected[b] = (min(cur[0], low), max(cur[1], low)) if cur else (low, low)
        got = {b: (mn, mx) for b, mn, mx in stats}
        assert set(got) == set(expected)
        for b in expected:
            # analysis may report a hull, never a subset
            assert got[b][0] <= expected[b][0]
            assert got[b][1] >= expected[b][1]

    def test_empty_interval_rejected(self):
        with pytest.raises(FaultModelError):
            interval_low_bits(5, 4, 2)


class TestFeasibleCellMask:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 60), st.integers(0, 60),
        st.integers(0, 60), st.integers(0, 60),
        st.integers(0, 4), st.booleans(),
    )
    def test_overapproximates_brute_force(self, a_lo, a_span, b_lo, b_span,
                                          k, is_sub):
        a_iv = (-a_lo, -a_lo + a_span)
        b_iv = (-b_lo, -b_lo + b_span)
        analytic = feasible_cell_mask(a_iv, b_iv, k, is_sub)
        brute = brute_force_mask(a_iv, b_iv, k, is_sub)
        # sound: everything that can happen is declared feasible
        assert brute & ~analytic == 0

    def test_exact_for_wide_independent_intervals(self):
        """Wide intervals make every pattern feasible (except the cin
        constraint at bit 0)."""
        mask = feasible_cell_mask((-4096, 4095), (-4096, 4095), 4, False)
        assert mask == 0xFF
        mask0 = feasible_cell_mask((-4096, 4095), (-4096, 4095), 0, False)
        assert mask0 == 0b01010101  # carry-in 0 at the LSB cell

    def test_two_valued_secondary_blocks_t1(self):
        """The case discovered on the real designs: b in {-1, 0} makes
        T1 (a=0,b=0,c=1) infeasible at every bit above 0 of an adder."""
        for k in range(1, 6):
            mask = feasible_cell_mask((-1024, 1023), (-1, 0), k, False)
            assert mask & (1 << 1) == 0, k

    def test_sign_extension_region_loses_patterns(self):
        # Cells far above BOTH operands' significant bits: a and b are
        # sign wires and the carry is pinned by the tiny low fields, so
        # T1 (0,0,1) and T6 (1,1,0) cannot be asserted.
        deep = feasible_cell_mask((-8, 8), (-8, 8), 9, False)
        assert deep & (1 << 1) == 0  # T1 infeasible
        assert deep & (1 << 6) == 0  # T6 infeasible

    def test_wide_primary_restores_t1_deep_in_the_word(self):
        # With a full-range primary the carry can ripple out of the
        # primary's low bits, so T1 is feasible even where b is a sign
        # wire — the reason pruning must use exact intervals, not widths.
        deep = feasible_cell_mask((-1024, 1023), (-8, 8), 9, False)
        assert deep & (1 << 1) != 0

    def test_exactness_spot_check(self):
        """For small intervals the analytic mask equals brute force (the
        hull approximation is exact when residue arcs do not wrap)."""
        a_iv, b_iv = (-20, 20), (-3, 3)
        for k in range(0, 5):
            for is_sub in (False, True):
                analytic = feasible_cell_mask(a_iv, b_iv, k, is_sub)
                brute = brute_force_mask(a_iv, b_iv, k, is_sub)
                assert analytic == brute, (k, is_sub)
