"""End-to-end correctness of the FIR builder and the vectorized simulator:
the fixed-point datapath must compute the quantized convolution up to
bounded truncation error, for varied coefficient sets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DesignError, SimulationError
from repro.fixedpoint import Fixed
from repro.rtl import OpKind, design_from_coefficients, simulate

from helpers import SMALL_COEFSETS, build_small_design


def _reference_output(design, raw_x):
    xf = np.asarray(raw_x) / float(1 << (design.input_fmt.width - 1))
    return np.convolve(xf, design.coefficients)[: len(raw_x)]


def _truncation_budget(design):
    # One LSB per narrowing shift per tap term is a safe static bound.
    n_terms = sum(len(t.plan.terms) for t in design.taps)
    return (n_terms + 2) * design.output_fmt.lsb


class TestDatapathCorrectness:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_matches_float_convolution(self, key, rng):
        design = build_small_design(key)
        raw = rng.integers(-2048, 2048, size=400)
        out = simulate(design.graph, raw).engineering(design.graph.output_id)
        ref = _reference_output(design, raw)
        assert np.max(np.abs(out - ref)) <= _truncation_budget(design)

    def test_truncation_error_is_one_sided_for_adder_only_design(self, rng):
        """With positive single-digit coefficients every operator is an
        adder, so floor-style truncation only ever reduces the value."""
        design = design_from_coefficients([0.25, 0.125, 0.5], name="add-only",
                                          coef_frac=8, acc_frac=10,
                                          max_nonzeros=1, scale=False)
        assert all(n.kind is OpKind.ADD
                   for n in design.graph.arithmetic_nodes)
        raw = rng.integers(-2048, 2048, size=400)
        out = simulate(design.graph, raw).engineering(design.graph.output_id)
        ref = _reference_output(design, raw)
        assert np.max(out - ref) <= 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-0.8, 0.8), min_size=2, max_size=8))
    def test_random_coefficient_sets(self, coefs):
        if all(abs(c) < 1e-3 for c in coefs):
            return  # all-zero quantization is rejected by design
        try:
            design = design_from_coefficients(coefs, coef_frac=8, acc_frac=10,
                                              max_nonzeros=3)
        except DesignError:
            return
        rng = np.random.default_rng(0)
        raw = rng.integers(-2048, 2048, size=128)
        out = simulate(design.graph, raw).engineering(design.graph.output_id)
        ref = _reference_output(design, raw)
        assert np.max(np.abs(out - ref)) <= _truncation_budget(design)


class TestStructure:
    def test_register_count_is_taps_minus_one(self):
        design = build_small_design("plain")
        assert design.register_count == len(SMALL_COEFSETS["plain"]) - 1

    def test_operator_count_tracks_nonzero_digits(self):
        design = build_small_design("plain")
        nonzeros = sum(t.coefficient.nonzeros for t in design.taps)
        # The far tap's leading positive digit needs no operator; a
        # leading negative digit would add a subtract-from-zero instead.
        assert design.adder_count in (nonzeros - 1, nonzeros)

    def test_leading_negative_uses_const_zero(self):
        design = build_small_design("leading_negative")
        kinds = [n.kind for n in design.graph.nodes]
        assert OpKind.CONST in kinds

    def test_zero_tap_has_no_accumulator(self):
        design = build_small_design("with_zero")
        zero_taps = [t for t in design.taps if t.coefficient.raw == 0]
        assert zero_taps and all(t.accumulator is None for t in zero_taps)

    def test_tap_accumulator_resolves_through_zero_taps(self):
        design = build_small_design("with_zero")
        for k in range(len(design.taps)):
            nid = design.tap_accumulator(k)
            assert 0 <= nid < len(design.graph.nodes)

    def test_scaling_guarantees_no_overflow(self, rng):
        """Extreme inputs never exceed any node's range (L1 scaling)."""
        design = build_small_design("plain")
        # worst-case-ish input: alternating full-scale
        raw = np.tile([2047, -2048], 300)
        keep = [n.nid for n in design.graph.arithmetic_nodes]
        result = simulate(design.graph, raw, keep_nodes=keep)
        for nid in keep:
            fmt = design.graph.node(nid).fmt
            values = result.raw(nid)
            assert fmt.contains(values)

    def test_too_few_taps_rejected(self):
        with pytest.raises(DesignError):
            design_from_coefficients([0.5], coef_frac=8, acc_frac=10)

    def test_all_zero_rejected(self):
        with pytest.raises(DesignError):
            design_from_coefficients([0.0, 0.0], coef_frac=8, acc_frac=10,
                                     scale=False)

    def test_frequency_response_at_dc(self):
        design = build_small_design("plain")
        h = design.frequency_response(64)
        assert h[0] == pytest.approx(np.sum(design.coefficients))


class TestSimulatorInterface:
    def test_out_of_range_input_rejected(self, small_design):
        with pytest.raises(SimulationError):
            simulate(small_design.graph, [99999])

    def test_non_1d_input_rejected(self, small_design):
        with pytest.raises(SimulationError):
            simulate(small_design.graph, np.zeros((2, 2), dtype=np.int64))

    def test_unretained_node_raises(self, small_design, rng):
        raw = rng.integers(-100, 100, size=16)
        result = simulate(small_design.graph, raw)
        with pytest.raises(SimulationError):
            result.raw(1)

    def test_output_always_retained(self, small_design, rng):
        raw = rng.integers(-100, 100, size=16)
        result = simulate(small_design.graph, raw)
        assert len(result.output) == 16

    def test_delay_is_one_sample(self):
        design = build_small_design("single_digit")  # h = [0.5, -0.25]
        raw = np.zeros(8, dtype=np.int64)
        raw[0] = 1024  # 0.5 in Q(12,11)
        out = simulate(design.graph, raw).engineering(design.graph.output_id)
        expect = np.zeros(8)
        expect[0] = 0.5 * design.coefficients[0]
        expect[1] = 0.5 * design.coefficients[1]
        assert out == pytest.approx(expect, abs=design.output_fmt.lsb * 4)

    def test_adder_hook_sees_every_operator(self, small_design, rng):
        seen = []
        raw = rng.integers(-100, 100, size=16)
        simulate(small_design.graph, raw,
                 adder_hook=lambda node, a, b: seen.append(node.nid))
        expected = [n.nid for n in small_design.graph.arithmetic_nodes]
        assert sorted(seen) == sorted(expected)
