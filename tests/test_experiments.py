"""Experiment drivers: every table/figure function runs and reports the
expected structure; renderers produce sane text."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    ascii_table,
    figure1,
    figure4,
    figure5,
    figure8,
    figure10,
    figure13,
    series_block,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    waveform_sketch,
)


class TestRender:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_series_block_thins_long_series(self):
        x = np.arange(1000.0)
        text = series_block(x, x, "t", "v", max_points=10)
        assert len(text.splitlines()) <= 12

    def test_series_block_length_mismatch(self):
        with pytest.raises(ValueError):
            series_block([1.0], [1.0, 2.0], "x", "y")

    def test_waveform_sketch(self):
        text = waveform_sketch(np.sin(np.linspace(0, 6.28, 100)))
        assert "max" in text and "min" in text


class TestConfig:
    def test_fast_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        cfg = ExperimentConfig.from_env()
        assert cfg.table4_vectors == 1024

    def test_default_matches_paper(self):
        cfg = ExperimentConfig()
        assert cfg.table4_vectors == 4096
        assert cfg.table6_vectors == 8192


class TestTables:
    def test_table1_rows(self, ctx):
        t = table1(ctx)
        assert len(t.rows) == 3
        assert t.rows[0][0] == "LP"
        assert "faults" in t.headers
        assert "Table 1" in t.render()

    def test_table2_is_the_eight_classes(self, ctx):
        t = table2(ctx)
        assert [r[0] for r in t.rows] == ["T1a", "T1b", "T2a", "T2b",
                                          "T5a", "T5b", "T6a", "T6b"]

    def test_table3_ratings_key_cells(self, ctx):
        t = table3(ctx)
        grid = {row[0]: row[1:] for row in t.rows}
        assert grid["LFSR-1"][0].startswith("-")   # LP incompatible
        assert grid["LFSR-D"] and all(c.startswith("+") for c in grid["LFSR-D"])
        assert grid["Ramp"][0].startswith("+")     # LP compatible
        assert grid["Ramp"][2].startswith("-")     # HP incompatible

    def test_table4_against_table5_normalization(self, ctx):
        t4 = table4(ctx)
        t5 = table5(ctx)
        for r4, r5 in zip(t4.rows, t5.rows):
            name = r4[0]
            adders = ctx.designs[name].adder_count
            for m, n in zip(r4[1:], r5[1:]):
                assert n == pytest.approx(m / adders, abs=0.005)

    def test_table6_rows(self, ctx):
        t = table6(ctx)
        assert [r[0] for r in t.rows] == ["LP", "HP"]
        for row in t.rows:
            assert row[1] > 0

    def test_paper_rows_included_in_render(self, ctx):
        text = table4(ctx).render()
        assert "(paper)" in text and "519" in text


class TestFigures:
    def test_figure1_zones(self):
        r = figure1()
        assert "T1a" in r.text
        assert "primary input pdf" in r.series

    def test_figure4_five_spectra(self, ctx):
        r = figure4(ctx)
        assert len(r.series) == 5
        for x, y in r.series.values():
            assert len(x) == len(y) > 10

    def test_figure5_sigma(self, ctx):
        r = figure5(ctx)
        assert r.scalars["std"] == pytest.approx(0.577, abs=0.01)

    def test_figure8_overlap(self, ctx):
        r = figure8(ctx)
        assert r.scalars["overlap coefficient"] > 0.9

    def test_figure10_curves_decreasing(self, ctx):
        r = figure10(ctx)
        for label, (x, y) in r.series.items():
            assert np.all(np.diff(y) <= 0), label

    def test_figure13_mixed_curve_ends_lowest(self, ctx):
        r = figure13(ctx)
        finals = {k: v for k, v in r.scalars.items()}
        mixed_key = next(k for k in finals if k.startswith("mixed"))
        others = [v for k, v in finals.items() if k != mixed_key]
        assert finals[mixed_key] < min(others)

    def test_render_produces_text(self, ctx):
        assert "Figure 5" in figure5(ctx).render()
