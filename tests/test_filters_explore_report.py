"""Design-space exploration and the per-tap testability report."""

import numpy as np
import pytest

from repro.analysis import type1_lfsr_model
from repro.faultsim import run_fault_coverage
from repro.faultsim.report import testability_report as tap_report
from repro.filters import (
    LOWPASS_SPEC,
    FilterSpec,
    explore_design_space,
    response_quality,
)
from repro.filters.design import design_prototype
from repro.generators import Type1Lfsr

from helpers import build_small_design

#: A cheap spec for sweep tests: short filter, loose bands.
SMALL_SPEC = FilterSpec(
    name="mini-lp", kind="lowpass", numtaps=21,
    bands=(0.0, 0.08, 0.2, 0.5), desired=(1.0, 0.0), weight=(1.0, 1.0),
)


class TestResponseQuality:
    def test_prototype_meets_its_spec(self):
        coefs = design_prototype(SMALL_SPEC)
        atten, ripple = response_quality(coefs, SMALL_SPEC)
        assert atten > 20.0
        assert ripple < 3.0

    def test_coarse_quantization_degrades_stopband(self):
        coefs = design_prototype(SMALL_SPEC)
        fine_atten, _ = response_quality(coefs, SMALL_SPEC)
        coarse = np.round(coefs * 16) / 16  # 4-bit grid
        coarse_atten, _ = response_quality(coarse, SMALL_SPEC)
        assert coarse_atten < fine_atten


class TestExploreDesignSpace:
    @pytest.fixture(scope="class")
    def points(self):
        return explore_design_space(SMALL_SPEC, budgets=(1, 2, 4),
                                    fracs=(10, 14))

    def test_grid_covered(self, points):
        combos = {(p.max_nonzeros, p.coef_frac) for p in points}
        assert combos == {(b, f) for b in (1, 2, 4) for f in (10, 14)}

    def test_adders_monotone_in_budget(self, points):
        for frac in (10, 14):
            line = sorted((p.max_nonzeros, p.adders)
                          for p in points if p.coef_frac == frac)
            adders = [a for _, a in line]
            assert adders == sorted(adders)

    def test_stopband_improves_with_budget(self, points):
        """More digits per coefficient buy stopband attenuation."""
        for frac in (14,):
            by_budget = {p.max_nonzeros: p.stopband_db
                         for p in points if p.coef_frac == frac}
            assert by_budget[4] > by_budget[1]

    def test_rows_render(self, points):
        row = points[0].row()
        assert len(row) == 5


class TestTestabilityReport:
    def test_report_structure(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 128)
        text = tap_report(small_design, result)
        assert "testability report" in text
        # one row per tap plus header/footer
        assert len(text.splitlines()) >= len(small_design.taps) + 2

    def test_sigma_column_with_model(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 128)
        text = tap_report(small_design, result,
                                  model=type1_lfsr_model(12))
        assert "predicted sigma" in text

    def test_report_totals_match_result(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 128)
        text = tap_report(small_design, result)
        rows = [l.split() for l in text.splitlines()[2:]
                if l and l[0] == " " or (l and l.lstrip()[0].isdigit())]
        missed_total = sum(int(r[3]) for r in rows if len(r) >= 4
                           and r[0].isdigit())
        assert missed_total == result.missed()

    def test_lowpass_report_flags_midchain_taps(self, ctx):
        """On the LP design under LFSR-1, the missed faults concentrate
        in the attenuated mid-chain region."""
        result = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"],
                              ctx.config.table4_vectors)
        design = ctx.designs["LP"]
        text = tap_report(design, result)
        rows = {}
        for line in text.splitlines()[2:]:
            parts = line.split()
            if len(parts) >= 4 and parts[0].isdigit():
                rows[int(parts[0])] = int(parts[3])
        mid = sum(rows.get(t, 0) for t in range(10, 40))
        edges = sum(rows.get(t, 0) for t in list(range(0, 5)) +
                    list(range(56, 61)))
        assert mid > edges
