"""Telemetry wired through the pipeline: spans, counters, zone tracing.

Covers the instrumented fault-coverage engine, the zone tracer's
agreement with :mod:`repro.analysis.testzones`, the MISR aliasing
counters, and the CLI surface (``profile``, ``--profile``,
``--trace-out``, ``--version``).
"""

import json
import logging

import numpy as np
import pytest

from repro.analysis.testzones import test_zones as zone_intervals
from repro.cli import main
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.generators import Type1Lfsr
from repro.generators.base import match_width
from repro.rtl.simulate import simulate
from repro.telemetry import ZoneTracer, get_telemetry, telemetry_session


def _span_names(spans, out=None):
    out = out if out is not None else set()
    for sp in spans:
        out.add(sp.name)
        _span_names(sp.children, out)
    return out


class TestEngineInstrumentation:
    def test_run_fault_coverage_emits_expected_spans(self, small_design):
        universe = build_fault_universe(small_design.graph,
                                        name=small_design.name)
        with telemetry_session() as tel:
            result = run_fault_coverage(small_design, Type1Lfsr(10), 128,
                                        universe=universe)
        names = _span_names(tel.roots)
        assert {"faultsim.run", "faultsim.generate", "generators.sequence",
                "faultsim.track", "rtl.simulate",
                "faultsim.classify"} <= names
        # nesting: track owns the datapath simulation
        run = tel.roots[0]
        assert run.name == "faultsim.run"
        track = next(c for c in run.children if c.name == "faultsim.track")
        assert "rtl.simulate" in {c.name for c in track.children}
        # metrics
        metrics = tel.metrics()
        assert metrics["faultsim.vectors"].value == 128
        assert metrics["faultsim.sessions"].value == 1
        assert metrics["faultsim.faults_graded"].value == universe.fault_count
        assert metrics["faultsim.vectors_per_sec"].value > 0
        assert metrics["rtl.node_cycles"].value > 0
        latencies = [m for n, m in metrics.items()
                     if n.startswith("faultsim.detect_latency.")]
        assert latencies
        assert sum(h.count for h in latencies) == result.detected()

    def test_universe_build_span_only_when_needed(self, small_design):
        with telemetry_session() as tel:
            run_fault_coverage(small_design, Type1Lfsr(10), 32)
        assert "faultsim.build_universe" in _span_names(tel.roots)

    def test_pipeline_untouched_without_collector(self, small_design):
        assert not get_telemetry().enabled
        universe = build_fault_universe(small_design.graph)
        result = run_fault_coverage(small_design, Type1Lfsr(10), 64,
                                    universe=universe)
        assert result.n_vectors == 64


class TestZoneTracer:
    BETA = 0.25
    VECTORS = 256

    def test_counts_match_direct_zone_arithmetic(self, small_design):
        """Tracer counts must equal zone membership computed straight from
        the simulated operands and analysis.testzones intervals."""
        nodes = [n.nid for n in small_design.graph.arithmetic_nodes]
        tracer = ZoneTracer(nodes, beta=self.BETA)
        gen = Type1Lfsr(10)
        with telemetry_session():
            run_fault_coverage(small_design, gen, self.VECTORS,
                               zone_tracer=tracer)

        # Recompute expected counts from the raw operand waveforms.
        raw = match_width(gen.sequence(self.VECTORS), gen.width,
                          small_design.input_fmt.width)
        captured = {}

        def capture(node, a, b):
            captured[node.nid] = (node.fmt.normalize(a), node.fmt.normalize(b))

        simulate(small_design.graph, raw, adder_hook=capture)
        zones = zone_intervals(self.BETA)
        assert list(zones) == tracer.labels
        for nid in nodes:
            av, bv = captured[nid]
            primary = av if av.var() >= bv.var() else bv
            expected = [int(((primary >= lo) & (primary < hi)).sum())
                        for lo, hi in zones.values()]
            assert list(tracer.hits[nid]) == expected
            assert tracer.totals[nid] == self.VECTORS
            rates = tracer.hit_rates(nid)
            assert sum(rates.values()) <= 1.0 + 1e-12  # zones are disjoint

    def test_for_design_maps_taps(self, small_design):
        tracer = ZoneTracer.for_design(small_design)
        accs = {t.accumulator for t in small_design.taps
                if t.accumulator is not None}
        assert tracer.nodes == accs
        table = tracer.table()
        assert "test-zone hit rates" in table
        for label in ("T1a", "T2b", "T5b", "T6a"):
            assert label in table

    def test_publish_records_counters(self, small_design):
        tracer = ZoneTracer.for_design(small_design)
        with telemetry_session() as tel:
            run_fault_coverage(small_design, Type1Lfsr(10), 64,
                               zone_tracer=tracer)
            tracer.publish(tel)
        metrics = tel.metrics()
        nid = next(iter(tracer.nodes))
        assert metrics[f"testzones.node{nid}.vectors"].value == 64
        zone_total = sum(metrics[f"testzones.node{nid}.{label}"].value
                         for label in tracer.labels)
        assert zone_total == int(tracer.hits[nid].sum())


class TestBistCounters:
    def test_screen_fault_counts_sessions(self, small_design):
        from repro.bist.session import BistSession

        session = BistSession(design=small_design, generator=Type1Lfsr(10),
                              n_vectors=64)
        fault = session.universe.faults[0]
        with telemetry_session() as tel:
            outcome = session.screen_fault(fault)
        metrics = tel.metrics()
        assert metrics["bist.faults_screened"].value == 1
        assert metrics["bist.misr.words_absorbed"].value >= 64
        aliased = metrics.get("bist.misr.aliasing_events")
        # an aliasing event implies the signature matched gold
        if aliased is not None and aliased.value:
            assert outcome.passed


class TestCliTelemetry:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_profile_command(self, capsys):
        assert main(["profile", "LP", "lfsr1", "--vectors", "128"]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "faultsim.run" in out
        assert "faultsim.track" in out
        assert "vectors/sec" in out
        assert "test-zone hit rates" in out
        assert "T1a" in out and "T5b" in out
        assert get_telemetry().enabled is False  # restored after the run

    def test_profile_flag_logs_summary(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            assert main(["--profile", "grade", "--design", "LP",
                         "--generator", "lfsr1", "--vectors", "64"]) == 0
        summary = "\n".join(r.getMessage() for r in caplog.records)
        assert "telemetry summary" in summary
        assert "faultsim.run" in summary

    def test_trace_out_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["--trace-out", str(path), "grade", "--design", "LP",
                     "--generator", "lfsr1", "--vectors", "64"]) == 0
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events
        spans = [e for e in events if e["type"] == "span"]
        assert "faultsim.run" in {e["name"] for e in spans}
        counters = {e["name"]: e["value"]
                    for e in events if e["type"] == "counter"}
        assert counters["faultsim.vectors"] == 64
