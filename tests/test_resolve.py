"""Unit tests for the shared design/generator name resolver."""

import pytest

from repro.errors import ReproError
from repro.generators import MixedModeLfsr
from repro.resolve import (
    DESIGN_NAMES,
    GENERATOR_CHOICES,
    SWEEP_GENERATOR_KEYS,
    UnknownNameError,
    make_generator,
    resolve_design,
    resolve_generator,
    resolve_generator_key,
    resolve_names,
)


class TestResolveDesign:
    @pytest.mark.parametrize("raw,want", [
        ("LP", "LP"), ("lp", "LP"), ("Bp", "BP"), (" hp ", "HP"),
    ])
    def test_case_and_whitespace_insensitive(self, raw, want):
        assert resolve_design(raw) == want

    def test_unknown_lists_choices(self):
        with pytest.raises(UnknownNameError) as err:
            resolve_design("notch")
        msg = str(err.value)
        assert "notch" in msg
        for name in DESIGN_NAMES:
            assert name in msg

    def test_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            resolve_design("")


class TestResolveGenerator:
    @pytest.mark.parametrize("raw,want", [
        ("lfsr1", "lfsr1"), ("LFSR1", "lfsr1"), ("LFSR-1", "lfsr1"),
        ("lfsr-d", "lfsrd"), ("LFSR-M", "lfsrm"), ("Ramp", "ramp"),
        ("MIXED", "mixed"), ("white", "white"),
    ])
    def test_aliases(self, raw, want):
        assert resolve_generator(raw) == want

    def test_unknown_lists_choices(self):
        with pytest.raises(UnknownNameError) as err:
            resolve_generator("bogus")
        for name in GENERATOR_CHOICES:
            assert name in str(err.value)

    @pytest.mark.parametrize("raw,want", [
        ("LFSR-1", "LFSR-1"), ("lfsr1", "LFSR-1"), ("lfsr-d", "LFSR-D"),
        ("ramp", "Ramp"), ("Mixed", "Mixed"),
    ])
    def test_sweep_keys(self, raw, want):
        assert resolve_generator_key(raw) == want

    def test_white_has_no_sweep_key(self):
        with pytest.raises(UnknownNameError) as err:
            resolve_generator_key("white")
        for key in SWEEP_GENERATOR_KEYS:
            assert key in str(err.value)


class TestResolveNames:
    def test_comma_list_resolves_and_dedups(self):
        got = resolve_names("lp, BP,lp ,hp", resolve_design)
        assert got == ["LP", "BP", "HP"]

    def test_empty_items_skipped(self):
        assert resolve_names(",LP,,", resolve_design) == ["LP"]

    def test_bad_item_raises(self):
        with pytest.raises(UnknownNameError):
            resolve_names("LFSR-1,nope", resolve_generator_key)


class TestMakeGenerator:
    def test_mixed_switch_after_floor(self):
        gen = make_generator("mixed", 12, 1)
        assert isinstance(gen, MixedModeLfsr)
        assert gen.switch_after == 1  # never zero

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            make_generator("quantum", 12, 4096)
