"""Event broker, SSE stream, job progress, and Accept negotiation."""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.service import ServiceConfig, ServiceThread, negotiate_media_type
from repro.service.client import ServiceClientError
from repro.service.events import EventBroker, sse_frame

OFFERS = ("application/json", "text/plain")


class TestNegotiateMediaType:
    @pytest.mark.parametrize("accept,expected", [
        ("", "application/json"),                       # absent -> first offer
        ("text/plain", "text/plain"),
        ("application/json", "application/json"),
        ("text/*", "text/plain"),                       # subtype wildcard
        ("*/*", "application/json"),                    # server preference
        ("text/*;q=0.9, */*;q=0.1", "text/plain"),
        ("application/json;q=0.2, text/plain;q=0.9", "text/plain"),
        ("application/json;q=0", None),   # q=0 excludes; text never offered
        ("application/json;q=0, */*", "text/plain"),
        ("text/plain;q=0, application/json;q=0", None),  # nothing acceptable
        ("image/png", None),
        ("image/png, */*;q=0.1", "application/json"),
        # Most-specific match wins per offer: the explicit range demotes
        # text/plain below the wildcard-matched json.
        ("*/*;q=1.0, text/plain;q=0.1", "application/json"),
        ("garbage;;;", "application/json"),             # unparseable -> first
    ])
    def test_table(self, accept, expected):
        assert negotiate_media_type(accept, OFFERS) == expected

    def test_no_offers(self):
        assert negotiate_media_type("*/*", ()) is None


class TestEventBroker:
    def run_loop(self, coro):
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(coro)
        finally:
            loop.close()

    def test_publish_before_bind_is_noop(self):
        broker = EventBroker()
        broker.publish("job", {"id": "x"})  # must not raise
        assert broker.published == 0

    def test_publish_wraps_and_numbers_events(self):
        async def scenario():
            broker = EventBroker()
            broker.bind(asyncio.get_running_loop())
            queue = broker.subscribe()
            broker.publish("progress", {"done": 1})
            broker.publish("progress", {"done": 2})
            first = await queue.get()
            second = await queue.get()
            return broker, first, second

        broker, first, second = self.run_loop(scenario())
        assert first["event"] == "progress"
        assert second["seq"] == first["seq"] + 1
        assert first["data"]["done"] == 1
        assert "unix" in first["data"]
        assert broker.published == 2 and broker.dropped == 0

    def test_slow_subscriber_drops_oldest(self):
        async def scenario():
            broker = EventBroker()
            broker.bind(asyncio.get_running_loop())
            queue = broker.subscribe(maxsize=2)
            for i in range(5):
                broker.publish("progress", {"done": i})
            kept = [queue.get_nowait()["data"]["done"] for _ in range(2)]
            return broker, kept

        broker, kept = self.run_loop(scenario())
        assert kept == [3, 4]  # newest snapshots survive
        assert broker.dropped == 3

    def test_sse_frame_format(self):
        frame = sse_frame({"event": "job", "seq": 7, "data": {"id": "j"}})
        text = frame.decode("utf-8")
        assert text.startswith("event: job\nid: 7\ndata: ")
        assert text.endswith("\n\n")
        assert json.loads(text.split("data: ", 1)[1]) == {"id": "j"}


@pytest.fixture(scope="module")
def svc(ctx):
    service = ServiceThread(
        ServiceConfig(port=0, no_cache=True, workers=2, queue_depth=32,
                      events_keepalive=0.5),
        context=ctx)
    with service:
        service.client().wait_ready(60)
        yield service


@pytest.fixture(scope="module")
def client(svc):
    return svc.client("events-tests")


class TestLiveProgress:
    def test_gate_grade_job_streams_progress(self, client):
        job = client.submit("gate-grade", {"design": "LP", "vectors": 128,
                                           "faults": 512})
        events = list(client.events(job["id"], timeout=30))
        progress = [e["data"] for e in events if e["event"] == "progress"]
        assert progress, "no progress events before the job finished"
        dones = [p["done"] for p in progress]
        assert dones == sorted(dones)  # monotone
        assert all(p["stream"] == "gates.grade" for p in progress)
        assert progress[-1]["done"] == progress[-1]["total"] == 512.0
        states = [e["data"]["state"] for e in events if e["event"] == "job"]
        assert states[-1] == "done"
        # The terminal job document carries the final progress snapshot.
        doc = client.job(job["id"])
        snap = doc["progress"]["gates.grade"]
        assert snap["done"] == 512.0 and snap["fraction"] == 1.0
        assert 0.0 < snap["coverage"] <= 1.0

    def test_finished_job_stream_ends_immediately(self, client):
        job = client.submit("spectrum", {"generator": "ramp", "width": 8,
                                         "points": 2})
        client.wait(job["id"])
        events = list(client.events(job["id"], timeout=10))
        # Snapshot of the terminal state, then the stream closes.
        assert events and events[0]["event"] == "job"
        assert events[0]["data"]["state"] == "done"

    def test_unknown_job_filter_404s(self, client):
        with pytest.raises(ServiceClientError) as exc:
            list(client.events("no-such-job", timeout=5))
        assert exc.value.status == 404

    def test_events_route_is_get_only(self, svc):
        with socket.create_connection(("127.0.0.1", svc.port),
                                      timeout=10) as s:
            s.sendall(b"POST /v1/events HTTP/1.1\r\nHost: x\r\n"
                      b"Content-Length: 0\r\nConnection: close\r\n\r\n")
            raw = s.recv(65536)
        assert b"405" in raw.split(b"\r\n", 1)[0]

    def test_keepalive_comments_flow_while_idle(self, svc):
        with socket.create_connection(("127.0.0.1", svc.port),
                                      timeout=10) as s:
            s.sendall(b"GET /v1/events HTTP/1.1\r\nHost: x\r\n"
                      b"Accept: text/event-stream\r\n\r\n")
            deadline = time.monotonic() + 5.0
            buf = b""
            while time.monotonic() < deadline and b"\n:" not in buf:
                buf += s.recv(4096)
        assert b"text/event-stream" in buf
        assert b"\n:" in buf  # at least one keepalive comment arrived

    def test_metrics_expose_event_and_ledger_state(self, client):
        job = client.submit("spectrum", {"generator": "ramp", "width": 8,
                                         "points": 2})
        client.wait(job["id"])
        doc = client.metrics()
        events = doc["service"]["events"]
        assert {"subscribers", "published", "dropped"} <= set(events)
        assert events["published"] >= 1
        assert doc["service"]["ledger"]  # isolated dir from conftest
