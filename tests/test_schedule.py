"""Predictor-guided scheduling: ranking properties and oracle equivalence.

The scheduling layer must be a *pure reordering*: any batch order
produces bit-identical verdicts (mirroring the cone-vs-reference
contract in ``test_gates_equivalence.py``), and the analytic ranking it
orders by must be a function of the fault set alone — invariant under
permutations of the fault universe.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ReproError, ServiceError
from repro.gates import (
    elaborate,
    enumerate_cell_faults,
    gate_level_missed,
    schedule_fault_batches,
)
from repro.schedule import (
    FaultPredictor,
    PredictedScheduler,
    RandomScheduler,
    average_ranks,
    make_scheduler,
    order_sweep_tasks,
    recommend_generator,
    spearman_rank_correlation,
    work_to_coverage,
)
from repro.service.jobs import canonical_params

from helpers import build_small_design


def _fault_key(fault):
    return (fault.node_id, fault.bit, fault.cell_fault)


@pytest.fixture(scope="module")
def small():
    design = build_small_design()
    nl = elaborate(design.graph)
    faults = enumerate_cell_faults(design.graph, nl)
    return design, nl, faults


class TestStats:
    def test_average_ranks_ties(self):
        assert list(average_ranks([10.0, 20.0, 10.0, 30.0])) \
            == [1.5, 3.0, 1.5, 4.0]

    def test_spearman_perfect_and_inverse(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert spearman_rank_correlation(x, [10, 20, 30, 40]) \
            == pytest.approx(1.0)
        assert spearman_rank_correlation(x, [40, 30, 20, 10]) \
            == pytest.approx(-1.0)

    def test_spearman_monotone_transform_invariant(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(1, 100, size=50)
        y = rng.uniform(1, 100, size=50)
        rho = spearman_rank_correlation(x, y)
        assert spearman_rank_correlation(np.log(x), y ** 3) \
            == pytest.approx(rho)

    def test_spearman_constant_is_zero(self):
        assert spearman_rank_correlation([5, 5, 5], [1, 2, 3]) == 0.0

    def test_spearman_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [2])

    def test_work_to_coverage(self):
        cp = [(100, 5), (250, 9), (400, 10)]
        assert work_to_coverage(cp, 9) == 250
        assert work_to_coverage(cp, 10) == 400
        assert work_to_coverage(cp, 11) is None
        assert work_to_coverage(cp, 0) == 0


class TestPredictor:
    def test_probabilities_are_probabilities(self, small):
        design, _, faults = small
        p = FaultPredictor(design, "lfsr1", bins=64) \
            .detection_probability(faults)
        assert p.shape == (len(faults),)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)

    def test_expected_times_inverse(self, small):
        design, _, faults = small
        pred = FaultPredictor(design, "lfsr1", bins=64)
        p = pred.detection_probability(faults)
        t = pred.expected_times(faults)
        hit = p > 0
        assert np.allclose(t[hit], 1.0 / p[hit])
        assert np.all(np.isinf(t[~hit]))

    def test_ranking_invariant_under_permutation(self, small):
        """Property: scores are a function of the fault, not its index.

        Scoring a permuted universe must yield exactly the permuted
        scores, so the induced ranking is permutation-invariant.
        """
        design, _, faults = small
        rng = np.random.default_rng(20260807)
        base = FaultPredictor(design, "lfsr1", bins=64) \
            .expected_times(faults)
        for _ in range(3):
            perm = rng.permutation(len(faults))
            shuffled = FaultPredictor(design, "lfsr1", bins=64) \
                .expected_times([faults[i] for i in perm])
            assert np.array_equal(shuffled, base[perm])

    def test_all_generators_have_models(self, small):
        design, _, faults = small
        for gen in ("lfsr1", "lfsr2", "lfsrd", "lfsrm", "ramp", "mixed"):
            p = FaultPredictor(design, gen, bins=32) \
                .detection_probability(faults[:8])
            assert np.all((p >= 0.0) & (p <= 1.0))


class TestSchedulers:
    def test_every_schedule_partitions_the_universe(self, small):
        design, _, faults = small
        predictor = FaultPredictor(design, "lfsr1", bins=64)
        for scheduler in (schedule_fault_batches,
                          PredictedScheduler(predictor),
                          RandomScheduler()):
            batches = scheduler(faults, 64)
            flat = sorted(i for b in batches for i in b)
            assert flat == list(range(len(faults)))

    def test_reordering_keeps_cone_packing(self, small):
        """Schedulers permute whole batches, never faults across them."""
        design, _, faults = small
        stock = {frozenset(b) for b in schedule_fault_batches(faults, 64)}
        predictor = FaultPredictor(design, "lfsr1", bins=64)
        for scheduler in (PredictedScheduler(predictor), RandomScheduler()):
            assert {frozenset(b) for b in scheduler(faults, 64)} == stock

    def test_random_is_seeded(self, small):
        _, _, faults = small
        a = RandomScheduler(seed=11)(faults, 64)
        b = RandomScheduler(seed=11)(faults, 64)
        c = RandomScheduler(seed=12)(faults, 64)
        assert a == b
        assert a != c

    def test_make_scheduler_errors(self):
        with pytest.raises(ReproError):
            make_scheduler("alphabetical")
        with pytest.raises(ReproError):
            make_scheduler("predicted")  # needs a predictor
        assert make_scheduler("cone") is schedule_fault_batches


class TestOracleEquivalence:
    """``--schedule predicted`` must change nothing but the order."""

    @pytest.mark.parametrize("deepening", [True, False])
    def test_verdicts_identical_across_schedules(self, small, deepening):
        design, nl, faults = small
        rng = np.random.default_rng(99)
        raw = rng.integers(-2048, 2048, size=300)
        predictor = FaultPredictor(design, "lfsr1", bins=64)
        expect = [_fault_key(f) for f in gate_level_missed(
            nl, raw, faults, deepening=deepening)]
        for mode in ("predicted", "random"):
            scheduler = make_scheduler(mode, predictor=predictor)
            got = [_fault_key(f) for f in gate_level_missed(
                nl, raw, faults, scheduler=scheduler, deepening=deepening)]
            assert got == expect, mode

    def test_detect_times_schedule_independent(self, small):
        design, nl, faults = small
        rng = np.random.default_rng(5)
        raw = rng.integers(-2048, 2048, size=256)
        predictor = FaultPredictor(design, "lfsr1", bins=64)
        collected = {}
        for mode in ("cone", "predicted", "random"):
            scheduler = (None if mode == "cone"
                         else make_scheduler(mode, predictor=predictor))
            times = np.full(len(faults), -1, dtype=np.int64)
            missed = gate_level_missed(nl, raw, faults, chunk=32,
                                       scheduler=scheduler,
                                       deepening=False, detect_times=times)
            collected[mode] = times.copy()
            missed_idx = {id(f) for f in missed}
            for i, f in enumerate(faults):
                if id(f) in missed_idx:
                    assert times[i] == -1
                else:
                    assert 0 < times[i] <= len(raw)
        assert np.array_equal(collected["cone"], collected["predicted"])
        assert np.array_equal(collected["cone"], collected["random"])

    def test_on_batch_work_accounting(self, small):
        _, nl, faults = small
        raw = np.arange(-64, 64)
        seen = []
        gate_level_missed(nl, raw, faults, deepening=False,
                          on_batch=seen.append)
        assert seen, "on_batch never fired"
        assert sum(b["faults"] for b in seen) == len(faults)
        assert all(b["work"] > 0 for b in seen)
        # Final cumulative detected matches the verdict count.
        missed = gate_level_missed(nl, raw, faults, deepening=False)
        assert seen[-1]["detected"] == len(faults) - len(missed)


class TestSweepOrdering:
    def _tasks(self):
        from repro.parallel.sweep import SweepTask

        return [SweepTask(design=d, generator=g, n_vectors=64, width=12)
                for d in ("LP", "BP") for g in ("LFSR-1", "LFSR-M")]

    def test_cone_keeps_product_order(self, ctx):
        tasks = self._tasks()
        assert order_sweep_tasks(ctx.designs, tasks, "cone") == tasks

    def test_random_is_seeded_permutation(self, ctx):
        tasks = self._tasks()
        a = order_sweep_tasks(ctx.designs, tasks, "random")
        b = order_sweep_tasks(ctx.designs, tasks, "random")
        assert a == b
        assert sorted(t.key for t in a) == sorted(t.key for t in tasks)

    def test_predicted_sorts_by_compatibility(self, ctx):
        from repro.bist.selection import rank_generators
        from repro.resolve import make_generator, resolve_generator

        tasks = self._tasks()
        ordered = order_sweep_tasks(ctx.designs, tasks, "predicted")
        assert sorted(t.key for t in ordered) \
            == sorted(t.key for t in tasks)
        ratios = []
        for t in ordered:
            gen = make_generator(resolve_generator(t.generator),
                                 t.width, t.n_vectors)
            ratios.append(rank_generators(ctx.designs[t.design],
                                          [gen])[0].ratio)
        assert ratios == sorted(ratios, reverse=True)

    def test_unknown_mode_raises(self, ctx):
        with pytest.raises(ReproError):
            order_sweep_tasks(ctx.designs, self._tasks(), "fifo")


class TestRecommend:
    def test_analytic_only(self, ctx):
        out = recommend_generator(ctx, "LP", vectors=256, top_k=0,
                                  bins=32, candidates=("lfsr1", "lfsrm"))
        assert out["best"] in ("lfsr1", "lfsrm")
        assert out["confirmed"] == []
        ranks = [c["analytic_rank"] for c in out["candidates"]]
        assert ranks == [1, 2]
        for c in out["candidates"]:
            assert 0.0 <= c["predicted_coverage"] <= 1.0

    def test_confirmed_recommendation(self, ctx):
        out = recommend_generator(ctx, "LP", vectors=256, top_k=2,
                                  confirm_vectors=64, confirm_faults=128,
                                  bins=32, candidates=("lfsr1", "ramp"))
        assert len(out["confirmed"]) == 2
        assert out["best"] in ("lfsr1", "ramp")
        best = max(out["confirmed"],
                   key=lambda c: (c["coverage"], -c["analytic_rank"]))
        assert out["best"] == best["generator"]
        for c in out["confirmed"]:
            assert c["faults"] <= 128
            assert c["detected"] + c["missed"] == c["faults"]

    def test_service_params_validation(self):
        out = canonical_params("recommend", {"design": "lp", "top_k": 3})
        assert out["design"] == "LP"
        assert out["top_k"] == 3
        assert out["confirm_faults"] > 0
        with pytest.raises(ServiceError):
            canonical_params("recommend", {"top_k": 99})
        with pytest.raises(ServiceError):
            canonical_params("recommend", {"no_such_knob": 1})


class TestScheduleBenchCli:
    def test_bench_schedule_writes_report_and_ledger(self, tmp_path,
                                                     monkeypatch):
        from repro.cli import main
        from repro.ledger import RunLedger

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        out = tmp_path / "BENCH_schedule.json"
        rc = main(["bench", "--schedule",
                   "--schedule-faults", "512",
                   "--schedule-vectors", "256",
                   "--schedule-bins", "32",
                   "--schedule-out", str(out),
                   "--now", "1754500000"])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-bench-schedule/1"
        assert report["identical"] is True
        assert report["created_unix"] == 1754500000
        assert set(report["orderings"]) == {"cone", "predicted", "random"}
        for o in report["orderings"].values():
            assert o["work_total"] > 0
        records = RunLedger(str(tmp_path / "ledger")).records(
            kind="bench-schedule")
        assert len(records) == 1
        assert "rank_correlation" in records[0]["bench"]

    def test_conflicting_flags_fail_fast(self, tmp_path):
        from repro.cli import main

        assert main(["bench", "--gates", "--schedule"]) == 2
        assert main(["bench", "--schedule", "predicted"]) == 2


class _KeepaliveSseServer(threading.Thread):
    """Accepts one HTTP request and streams SSE keepalives forever.

    Models a live service with a hung job: the stream never goes quiet
    (so gap timeouts never fire) yet never delivers a terminal event.
    """

    def __init__(self):
        super().__init__(daemon=True)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(1)
        self.port = self.sock.getsockname()[1]
        self.stop = threading.Event()

    def run(self):
        try:
            conn, _ = self.sock.accept()
        except OSError:
            return
        try:
            conn.settimeout(0.2)
            data = b""
            while b"\r\n\r\n" not in data:
                try:
                    data += conn.recv(4096)
                except socket.timeout:
                    break
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: text/event-stream\r\n"
                         b"Connection: close\r\n\r\n")
            while not self.stop.is_set():
                conn.sendall(b": keepalive\n\n")
                time.sleep(0.05)
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self.stop.set()
        self.sock.close()


class TestWatchTimeout:
    def test_watch_fails_by_deadline_on_keepalive_only_stream(self):
        from repro.cli import main

        server = _KeepaliveSseServer()
        server.start()
        try:
            t0 = time.monotonic()
            rc = main(["runs", "watch", "job-hung",
                       "--url", f"http://127.0.0.1:{server.port}",
                       "--timeout", "1.0", "--interval", "0.1"])
            elapsed = time.monotonic() - t0
        finally:
            server.close()
        assert rc == 1
        assert elapsed < 10.0

    def test_events_deadline_raises(self):
        from repro.service.client import ServiceClient

        server = _KeepaliveSseServer()
        server.start()
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            with pytest.raises(TimeoutError):
                for _ in client.events("job-hung", deadline=0.5):
                    pass
        finally:
            server.close()
