"""Parallel execution layer: pool semantics, seeding, sweep, CLI."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import (
    GENERATOR_KEYS,
    SweepTask,
    default_chunk_size,
    derive_seed,
    gate_level_missed_parallel,
    parallel_map,
    resolve_jobs,
    run_sweep,
    sweep_generator,
    task_seeds,
)

from helpers import build_small_design


# ----------------------------------------------------------------------
# Worker functions (module-level so they pickle; the "crash" variants
# only misbehave inside a child process, so the parent-side serial
# fallback still computes the correct answer).
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _crash_in_child(x):
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return x * x


def _hang_in_child(x):
    if multiprocessing.parent_process() is not None:
        time.sleep(120)
    return x * x


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_auto_at_least_one(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2  # explicit beats env

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ParallelError):
            resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ParallelError):
            resolve_jobs(-1)

    def test_chunk_size_covers_items(self):
        for n, j in [(1, 1), (10, 4), (1000, 8), (7, 16)]:
            size = default_chunk_size(n, j)
            assert size >= 1
            assert size * -(-n // size) >= n


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(1997, "LP", 0) == derive_seed(1997, "LP", 0)

    def test_component_sensitivity(self):
        base = derive_seed(1997, "LP", 0)
        assert derive_seed(1997, "LP", 1) != base
        assert derive_seed(1997, "BP", 0) != base
        assert derive_seed(1998, "LP", 0) != base

    def test_positive_63bit(self):
        for seed in task_seeds(1997, 50, "grid"):
            assert 0 <= seed < 2 ** 63

    def test_task_seeds_distinct(self):
        seeds = task_seeds(1997, 100, "grid")
        assert len(set(seeds)) == 100


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_ordered_results(self):
        items = list(range(40))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_explicit_chunk_size(self):
        items = list(range(17))
        out = parallel_map(_square, items, jobs=2, chunk_size=3)
        assert out == [x * x for x in items]

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2], jobs=2)

    def test_worker_crash_falls_back_serial(self):
        items = list(range(12))
        out = parallel_map(_crash_in_child, items, jobs=2)
        assert out == [x * x for x in items]

    def test_timeout_falls_back_serial(self):
        items = list(range(6))
        out = parallel_map(_hang_in_child, items, jobs=2, timeout=1.0)
        assert out == [x * x for x in items]

    def test_custom_fallback_used_on_crash(self):
        calls = []

        def fallback(chunk):
            calls.append(list(chunk))
            return [x * x for x in chunk]

        items = list(range(8))
        out = parallel_map(_crash_in_child, items, jobs=2,
                           serial_fallback=fallback)
        assert out == [x * x for x in items]
        assert sum(len(c) for c in calls) == len(items)


class TestSweep:
    def test_generator_keys_constructible(self):
        for key in GENERATOR_KEYS:
            gen = sweep_generator(key, 12, 256)
            assert len(gen.sequence(4)) == 4

    def test_unknown_generator(self):
        with pytest.raises(ParallelError):
            sweep_generator("FM", 12, 256)

    def test_unknown_design_rejected(self, ctx):
        with pytest.raises(ParallelError):
            run_sweep(ctx, [SweepTask("XX", "LFSR-1", 64)], jobs=1)

    def test_parallel_matches_serial(self, ctx):
        """jobs>1 produces bit-identical detection times to jobs=1."""
        tasks = [SweepTask("LP", "LFSR-1", 96), SweepTask("LP", "Ramp", 96)]
        serial = run_sweep(ctx, tasks, jobs=1)
        ctx.reset_coverage()
        parallel = run_sweep(ctx, tasks, jobs=2)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.detect_time, p.detect_time)
            assert s.n_vectors == p.n_vectors

    def test_results_land_in_context_memo(self, ctx):
        ctx.reset_coverage()
        task = SweepTask("LP", "LFSR-D", 96)
        (result,) = run_sweep(ctx, [task], jobs=1)
        gen = sweep_generator("LFSR-D", 12, 96)
        assert ctx.coverage("LP", gen, 96) is result
        ctx.reset_coverage()


class TestGatework:
    def test_matches_serial_engine(self, small_design):
        from repro.gates.fault_parallel import gate_level_missed
        from repro.gates.faults import enumerate_cell_faults
        from repro.gates.netlist import elaborate
        from repro.generators import Type1Lfsr

        nl = elaborate(small_design.graph)
        faults = enumerate_cell_faults(small_design.graph, nl)
        raw = Type1Lfsr(small_design.input_fmt.width).sequence(48)
        expect = gate_level_missed(nl, raw, faults)
        got = gate_level_missed_parallel(nl, raw, faults, jobs=2)
        assert [f.netlist_fault.label for f in got] == \
            [f.netlist_fault.label for f in expect]

    def test_progress_reported(self, small_design):
        from repro.gates.faults import enumerate_cell_faults
        from repro.gates.netlist import elaborate
        from repro.generators import Type1Lfsr

        nl = elaborate(small_design.graph)
        faults = enumerate_cell_faults(small_design.graph, nl)
        raw = Type1Lfsr(small_design.input_fmt.width).sequence(32)
        ticks = []
        gate_level_missed_parallel(nl, raw, faults, jobs=1,
                                   progress=lambda done, total:
                                   ticks.append((done, total)))
        assert ticks and ticks[-1][0] == ticks[-1][1] == len(faults)


class TestCliSweepBench:
    def test_sweep_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--designs", "LP", "--generators", "LFSR-1",
                "--vectors", "96", "--jobs", "1", "--cache-dir", cache_dir]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "LP" in out and "cache:" in out
        assert os.path.isdir(cache_dir)

        # warm rerun: pure hits, zero stores
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert " 0 misses / 0 stores" in out

    def test_sweep_no_cache(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--designs", "LP", "--generators", "Ramp",
                     "--vectors", "96", "--jobs", "1", "--no-cache"]) == 0
        assert "cache: disabled" in capsys.readouterr().out

    def test_sweep_bad_grid(self, capsys):
        from repro.cli import main

        # Unknown names are a one-line usage error (exit 2), not a raise.
        assert main(["sweep", "--designs", "ZZ", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown design 'ZZ'" in err
        assert "valid choices: BP, HP, LP" in err
        assert err.strip().count("\n") == 0

    def test_bench_report(self, tmp_path, capsys):
        from repro.cli import main

        out_path = str(tmp_path / "bench.json")
        assert main(["bench", "--designs", "LP", "--generators", "LFSR-1",
                     "--vectors", "96", "--jobs", "2", "--no-cache",
                     "--out", out_path, "--check", "--threshold", "0.0"]) == 0
        report = json.loads(open(out_path).read())
        assert report["schema"] == "repro-bench-parallel/1"
        assert report["identical"] is True
        assert report["grid"]["sessions"] == 1
        assert report["grid"]["total_vectors"] == 96
        assert report["serial"]["vectors_per_sec"] > 0
        assert report["parallel"]["vectors_per_sec"] > 0
        assert report["parallel"]["jobs"] == 2
        assert "speedup" in report
        assert "bench check passed" in capsys.readouterr().out
