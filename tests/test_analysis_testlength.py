"""Distribution-based test-length prediction vs bit-true measurement."""

import numpy as np
import pytest

from repro.analysis import (
    decorrelated_lfsr_model,
    expected_detection_times,
    node_distribution,
    operator_pattern_probabilities,
    predicted_missed_count,
    type1_lfsr_model,
    uniform_white_model,
)
from repro.errors import AnalysisError
from repro.faultsim import build_fault_universe, run_fault_coverage, \
    track_patterns
from repro.faultsim.patterns import PatternTracker, UNSEEN
from repro.generators import UniformWhiteGenerator

from helpers import build_small_design


@pytest.fixture(scope="module")
def design():
    return build_small_design("plain")


@pytest.fixture(scope="module")
def universe(design):
    return build_fault_universe(design.graph)


class TestPatternProbabilities:
    def test_rows_sum_to_one(self, design):
        node = design.graph.arithmetic_nodes[0]
        probs = operator_pattern_probabilities(design, node.nid,
                                               uniform_white_model(12))
        assert probs.shape == (node.fmt.width, 8)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_structurally_infeasible_patterns_get_zero(self, design):
        """Cells the feasibility analysis restricts must show (near) zero
        probability for the infeasible codes."""
        from repro.faultsim import design_feasible_masks
        feasible = design_feasible_masks(design.graph)
        node = design.graph.arithmetic_nodes[0]
        probs = operator_pattern_probabilities(design, node.nid,
                                               uniform_white_model(12))
        for bit in range(2, node.fmt.width):
            mask = feasible[(node.nid, bit)]
            for n in range(8):
                if not mask & (1 << n):
                    assert probs[bit, n] < 1e-6, (bit, n)

    def test_non_arithmetic_node_rejected(self, design):
        with pytest.raises(AnalysisError):
            operator_pattern_probabilities(design, design.graph.input_id,
                                           uniform_white_model(12))

    def test_upper_cell_probabilities_match_simulation(self, design,
                                                       universe):
        """Predicted per-vector pattern probabilities at an upper cell vs
        empirical frequencies over a long white session."""
        gen = UniformWhiteGenerator(12, seed=11)
        raw = gen.sequence(1 << 15)
        from repro.rtl import simulate, OpKind
        from repro.fixedpoint import cell_pattern_codes
        counts = {}

        def hook(node, a, b):
            is_sub = node.kind is OpKind.SUB
            codes = cell_pattern_codes(a, b, 1 if is_sub else 0,
                                       node.fmt.width, invert_b=is_sub)
            counts[node.nid] = codes

        simulate(design.graph, raw, adder_hook=hook)
        # first digit of tap 0: primary = registered chain (past inputs),
        # secondary = current input term -> truly independent operands,
        # where the prediction is exact
        node = design.graph.node(design.taps[0].operators[0])
        probs = operator_pattern_probabilities(design, node.nid,
                                               uniform_white_model(12))
        k = node.fmt.width - 2
        empirical = np.bincount(counts[node.nid][k], minlength=8) / (1 << 15)
        assert np.max(np.abs(probs[k] - empirical)) < 0.03


class TestExpectedTimes:
    def test_shapes_and_positivity(self, design, universe):
        times = expected_detection_times(design, universe,
                                         uniform_white_model(12))
        assert len(times) == universe.fault_count
        assert np.all(times >= 1.0)

    def test_predicted_ordering_matches_measured(self, design, universe):
        """Faults predicted easy must be detected early; predicted-hard
        faults late, on average."""
        times = expected_detection_times(design, universe,
                                         uniform_white_model(12))
        result = run_fault_coverage(design, UniformWhiteGenerator(12, seed=5),
                                    4096, universe=universe)
        measured = result.detect_time.astype(float)
        measured[measured > 10**9] = 4096.0
        finite = np.isfinite(times)
        easy = times[finite] < 16
        hard = times[finite] > 256
        if easy.any() and hard.any():
            assert measured[finite][easy].mean() < measured[finite][hard].mean()

    def test_missed_count_prediction_bounds_measurement(self, design,
                                                        universe):
        """The iid prediction over-approximates an exhaustive LFSR-free
        session but stays within a small factor."""
        n = 2048
        predicted = predicted_missed_count(design, universe,
                                           uniform_white_model(12), n)
        measured = run_fault_coverage(design, UniformWhiteGenerator(12),
                                      n, universe=universe).missed()
        assert predicted >= 0.5 * measured
        assert predicted <= 4.0 * max(measured, 1)

    def test_type1_predicted_worse_than_decorrelated_on_lowpass(self, ctx):
        """The prediction engine reproduces the paper's comparison without
        running a single fault-simulation vector."""
        design = ctx.designs["LP"]
        universe = ctx.universe("LP")
        p1 = predicted_missed_count(design, universe, type1_lfsr_model(12),
                                    4096, bins=512)
        pd = predicted_missed_count(design, universe,
                                    decorrelated_lfsr_model(12), 4096,
                                    bins=512)
        assert p1 > 1.1 * pd


class TestNodeDistribution:
    def test_reference_scale(self, design):
        node = design.graph.arithmetic_nodes[-1]
        own = node_distribution(design, node.nid, uniform_white_model(12))
        doubled = node_distribution(design, node.nid, uniform_white_model(12),
                                    reference_half_scale=2 * node.fmt.half_scale)
        assert doubled.sigma() == pytest.approx(own.sigma() / 2, rel=0.05)

    def test_sign_source_supported(self, design):
        from repro.analysis import max_variance_lfsr_model
        node = design.graph.arithmetic_nodes[-1]
        dist = node_distribution(design, node.nid, max_variance_lfsr_model(12))
        assert dist.sigma() > 0
