"""Shared fixtures.

Reference designs and the experiment context are expensive (a few
seconds); they are session-scoped and additionally cached per process by
the library itself, so the whole suite builds each design exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentContext
from repro.filters import lowpass_design

from helpers import build_small_design

#: Modules whose tests dominate suite wall-clock (gate-level
#: equivalence sweeps, full service round-trips); CI runs them in a
#: separate ``-m slow`` lane so the unit lane stays fast.
_SLOW_MODULES = {
    "test_cluster_coordinator",
    "test_cluster_merge",
    "test_gates_equivalence",
    "test_loadtest",
    "test_service_e2e",
    "test_service_events",
    "test_service_fleet",
    "test_service_http",
}


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.module.__name__ in _SLOW_MODULES:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a throwaway directory.

    Services and CLI runs under test append run records by default;
    without this every test run would pollute the developer's real
    ledger under ``~/.local/state``.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture(scope="session")
def small_design():
    return build_small_design()


@pytest.fixture(scope="session")
def lp_design():
    return lowpass_design()


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext()


@pytest.fixture()
def rng():
    return np.random.default_rng(20260706)
