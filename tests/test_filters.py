"""Prototype design and the Table 1 reference datapaths."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.filters import (
    BANDPASS_SPEC,
    HIGHPASS_SPEC,
    LOWPASS_SPEC,
    FilterSpec,
    design_prototype,
    design_statistics,
    response_magnitude,
)


class TestPrototypes:
    @pytest.mark.parametrize("spec", [LOWPASS_SPEC, BANDPASS_SPEC,
                                      HIGHPASS_SPEC])
    def test_passband_and_stopband_levels(self, spec):
        coefs = design_prototype(spec)
        assert len(coefs) == spec.numtaps
        freqs, mag = response_magnitude(coefs)
        p_lo, p_hi = spec.passband
        pass_mask = (freqs >= p_lo + 1e-9) & (freqs <= p_hi)
        assert np.min(mag[pass_mask]) > 0.85
        # all zero-desired bands attenuate well
        for i, desired in enumerate(spec.desired):
            if desired > 0.5:
                continue
            lo, hi = spec.bands[2 * i], spec.bands[2 * i + 1]
            stop_mask = (freqs >= lo) & (freqs <= hi)
            assert np.max(mag[stop_mask]) < 0.15

    def test_symmetric_linear_phase(self):
        coefs = design_prototype(LOWPASS_SPEC)
        assert coefs == pytest.approx(coefs[::-1], abs=1e-9)

    def test_spec_validation(self):
        bad = FilterSpec(name="X", kind="lowpass", numtaps=8,
                         bands=(0.0, 0.1, 0.2, 0.5), desired=(1.0,),
                         weight=(1.0,))
        with pytest.raises(DesignError):
            design_prototype(bad)

    def test_even_length_highpass_rejected(self):
        bad = FilterSpec(name="X", kind="highpass", numtaps=8,
                         bands=(0.0, 0.3, 0.36, 0.5), desired=(0.0, 1.0),
                         weight=(1.0, 1.0))
        with pytest.raises(DesignError):
            design_prototype(bad)

    def test_passband_property(self):
        assert LOWPASS_SPEC.passband == (0.0, 0.035)
        assert HIGHPASS_SPEC.passband == (0.355, 0.5)


class TestReferenceDesigns:
    def test_table1_shape(self, ctx):
        paper = {"LP": (183, 60, 12, 15, 16, 57148),
                 "BP": (161, 58, 12, 14, 16, 50650),
                 "HP": (175, 60, 12, 15, 16, 55042)}
        for name, design in ctx.designs.items():
            s = design_statistics(design)
            p_adders, p_regs, p_in, p_coef, p_out, p_faults = paper[name]
            assert s.registers == p_regs
            assert s.input_width == p_in
            assert s.coefficient_width == p_coef
            assert s.output_width == p_out
            # operator and fault counts within 20% of the paper's designs
            assert abs(s.adders - p_adders) / p_adders < 0.2
            assert abs(s.faults - p_faults) / p_faults < 0.2

    def test_designs_have_comparable_complexity(self, ctx):
        adders = [d.adder_count for d in ctx.designs.values()]
        assert max(adders) <= 1.2 * min(adders)  # paper: within 14%... ~20%

    def test_frequency_responses_have_expected_character(self, ctx):
        for name, design in ctx.designs.items():
            h = np.abs(design.frequency_response(512))
            dc, nyq = h[0], h[-1]
            mid = h[len(h) // 2]
            if name == "LP":
                assert dc > 10 * nyq
            elif name == "HP":
                assert nyq > 10 * dc
            else:
                assert mid > 5 * max(dc, nyq)

    def test_construction_is_deterministic(self, ctx):
        from repro.filters.reference import build_reference
        from repro.filters import LOWPASS_SPEC
        a = build_reference(LOWPASS_SPEC)
        b = build_reference(LOWPASS_SPEC)
        assert np.array_equal(a.coefficients, b.coefficients)
        assert [n.fmt for n in a.graph.nodes] == [n.fmt for n in b.graph.nodes]

    def test_l1_norm_below_unity(self, ctx):
        for design in ctx.designs.values():
            assert np.sum(np.abs(design.coefficients)) < 1.0
