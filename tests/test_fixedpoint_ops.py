"""Tests for repro.fixedpoint.ops — the ripple-carry primitives the whole
fault model rests on."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import (
    adder_cell_inputs,
    arith_shift_right,
    carry_chain,
    cell_pattern_codes,
    wrap,
    wrap_add,
    wrap_sub,
)

WIDTH = 8
RAW = st.integers(-(1 << (WIDTH - 1)), (1 << (WIDTH - 1)) - 1)


class TestWrapArithmetic:
    @given(RAW, RAW)
    def test_wrap_add_matches_modular_sum(self, a, b):
        assert wrap_add(a, b, WIDTH) == wrap(a + b, WIDTH)

    @given(RAW, RAW)
    def test_wrap_sub_matches_modular_difference(self, a, b):
        assert wrap_sub(a, b, WIDTH) == wrap(a - b, WIDTH)

    def test_overflow_example(self):
        assert wrap_add(100, 100, 8) == -56


class TestShift:
    def test_floor_semantics(self):
        assert arith_shift_right(-3, 1) == -2  # floor(-1.5)
        assert arith_shift_right(3, 1) == 1

    def test_negative_shift_rejected(self):
        with pytest.raises(FixedPointError):
            arith_shift_right(1, -1)


class TestCarryChain:
    @given(RAW, RAW)
    def test_carries_reconstruct_addition(self, a, b):
        """sum bit k == a_k ^ b_k ^ c_k for the computed carries."""
        carries = carry_chain(a, b, 0, WIDTH)
        total = wrap(a + b, WIDTH)
        for k in range(WIDTH):
            ak = (a >> k) & 1
            bk = (b >> k) & 1
            assert ((total >> k) & 1) == ak ^ bk ^ int(carries[k])

    @given(RAW, RAW)
    def test_subtract_via_complement(self, a, b):
        """a - b == a + ~b + 1 cell-by-cell."""
        carries = carry_chain(a, ~b, 1, WIDTH)
        total = wrap(a - b, WIDTH)
        for k in range(WIDTH):
            ak = (a >> k) & 1
            bk = ((~b) >> k) & 1
            assert ((total >> k) & 1) == ak ^ bk ^ int(carries[k])

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(7)
        a = rng.integers(-128, 128, size=50)
        b = rng.integers(-128, 128, size=50)
        vec = carry_chain(a, b, 0, WIDTH)
        for i in range(50):
            scalar = carry_chain(int(a[i]), int(b[i]), 0, WIDTH)
            assert np.array_equal(vec[:, i], scalar)


class TestPatternCodes:
    @given(RAW, RAW)
    def test_codes_encode_cell_bits(self, a, b):
        codes = cell_pattern_codes(a, b, 0, WIDTH)
        a_bits, b_bits, c_bits = adder_cell_inputs(a, b, 0, WIDTH)
        for k in range(WIDTH):
            expected = (int(a_bits[k]) << 2) | (int(b_bits[k]) << 1) | int(c_bits[k])
            assert int(codes[k]) == expected

    @given(RAW, RAW)
    def test_subtractor_codes_use_inverted_b(self, a, b):
        codes = cell_pattern_codes(a, b, 1, WIDTH, invert_b=True)
        for k in range(WIDTH):
            b_bit = (codes[k] >> 1) & 1
            assert int(b_bit) == 1 - ((b >> k) & 1)

    def test_lsb_carry_is_cin(self):
        codes = cell_pattern_codes(0, 0, 1, 4)
        assert int(codes[0]) & 1 == 1
        codes = cell_pattern_codes(0, 0, 0, 4)
        assert int(codes[0]) & 1 == 0

    def test_shape(self):
        codes = cell_pattern_codes(np.arange(10), np.arange(10), 0, 6)
        assert codes.shape == (6, 10)
        assert codes.dtype == np.uint8
