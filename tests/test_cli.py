"""CLI smoke and behaviour tests (in-process, fast paths only)."""

import pytest

from repro.cli import GENERATOR_CHOICES, main, make_generator
from repro.errors import ReproError
from repro.generators import MixedModeLfsr, Type1Lfsr


class TestGeneratorFactory:
    @pytest.mark.parametrize("kind", GENERATOR_CHOICES)
    def test_all_choices_construct(self, kind):
        gen = make_generator(kind, 12, 4096)
        assert gen.width == 12
        assert len(gen.sequence(8)) == 8

    def test_mixed_switches_halfway(self):
        gen = make_generator("mixed", 12, 4096)
        assert isinstance(gen, MixedModeLfsr)
        assert gen.switch_after == 2048

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            make_generator("quantum", 12, 4096)


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "LP:" in out and "registers" in out

    def test_grade(self, capsys):
        assert main(["grade", "--design", "BP", "--generator", "lfsrd",
                     "--vectors", "256", "--map"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "missed faults" in out  # the --map section

    def test_grade_report(self, capsys):
        assert main(["grade", "--design", "BP", "--generator", "lfsrd",
                     "--vectors", "128", "--report"]) == 0
        out = capsys.readouterr().out
        assert "testability report" in out

    def test_rank(self, capsys):
        assert main(["rank", "--design", "LP", "--vectors", "512"]) == 0
        out = capsys.readouterr().out
        assert "proposed scheme" in out

    def test_spectrum(self, capsys):
        assert main(["spectrum", "--generator", "ramp"]) == 0
        out = capsys.readouterr().out
        assert "power (dB)" in out

    def test_table(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "T1a" in out

    def test_figure(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "test zones" in out

    def test_bad_table_number(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestUnknownNames:
    """Unknown design/generator names: one-line error, exit code 2."""

    def test_grade_unknown_design(self, capsys):
        assert main(["grade", "--design", "XL"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown design 'XL'" in err
        assert "BP" in err and "HP" in err and "LP" in err

    def test_grade_unknown_generator(self, capsys):
        assert main(["grade", "--generator", "noise"]) == 2
        err = capsys.readouterr().err
        assert "unknown generator 'noise'" in err
        assert "lfsr1" in err and "white" in err

    def test_rank_unknown_design(self, capsys):
        assert main(["rank", "--design", "bandstop"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_sweep_unknown_generator_key(self, capsys):
        assert main(["sweep", "--generators", "LFSR-1,Fibonacci",
                     "--vectors", "64"]) == 2
        err = capsys.readouterr().err
        assert "unknown generator 'Fibonacci'" in err
        assert "LFSR-D" in err and "Ramp" in err

    def test_grade_accepts_aliases(self, capsys):
        assert main(["grade", "--design", "bp", "--generator", "LFSR-D",
                     "--vectors", "128"]) == 0
        assert "detected" in capsys.readouterr().out


class TestBenchNow:
    """`bench --now` / $REPRO_BENCH_NOW pin the report timestamp."""

    @staticmethod
    def _args(now):
        import argparse
        return argparse.Namespace(now=now)

    def test_unix_float(self):
        from repro.cli import _bench_now
        assert _bench_now(self._args("1754500000.5")) == 1754500000.5

    def test_iso_datetime(self):
        from datetime import datetime

        from repro.cli import _bench_now
        got = _bench_now(self._args("2026-08-05T12:00:00"))
        assert got == datetime.fromisoformat("2026-08-05T12:00:00").timestamp()

    def test_env_fallback(self, monkeypatch):
        from repro.cli import _bench_now
        monkeypatch.setenv("REPRO_BENCH_NOW", "123.25")
        assert _bench_now(self._args(None)) == 123.25

    def test_flag_beats_env(self, monkeypatch):
        from repro.cli import _bench_now
        monkeypatch.setenv("REPRO_BENCH_NOW", "123.25")
        assert _bench_now(self._args("456.0")) == 456.0

    def test_wall_clock_default(self, monkeypatch):
        import time

        from repro.cli import _bench_now
        monkeypatch.delenv("REPRO_BENCH_NOW", raising=False)
        assert abs(_bench_now(self._args(None)) - time.time()) < 60

    def test_garbage_rejected(self):
        from repro.cli import _bench_now
        with pytest.raises(ReproError):
            _bench_now(self._args("yesterday-ish"))
