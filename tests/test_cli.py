"""CLI smoke and behaviour tests (in-process, fast paths only)."""

import pytest

from repro.cli import GENERATOR_CHOICES, main, make_generator
from repro.errors import ReproError
from repro.generators import MixedModeLfsr, Type1Lfsr


class TestGeneratorFactory:
    @pytest.mark.parametrize("kind", GENERATOR_CHOICES)
    def test_all_choices_construct(self, kind):
        gen = make_generator(kind, 12, 4096)
        assert gen.width == 12
        assert len(gen.sequence(8)) == 8

    def test_mixed_switches_halfway(self):
        gen = make_generator("mixed", 12, 4096)
        assert isinstance(gen, MixedModeLfsr)
        assert gen.switch_after == 2048

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            make_generator("quantum", 12, 4096)


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "LP:" in out and "registers" in out

    def test_grade(self, capsys):
        assert main(["grade", "--design", "BP", "--generator", "lfsrd",
                     "--vectors", "256", "--map"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "missed faults" in out  # the --map section

    def test_grade_report(self, capsys):
        assert main(["grade", "--design", "BP", "--generator", "lfsrd",
                     "--vectors", "128", "--report"]) == 0
        out = capsys.readouterr().out
        assert "testability report" in out

    def test_rank(self, capsys):
        assert main(["rank", "--design", "LP", "--vectors", "512"]) == 0
        out = capsys.readouterr().out
        assert "proposed scheme" in out

    def test_spectrum(self, capsys):
        assert main(["spectrum", "--generator", "ramp"]) == 0
        out = capsys.readouterr().out
        assert "power (dB)" in out

    def test_table(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "T1a" in out

    def test_figure(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "test zones" in out

    def test_bad_table_number(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
