"""Design serialization round-trip and VCD export."""

import json

import numpy as np
import pytest

from repro.errors import DesignError, SimulationError
from repro.rtl import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
    sim_to_vcd,
    save_vcd,
    simulate,
)
from repro.faultsim import build_fault_universe, run_fault_coverage
from repro.generators import Type1Lfsr

from helpers import build_small_design


class TestSerializationRoundTrip:
    def test_graph_identical(self, small_design, rng):
        clone = design_from_dict(design_to_dict(small_design))
        assert len(clone.graph) == len(small_design.graph)
        for a, b in zip(small_design.graph.nodes, clone.graph.nodes):
            assert (a.kind, a.srcs, a.fmt, a.shift, a.role, a.tap) == \
                   (b.kind, b.srcs, b.fmt, b.shift, b.role, b.tap)

    def test_simulation_identical(self, small_design, rng):
        clone = design_from_dict(design_to_dict(small_design))
        raw = rng.integers(-2048, 2048, size=200)
        a = simulate(small_design.graph, raw).raw(small_design.graph.output_id)
        b = simulate(clone.graph, raw).raw(clone.graph.output_id)
        assert np.array_equal(a, b)

    def test_coefficients_and_taps_survive(self, small_design):
        clone = design_from_dict(design_to_dict(small_design))
        assert np.array_equal(clone.coefficients, small_design.coefficients)
        assert [t.accumulator for t in clone.taps] == \
               [t.accumulator for t in small_design.taps]

    def test_fault_universe_identical(self, small_design):
        """Feasibility pruning (which uses scaling bounds) must behave
        identically on a loaded design."""
        original = build_fault_universe(small_design.graph)
        clone = design_from_dict(design_to_dict(small_design))
        reloaded = build_fault_universe(clone.graph)
        assert reloaded.fault_count == original.fault_count
        assert reloaded.untestable_count == original.untestable_count

    def test_file_round_trip(self, small_design, tmp_path, rng):
        path = tmp_path / "design.json"
        save_design(small_design, str(path))
        clone = load_design(str(path))
        raw = rng.integers(-100, 100, size=32)
        a = simulate(small_design.graph, raw).output
        b = simulate(clone.graph, raw).output
        assert np.array_equal(a, b)

    def test_coverage_on_loaded_design(self, small_design, tmp_path):
        path = tmp_path / "design.json"
        save_design(small_design, str(path))
        clone = load_design(str(path))
        a = run_fault_coverage(small_design, Type1Lfsr(12), 256).missed()
        b = run_fault_coverage(clone, Type1Lfsr(12), 256).missed()
        assert a == b

    def test_schema_version_checked(self, small_design):
        data = design_to_dict(small_design)
        data["schema"] = 999
        with pytest.raises(DesignError):
            design_from_dict(data)

    def test_bad_node_kind_rejected(self, small_design):
        data = design_to_dict(small_design)
        data["nodes"][2]["kind"] = "femtosecond-laser"
        with pytest.raises(DesignError):
            design_from_dict(data)

    def test_json_serializable(self, small_design):
        json.dumps(design_to_dict(small_design))  # must not raise


class TestVcdExport:
    def test_header_and_changes(self, small_design, rng):
        raw = rng.integers(-100, 100, size=16)
        nid = small_design.graph.output_id
        result = simulate(small_design.graph, raw, keep_nodes=[nid])
        text = sim_to_vcd(result, node_ids=[nid])
        assert "$enddefinitions" in text
        assert "$dumpvars" in text
        assert text.count("$var wire") == 1
        assert f"#{len(raw)}" in text

    def test_values_decoded_back(self, small_design):
        """Parse our own VCD and recover the output waveform."""
        raw = np.array([0, 100, 100, -100, 50], dtype=np.int64)
        nid = small_design.graph.output_id
        result = simulate(small_design.graph, raw, keep_nodes=[nid])
        width = small_design.graph.node(nid).fmt.width
        text = sim_to_vcd(result, node_ids=[nid])

        values = {}
        t = 0
        for line in text.splitlines():
            if line.startswith("#"):
                t = int(line[1:])
            elif line.startswith("b"):
                bits, _ = line[1:].split(" ")
                v = int(bits, 2)
                if v >= 1 << (width - 1):
                    v -= 1 << width
                values[t] = v
        expected = result.raw(nid)
        recovered = []
        current = values[0]
        for t in range(len(raw)):
            current = values.get(t, current)
            recovered.append(current)
        assert recovered == list(expected)

    def test_unretained_node_rejected(self, small_design, rng):
        raw = rng.integers(-10, 10, size=4)
        result = simulate(small_design.graph, raw)
        with pytest.raises(SimulationError):
            sim_to_vcd(result, node_ids=[1])

    def test_save(self, small_design, tmp_path, rng):
        raw = rng.integers(-10, 10, size=4)
        result = simulate(small_design.graph, raw)
        path = tmp_path / "wave.vcd"
        save_vcd(result, str(path))
        assert path.read_text().startswith("$date")
