"""Cross-cutting property-based tests (hypothesis).

These pin down algebraic invariants that individual example-based tests
cannot: monotonicity of the feasibility analysis, compositionality of
interval propagation, MISR sensitivity, window/stream consistency of the
LFSR word construction.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bist import Misr
from repro.faultsim import feasible_cell_mask
from repro.fixedpoint import Fixed, wrap
from repro.generators import FibonacciLfsr, bit_stream_to_words


class TestFeasibilityMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(-40, 0), st.integers(0, 40), st.integers(0, 10),
        st.integers(-40, 0), st.integers(0, 40), st.integers(0, 10),
        st.integers(0, 5), st.booleans(),
    )
    def test_wider_intervals_never_lose_codes(self, a_lo, a_hi, a_grow,
                                              b_lo, b_hi, b_grow, k, is_sub):
        """Feasibility is monotone in the operand intervals: enlarging
        an interval can only add feasible codes.  This is what makes the
        interval over-approximation sound for pruning."""
        narrow = feasible_cell_mask((a_lo, a_lo + a_hi),
                                    (b_lo, b_lo + b_hi), k, is_sub)
        wide = feasible_cell_mask((a_lo - a_grow, a_lo + a_hi + a_grow),
                                  (b_lo - b_grow, b_lo + b_hi + b_grow),
                                  k, is_sub)
        assert narrow & ~wide == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 6), st.booleans())
    def test_full_range_operands_reach_variant_feasible_set(self, k, is_sub):
        mask = feasible_cell_mask((-(1 << 10), (1 << 10) - 1),
                                  (-(1 << 10), (1 << 10) - 1), k, is_sub)
        if k == 0:
            expect = 0b10101010 if is_sub else 0b01010101
            assert mask == expect
        else:
            assert mask == 0xFF


class TestWrapAlgebra:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6),
           st.integers(2, 20))
    def test_wrap_is_a_ring_homomorphism(self, a, b, width):
        """wrap(a) + wrap(b) == wrap(a + b) modulo 2**width — addition can
        be wrapped before or after, which is what lets the simulator add
        full-precision int64 values and wrap once."""
        assert wrap(wrap(a, width) + wrap(b, width), width) == wrap(a + b,
                                                                    width)

    @given(st.integers(-(1 << 16), (1 << 16) - 1), st.integers(0, 6),
           st.integers(0, 6))
    def test_arithmetic_shifts_compose(self, raw, s1, s2):
        assert (raw >> s1) >> s2 == raw >> (s1 + s2)

    @given(st.integers(2, 24), st.integers(0, 24))
    def test_normalized_range_is_unit_interval(self, width, frac):
        q = Fixed(width, frac)
        assert q.normalize(q.min_raw) == -1.0
        assert q.normalize(q.max_raw) < 1.0


class TestLfsrWindows:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, (1 << 10) - 1))
    def test_words_reassemble_the_bit_stream(self, seed):
        """msb_to_lsb words are sliding windows: the MSB sequence of the
        words equals the underlying bit stream."""
        g1 = FibonacciLfsr(10, seed=seed)
        words = g1.sequence(200)
        g2 = FibonacciLfsr(10, seed=seed)
        # the register preload contributes the first word's bits; the
        # stream continues from there
        msbs = [(int(w) >> 9) & 1 for w in words]
        stream = list(g2.bit_stream(200))
        assert msbs == stream

    def test_window_function_matches_manual_packing(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        words = bit_stream_to_words(bits, 4, "msb_to_lsb")
        # first window = bits[0..3], newest (bits[3]) at the MSB
        b = [int(v) for v in bits]
        first = (b[3] << 3) | (b[2] << 2) | (b[1] << 1) | b[0]
        expect = first - 16 if first >= 8 else first
        assert int(words[0]) == expect


class TestMisrProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-(1 << 15), (1 << 15) - 1), min_size=2,
                    max_size=40),
           st.integers(0, 39), st.integers(1, (1 << 16) - 1))
    def test_single_word_corruption_always_caught(self, words, pos, flip):
        """A MISR never aliases on a single corrupted word (the error
        polynomial is a monomial times a nonzero word, and the feedback
        polynomial has full degree)."""
        pos %= len(words)
        m = Misr(16)
        good = m.signature(words)
        corrupted = list(words)
        corrupted[pos] = wrap(corrupted[pos] ^ flip, 16)
        if corrupted[pos] == words[pos]:
            return
        assert m.signature(corrupted) != good

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    def test_signature_is_deterministic_function(self, words):
        assert Misr(16).signature(words) == Misr(16).signature(words)
