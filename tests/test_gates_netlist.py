"""Gate-level netlist elaboration and simulation: must agree bit-for-bit
with the RTL simulator, with and without injected faults."""

import numpy as np
import pytest

from repro.gates import (
    bits_to_raw,
    elaborate,
    enumerate_cell_faults,
    gate_level_fault_simulation,
    netlist_fault_detected,
    pack_input_bits,
    simulate_netlist,
)
from repro.rtl import InjectedFault, simulate

from helpers import SMALL_COEFSETS, build_small_design


class TestBitPacking:
    def test_roundtrip(self, rng):
        raw = rng.integers(-2048, 2048, size=64)
        bits = pack_input_bits(raw, 12)
        assert np.array_equal(bits_to_raw(bits), raw)

    def test_sign_bit_row(self):
        bits = pack_input_bits([-1, 0, 5], 4)
        assert list(bits[3].astype(int)) == [1, 0, 0]


class TestElaboration:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_netlist_matches_rtl(self, key, rng):
        design = build_small_design(key)
        nl = elaborate(design.graph)
        raw = rng.integers(-2048, 2048, size=200)
        rtl_out = simulate(design.graph, raw).raw(design.graph.output_id)
        nl_out = simulate_netlist(nl, raw)["output"]
        assert np.array_equal(rtl_out, nl_out)

    def test_gate_count_scales_with_operators(self, small_design):
        nl = elaborate(small_design.graph)
        # ~5 gates per full-adder cell plus subtractor inverters
        cells = sum(n.fmt.width for n in small_design.graph.arithmetic_nodes)
        assert 2 * cells <= nl.gate_count <= 7 * cells

    def test_dff_count_matches_register_bits(self, small_design):
        nl = elaborate(small_design.graph)
        from repro.rtl import OpKind
        bits = sum(n.fmt.width for n in small_design.graph.nodes
                   if n.kind is OpKind.DELAY)
        assert len(nl.dffs) == bits

    def test_cell_sites_cover_all_cells(self, small_design):
        nl = elaborate(small_design.graph)
        for node in small_design.graph.arithmetic_nodes:
            for bit in range(node.fmt.width):
                assert (node.nid, bit) in nl.cell_sites


class TestFaultInjectionEquivalence:
    def test_rtl_and_netlist_injection_agree(self, small_design, rng):
        """The LUT-based RTL injector and the structural netlist injector
        are two independent implementations of the same fault; they must
        produce identical faulty outputs."""
        nl = elaborate(small_design.graph)
        faults = enumerate_cell_faults(small_design.graph, nl)
        raw = rng.integers(-2048, 2048, size=150)
        for f in faults[::13]:
            rtl_fault = InjectedFault(
                node_id=f.node_id, bit=f.bit,
                sum_lut=f.cell_fault.sum_array(),
                cout_lut=f.cell_fault.cout_array(),
            )
            y_rtl = simulate(small_design.graph, raw,
                             fault=rtl_fault).raw(small_design.graph.output_id)
            y_nl = simulate_netlist(nl, raw, fault=f.netlist_fault)["output"]
            assert np.array_equal(y_rtl, y_nl), f.label

    def test_detection_equals_output_difference(self, small_design, rng):
        nl = elaborate(small_design.graph)
        faults = enumerate_cell_faults(small_design.graph, nl)
        raw = rng.integers(-2048, 2048, size=100)
        golden = simulate_netlist(nl, raw)["output"]
        f = faults[0]
        detected = netlist_fault_detected(nl, raw, f.netlist_fault,
                                          golden=golden)
        faulty = simulate_netlist(nl, raw, fault=f.netlist_fault)["output"]
        assert detected == bool(np.any(faulty != golden))


class TestGateLevelFaultSimulation:
    def test_small_design_mostly_covered_by_noise(self, rng):
        design = build_small_design("single_digit")
        nl = elaborate(design.graph)
        raw = rng.integers(-2048, 2048, size=256)
        detected, missed = gate_level_fault_simulation(design.graph, nl, raw)
        total = len(detected) + len(missed)
        assert total > 0
        assert len(detected) / total > 0.9
