"""Tests for repro.rtl.graph and nodes."""

import pytest

from repro.errors import DesignError
from repro.fixedpoint import Fixed
from repro.rtl import Graph, OpKind


def tiny_graph():
    g = Graph(name="tiny")
    x = g.add(OpKind.INPUT, fmt=Fixed(4, 3), role="input")
    s = g.add(OpKind.SHIFT, (x.nid,), fmt=Fixed(4, 3), shift=1)
    a = g.add(OpKind.ADD, (x.nid, s.nid), fmt=Fixed(5, 3))
    g.add(OpKind.OUTPUT, (a.nid,), fmt=Fixed(5, 3))
    return g


class TestConstruction:
    def test_arity_enforced(self):
        g = Graph()
        with pytest.raises(DesignError):
            g.add(OpKind.ADD, ())

    def test_source_must_exist(self):
        g = Graph()
        with pytest.raises(DesignError):
            g.add(OpKind.DELAY, (3,))

    def test_single_input_enforced(self):
        g = Graph()
        g.add(OpKind.INPUT, fmt=Fixed(4, 3))
        with pytest.raises(DesignError):
            g.add(OpKind.INPUT, fmt=Fixed(4, 3))

    def test_ids_are_indices(self):
        g = tiny_graph()
        for i, node in enumerate(g.nodes):
            assert node.nid == i


class TestQueries:
    def test_arithmetic_nodes(self):
        g = tiny_graph()
        assert [n.kind for n in g.arithmetic_nodes] == [OpKind.ADD]

    def test_register_count(self):
        g = tiny_graph()
        assert g.register_count == 0

    def test_consumers(self):
        g = tiny_graph()
        consumers = g.consumers()
        assert consumers[0] == [1, 2]  # input feeds shift and add

    def test_topological_order_is_valid(self):
        g = tiny_graph()
        order = g.topological_order()
        pos = {nid: i for i, nid in enumerate(order)}
        for node in g.nodes:
            for s in node.srcs:
                assert pos[s] < pos[node.nid]

    def test_stats(self):
        g = tiny_graph()
        stats = g.stats()
        assert stats["arithmetic"] == 1
        assert stats["shift"] == 1


class TestValidation:
    def test_valid_graph_passes(self):
        tiny_graph().validate()

    def test_missing_format_rejected(self):
        g = Graph()
        x = g.add(OpKind.INPUT, fmt=Fixed(4, 3))
        a = g.add(OpKind.ADD, (x.nid, x.nid))  # fmt None
        g.add(OpKind.OUTPUT, (a.nid,), fmt=Fixed(5, 3))
        with pytest.raises(DesignError):
            g.validate()

    def test_mismatched_binary_points_rejected(self):
        g = Graph()
        x = g.add(OpKind.INPUT, fmt=Fixed(4, 3))
        s = g.add(OpKind.SHIFT, (x.nid,), fmt=Fixed(4, 2), shift=0)
        a = g.add(OpKind.ADD, (x.nid, s.nid), fmt=Fixed(5, 3))
        g.add(OpKind.OUTPUT, (a.nid,), fmt=Fixed(5, 3))
        with pytest.raises(DesignError):
            g.validate()

    def test_register_format_must_match_source(self):
        g = Graph()
        x = g.add(OpKind.INPUT, fmt=Fixed(4, 3))
        g.add(OpKind.DELAY, (x.nid,), fmt=Fixed(5, 3))
        with pytest.raises(DesignError):
            g.validate()

    def test_missing_output_rejected(self):
        g = Graph()
        g.add(OpKind.INPUT, fmt=Fixed(4, 3))
        with pytest.raises(DesignError):
            g.validate()

    def test_one_bit_adder_rejected(self):
        g = Graph()
        x = g.add(OpKind.INPUT, fmt=Fixed(4, 3))
        s = g.add(OpKind.SHIFT, (x.nid,), fmt=Fixed(2, 3), shift=3)
        a = g.add(OpKind.ADD, (s.nid, s.nid), fmt=Fixed(1, 3))
        g.add(OpKind.OUTPUT, (a.nid,), fmt=Fixed(1, 3))
        with pytest.raises(DesignError):
            g.validate()
