"""Concurrency tests for the artifact cache.

The evaluation service shares one on-disk store across worker threads,
sweep worker processes and any number of concurrently running CLIs.
These tests hammer a single store from two OS processes and assert the
atomic-write protocol holds: readers never observe a torn entry, every
load is either a clean hit or a clean miss, and eviction racing a
writer never corrupts surviving entries.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.cache import ArtifactCache

KIND = "concurrency-test"
SLOTS = 8
ROUNDS = 40


def _payload(slot):
    return {"slot": int(slot)}


def _arrays(slot, round_no):
    # Content is derived from the slot alone so any process's write is
    # acceptable; `round_no` only perturbs scheduling.
    base = np.arange(64, dtype=np.int64) * (slot + 1)
    return {"data": base, "tag": np.int64(slot)}


def _hammer(root, worker, rounds, out_queue):
    """Alternate stores and loads against every slot; report anomalies."""
    cache = ArtifactCache(root)
    anomalies = []
    rng = np.random.default_rng(worker)
    for round_no in range(rounds):
        slot = int(rng.integers(SLOTS))
        if (round_no + worker) % 2 == 0:
            cache.store(KIND, _payload(slot), _arrays(slot, round_no),
                        meta={"worker": worker})
        got = cache.load(KIND, _payload(slot))
        if got is None:
            continue  # clean miss: evicted or not yet written
        want = _arrays(slot, round_no)
        if not np.array_equal(got["data"], want["data"]):
            anomalies.append(("torn-data", slot, round_no))
        if int(got["tag"]) != slot:
            anomalies.append(("wrong-slot", slot, round_no))
    out_queue.put((worker, anomalies, cache.stats.hits, cache.stats.misses))


def _run_workers(root, rounds=ROUNDS, workers=2):
    ctx = mp.get_context("spawn")
    out_queue = ctx.Queue()
    procs = [ctx.Process(target=_hammer, args=(root, w, rounds, out_queue))
             for w in range(workers)]
    for p in procs:
        p.start()
    reports = [out_queue.get(timeout=300) for _ in procs]
    for p in procs:
        p.join(timeout=300)
        assert p.exitcode == 0, f"worker crashed with {p.exitcode}"
    return reports


class TestConcurrentReadersWriters:
    def test_two_processes_never_see_torn_entries(self, tmp_path):
        root = str(tmp_path / "store")
        reports = _run_workers(root)
        all_anomalies = [a for _w, anomalies, _h, _m in reports
                         for a in anomalies]
        assert not all_anomalies, all_anomalies
        # The store ends in a valid state: every surviving entry loads.
        cache = ArtifactCache(root)
        loaded = 0
        for slot in range(SLOTS):
            got = cache.load(KIND, _payload(slot))
            if got is not None:
                assert int(got["tag"]) == slot
                loaded += 1
        assert loaded > 0

    def test_eviction_racing_writers_is_safe(self, tmp_path):
        # A tiny size cap forces evict() on every store, so writers
        # continuously delete each other's entries mid-traffic.
        root = str(tmp_path / "store")
        seed = ArtifactCache(root, max_bytes=4096)
        seed.store(KIND, _payload(0), _arrays(0, 0))

        ctx = mp.get_context("spawn")
        out_queue = ctx.Queue()
        procs = [ctx.Process(target=_hammer_evicting,
                             args=(root, w, out_queue)) for w in range(2)]
        for p in procs:
            p.start()
        reports = [out_queue.get(timeout=300) for _ in procs]
        for p in procs:
            p.join(timeout=300)
            assert p.exitcode == 0
        anomalies = [a for _w, anomalies in reports for a in anomalies]
        assert not anomalies, anomalies
        # Post-condition: whatever survived the LRU churn still loads
        # cleanly and the store is within (or near) its cap.
        cache = ArtifactCache(root, max_bytes=4096)
        for slot in range(SLOTS):
            got = cache.load(KIND, _payload(slot))
            if got is not None:
                assert np.array_equal(got["data"],
                                      _arrays(slot, 0)["data"])

    def test_no_stray_tmp_files_after_crash_free_run(self, tmp_path):
        root = str(tmp_path / "store")
        _run_workers(root, rounds=10)
        stray = [name for _dir, _sub, files in os.walk(root)
                 for name in files if name.endswith(".tmp")]
        assert stray == []


def _hammer_evicting(root, worker, out_queue):
    """Store/load loop against a store whose cap evicts on every write."""
    cache = ArtifactCache(root, max_bytes=4096)
    anomalies = []
    for round_no in range(30):
        slot = (round_no + worker) % SLOTS
        cache.store(KIND, _payload(slot), _arrays(slot, round_no))
        got = cache.load(KIND, _payload(slot))
        if got is not None and not np.array_equal(
                got["data"], _arrays(slot, round_no)["data"]):
            anomalies.append(("torn-data", slot, round_no))
    out_queue.put((worker, anomalies))


class TestSharedStoreSemantics:
    def test_interleaved_store_load_same_key(self, tmp_path):
        """Same-key writers from both processes: last write wins, and
        every intermediate read is one of the two valid contents."""
        cache = ArtifactCache(str(tmp_path / "store"))
        a = {"data": np.ones(32, dtype=np.int64), "tag": np.int64(1)}
        b = {"data": np.full(32, 2, dtype=np.int64), "tag": np.int64(2)}
        for _ in range(10):
            cache.store(KIND, {"slot": 99}, a)
            cache.store(KIND, {"slot": 99}, b)
            got = cache.load(KIND, {"slot": 99})
            assert got is not None
            assert int(got["tag"]) in (1, 2)
        final = cache.load(KIND, {"slot": 99})
        assert int(final["tag"]) == 2
