"""Exporters and run reports: Chrome trace, Prometheus text, HTML.

The round-trip tests drive a *real* two-process ``parallel_map`` run
through a JSONL sink, read the file back, and assert the exported
Chrome trace preserves every span losslessly; the Prometheus output is
held to a strict line-format checker (TYPE before samples, cumulative
``+Inf``-terminated buckets).
"""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.errors import TelemetryError
from repro.parallel import parallel_map
from repro.telemetry import (
    Histogram,
    InMemorySink,
    JsonlSink,
    Telemetry,
    chrome_trace_document,
    chrome_trace_events,
    get_telemetry,
    load_trace,
    prometheus_exposition,
    reconstruct_spans,
    render_run_report,
    set_telemetry,
    write_chrome_trace,
    write_run_report,
)
from repro.telemetry.export import prometheus_name


def _pool_work(x):
    tel = get_telemetry()
    with tel.span("work.item", x=x):
        tel.counter("work.items").add(1)
    return x + 1


@pytest.fixture()
def pool_trace(tmp_path):
    """JSONL events from a real 2-process pooled run."""
    path = tmp_path / "run.jsonl"
    tel = Telemetry(sinks=[JsonlSink(str(path))])
    previous = set_telemetry(tel)
    try:
        parallel_map(_pool_work, list(range(6)), jobs=2, chunk_size=2,
                     label="parallel.export")
    finally:
        set_telemetry(previous)
        tel.flush()
        tel.close()
    return load_trace(str(path))


# ----------------------------------------------------------------------
# Histogram percentiles
# ----------------------------------------------------------------------
class TestHistogramPercentiles:
    def test_summary_keys(self):
        h = Histogram("t")
        h.observe_many([0.001, 0.002, 0.02, 0.3, 2.0])
        summary = h.summary()
        assert sorted(summary) == ["p50", "p90", "p99"]
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_bounded_by_observed_range(self):
        h = Histogram("t", edges=[10.0, 20.0])
        h.observe_many([12.0, 13.0, 14.0])
        for q in (0.01, 0.5, 0.99, 1.0):
            assert 12.0 <= h.percentile(q) <= 14.0

    def test_uniform_data_median(self):
        h = Histogram("t", edges=[i / 10 for i in range(1, 10)])
        h.observe_many([i / 100 for i in range(100)])
        assert h.percentile(0.5) == pytest.approx(0.5, abs=0.1)

    def test_invalid_quantile(self):
        h = Histogram("t")
        for q in (0.0, -1.0, 1.5):
            with pytest.raises(TelemetryError):
                h.percentile(q)

    def test_empty_is_zero(self):
        assert Histogram("t").percentile(0.5) == 0.0

    def test_merge_event(self):
        a, b = Histogram("t"), Histogram("t")
        a.observe_many([0.001, 0.5])
        b.observe_many([0.02, 3.0])
        a.merge_event(b.to_event())
        assert a.count == 4
        assert a.min == 0.001 and a.max == 3.0
        assert a.total == pytest.approx(3.521)

    def test_merge_rejects_different_edges(self):
        a = Histogram("t", edges=[1.0])
        b = Histogram("t", edges=[2.0])
        b.observe(0.5)
        with pytest.raises(TelemetryError):
            a.merge_event(b.to_event())

    def test_merge_empty_event_keeps_minmax(self):
        a = Histogram("t")
        a.observe(1.0)
        a.merge_event(Histogram("t").to_event())
        assert a.count == 1 and a.min == 1.0 and a.max == 1.0

    def test_event_carries_quantiles(self):
        h = Histogram("t")
        h.observe_many([0.1, 0.2])
        event = h.to_event()
        assert {"p50", "p90", "p99"} <= set(event)
        assert "p50" not in Histogram("t").to_event()

    def test_render_includes_quantiles(self):
        tel = Telemetry()
        tel.histogram("lat").observe_many([0.001, 0.01, 0.1])
        assert "p50=" in tel.render() and "p99=" in tel.render()


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_required_fields_on_every_event(self, pool_trace):
        events = chrome_trace_events(pool_trace)
        assert events
        for e in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in e, f"{key} missing from {e}"

    def test_round_trip_is_lossless(self, pool_trace):
        """JSONL -> reconstruct_spans == JSONL -> Chrome -> spans."""
        direct = reconstruct_spans(pool_trace)
        doc = chrome_trace_document(pool_trace)
        restored = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            restored[e["args"]["id"]] = e
        flat = {}

        def index(span):
            flat[span.sid] = span
            for child in span.children:
                index(child)

        for root in direct:
            index(root)
        assert set(restored) == set(flat)
        for sid, span in flat.items():
            e = restored[sid]
            assert e["name"] == span.name
            assert e["pid"] == span.pid
            assert e["args"]["parent"] == span.parent_id
            assert e["ts"] == pytest.approx(span.start * 1e6)
            assert e["dur"] == pytest.approx(span.duration * 1e6)
            for key, value in span.attrs.items():
                assert e["args"][key] == value

    def test_multi_process_tracks_labelled(self, pool_trace):
        doc = chrome_trace_document(pool_trace)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        span_pids = {e["pid"] for e in doc["traceEvents"]
                     if e["ph"] == "X"}
        assert len(meta) == len(span_pids) >= 2  # parent + worker(s)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["trace_id"]

    def test_write_chrome_trace_is_valid_json(self, tmp_path, pool_trace):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), pool_trace)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_error_spans_marked(self):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("no")
        (e,) = [e for e in chrome_trace_events(sink.events)
                if e["ph"] == "X"]
        assert "RuntimeError" in e["args"]["error"]


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary)$")


def check_exposition(text):
    """Strict structural check of the exposition format; returns the
    metric families seen."""
    assert text.endswith("\n")
    families = {}
    current = None
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), line
            continue
        if line.startswith("# TYPE"):
            m = _TYPE_RE.match(line)
            assert m, line
            current = m.group(1)
            assert current not in families, f"duplicate TYPE {current}"
            families[current] = {"type": m.group(2), "samples": []}
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        name = line.split("{")[0].split(" ")[0]
        # A sample belongs to the longest family base that prefixes it
        # (so `x_quantiles{...}` goes to `x_quantiles`, not `x`).
        matches = [base for base in families
                   if name == base or name.startswith(base + "_")]
        assert matches, f"sample before TYPE: {line!r}"
        owner = families[max(matches, key=len)]
        value = line.rsplit(" ", 1)[1]
        float(value)  # must parse
        owner["samples"].append(line)
    return families


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("cache.l1.hits") == "repro_cache_l1_hits"
        assert prometheus_name("weird-name!x", prefix="") == "weird_name_x"
        assert prometheus_name("9lives", prefix="")[0] == "_"

    def test_counter_gauge_families(self):
        events = [
            {"type": "counter", "name": "service.requests", "value": 4},
            {"type": "gauge", "name": "queue.depth", "value": 2.5},
            {"type": "gauge", "name": "unset.gauge", "value": None},
        ]
        families = check_exposition(prometheus_exposition(events))
        assert families["repro_service_requests_total"]["type"] == "counter"
        assert families["repro_queue_depth"]["type"] == "gauge"
        assert not any("unset" in name for name in families)

    def test_histogram_buckets_cumulative_with_inf(self):
        h = Histogram("lat", edges=[0.01, 0.1, 1.0])
        h.observe_many([0.005, 0.05, 0.05, 0.5, 2.0])
        text = prometheus_exposition([h.to_event()])
        families = check_exposition(text)
        hist = families["repro_lat"]
        assert hist["type"] == "histogram"
        buckets = [line for line in hist["samples"] if "_bucket" in line]
        counts = [float(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1].startswith('repro_lat_bucket{le="+Inf"}')
        assert counts[-1] == 5
        (sum_line,) = [s for s in hist["samples"]
                       if s.startswith("repro_lat_sum ")]
        assert float(sum_line.split(" ")[1]) == pytest.approx(2.605)
        assert "repro_lat_count 5" in text
        summary = families["repro_lat_quantiles"]
        assert summary["type"] == "summary"
        quantiles = [line for line in summary["samples"]
                     if "quantile=" in line]
        assert [q.split('"')[1] for q in quantiles] == ["0.5", "0.9", "0.99"]

    def test_latest_snapshot_wins(self):
        events = [
            {"type": "counter", "name": "c", "value": 1},
            {"type": "counter", "name": "c", "value": 7},
        ]
        text = prometheus_exposition(events)
        assert "repro_c_total 7" in text
        assert "repro_c_total 1" not in text

    def test_real_run_passes_strict_checker(self, pool_trace):
        text = prometheus_exposition(pool_trace)
        families = check_exposition(text)
        assert "repro_work_items_total" in families
        assert "repro_parallel_tasks_total" in families

    def test_values_finite(self):
        h = Histogram("lat")
        h.observe(0.5)
        text = prometheus_exposition([h.to_event()])
        for line in text.splitlines():
            if not line.startswith("#"):
                value = float(line.rsplit(" ", 1)[1])
                assert math.isfinite(value)


# ----------------------------------------------------------------------
# HTML run report
# ----------------------------------------------------------------------
class TestRunReport:
    def test_report_sections(self, pool_trace):
        events = list(pool_trace) + [
            {"type": "counter", "name": "cache.artifacts.hits", "value": 3},
            {"type": "counter", "name": "cache.artifacts.misses", "value": 1},
            {"type": "counter", "name": "testzones.node1.passband",
             "value": 9},
        ]
        page = render_run_report(events, title="test run")
        assert page.startswith("<!DOCTYPE html>")
        assert "Span waterfall" in page
        assert "parallel.export" in page and "work.item" in page
        assert "Wall time by stage" in page
        assert "Cache hit rates" in page and "75.0%" in page
        assert "Parallel execution" in page
        assert "Test-zone hits" in page
        assert "<script" not in page  # self-contained, no JS

    def test_escapes_html(self):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        with tel.span("<script>alert(1)</script>"):
            pass
        page = render_run_report(sink.events)
        assert "<script>alert(1)" not in page
        assert "&lt;script&gt;" in page

    def test_write_run_report(self, tmp_path, pool_trace):
        path = tmp_path / "report.html"
        write_run_report(str(path), pool_trace)
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_empty_trace_renders(self):
        page = render_run_report([])
        assert "No spans" in page

    def test_truncates_huge_traces(self):
        from repro.telemetry.report import MAX_WATERFALL_ROWS

        events = [{"type": "span", "name": f"s{i}", "id": str(i),
                   "parent": None, "start": float(i), "duration": 0.5,
                   "attrs": {}, "error": None}
                  for i in range(MAX_WATERFALL_ROWS + 50)]
        page = render_run_report(events)
        assert "50 more span rows truncated" in page


class TestCliIntegration:
    def test_profile_export_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "profile.json"
        rc = main(["profile", "LP", "ramp", "--vectors", "64",
                   "--export-trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        for e in doc["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in e
        assert "wrote Chrome trace" in capsys.readouterr().out

    def test_profile_exact_pooled_merges_worker_spans(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        trace = tmp_path / "pooled.json"
        # 1024 faults = two BATCH-sized tasks, so the pool really runs.
        rc = main(["profile", "LP", "ramp", "--vectors", "48",
                   "--exact", "1024", "--jobs", "2",
                   "--export-trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (pool,) = [e for e in spans if e["name"] == "gates.fault_pool"]
        batches = [e for e in spans
                   if e["name"] == "gates.fault_batch"
                   and e["args"]["parent"] == pool["args"]["id"]]
        assert batches, "no fault_batch spans under the pool span"
        assert len({e["pid"] for e in spans}) >= 2, \
            "worker spans did not merge back"

    def test_report_from_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "run.jsonl"
        rc = main(["--trace-out", str(trace), "grade", "--design", "LP",
                   "--generator", "ramp", "--vectors", "64"])
        assert rc == 0
        rc = main(["report", "--trace", str(trace)])
        assert rc == 0
        out_path = tmp_path / "run.html"
        assert out_path.exists()
        page = out_path.read_text()
        assert "Span waterfall" in page
        assert "run.jsonl" in page  # title names the source trace

    def test_bench_report(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "bench.html"
        rc = main(["bench", "--designs", "LP", "--generators", "LFSR-1",
                   "--vectors", "96", "--jobs", "2", "--no-cache",
                   "--out", str(tmp_path / "bench.json"),
                   "--report", str(report)])
        assert rc == 0
        page = report.read_text()
        assert "Span waterfall" in page
        assert "Wall time by stage" in page
        assert "wrote bench report" in capsys.readouterr().out
