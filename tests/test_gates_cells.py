"""Tests for the gate-level cell fault dictionaries."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FaultModelError
from repro.gates import VARIANT_KINDS, cell_variant, variant_for_bit
from repro.gates.cells import _evaluate


def good_fa(a, b, c):
    return a ^ b ^ c, (a & b) | (c & (a ^ b))


class TestGoodBehaviour:
    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_fault_free_matches_full_adder(self, kind):
        const_c = {"lsb0": 0, "lsb1": 1}.get(kind)
        for code in range(8):
            a, b, c = (code >> 2) & 1, (code >> 1) & 1, code & 1
            if const_c is not None and c != const_c:
                continue
            s, cout = _evaluate(kind, a, b, c)
            gs, gcout = good_fa(a, b, c)
            assert s == gs
            if kind != "msb":
                assert cout == gcout


class TestFaultTables:
    def test_full_cell_counts(self):
        v = cell_variant("full")
        assert v.uncollapsed_count == 32  # 16 lines x 2 polarities
        assert 20 <= v.fault_count <= 32
        assert not v.undetectable

    def test_msb_cell_has_no_carry_logic_faults(self):
        v = cell_variant("msb")
        assert v.uncollapsed_count == 10  # 5 lines of the two-XOR chain
        for f in v.faults:
            # every fault detected through the sum output alone
            assert f.detect_mask != 0

    def test_constant_carry_variants_restrict_codes(self):
        v0 = cell_variant("lsb0")
        assert v0.feasible_mask == 0b01010101  # even codes: c = 0
        v1 = cell_variant("lsb1")
        assert v1.feasible_mask == 0b10101010  # odd codes: c = 1

    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_detect_masks_within_feasible_codes(self, kind):
        v = cell_variant(kind)
        for f in v.faults:
            assert f.detect_mask & ~v.feasible_mask == 0

    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_luts_match_injected_evaluation(self, kind):
        """The collapsed LUTs must reproduce the faulty netlist exactly
        on all feasible codes, for the representative site."""
        v = cell_variant(kind)
        const_c = {"lsb0": 0, "lsb1": 1}.get(kind)
        for f in v.faults:
            site, sv = f.name.rsplit("/", 1)
            for code in range(8):
                a, b, c = (code >> 2) & 1, (code >> 1) & 1, code & 1
                if const_c is not None and c != const_c:
                    continue
                s, cout = _evaluate(kind, a, b, c, fault=(site, int(sv)))
                assert f.sum_lut[code] == s
                if kind != "msb":
                    assert f.cout_lut[code] == cout

    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_members_behave_identically(self, kind):
        v = cell_variant(kind)
        const_c = {"lsb0": 0, "lsb1": 1}.get(kind)
        for f in v.faults:
            for member in f.members:
                site, sv = member.rsplit("/", 1)
                for code in range(8):
                    a, b, c = (code >> 2) & 1, (code >> 1) & 1, code & 1
                    if const_c is not None and c != const_c:
                        continue
                    s, cout = _evaluate(kind, a, b, c, fault=(site, int(sv)))
                    assert s == f.sum_lut[code]
                    if kind != "msb":
                        assert cout == f.cout_lut[code]

    def test_detecting_codes_property(self):
        v = cell_variant("full")
        f = v.faults[0]
        assert all(f.detect_mask & (1 << n) for n in f.detecting_codes)

    def test_unknown_variant_rejected(self):
        with pytest.raises(FaultModelError):
            cell_variant("half-baked")


class TestVariantForBit:
    def test_assignment(self):
        assert variant_for_bit(0, 8, False).kind == "lsb0"
        assert variant_for_bit(0, 8, True).kind == "lsb1"
        assert variant_for_bit(7, 8, False).kind == "msb"
        assert variant_for_bit(3, 8, False).kind == "full"

    def test_two_bit_operator(self):
        assert variant_for_bit(0, 2, False).kind == "lsb0"
        assert variant_for_bit(1, 2, False).kind == "msb"

    def test_bounds(self):
        with pytest.raises(FaultModelError):
            variant_for_bit(8, 8, False)
        with pytest.raises(FaultModelError):
            variant_for_bit(0, 1, False)

    @given(st.integers(0, 15), st.integers(2, 16))
    def test_every_bit_resolves(self, bit, width):
        if bit >= width:
            return
        v = variant_for_bit(bit, width, False)
        assert v.fault_count > 0
