"""Tests for the canonic-signed-digit package."""

import pytest
from hypothesis import given, strategies as st

from repro.csd import (
    MultiplierPlan,
    csd_decode,
    csd_encode,
    csd_from_string,
    csd_nonzero_digits,
    csd_to_string,
    is_canonical,
    plan_multiplier,
    quantize_filter,
    quantize_to_csd,
)
from repro.errors import CsdError


class TestEncode:
    @given(st.integers(-(1 << 20), 1 << 20))
    def test_roundtrip(self, value):
        assert csd_decode(csd_encode(value)) == value

    @given(st.integers(-(1 << 20), 1 << 20))
    def test_canonical_property(self, value):
        assert is_canonical(csd_encode(value))

    @given(st.integers(1, 1 << 20))
    def test_no_more_nonzeros_than_binary(self, value):
        binary_ones = bin(value).count("1")
        assert csd_nonzero_digits(csd_encode(value)) <= binary_ones

    def test_classic_example(self):
        # 7 = 8 - 1 : +00- (one less adder than 4+2+1)
        assert csd_encode(7) == [-1, 0, 0, 1]

    def test_zero(self):
        assert csd_encode(0) == []
        assert csd_decode([]) == 0

    def test_string_roundtrip(self):
        digits = csd_encode(45)
        assert csd_from_string(csd_to_string(digits)) == digits

    def test_string_rejects_garbage(self):
        with pytest.raises(CsdError):
            csd_from_string("+0x")

    def test_decode_rejects_bad_digit(self):
        with pytest.raises(CsdError):
            csd_decode([2])


class TestQuantize:
    def test_respects_budget(self):
        q = quantize_to_csd(0.4999, frac=12, max_nonzeros=2)
        assert q.nonzeros <= 2

    def test_unconstrained_hits_grid(self):
        q = quantize_to_csd(0.375, frac=8, max_nonzeros=8)
        assert q.value == pytest.approx(0.375)
        assert q.error == pytest.approx(0.0)

    def test_tight_budget_costs_accuracy(self):
        loose = quantize_to_csd(0.2371, frac=14, max_nonzeros=6)
        tight = quantize_to_csd(0.2371, frac=14, max_nonzeros=1)
        assert tight.nonzeros <= 1
        assert tight.error >= loose.error

    def test_negative_value(self):
        q = quantize_to_csd(-0.25, frac=8, max_nonzeros=2)
        assert q.raw < 0
        assert q.value == pytest.approx(-0.25)

    def test_zero_budget_rejected(self):
        with pytest.raises(CsdError):
            quantize_to_csd(0.5, frac=8, max_nonzeros=0)

    @given(st.floats(-0.99, 0.99), st.integers(1, 4))
    def test_error_bounded_by_budgeted_grid(self, value, budget):
        q = quantize_to_csd(value, frac=10, max_nonzeros=budget)
        # Never worse than rounding to the single nearest power of two
        # (the budget-1 fallback) plus a grid step.
        assert q.error <= max(abs(value) / 2, 2**-10) + 2**-10

    def test_quantize_filter_length(self):
        qs = quantize_filter([0.1, -0.2, 0.3], frac=10, max_nonzeros=3)
        assert len(qs) == 3
        assert all(q.nonzeros <= 3 for q in qs)


class TestMultiplierPlan:
    def test_terms_most_significant_first(self):
        q = quantize_to_csd(0.40625, frac=8, max_nonzeros=4)  # 0.5 - 0.125 + ...
        plan = plan_multiplier(q)
        shifts = [t.shift for t in plan.terms]
        assert shifts == sorted(shifts)

    def test_adder_count(self):
        q = quantize_to_csd(0.40625, frac=8, max_nonzeros=4)
        plan = plan_multiplier(q)
        assert plan.adder_count == len(plan.terms) - 1

    def test_plan_value_matches_coefficient(self):
        q = quantize_to_csd(0.3331, frac=12, max_nonzeros=4)
        plan = plan_multiplier(q)
        value = sum(t.sign * 2.0**-t.shift for t in plan.terms)
        assert value == pytest.approx(abs(q.value))

    def test_negative_coefficient_sets_negate(self):
        q = quantize_to_csd(-0.25, frac=8, max_nonzeros=2)
        plan = plan_multiplier(q)
        assert plan.negate
        assert plan.terms[0].sign == 1  # magnitude leads with +

    def test_zero_plan(self):
        q = quantize_to_csd(0.0, frac=8, max_nonzeros=2)
        plan = plan_multiplier(q)
        assert plan.is_zero
        assert plan.adder_count == 0

    def test_partial_magnitude_bound_monotone(self):
        q = quantize_to_csd(0.456, frac=12, max_nonzeros=4)
        plan = plan_multiplier(q)
        bounds = [plan.partial_magnitude_bound(i)
                  for i in range(1, len(plan.terms) + 1)]
        assert bounds == sorted(bounds)
