"""Linear LFSR models, variance propagation, amplitude distributions:
predictions must match bit-true simulation."""

import numpy as np
import pytest

from repro.analysis import (
    bernoulli_sum_distribution,
    cascade,
    decorrelated_lfsr_model,
    max_variance_lfsr_model,
    model_power_spectrum,
    predict_node_variances,
    predicted_sigma_at_tap,
    predicted_tap_distribution,
    simulated_tap_histogram,
    type1_lfsr_model,
    type2_lfsr_model,
    uniform_sum_distribution,
    uniform_white_model,
)
from repro.analysis.spectrum import band_power, generator_spectrum
from repro.errors import AnalysisError
from repro.generators import Type1Lfsr, Type2Lfsr, match_width
from repro.rtl import simulate

from helpers import build_small_design


class TestType1Model:
    def test_impulse_response_shape(self):
        g = type1_lfsr_model(12).g
        assert g[0] == -1.0
        assert g[1] == 0.5
        assert len(g) == 12

    def test_model_variance_matches_sequence(self):
        model = type1_lfsr_model(12)
        measured = (Type1Lfsr(12).sequence(4095) / 2**11).var()
        assert model.output_variance() == pytest.approx(measured, rel=0.01)

    def test_model_mean_is_near_zero(self):
        model = type1_lfsr_model(12)
        assert abs(model.output_mean()) < 1e-3

    def test_model_spectrum_matches_measured(self):
        model = type1_lfsr_model(12)
        fm, pm = model_power_spectrum(model, n_points=256)
        fs, ps = generator_spectrum(Type1Lfsr(12))
        for lo, hi in ((0.002, 0.05), (0.1, 0.2), (0.3, 0.45)):
            assert band_power(fm, pm, lo, hi) == pytest.approx(
                band_power(fs, ps, lo, hi), rel=0.15)

    def test_direction_reverses_response(self):
        fwd = type1_lfsr_model(12, "msb_to_lsb").g
        rev = type1_lfsr_model(12, "lsb_to_msb").g
        assert np.array_equal(rev, fwd[::-1])

    def test_unknown_direction(self):
        with pytest.raises(AnalysisError):
            type1_lfsr_model(12, "diagonal")


class TestType2Model:
    def test_segments_partition_register(self):
        model = type2_lfsr_model(12, 0x12B9)
        total = sum(len(b) for b in model.branches)
        assert total == 12

    def test_variance_close_to_measured(self):
        model = type2_lfsr_model(12, 0x12B9)
        measured = (Type2Lfsr(12).sequence(4095) / 2**11).var()
        assert model.output_variance() == pytest.approx(measured, rel=0.1)

    def test_spectrum_flatter_than_type1(self):
        m1 = type1_lfsr_model(12)
        m2 = type2_lfsr_model(12, 0x12B9)
        f1, p1 = model_power_spectrum(m1)
        f2, p2 = model_power_spectrum(m2)
        lo1 = band_power(f1, p1, 0.002, 0.01)
        lo2 = band_power(f2, p2, 0.002, 0.01)
        assert lo2 > 3 * lo1

    def test_degree_mismatch(self):
        with pytest.raises(AnalysisError):
            type2_lfsr_model(10, 0x12B9)


class TestVariancePropagation:
    """Eq. 1 of the paper against bit-true simulation."""

    @pytest.mark.parametrize("model_fn,gen_key", [
        (type1_lfsr_model, "LFSR-1"),
        (decorrelated_lfsr_model, "LFSR-D"),
        (max_variance_lfsr_model, "LFSR-M"),
    ])
    def test_predicted_sigma_matches_simulation(self, model_fn, gen_key,
                                                lp_design, ctx):
        model = model_fn(12)
        gen = ctx.standard_generators()[gen_key]
        nid = lp_design.tap_accumulator(20)
        raw = match_width(gen.sequence(8192), 12, 12)
        measured = simulate(lp_design.graph, raw,
                            keep_nodes=[nid]).normalized(nid).std()
        predicted = predicted_sigma_at_tap(lp_design, 20, model)
        assert predicted == pytest.approx(measured, rel=0.05)

    def test_paper_tap20_attenuation_ratio(self, lp_design):
        """Figure 6/7: the decorrelator raises tap-20 sigma ~3.4x."""
        s1 = predicted_sigma_at_tap(lp_design, 20, type1_lfsr_model(12))
        sd = predicted_sigma_at_tap(lp_design, 20, decorrelated_lfsr_model(12))
        assert 2.0 < sd / s1 < 5.0

    def test_all_nodes_have_predictions(self, small_design):
        out = predict_node_variances(small_design, uniform_white_model(12))
        assert set(out) == {n.nid for n in small_design.graph.arithmetic_nodes}
        for nv in out.values():
            assert nv.sigma >= 0.0
            assert nv.untested_upper_bits >= 0.0


class TestDistributions:
    def test_bernoulli_two_weights(self):
        dist = bernoulli_sum_distribution(np.array([0.5, -0.25]), bins=2048)
        # four equally likely outcomes: 0, 0.5, -0.25, 0.25
        for v in (0.0, 0.5, -0.25, 0.25):
            assert dist.probability(v - 0.01, v + 0.01) == pytest.approx(0.25,
                                                                         abs=1e-6)

    def test_bernoulli_sigma_formula(self):
        w = np.array([0.3, -0.2, 0.1])
        dist = bernoulli_sum_distribution(w, bins=8192)
        assert dist.sigma() == pytest.approx(0.5 * np.sqrt(np.sum(w**2)),
                                             rel=0.01)

    def test_uniform_sum_sigma(self):
        w = np.array([0.5, 0.25])
        dist = uniform_sum_distribution(w, bins=8192)
        expected = np.sqrt(np.sum(w**2) / 3.0)
        assert dist.sigma() == pytest.approx(expected, rel=0.02)

    def test_predicted_matches_histogram_lfsr1(self, lp_design, ctx):
        """Figure 8: theory curve vs simulation histogram."""
        model = type1_lfsr_model(12)
        pred = predicted_tap_distribution(lp_design, 20, model)
        hist = simulated_tap_histogram(lp_design, 20,
                                       ctx.standard_generators()["LFSR-1"],
                                       n_vectors=16384, bins=101,
                                       span=pred.grid[-1])
        pred_on = np.interp(hist.grid, pred.grid, pred.pdf)
        overlap = np.sum(np.minimum(pred_on, hist.pdf)) * hist.bin_width
        assert overlap > 0.9

    def test_unknown_model_rejected(self, lp_design):
        from repro.analysis import SourceModel
        odd = SourceModel(name="odd", branches=((1.0,),), sigma2=0.5, mean=0.1)
        with pytest.raises(AnalysisError):
            predicted_tap_distribution(lp_design, 20, odd)

    def test_cascade_variance_composition(self):
        model = uniform_white_model(12)
        h = np.array([0.5, -0.25, 0.125])
        seen = cascade(model, h)
        assert seen.output_variance() == pytest.approx(
            (1 / 3) * np.sum(h**2))
