"""Unit tests for the event-driven engine's building blocks.

The randomized three-way equivalence suite
(``test_gates_equivalence.py``) pins the event engine's *verdicts* to
the reference oracle; these tests pin the pieces it is built from —
super-gate fusion, recipe truth tables, the workspace buffer-reuse
contract, and the frontier-empty whole-chunk skip — so a regression
localizes to the broken layer instead of surfacing as a distant
verdict mismatch.
"""

import numpy as np
import pytest

from repro.gates import (
    elaborate,
    enumerate_cell_faults,
    fault_parallel_reference,
    fused_program,
    gate_level_missed,
    gate_level_missed_reference,
)
from repro.gates.compiled import (
    ConeWorkspace,
    compiled_program,
    golden_net_waves,
)
from repro.gates.eventsim import (
    MAX_FUSE_DEPTH,
    MAX_FUSE_INPUTS,
    MAX_FUSE_MEMBERS,
    fuse_program,
    recipe_truth_table,
)
from repro.gates.fault_parallel import _grade_cone_batch
from repro.gates.gatesim import pack_input_bits
from repro.telemetry import Telemetry, set_telemetry

from helpers import SMALL_COEFSETS, build_small_design


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20260807)


class TestRecipeTruthTable:
    @pytest.mark.parametrize("kind,fn", [
        ("xor", lambda a, b: a ^ b),
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
    ])
    def test_two_input_primitives(self, kind, fn):
        table = recipe_truth_table(((kind, 0, 1),), 2)
        for m in range(4):
            a, b = m & 1, (m >> 1) & 1
            assert (table >> m) & 1 == fn(a, b), (kind, m)

    def test_one_input_primitives(self):
        assert recipe_truth_table((("not", 0, 0),), 1) == 0b01
        assert recipe_truth_table((("buf", 0, 0),), 1) == 0b10

    def test_nested_members_and_negative_refs(self):
        # member 0 = a & b, member 1 = m0 ^ c  ->  (a & b) ^ c
        recipe = (("and", 0, 1), ("xor", -1, 2))
        table = recipe_truth_table(recipe, 3)
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert (table >> m) & 1 == ((a & b) ^ c), m

    def test_sequential_and_oversized_recipes_have_no_table(self):
        assert recipe_truth_table((("dff", 0, 0),), 1) == -1
        wide = tuple(("or", i, i + 1)
                     for i in range(MAX_FUSE_INPUTS))
        assert recipe_truth_table(wide, MAX_FUSE_INPUTS + 1) == -1


class TestFusion:
    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS))
    def test_fusion_invariants(self, key):
        design = build_small_design(key)
        prog = compiled_program(elaborate(design.graph))
        fused = fuse_program(prog)
        stats = fused.stats
        assert stats["fused_levels"] <= stats["orig_levels"]
        assert stats["levels_fused"] == (stats["orig_levels"]
                                         - stats["fused_levels"])
        assert fused.n_levels == stats["fused_levels"]
        assert fused.unit_count() == stats["units"]
        assert stats["units"] + stats["gates_absorbed"] == stats["ops"]
        # Fusion must actually bite on these multiplier-heavy designs.
        assert stats["super_gates"] > 0
        assert stats["levels_fused"] > 0

    @pytest.mark.parametrize("key", sorted(SMALL_COEFSETS)[:2])
    def test_groups_respect_budgets_and_tables(self, key):
        design = build_small_design(key)
        prog = compiled_program(elaborate(design.graph))
        fused = fuse_program(prog)
        seen_outs = set()
        for groups in fused.levels:
            for g in groups:
                assert g.n_ext <= MAX_FUSE_INPUTS
                assert g.n_members <= MAX_FUSE_MEMBERS
                assert g.ext.shape == (len(g.out), g.n_ext)
                # External slots of one unit are distinct nets.
                for row in g.ext:
                    assert len(set(row.tolist())) == g.n_ext
                if not g.is_dff:
                    assert g.table == recipe_truth_table(g.recipe,
                                                         g.n_ext)
                for net in g.out.tolist():
                    assert net not in seen_outs  # single driver
                    seen_outs.add(net)
        # Every original combinational gate is locatable for pin-fault
        # injection, and every unit output for stuck-at injection.
        assert len(fused.gate_loc) + len(
            [1 for gs in fused.levels for g in gs if g.is_dff
             for _ in g.out]) == fused.stats["ops"]
        assert len(fused.out_loc) == fused.unit_count()

    def test_fused_program_memoizes_on_program(self):
        design = build_small_design("plain")
        prog = compiled_program(elaborate(design.graph))
        assert fused_program(prog) is fused_program(prog)


def _batch_setup(key, rng, n_vectors=160):
    design = build_small_design(key)
    nl = elaborate(design.graph)
    prog = compiled_program(nl)
    raw = rng.integers(-2048, 2048, size=n_vectors)
    waves = golden_net_waves(prog, pack_input_bits(raw,
                                                   len(nl.input_bits)))
    from repro.gates.compiled import expand_lane_waves

    lanes = expand_lane_waves(waves)
    faults = [f.netlist_fault
              for f in enumerate_cell_faults(design.graph, nl)]
    return nl, prog, raw, lanes, faults


def _ref_verdicts(nl, raw, batch):
    """Reference verdicts for arbitrarily large batches (64 per pass)."""
    parts = [fault_parallel_reference(nl, raw, batch[i:i + 64])
             for i in range(0, len(batch), 64)]
    return np.concatenate(parts)


class TestWorkspaceReuse:
    def test_shrink_then_grow_buffers(self):
        ws = ConeWorkspace()
        big = ws.get("x", 8, 4)
        big.fill(7)
        small = ws.get("x", 2, 2)
        # Shrinking re-slices the same persistent buffer ...
        assert np.shares_memory(big, small)
        assert small.shape == (2, 2)
        grown = ws.get("x", 16, 16)
        # ... while growing allocates fresh capacity of the right size.
        assert grown.shape == (16, 16)
        assert ws.get("x", 16, 16).size == 256

    def test_shared_workspace_across_batch_shapes(self, rng):
        """One workspace, batches that shrink then grow: verdicts match
        the reference — no stale rows leak between cone builds."""
        nl, prog, raw, lanes, faults = _batch_setup("plain", rng)
        ws = ConeWorkspace()
        # Large batch (wide buffers), then tiny (shrunk views), then
        # large again (possibly regrown) — every verdict stays exact.
        windows = [faults[:128], faults[5:9], faults[:128],
                   faults[40:44], faults[64:192]]
        for i, batch in enumerate(windows):
            got, _stats = _grade_cone_batch(prog, lanes, batch, 64, ws,
                                            engine="event")
            expect = _ref_verdicts(nl, raw, batch)
            assert np.array_equal(got, expect), i

    def test_word_engine_shares_the_same_contract(self, rng):
        nl, prog, raw, lanes, faults = _batch_setup("with_zero", rng)
        ws = ConeWorkspace()
        for i, batch in enumerate([faults[:96], faults[3:7],
                                   faults[:96]]):
            got, _stats = _grade_cone_batch(prog, lanes, batch, 64, ws,
                                            engine="word")
            expect = _ref_verdicts(nl, raw, batch)
            assert np.array_equal(got, expect), i


class TestFrontierSkip:
    def test_unexcited_faults_skip_whole_chunks(self, rng):
        """Stuck-ats that agree with a constant stimulus never excite:
        the event cone proves chunks golden and skips them."""
        design = build_small_design("plain")
        nl = elaborate(design.graph)
        prog = compiled_program(nl)
        raw = np.zeros(256, dtype=np.int64)
        waves = golden_net_waves(
            prog, pack_input_bits(raw, len(nl.input_bits)))
        from repro.gates.compiled import expand_lane_waves

        lanes = expand_lane_waves(waves)
        all_faults = [f.netlist_fault
                      for f in enumerate_cell_faults(design.graph, nl)]
        # Stuck-at-0 on nets that are constant 0 under the all-zero
        # stimulus: provably never excited, so every chunk's frontier
        # is empty and the cone must skip it outright.
        quiet = {n for n in range(waves.shape[0]) if not waves[n].any()}
        batch = [f for f in all_faults
                 if f.lines[0] == "net" and not f.value
                 and int(f.lines[1]) in quiet][:64]
        assert len(batch) >= 8
        got, stats = _grade_cone_batch(prog, lanes, batch, 64,
                                       ConeWorkspace(), engine="event",
                                       dense_hint=False)
        expect = _ref_verdicts(nl, raw, batch)
        assert np.array_equal(got, expect)
        assert not got.any()
        assert stats["words_skipped"] > 0

    def test_missed_list_stays_input_ordered(self, rng):
        """The early-exit/skip paths scatter verdicts back by index:
        missed lists preserve enumeration order under any scheduler."""
        from repro.schedule import make_scheduler

        design = build_small_design("single_digit")
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        raw = np.zeros(200, dtype=np.int64)  # skip-heavy stimulus
        expect_keys = [(f.node_id, f.bit, f.cell_fault)
                       for f in gate_level_missed_reference(nl, raw,
                                                            faults)]
        for sched in (None, make_scheduler("random")):
            missed = gate_level_missed(nl, raw, faults, engine="event",
                                       scheduler=sched)
            got_keys = [(f.node_id, f.bit, f.cell_fault)
                        for f in missed]
            assert got_keys == expect_keys
            # Input order, not schedule order: positions ascend.
            pos = {(f.node_id, f.bit, f.cell_fault): i
                   for i, f in enumerate(faults)}
            idx = [pos[k] for k in got_keys]
            assert idx == sorted(idx)

    def test_telemetry_counters_surface(self, rng):
        design = build_small_design("plain")
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        raw = rng.integers(-2048, 2048, size=128)
        tel = Telemetry()
        previous = set_telemetry(tel)
        try:
            gate_level_missed(nl, raw, faults, engine="event")
        finally:
            set_telemetry(previous)
        assert tel.counter("gates.lut_fused_levels").value > 0
        assert tel.counter("gates.frontier_nets").value > 0
        assert tel.counter("gates.fault_batches").value > 0
