"""Integration tests asserting the paper's headline claims at shape level.

These are the acceptance tests of the reproduction: each asserts one of
the qualitative results the paper reports (who wins, by what factor,
where the differences concentrate), on the full Table 1 designs.
"""

import numpy as np
import pytest

from repro.experiments import find_serious_missed_fault
from repro.faultsim import fault_effect
from repro.generators import SineGenerator


@pytest.fixture(scope="module")
def t4(ctx):
    """Table 4 missed-fault matrix."""
    gens = ctx.standard_generators()
    n = ctx.config.table4_vectors
    return {
        d: {g: ctx.coverage(d, gens[g], n).missed() for g in gens}
        for d in ("LP", "BP", "HP")
    }


class TestSection5_When99PercentIsNotEnough:
    def test_lfsr_coverage_is_deceptively_high(self, ctx):
        cov = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"],
                           ctx.config.table4_vectors)
        assert cov.coverage() > 0.98  # paper: 99.1%

    def test_missed_fault_is_serious(self, ctx):
        """An LFSR-missed fault is excitable by an ordinary in-band sine
        and corrupts the output visibly (Figure 2)."""
        miss = find_serious_missed_fault(ctx)
        effect = fault_effect(
            ctx.designs["LP"], miss.fault,
            SineGenerator(12, freq=miss.freq, amplitude=miss.amplitude),
            4000,
        )
        assert np.sum(effect != 0) >= 4          # a spike train, not a glitch
        assert np.max(np.abs(effect)) > 0.01     # well above output LSB

    def test_serious_fault_lives_in_upper_bits_mid_chain(self, ctx):
        miss = find_serious_missed_fault(ctx)
        node = ctx.designs["LP"].graph.node(miss.fault.node_id)
        below = node.fmt.width - 1 - miss.fault.bit
        assert 1 <= below <= 4          # paper: 3 bits below the MSB
        assert 10 <= node.tap <= 30     # paper: tap 20

    def test_serious_fault_needs_a_difficult_test(self, ctx):
        miss = find_serious_missed_fault(ctx)
        difficult = 0b01100110  # T1, T2, T5, T6
        assert miss.fault.effective_mask & ~difficult == 0


class TestSection8_GeneratorComparison:
    def test_lfsr1_lags_lfsrd_only_on_lowpass(self, t4):
        """The Type 1 rolloff hurts exactly where the passband is low."""
        assert t4["LP"]["LFSR-1"] > 1.2 * t4["LP"]["LFSR-D"]
        assert t4["BP"]["LFSR-1"] < 1.1 * t4["BP"]["LFSR-D"]
        assert t4["HP"]["LFSR-1"] < 1.1 * t4["HP"]["LFSR-D"]

    def test_max_variance_lags_all_single_generators_on_every_design(self, t4):
        for d in ("LP", "BP", "HP"):
            others = [t4[d][g] for g in ("LFSR-1", "LFSR-D")]
            assert t4[d]["LFSR-M"] > max(others)

    def test_max_variance_is_design_insensitive(self, t4):
        """Flat spectrum -> similar misses on all three filters."""
        counts = [t4[d]["LFSR-M"] for d in ("LP", "BP", "HP")]
        assert max(counts) < 1.35 * min(counts)

    def test_ramp_good_on_lowpass_terrible_elsewhere(self, t4):
        assert t4["LP"]["Ramp"] < 0.6 * t4["BP"]["Ramp"]
        assert t4["LP"]["Ramp"] < 0.6 * t4["HP"]["Ramp"]
        # worst-or-near-worst generator on BP and HP
        assert t4["BP"]["Ramp"] > t4["BP"]["LFSR-D"]
        assert t4["HP"]["Ramp"] > t4["HP"]["LFSR-D"]

    def test_bandpass_easiest_for_wideband_generators(self, t4):
        for g in ("LFSR-1", "LFSR-D"):
            assert t4["BP"][g] <= min(t4["LP"][g], t4["HP"][g])


class TestSection9_MixedScheme:
    def test_mixed_beats_both_constituents(self, ctx):
        n = ctx.config.table4_vectors
        mixed = ctx.coverage("LP", ctx.mixed_generator(ctx.config.fig13_switch),
                             n).missed()
        lfsr1 = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"], n).missed()
        lfsrm = ctx.coverage("LP", ctx.standard_generators()["LFSR-M"], n).missed()
        assert mixed < lfsr1
        assert mixed < lfsrm

    def test_mixed_reduction_factor_over_lfsr(self, ctx):
        """Paper: 'as much as a factor of 3.5 over basic LFSR-based
        testing'; we require at least 2x on the lowpass design."""
        n8 = ctx.config.table6_vectors
        n4 = ctx.config.table4_vectors
        mixed = ctx.coverage("LP", ctx.mixed_generator(), n8).missed()
        lfsr1 = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"],
                             n4).missed()
        assert lfsr1 / mixed > 2.0

    def test_mixed_close_to_decorrelated_mixed(self, ctx):
        """Table 6 remark: the single-LFSR mixed scheme matches an
        LFSR-D/LFSR-M scheme without needing the decorrelator."""
        from repro.faultsim import run_fault_coverage
        from repro.generators import (DecorrelatedLfsr, MaxVarianceLfsr,
                                      SwitchedGenerator)
        n8 = ctx.config.table6_vectors
        switch = ctx.config.table6_switch
        mixed_1m = ctx.coverage("LP", ctx.mixed_generator(), n8).missed()
        dm = SwitchedGenerator([(DecorrelatedLfsr(12), switch),
                                (MaxVarianceLfsr(12), None)])
        mixed_dm = run_fault_coverage(ctx.designs["LP"], dm, n8,
                                      universe=ctx.universe("LP")).missed()
        assert abs(mixed_1m - mixed_dm) < 0.25 * mixed_dm


class TestSection7_AnalysisPredictsProblems:
    def test_variance_analysis_flags_lowpass_attenuation(self, ctx):
        from repro.analysis import flag_attenuated_nodes, type1_lfsr_model, \
            decorrelated_lfsr_model
        lp = ctx.designs["LP"]
        flagged_1 = flag_attenuated_nodes(lp, type1_lfsr_model(12),
                                          threshold_bits=2.0)
        flagged_d = flag_attenuated_nodes(lp, decorrelated_lfsr_model(12),
                                          threshold_bits=2.0)
        assert len(flagged_1) > len(flagged_d)

    def test_flagged_nodes_hold_the_lfsr1_specific_misses(self, ctx):
        """Nodes the variance analysis flags for LFSR-1 but not LFSR-D
        must account for most of the LFSR-1-only missed faults."""
        from repro.analysis import type1_lfsr_model, decorrelated_lfsr_model, \
            flag_attenuated_nodes
        n = ctx.config.table4_vectors
        lp = ctx.designs["LP"]
        gens = ctx.standard_generators()
        m1 = {f.index for f in ctx.coverage("LP", gens["LFSR-1"], n).missed_faults()}
        md = {f.index for f in ctx.coverage("LP", gens["LFSR-D"], n).missed_faults()}
        only1 = m1 - md
        flagged = {nv.node_id for nv in
                   flag_attenuated_nodes(lp, type1_lfsr_model(12),
                                         threshold_bits=1.5)}
        uni = ctx.universe("LP")
        in_flagged = sum(1 for i in only1 if uni.faults[i].node_id in flagged)
        assert in_flagged / max(1, len(only1)) > 0.6
