"""Miss classification (difficult vs near-redundant) and fault injection."""

import numpy as np
import pytest

from repro.faultsim import (
    activation_counts,
    build_fault_universe,
    classify_missed_faults,
    coverage_summary,
    fault_effect,
    faulty_output,
    missed_fault_map,
    run_fault_coverage,
    to_injected_fault,
)
from repro.generators import SineGenerator, Type1Lfsr, UniformWhiteGenerator

from helpers import build_small_design


class TestInjection:
    def test_injected_fault_changes_output_when_excited(self, small_design):
        uni = build_fault_universe(small_design.graph)
        gen = UniformWhiteGenerator(12, seed=3)
        result = run_fault_coverage(small_design, gen, 256, universe=uni)
        detected = [f for f in uni.faults
                    if result.detect_time[f.index] < 256][:10]
        from repro.rtl import simulate
        raw = gen.sequence(256)
        good = simulate(small_design.graph, raw).output
        changed = 0
        for f in detected:
            bad = faulty_output(small_design, f, gen, 256)
            if np.any(bad != good):
                changed += 1
        # excitation guarantees a local error; nearly all reach the output
        assert changed >= 8

    def test_unexcited_fault_leaves_output_unchanged(self, small_design):
        uni = build_fault_universe(small_design.graph)
        gen = UniformWhiteGenerator(12, seed=3)
        result = run_fault_coverage(small_design, gen, 256, universe=uni)
        missed = result.missed_faults()
        if not missed:
            pytest.skip("everything detected on this design")
        effect = fault_effect(small_design, missed[0], gen, 256)
        assert np.all(effect == 0)

    def test_injected_fault_lut_shapes(self, small_design):
        uni = build_fault_universe(small_design.graph)
        inj = to_injected_fault(uni.faults[0])
        assert inj.sum_lut.shape == (8,)
        assert inj.cout_lut.shape == (8,)
        assert inj.node_id == uni.faults[0].node_id


class TestClassification:
    def test_split_is_exhaustive(self, small_design):
        uni = build_fault_universe(small_design.graph)
        result = run_fault_coverage(small_design, Type1Lfsr(12), 64,
                                    universe=uni)
        stimulus = SineGenerator(12, freq=0.02, amplitude=0.9)
        cls = classify_missed_faults(small_design, result, stimulus,
                                     n_vectors=2048)
        assert cls.total_missed == result.missed()
        assert cls.serious_count == len(cls.difficult)

    def test_richer_stimulus_finds_more_serious_faults(self, small_design):
        uni = build_fault_universe(small_design.graph)
        result = run_fault_coverage(small_design, Type1Lfsr(12), 32,
                                    universe=uni)
        weak = classify_missed_faults(
            small_design, result,
            SineGenerator(12, freq=0.02, amplitude=0.05), n_vectors=2048)
        strong = classify_missed_faults(
            small_design, result,
            UniformWhiteGenerator(12), n_vectors=2048)
        assert strong.serious_count >= weak.serious_count

    def test_activation_counts_cover_universe(self, small_design):
        uni = build_fault_universe(small_design.graph)
        act = activation_counts(small_design, uni, UniformWhiteGenerator(12),
                                n_vectors=2048)
        assert len(act) == uni.fault_count
        assert act.sum() > 0.9 * uni.fault_count


class TestReports:
    def test_coverage_summary_mentions_counts(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 128)
        text = coverage_summary(result)
        assert str(result.missed()) in text
        assert small_design.name in text

    def test_missed_fault_map(self, small_design):
        result = run_fault_coverage(small_design, Type1Lfsr(12), 16)
        text = missed_fault_map(result)
        assert "missed faults" in text

    def test_missed_fault_map_empty(self, small_design):
        result = run_fault_coverage(small_design, UniformWhiteGenerator(12),
                                    4096)
        if result.missed() == 0:
            assert missed_fault_map(result) == "no missed faults"
