"""Structural Verilog export: well-formedness and completeness checks.

Without an HDL simulator in the environment, these tests verify the
emitted text structurally: legal identifiers, one assignment per gate,
one flop per register bit, consistent port widths, and full driver
coverage (every used wire is driven exactly once).
"""

import re

import pytest

from repro.errors import DesignError
from repro.gates import GateNetlist, elaborate, netlist_to_verilog, save_verilog

from helpers import build_small_design


@pytest.fixture(scope="module")
def verilog():
    design = build_small_design("plain")
    nl = elaborate(design.graph)
    return design, nl, netlist_to_verilog(nl)


class TestWellFormedness:
    def test_module_and_ports(self, verilog):
        design, nl, text = verilog
        assert text.startswith("//")
        assert f"module filter_bist_cut" in text
        assert f"input  wire [{design.input_fmt.width - 1}:0] x," in text
        out_w = design.output_fmt.width
        assert f"output wire [{out_w - 1}:0] y" in text
        assert text.rstrip().endswith("endmodule")

    def test_one_assignment_per_gate(self, verilog):
        _, nl, text = verilog
        wire_assigns = re.findall(r"^\s*wire \w+ = .*;$", text, re.M)
        # input taps + const0/1 + one per gate
        assert len(wire_assigns) == nl.gate_count + len(nl.input_bits) + 2

    def test_one_flop_per_register_bit(self, verilog):
        _, nl, text = verilog
        assert len(re.findall(r"^\s*reg \w+;$", text, re.M)) == len(nl.dffs)
        assert len(re.findall(r"<= 1'b0;", text)) == len(nl.dffs)

    def test_identifiers_legal(self, verilog):
        _, _, text = verilog
        for ident in re.findall(r"wire (\w+) =", text):
            assert re.fullmatch(r"[A-Za-z_]\w*", ident)

    def test_every_wire_driven_once(self, verilog):
        _, _, text = verilog
        drivers = re.findall(r"^\s*(?:wire (\w+) =|assign (\w+) =)", text, re.M)
        names = [a or b for a, b in drivers]
        assert len(names) == len(set(names))

    def test_no_undriven_references(self, verilog):
        _, _, text = verilog
        driven = set(re.findall(r"^\s*wire (\w+) =", text, re.M))
        driven |= set(re.findall(r"^\s*reg (\w+);", text, re.M))
        driven |= {"clk", "rst", "x", "y", "const0", "const1"}
        body = text.split(");", 1)[1]
        used = set(re.findall(r"[A-Za-z_]\w*", body))
        used -= {"module", "input", "output", "wire", "reg", "assign",
                 "always", "posedge", "begin", "end", "endmodule", "if",
                 "else", "b0", "b1"}
        undriven = {u for u in used if not u.isdigit()} - driven
        assert not undriven, sorted(undriven)[:10]


class TestApi:
    def test_empty_netlist_rejected(self):
        with pytest.raises(DesignError):
            netlist_to_verilog(GateNetlist())

    def test_save(self, tmp_path):
        design = build_small_design("single_digit")
        nl = elaborate(design.graph)
        path = tmp_path / "cut.v"
        save_verilog(nl, str(path), module_name="tiny")
        assert "module tiny" in path.read_text()

    def test_name_collisions_resolved(self):
        """Two netlist nets with the same sanitized name must get
        distinct Verilog identifiers."""
        design = build_small_design("plain")
        nl = elaborate(design.graph)
        nl.names[5] = nl.names[4]  # force a collision
        text = netlist_to_verilog(nl)
        drivers = re.findall(r"^\s*(?:wire|reg) (\w+)", text, re.M)
        assert len(drivers) == len(set(drivers))
