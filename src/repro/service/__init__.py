"""Async BIST evaluation service: job queue, batching, backpressure.

This package wraps the existing library pipeline — spectrum analysis,
generator ranking, fault grading, serious-fault search — behind a
dependency-free HTTP + JSON server (stdlib :mod:`asyncio` only) so
long sweeps can be submitted, queued and polled instead of run
inline:

* :mod:`repro.service.jobs` — the job model: states, priorities,
  idempotency keys, TTL result retention, parameter canonicalization.
* :mod:`repro.service.queue` — bounded fair queue with backpressure
  (429 + ``Retry-After``) and per-client token-bucket rate limiting.
* :mod:`repro.service.workers` — worker pool that coalesces identical
  requests and batches small ones into single vectorized passes.
* :mod:`repro.service.http` — the thin HTTP/1.1 layer and routes,
  including the ``GET /v1/events`` SSE stream.
* :mod:`repro.service.events` — thread-safe broker fanning job state
  transitions and live progress snapshots out to event subscribers.
* :mod:`repro.service.lifecycle` — assembly, warmup, ``/readyz``,
  graceful SIGTERM drain.
* :mod:`repro.service.client` — blocking stdlib client.
* :mod:`repro.service.testing` — in-process harness for tests.

Start one with ``repro serve --port 8337`` or, in process::

    from repro.service import EvaluationService, ServiceConfig

    EvaluationService(ServiceConfig(port=8337)).run()
"""

from .client import ServiceBusy, ServiceClient, ServiceClientError
from .events import EventBroker
from .http import HttpApi, negotiate_media_type
from .jobs import (BATCHABLE_KINDS, JOB_KINDS, PRIORITIES, Job, JobState,
                   JobStore, canonical_params)
from .lifecycle import EvaluationService, ServiceConfig
from .queue import (FairJobQueue, QueueClosedError, QueueFullError,
                    RateLimitedError, RateLimiter, TokenBucket)
from .testing import ServiceThread
from .workers import WorkerPool, execute_job

__all__ = [
    "BATCHABLE_KINDS",
    "JOB_KINDS",
    "PRIORITIES",
    "EvaluationService",
    "EventBroker",
    "FairJobQueue",
    "HttpApi",
    "Job",
    "JobState",
    "JobStore",
    "QueueClosedError",
    "QueueFullError",
    "RateLimitedError",
    "RateLimiter",
    "ServiceBusy",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceThread",
    "TokenBucket",
    "WorkerPool",
    "canonical_params",
    "execute_job",
    "negotiate_media_type",
]
