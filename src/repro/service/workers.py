"""Worker pool: drains the job queue into the evaluation pipeline.

A fixed set of asyncio worker tasks pull jobs off the
:class:`~repro.service.queue.FairJobQueue`; the blocking evaluation
work runs on a thread-pool executor so the event loop (and therefore
intake, polling and health endpoints) stays responsive.  Three
throughput tricks ride on top:

* **Batching** — after claiming a job of a batchable kind, a worker
  immediately takes up to ``batch_max - 1`` more queued jobs of the
  same kind and executes them as one pass: spectrum batches become a
  single stacked FFT (:func:`~repro.analysis.spectrum.generator_spectra`)
  and grade batches fan out through :func:`~repro.parallel.sweep.run_sweep`'s
  process pool.
* **Coalescing** — jobs are grouped by
  :attr:`~repro.service.jobs.Job.cache_key`; only one computation runs
  per key and every duplicate (in the batch or already in flight on
  another worker) is resolved from the same future.
* **Caching** — the shared :class:`~repro.experiments.ExperimentContext`
  is cache-backed, so results also persist across requests and
  restarts via :mod:`repro.cache`.

All results are bit-identical to calling the library directly — the
end-to-end suite asserts it.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.spectrum import generator_spectrum, power_db
from ..bist.selection import propose_scheme, rank_generators
from ..errors import ServiceError
from ..resolve import make_generator
from ..telemetry import TraceContext, child_collector, get_telemetry
from .jobs import BATCHABLE_KINDS, Job, JobState, JobStore
from .queue import FairJobQueue, QueueClosedError

__all__ = ["WorkerPool", "execute_job"]

logger = logging.getLogger("repro.service")

#: Outcome tuples shipped back from the executor: ("ok", result-dict)
#: or ("error", one-line message).
Outcome = Tuple[str, Any]

#: run_sweep publishes worker state through module globals, so only one
#: grade grid may fan out at a time (process-level parallelism happens
#: *inside* the sweep).
_SWEEP_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# Synchronous evaluation (runs on executor threads)
# ----------------------------------------------------------------------
def _grade_result(params: Dict[str, Any], result) -> Dict[str, Any]:
    return {
        "design": params["design"],
        "generator": result.generator_name,
        "vectors": params["vectors"],
        "width": params["width"],
        "fault_count": result.universe.fault_count,
        "detected": result.detected(),
        "missed": result.missed(),
        "coverage": float(result.coverage()),
    }


def _spectrum_result(params: Dict[str, Any], gen, freqs, power
                     ) -> Dict[str, Any]:
    step = max(1, len(freqs) // params["points"])
    return {
        "generator": gen.name,
        "width": params["width"],
        "freqs": [float(f) for f in freqs[::step]],
        "power_db": [float(p) for p in power_db(power[::step])],
    }


def execute_job(ctx, kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one request against the library — the reference path.

    The service's answers are, by construction, exactly what a direct
    library call returns; this function *is* that direct call, and the
    batched paths below must agree with it bit for bit.
    """
    if kind == "rank":
        design = ctx.designs[params["design"]]
        rankings = rank_generators(design)
        scheme = propose_scheme(design, n_vectors=params["vectors"])
        return {
            "design": params["design"],
            "vectors": params["vectors"],
            "rankings": [{"generator": r.generator.name,
                          "rating": r.rating,
                          "ratio": float(r.ratio)} for r in rankings],
            "proposed_scheme": scheme.name,
        }
    if kind == "grade":
        from ..parallel.sweep import sweep_generator

        gen = sweep_generator(params["generator"], params["width"],
                              params["vectors"])
        result = ctx.coverage(params["design"], gen, params["vectors"])
        return _grade_result(params, result)
    if kind == "spectrum":
        gen = make_generator(params["generator"], params["width"], 4096)
        freqs, power = generator_spectrum(gen)
        return _spectrum_result(params, gen, freqs, power)
    if kind == "gate-grade":
        from ..gates import (elaborate, enumerate_cell_faults,
                             gate_level_missed)
        from ..generators.base import match_width

        design = ctx.designs[params["design"]]
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        if params["faults"]:
            faults = faults[:params["faults"]]
        gen = make_generator(params["generator"], params["width"],
                             params["vectors"])
        raw = match_width(gen.sequence(params["vectors"]), gen.width,
                          design.input_fmt.width)
        missed = gate_level_missed(nl, raw, faults)
        detected = len(faults) - len(missed)
        return {
            "design": params["design"],
            "generator": params["generator"],
            "vectors": params["vectors"],
            "width": params["width"],
            "fault_count": len(faults),
            "detected": detected,
            "missed": len(missed),
            "coverage": detected / max(1, len(faults)),
        }
    if kind == "grade-shard":
        from ..cluster.shards import grade_shard
        from ..gates import elaborate, enumerate_cell_faults, resolve_engine
        from ..generators.base import match_width
        from ..telemetry import child_collector

        design = ctx.designs[params["design"]]
        nl = elaborate(design.graph)
        faults = enumerate_cell_faults(design.graph, nl)
        for i in params["indices"]:
            if i >= len(faults):
                raise ServiceError(
                    f"fault index {i} out of range for design "
                    f"{params['design']} ({len(faults)} faults)",
                    status=400)
        gen = make_generator(params["generator"], params["width"],
                             params["vectors"])
        raw = match_width(gen.sequence(params["vectors"]), gen.width,
                          design.input_fmt.width)
        trace = params.get("trace")
        ctx_trace = (TraceContext(trace["trace_id"], trace.get("span_id"))
                     if trace else None)
        # The shard runs under a *nested* child collector joined to the
        # coordinator's trace; its payload rides home inside the result
        # so a multi-node sweep grafts into one span tree.  Progress is
        # forwarded to the service collector so the job document (which
        # the coordinator polls) still updates live.
        outer = get_telemetry()

        def _forward(state) -> None:
            if outer.enabled:
                outer.progress(state.name, state.done, state.total,
                               **state.fields)

        with child_collector(ctx_trace, on_progress=_forward) as handle:
            doc = grade_shard(nl, raw, faults, params["indices"],
                              params["total"],
                              misr_width=params["misr_width"],
                              cache=ctx.cache,
                              chunk=params["chunk"] or None,
                              engine=params.get("engine") or None)
        doc.update({
            "design": params["design"],
            "generator": params["generator"],
            "vectors": params["vectors"],
            "width": params["width"],
            "total": params["total"],
            "misr_width": params["misr_width"],
            "engine": resolve_engine(params.get("engine") or None),
        })
        if handle.payload is not None:
            doc["trace"] = handle.payload
        return doc
    if kind == "recommend":
        from ..schedule import recommend_generator

        return recommend_generator(
            ctx, params["design"], vectors=params["vectors"],
            top_k=params["top_k"],
            confirm_vectors=params["confirm_vectors"],
            confirm_faults=params["confirm_faults"],
            bins=params["bins"])
    if kind == "serious-fault":
        from ..experiments.figures import find_serious_missed_fault

        miss = find_serious_missed_fault(ctx)
        design = ctx.designs["LP"]
        node = design.graph.node(miss.fault.node_id)
        return {
            "design": "LP",
            "fault": str(miss.fault.label),
            "node": node.name,
            "tap": node.tap,
            "bit": int(miss.fault.bit),
            "sine_freq": float(miss.freq),
            "sine_amplitude": float(miss.amplitude),
            "error_spikes": int(miss.spikes),
        }
    raise ServiceError(f"unknown job kind {kind!r}", status=400)


def _execute_safe(ctx, kind: str, params: Dict[str, Any]) -> Outcome:
    try:
        return ("ok", execute_job(ctx, kind, params))
    except Exception as exc:  # job-level isolation: one bad job != batch
        logger.warning("job execution failed (%s %r): %s", kind, params, exc)
        return ("error", f"{type(exc).__name__}: {exc}")


def _spectrum_batch(ctx, params_list: List[Dict[str, Any]]) -> List[Outcome]:
    """All spectra of a batch in one vectorized pass."""
    from ..analysis.spectrum import generator_spectra

    gens = [make_generator(p["generator"], p["width"], 4096)
            for p in params_list]
    spectra = generator_spectra(gens)
    return [("ok", _spectrum_result(p, gen, freqs, power))
            for p, gen, (freqs, power) in zip(params_list, gens, spectra)]


def _grade_batch(ctx, params_list: List[Dict[str, Any]],
                 grid_jobs: Optional[int]) -> List[Outcome]:
    """A batch of grade jobs as one process-pool sweep."""
    from ..parallel.sweep import SweepTask, run_sweep

    tasks = [SweepTask(design=p["design"], generator=p["generator"],
                       n_vectors=p["vectors"], width=p["width"])
             for p in params_list]
    with _SWEEP_LOCK:
        results = run_sweep(ctx, tasks, jobs=grid_jobs)
    return [("ok", _grade_result(p, r))
            for p, r in zip(params_list, results)]


def _execute_batch(ctx, kind: str, params_list: List[Dict[str, Any]],
                   grid_jobs: Optional[int]) -> List[Outcome]:
    """Executor entry point: evaluate a same-kind batch.

    Batched fast paths degrade to per-job serial execution on any
    batch-level failure, so a batch never loses jobs to a fast path.
    """
    try:
        if len(params_list) > 1:
            if kind == "spectrum":
                return _spectrum_batch(ctx, params_list)
            if kind == "grade":
                return _grade_batch(ctx, params_list, grid_jobs)
    except Exception:
        logger.exception("batched %s execution failed; retrying serially",
                         kind)
    return [_execute_safe(ctx, kind, p) for p in params_list]


def _execute_batch_traced(ctx, kind: str, params_list: List[Dict[str, Any]],
                          grid_jobs: Optional[int],
                          trace: Optional[TraceContext],
                          on_progress=None
                          ) -> Tuple[List[Outcome], Optional[Dict[str, Any]]]:
    """Executor entry point with trace propagation.

    Runs the batch on the executor thread inside a child collector
    joined to ``trace`` (the span of the HTTP request that submitted
    the batch's first leader), wrapped in a ``service.job`` span.  Any
    process-pool fan-out below (grade grids) propagates the same trace
    further, so the merged payload carries the full request → job →
    chunk span chain.  ``on_progress`` observes the child collector's
    live progress streams (fired on this executor thread) so the pool
    can surface them on job documents while the batch is still running.
    """
    with child_collector(trace, on_progress=on_progress) as handle:
        tel = get_telemetry()
        with tel.span("service.job", kind=kind, jobs=len(params_list)):
            outcomes = _execute_batch(ctx, kind, params_list, grid_jobs)
    return outcomes, handle.payload


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class WorkerPool:
    """Asyncio workers + a thread-pool executor for the blocking work."""

    def __init__(self, queue: FairJobQueue, store: JobStore, context, *,
                 workers: int = 2, batch_max: int = 8,
                 grid_jobs: Optional[int] = None, events=None):
        if workers <= 0:
            raise ServiceError(f"workers must be positive, got {workers}")
        if batch_max <= 0:
            raise ServiceError(f"batch_max must be positive, got {batch_max}")
        self.queue = queue
        self.store = store
        self.context = context
        self.workers = workers
        self.batch_max = batch_max
        self.grid_jobs = grid_jobs
        #: Optional :class:`~repro.service.events.EventBroker`; job state
        #: transitions and live progress snapshots are published to it.
        self.events = events
        #: Optional hook called (on the event loop) with each job as it
        #: reaches a terminal state — the lifecycle layer hangs run-ledger
        #: recording off it.
        self.on_finished = None
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service")
        self._inflight: Dict[str, "asyncio.Future[Outcome]"] = {}
        self._tasks: List["asyncio.Task"] = []
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_coalesced = 0
        self.batches = 0
        #: Currently-running job id -> kind (fleet heartbeats report
        #: these as the worker's inflight set).
        self.running: Dict[str, str] = {}
        #: Gate-engine tier of the most recent batch that named one —
        #: the fleet view's per-worker "engine" column.
        self.last_engine: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        loop = asyncio.get_running_loop()
        for i in range(self.workers):
            self._tasks.append(
                loop.create_task(self._worker(i), name=f"repro-worker-{i}"))

    async def join(self) -> None:
        """Wait for every worker to finish draining (queue closed)."""
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def abort(self) -> None:
        """Deadline exceeded: cancel workers, fail whatever remains."""
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        now = self.store.clock()
        for job in self.store.jobs():
            if not job.state.finished:
                job.finish(JobState.FAILED, now,
                           error="service shut down before completion")
                self.jobs_failed += 1
        self.executor.shutdown(wait=False, cancel_futures=True)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def inflight_jobs(self, limit: int = 16) -> List[str]:
        """Ids of jobs running right now (bounded for heartbeat size)."""
        return sorted(self.running)[:limit]

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    async def _worker(self, wid: int) -> None:
        while True:
            try:
                job = await self.queue.get()
            except QueueClosedError:
                return
            batch = [job]
            if job.kind in BATCHABLE_KINDS and self.batch_max > 1:
                batch += self.queue.take_matching(job.kind,
                                                  self.batch_max - 1)
            try:
                await self._run_batch(batch)
            except Exception:  # never let a batch kill the worker
                logger.exception("worker %d: batch execution error", wid)
                now = self.store.clock()
                for j in batch:
                    if not j.state.finished:
                        j.finish(JobState.FAILED, now,
                                 error="internal worker error")
                        self.jobs_failed += 1

    async def _run_batch(self, batch: List[Job]) -> None:
        loop = asyncio.get_running_loop()
        tel = get_telemetry()
        now = self.store.clock()

        # Partition into leaders (first job per not-yet-inflight key)
        # and followers (coalesce onto an existing or new future).
        leaders: List[Job] = []
        leader_futs: Dict[str, "asyncio.Future[Outcome]"] = {}
        for job in batch:
            job.state = JobState.RUNNING
            job.started = now
            self.running[job.id] = job.kind
            engine = (job.params or {}).get("engine")
            if engine:
                self.last_engine = str(engine)
            fut = self._inflight.get(job.cache_key)
            if fut is None and job.cache_key not in leader_futs:
                leaders.append(job)
                new_fut: "asyncio.Future[Outcome]" = loop.create_future()
                leader_futs[job.cache_key] = new_fut
                self._inflight[job.cache_key] = new_fut
                self._attach(job, new_fut, coalesced=False)
            else:
                job.coalesced = True
                self.jobs_coalesced += 1
                if tel.enabled:
                    tel.counter("service.jobs.coalesced").add(1)
                self._attach(job, fut if fut is not None
                             else leader_futs[job.cache_key], coalesced=True)

        if self.events is not None:
            for job in batch:
                self.events.publish("job", {"job": job.id, "kind": job.kind,
                                            "state": job.state.value,
                                            "coalesced": job.coalesced})

        if not leaders:
            return

        self.batches += 1
        kind = leaders[0].kind
        if tel.enabled:
            tel.counter("service.batches").add(1)
            tel.histogram("service.batch_size").observe(len(leaders))

        # Jobs resolved by *this* computation (leaders plus followers
        # coalesced onto them in this batch); they all share the batch's
        # progress streams.  Followers riding an older in-flight future
        # are fed by that future's own batch.
        watchers = [j for j in batch if j.cache_key in leader_futs]

        def _on_progress(state) -> None:
            # Fires on the executor thread mid-batch.  Whole-dict
            # replacement keeps event-loop readers consistent without a
            # lock; the broker handles its own thread hop.
            doc = state.to_doc()
            for job in watchers:
                merged = dict(job.progress or {})
                merged[state.name] = doc
                job.progress = merged
                if self.events is not None:
                    self.events.publish(
                        "progress", dict(doc, job=job.id, stream=state.name))

        # A coalesced batch can span several requests; the merged trace
        # hangs under the first leader's submitting request.
        trace = leaders[0].trace
        with tel.span("service.batch", kind=kind, jobs=len(leaders)):
            try:
                outcomes, payload = await loop.run_in_executor(
                    self.executor, _execute_batch_traced, self.context,
                    kind, [j.params for j in leaders], self.grid_jobs,
                    trace, _on_progress)
            except Exception as exc:  # executor itself failed
                outcomes, payload = [("error", f"{type(exc).__name__}: {exc}")
                                     for _ in leaders], None
            if tel.enabled:
                tel.absorb(payload)
        for job, outcome in zip(leaders, outcomes):
            fut = self._inflight.pop(job.cache_key, None)
            if fut is not None and not fut.done():
                fut.set_result(outcome)

    def _attach(self, job: Job, fut: "asyncio.Future[Outcome]",
                coalesced: bool) -> None:
        """Resolve ``job`` from ``fut`` when the computation lands."""

        def _finish(f: "asyncio.Future[Outcome]") -> None:
            self.running.pop(job.id, None)
            if job.state.finished or f.cancelled():
                return  # e.g. failed/cancelled by an abort() race
            status, value = f.result()
            now = self.store.clock()
            if status == "ok":
                job.finish(JobState.DONE, now, result=value)
                self.jobs_done += 1
            else:
                job.finish(JobState.FAILED, now, error=str(value))
                self.jobs_failed += 1
            if job.started is not None:
                self.queue.observe_service_seconds(now - job.started)
            tel = get_telemetry()
            if tel.enabled:
                tel.counter(f"service.jobs.{job.state.value}").add(1)
                tel.counter(f"service.jobs.kind.{job.kind}").add(1)
            if self.events is not None:
                self.events.publish("job", {"job": job.id, "kind": job.kind,
                                            "state": job.state.value,
                                            "coalesced": job.coalesced})
            if self.on_finished is not None:
                try:
                    self.on_finished(job)
                except Exception:
                    logger.exception("on_finished hook failed for job %s",
                                     job.id)

        fut.add_done_callback(_finish)
