"""In-process service harness for tests, examples and smoke checks.

:class:`ServiceThread` runs a full :class:`~repro.service.EvaluationService`
— real sockets, real HTTP — on a background thread's event loop, so a
test can exercise the exact production code path and still tear
everything down deterministically::

    with ServiceThread(ServiceConfig(port=0, no_cache=True)) as svc:
        client = svc.client("test-1")
        result = client.run("spectrum", {"generator": "ramp"})

``port=0`` binds an ephemeral port; :meth:`ServiceThread.request_shutdown`
is the in-process equivalent of SIGTERM (same code path as the signal
handler).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from ..errors import ServiceError
from .client import ServiceClient
from .lifecycle import EvaluationService, ServiceConfig

__all__ = ["ServiceThread"]


class ServiceThread:
    """Runs an :class:`EvaluationService` on a background thread."""

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 context=None, telemetry=None):
        self.config = config or ServiceConfig(port=0, no_cache=True)
        self.service = EvaluationService(self.config, context=context,
                                         telemetry=telemetry)
        self.summary: Dict[str, int] = {}
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service", daemon=True)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        async def _main() -> None:
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self._started.set()
            await self.service.serve_until_shutdown()
            assert self.service._shutdown_task is not None
            self.summary = await self.service._shutdown_task

        asyncio.run(_main())

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("service failed to start within 30s")
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error}")
        return self

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.port}"

    def client(self, client_id: str = "test",
               timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.base_url, client_id=client_id,
                             timeout=timeout)

    # ------------------------------------------------------------------
    def request_shutdown(self, reason: str = "test") -> None:
        """The in-process SIGTERM: same drain path as the signal."""
        loop = self.service._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.request_shutdown, reason)

    def stop(self, timeout: float = 60.0) -> Dict[str, int]:
        """Request shutdown (if not already begun) and join the thread."""
        if self._thread.is_alive():
            self.request_shutdown("stop")
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise ServiceError("service thread did not stop in time")
        return self.summary
