"""Blocking HTTP client for the evaluation service (stdlib only).

Used by the test-suite, the CI smoke job and ``examples/``; it is also
the reference for writing clients in other languages — the protocol is
plain HTTP + JSON, one request per connection.

::

    from repro.service.client import ServiceClient

    c = ServiceClient("http://127.0.0.1:8337", client_id="analysis-42")
    job = c.submit("rank", {"design": "BP", "vectors": 2048})
    doc = c.wait(job["id"])           # long-polls until finished
    print(doc["result"]["proposed_scheme"])

Overload (429 queue-full / rate-limit, 503 draining) raises
:class:`ServiceBusy` carrying the server's ``Retry-After`` hint;
:meth:`ServiceClient.submit_retry` folds the backoff loop in.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import ReproError

__all__ = ["ServiceBusy", "ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, Any]] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServiceBusy(ServiceClientError):
    """429/503 — back off for ``retry_after`` seconds and retry."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, Any]], retry_after: float):
        super().__init__(status, message, payload)
        self.retry_after = retry_after


class ServiceClient:
    """Minimal synchronous client for one service endpoint.

    ``retries`` opts into transparent 429/503 handling: instead of
    surfacing the first :class:`ServiceBusy` to the caller, each request
    is retried up to that many times, sleeping the server's
    ``Retry-After`` hint grown exponentially per attempt, jittered
    (0.5x-1x, so synchronized clients desynchronize) and capped at
    ``retry_cap`` seconds.  A 429 means the request was *rejected before
    admission*, so retrying a submit is safe.  The default ``retries=0``
    preserves the original raise-on-first-429 contract.
    """

    def __init__(self, base_url: str, *, client_id: str = "anonymous",
                 timeout: float = 60.0, retries: int = 0,
                 retry_cap: float = 10.0):
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ReproError(f"only http:// is supported, got {base_url!r}")
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        if retry_cap <= 0:
            raise ReproError(f"retry_cap must be positive, got {retry_cap}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.client_id = client_id
        self.timeout = timeout
        self.retries = retries
        self.retry_cap = retry_cap

    def _busy_backoff(self, exc: "ServiceBusy", attempt: int) -> float:
        """Sleep duration before retry ``attempt`` (0-based): the
        server's hint, doubled per attempt, jittered, capped."""
        base = max(exc.retry_after, 0.05) * (2.0 ** attempt)
        return min(base, self.retry_cap) * random.uniform(0.5, 1.0)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None
                 ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload, headers={
                "Content-Type": "application/json",
                "X-Repro-Client": self.client_id,
                "Connection": "close",
            })
            resp = conn.getresponse()
            raw = resp.read()
            headers = {k.lower(): v for k, v in resp.getheaders()}
            doc = json.loads(raw.decode("utf-8")) if raw else {}
            return resp.status, headers, doc
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ok: Tuple[int, ...] = (200, 202)) -> Dict[str, Any]:
        for attempt in range(self.retries + 1):
            try:
                return self._checked_once(method, path, body, ok)
            except ServiceBusy as exc:
                if attempt >= self.retries:
                    raise
                time.sleep(self._busy_backoff(exc, attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _checked_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None,
                      ok: Tuple[int, ...] = (200, 202)) -> Dict[str, Any]:
        status, headers, doc = self._request(method, path, body)
        if status in ok:
            return doc
        message = str(doc.get("error", f"unexpected status {status}"))
        if status in (429, 503):
            try:
                retry_after = float(headers.get("retry-after", 1.0))
            except ValueError:
                retry_after = 1.0
            raise ServiceBusy(status, message, doc, retry_after)
        raise ServiceClientError(status, message, doc)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Optional[Dict[str, Any]] = None, *,
               priority: str = "normal",
               idempotency_key: Optional[str] = None) -> Dict[str, Any]:
        """Submit a job; returns its snapshot (202 fresh, 200 replayed)."""
        body: Dict[str, Any] = {"kind": kind, "params": params or {},
                                "priority": priority,
                                "client": self.client_id}
        if idempotency_key is not None:
            body["idempotency_key"] = idempotency_key
        return self._checked("POST", "/v1/jobs", body)

    def submit_retry(self, kind: str,
                     params: Optional[Dict[str, Any]] = None, *,
                     priority: str = "normal",
                     idempotency_key: Optional[str] = None,
                     deadline: float = 120.0) -> Dict[str, Any]:
        """Submit, honouring ``Retry-After`` backoff until ``deadline``."""
        t0 = time.monotonic()
        while True:
            try:
                return self.submit(kind, params, priority=priority,
                                   idempotency_key=idempotency_key)
            except ServiceBusy as exc:
                remaining = deadline - (time.monotonic() - t0)
                if remaining <= 0:
                    raise
                time.sleep(min(max(exc.retry_after, 0.05), remaining))

    def job(self, job_id: str,
            wait: Optional[float] = None) -> Dict[str, Any]:
        """Poll a job; ``wait`` long-polls up to that many seconds."""
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._checked("GET", path)

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._checked("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 10.0) -> Dict[str, Any]:
        """Long-poll until the job reaches a terminal state."""
        t0 = time.monotonic()
        while True:
            remaining = timeout - (time.monotonic() - t0)
            if remaining <= 0:
                raise ServiceClientError(
                    408, f"job {job_id} did not finish within {timeout}s")
            doc = self.job(job_id, wait=min(poll, max(remaining, 0.1)))
            if doc.get("state") in ("done", "failed", "cancelled"):
                return doc

    def run(self, kind: str, params: Optional[Dict[str, Any]] = None, *,
            priority: str = "normal", timeout: float = 120.0
            ) -> Dict[str, Any]:
        """Submit + wait + return the result document.

        Raises :class:`ServiceClientError` if the job fails or is
        cancelled.
        """
        job = self.submit(kind, params, priority=priority)
        doc = self.wait(job["id"], timeout=timeout)
        if doc["state"] != "done":
            raise ServiceClientError(
                500, f"job {job['id']} {doc['state']}: "
                     f"{doc.get('error', 'no result')}", doc)
        return doc["result"]

    def events(self, job_id: Optional[str] = None, *,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None):
        """Yield parsed events from the ``GET /v1/events`` SSE stream.

        Each yielded dict is ``{"event": name, "data": {...}}`` (plus
        ``"id"`` when the server numbered the frame).  With ``job_id``
        the server filters to that job and closes the stream when it
        finishes, so iteration simply ends.  ``timeout`` bounds the
        *gap between frames*, not the whole stream — the server's
        keepalive comments reset it — and raises ``TimeoutError`` via
        the underlying socket when exceeded.  ``deadline`` bounds the
        *whole stream* in seconds: iteration raises ``TimeoutError``
        once it expires even while keepalives or events keep arriving
        (the check runs per received line, so a 15s-keepalive stream
        fails within one keepalive interval of the deadline).
        """
        expires = (None if deadline is None
                   else time.monotonic() + max(deadline, 0.0))
        gap = self.timeout if timeout is None else timeout
        if deadline is not None:
            # A dead peer must also fail by the deadline, not just a
            # live-but-stuck one: never wait on the socket past it.
            gap = min(gap, max(deadline, 0.1))
        conn = http.client.HTTPConnection(self.host, self.port, timeout=gap)
        path = "/v1/events"
        if job_id is not None:
            path += f"?job={job_id}"
        try:
            conn.request("GET", path, headers={
                "Accept": "text/event-stream",
                "X-Repro-Client": self.client_id,
            })
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode("utf-8")) if raw else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    doc = {}
                raise ServiceClientError(
                    resp.status, str(doc.get("error", "event stream "
                                             "unavailable")), doc)
            event: Dict[str, Any] = {}
            for raw_line in resp:
                if expires is not None and time.monotonic() >= expires:
                    raise TimeoutError(
                        f"event stream deadline ({deadline:g}s) exceeded")
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if not line:  # blank line = frame boundary
                    if "data" in event:
                        yield event
                    event = {}
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                name, _, value = line.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if name == "event":
                    event["event"] = value
                elif name == "id":
                    event["id"] = value
                elif name == "data":
                    try:
                        event["data"] = json.loads(value)
                    except json.JSONDecodeError:
                        event["data"] = value
        finally:
            conn.close()

    def fleet(self) -> Dict[str, Any]:
        """The live fleet health snapshot (``GET /v1/fleet``)."""
        return self._checked("GET", "/v1/fleet")

    def heartbeat(self, beat: Dict[str, Any]) -> Dict[str, Any]:
        """Push one worker heartbeat (``POST /v1/fleet/heartbeat``)."""
        return self._checked("POST", "/v1/fleet/heartbeat", beat)

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        return self._checked("GET", "/readyz")

    def metrics(self) -> Dict[str, Any]:
        return self._checked("GET", "/metrics")

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until ``/readyz`` turns 200 (service warmed up)."""
        t0 = time.monotonic()
        while True:
            try:
                self.readyz()
                return
            except (ServiceBusy, ServiceClientError, OSError):
                if time.monotonic() - t0 > timeout:
                    raise
                time.sleep(0.1)
