"""Event fan-out for the service's live observability surfaces.

The :class:`EventBroker` is the hub between everything that *happens*
in the service — job state transitions, worker progress updates — and
everything that *watches*: the ``GET /v1/events`` server-sent-events
stream and, indirectly, ``repro runs watch``.  Publishers call
:meth:`EventBroker.publish` from any thread (worker executor threads
included); each subscriber owns a bounded asyncio queue that the
broker fills on the event loop.

Delivery is best-effort by design: a slow SSE consumer's queue drops
its *oldest* event to admit the newest, because progress streams are
monotone snapshots — the latest update supersedes everything before
it, so lossy delivery never shows a watcher stale state.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["EventBroker", "sse_frame"]

#: Per-subscriber queue bound; old events are dropped for new ones.
DEFAULT_QUEUE_SIZE = 256


def sse_frame(event: Dict[str, Any]) -> bytes:
    """One event as a wire-ready ``text/event-stream`` frame.

    Uses the standard ``event:`` / ``id:`` / ``data:`` fields; the data
    payload is one JSON object per frame.
    """
    name = str(event.get("event", "message"))
    seq = event.get("seq")
    lines = [f"event: {name}"]
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append("data: " + json.dumps(event.get("data", {}),
                                       sort_keys=True, default=str))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class EventBroker:
    """Thread-safe publish / asyncio-subscribe fan-out."""

    def __init__(self, queue_size: int = DEFAULT_QUEUE_SIZE):
        self.queue_size = queue_size
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._subscribers: List["asyncio.Queue[Dict[str, Any]]"] = []
        self._seq = itertools.count(1)
        self.published = 0
        self.dropped = 0
        #: Optional telemetry counter mirroring ``dropped`` so queue
        #: overflow is visible on ``/metrics`` (the service installs
        #: its ``service.events_dropped`` counter here at startup) —
        #: silent drops would undermine SSE-based monitoring.
        self.drop_counter: Optional[Any] = None

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the broker to the serving loop (once, at startup)."""
        self._loop = loop

    # ------------------------------------------------------------------
    # Subscribing (event-loop side)
    # ------------------------------------------------------------------
    @property
    def subscribers(self) -> int:
        return len(self._subscribers)

    def subscribe(self, maxsize: Optional[int] = None
                  ) -> "asyncio.Queue[Dict[str, Any]]":
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue(
            maxsize=self.queue_size if maxsize is None else maxsize)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue[Dict[str, Any]]") -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Publishing (any thread)
    # ------------------------------------------------------------------
    def publish(self, event_name: str, data: Dict[str, Any]) -> None:
        """Enqueue ``data`` for every subscriber; safe from any thread.

        A no-op before :meth:`bind` or after the loop stops — events
        during startup/teardown windows are simply not observable,
        which is the right failure mode for a monitoring channel.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        event = {"event": event_name, "seq": next(self._seq),
                 "data": dict(data, unix=data.get("unix", time.time()))}
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._deliver(event)
        else:
            try:
                loop.call_soon_threadsafe(self._deliver, event)
            except RuntimeError:
                pass  # loop shut down between the check and the call

    def _deliver(self, event: Dict[str, Any]) -> None:
        self.published += 1
        for queue in list(self._subscribers):
            while True:
                try:
                    queue.put_nowait(event)
                    break
                except asyncio.QueueFull:
                    # Monotone snapshots: drop the oldest, keep the new.
                    try:
                        queue.get_nowait()
                        self.dropped += 1
                        if self.drop_counter is not None:
                            self.drop_counter.add(1)
                    except asyncio.QueueEmpty:  # pragma: no cover - race
                        break
