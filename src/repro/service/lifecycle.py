"""Service assembly, run loop and graceful shutdown.

:class:`EvaluationService` wires the subsystem together — job store,
fair queue, rate limiter, worker pool, HTTP API — around one shared
cache-backed :class:`~repro.experiments.ExperimentContext`, and owns
the lifecycle:

* **start** binds the listener (port 0 = ephemeral), starts the
  workers, and warms the heavyweight artifacts (designs + fault
  universes) on an executor thread; ``/readyz`` turns 200 only once
  warmup lands.
* **shutdown** (SIGTERM / SIGINT / :meth:`request_shutdown`) stops
  intake — submissions get 503 + ``Retry-After`` — lets the workers
  drain everything already admitted, bounded by ``drain_deadline``,
  then flushes telemetry sinks and closes the listener.  Jobs still
  unfinished at the deadline are failed, never silently dropped.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ServiceError
from ..experiments import ExperimentContext
from ..telemetry import (AlertEngine, FleetView, JsonlSink, Telemetry,
                         TraceContext, build_heartbeat, get_telemetry,
                         load_rules, prometheus_exposition, set_telemetry)
from .events import EventBroker
from .http import HttpApi, _error_reply, job_reply, negotiate_media_type, \
    result_reply
from .jobs import Job, JobState, JobStore
from .queue import FairJobQueue, RateLimiter
from .workers import WorkerPool

__all__ = ["ServiceConfig", "EvaluationService"]

logger = logging.getLogger("repro.service")


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can turn with flags."""

    host: str = "127.0.0.1"
    port: int = 8337            # 0 = pick an ephemeral port
    workers: int = 2
    queue_depth: int = 64
    batch_max: int = 8
    result_ttl: float = 600.0
    rate: float = 0.0           # per-client requests/sec; 0 = unlimited
    burst: float = 0.0          # bucket size; 0 = 2x rate
    long_poll_max: float = 30.0
    drain_deadline: float = 20.0
    grid_jobs: Optional[int] = None  # process-pool width for grade batches
    cache_dir: Optional[str] = None
    no_cache: bool = False
    access_log: Optional[str] = None
    trace_out: Optional[str] = None  # stream telemetry events as JSONL
    ledger_dir: Optional[str] = None  # run-ledger root; None = default dir
    no_ledger: bool = False     # skip run-ledger records entirely
    events_keepalive: float = 15.0  # SSE keepalive comment interval
    heartbeat_interval: float = 2.0  # fleet heartbeat period; 0 = off
    heartbeat_to: Optional[str] = None  # push beats to this serve URL too
    alert_rules: Optional[str] = None   # JSON rule file for the alerter
    worker_id: Optional[str] = None     # fleet identity; default host:port


class EvaluationService:
    """The long-running BIST evaluation server."""

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 context: Optional[ExperimentContext] = None,
                 telemetry: Optional[Telemetry] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.context = context if context is not None \
            else self._build_context(cfg)
        self.telemetry = telemetry
        self.store = JobStore(result_ttl=cfg.result_ttl)
        self.queue = FairJobQueue(cfg.queue_depth)
        self.limiter = RateLimiter(cfg.rate, cfg.burst or None)
        self.events = EventBroker()
        self.pool = WorkerPool(self.queue, self.store, self.context,
                               workers=cfg.workers,
                               batch_max=cfg.batch_max,
                               grid_jobs=cfg.grid_jobs,
                               events=self.events)
        self.pool.on_finished = self._record_finished
        self.ledger = None
        self._git_sha: Optional[str] = None
        # Fleet health plane: this process beats into its own view (so
        # a single node is already observable) and, when heartbeat_to
        # names an upstream serve, pushes the same beats there for the
        # aggregated fleet picture.  Alert rules load eagerly so a bad
        # rule file fails startup, not the first evaluation.
        interval = cfg.heartbeat_interval
        self.fleet = FleetView(
            default_interval=interval if interval > 0 else 2.0)
        self.alerts = AlertEngine(
            load_rules(cfg.alert_rules) if cfg.alert_rules else [])
        self._hb_seq = 0
        self._hb_task: Optional["asyncio.Task"] = None
        self.api = HttpApi(self)
        self.started_unix = time.time()
        self.ready = False
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional["asyncio.Task"] = None
        self._previous_telemetry = None
        self._owns_telemetry = False
        self._trace_sink: Optional[JsonlSink] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    @staticmethod
    def _build_context(cfg: ServiceConfig) -> ExperimentContext:
        cache = None
        if not cfg.no_cache:
            from ..cache import ArtifactCache

            cache = ArtifactCache(cfg.cache_dir)
        return ExperimentContext(cache=cache)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, start workers, kick off warmup; returns (host, port)."""
        # The service always runs with a live collector so /metrics has
        # data: use the caller's, else adopt an already-active one
        # (e.g. ``--profile serve``), else own a fresh one.
        if self.telemetry is not None:
            self._previous_telemetry = set_telemetry(self.telemetry)
            self._owns_telemetry = True
        elif not get_telemetry().enabled:
            self.telemetry = Telemetry()
            self._previous_telemetry = set_telemetry(self.telemetry)
            self._owns_telemetry = True
        if self.config.trace_out:
            # Opened eagerly so an unwritable path fails startup, not
            # the first request.
            self._trace_sink = JsonlSink(self.config.trace_out)
            self._trace_sink.open()
            active = self.telemetry if self.telemetry is not None \
                else get_telemetry()
            active.sinks.append(self._trace_sink)
        self._loop = asyncio.get_running_loop()
        self.events.bind(self._loop)
        active = self.telemetry if self.telemetry is not None \
            else get_telemetry()
        if active.enabled:
            # Satellite of the fleet plane: SSE queue overflow becomes
            # a real counter on /metrics instead of a silent field.
            self.events.drop_counter = active.counter(
                "service.events_dropped")
        if not self.config.no_ledger:
            from ..ledger import RunLedger, current_git_sha

            try:
                self.ledger = RunLedger(self.config.ledger_dir)
                self._git_sha = current_git_sha()
            except Exception:
                logger.exception("run ledger unavailable; continuing "
                                 "without run records")
                self.ledger = None
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self.api.handle, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self.pool.start()
        loop = asyncio.get_running_loop()
        loop.create_task(self._warmup(loop), name="repro-warmup")
        if self.config.heartbeat_interval > 0:
            self._hb_task = loop.create_task(self._heartbeat_loop(),
                                             name="repro-heartbeat")
        logger.info("service listening on http://%s:%d", self.host,
                    self.port)
        return self.host, self.port

    async def _warmup(self, loop: asyncio.AbstractEventLoop) -> None:
        def warm() -> None:
            for name in self.context.designs:
                self.context.universe(name)

        try:
            await loop.run_in_executor(self.pool.executor, warm)
        except Exception:
            logger.exception("warmup failed; serving cold")
        self.ready = True
        logger.info("warmup complete; service ready")

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.request_shutdown, sig.name)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    def request_shutdown(self, reason: str = "request") -> None:
        """Begin graceful shutdown; idempotent, safe from the loop or a
        signal handler."""
        if self._shutdown_task is not None:
            return
        logger.info("shutdown requested (%s); draining", reason)
        self.draining = True
        self.ready = False
        assert self._loop is not None, "start() first"
        self._shutdown_task = self._loop.create_task(
            self.shutdown(), name="repro-shutdown")

    async def shutdown(self) -> Dict[str, int]:
        """Stop intake, drain with a deadline, flush, close."""
        self.draining = True
        self.ready = False
        if self._hb_task is not None:
            self._hb_task.cancel()
            self._hb_task = None
        # Wake every SSE stream so watchers disconnect promptly instead
        # of waiting out a keepalive interval.
        self.events.publish("shutdown", {"reason": "draining"})
        self.queue.close()
        drained = True
        try:
            await asyncio.wait_for(self.pool.join(),
                                   self.config.drain_deadline)
        except asyncio.TimeoutError:
            drained = False
            logger.warning("drain deadline (%.1fs) exceeded; aborting "
                           "remaining jobs", self.config.drain_deadline)
            await self.pool.abort()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tel = get_telemetry()
        tel.flush()
        if self._owns_telemetry:
            set_telemetry(self._previous_telemetry)
            assert self.telemetry is not None
            self.telemetry.close()
        elif self._trace_sink is not None:
            # The collector was adopted from the caller: detach and
            # close only the sink this service attached.
            if isinstance(tel, Telemetry) and self._trace_sink in tel.sinks:
                tel.sinks.remove(self._trace_sink)
            self._trace_sink.close()
        self._trace_sink = None
        self.pool.executor.shutdown(wait=False)
        summary = {
            "done": self.pool.jobs_done,
            "failed": self.pool.jobs_failed,
            "coalesced": self.pool.jobs_coalesced,
            "batches": self.pool.batches,
            "clean": int(drained),
        }
        logger.info("drain %s: %d done, %d failed (%d coalesced, "
                    "%d batches)", "complete" if drained else "ABORTED",
                    summary["done"], summary["failed"],
                    summary["coalesced"], summary["batches"])
        if self._stopped is not None:
            self._stopped.set()
        return summary

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown request finishes draining."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Handlers (called by HttpApi; all run on the event loop)
    # ------------------------------------------------------------------
    def submit(self, body: Dict[str, Any], headers: Dict[str, str]):
        if self.draining:
            return _error_reply(503, "service is draining; "
                                "submissions closed", retry_after=5.0)
        client = str(body.get("client")
                     or headers.get("x-repro-client") or "anonymous")
        idem = body.get("idempotency_key")
        if idem is not None:
            idem = str(idem)
        kind = str(body.get("kind", ""))
        priority = str(body.get("priority", "normal"))
        params = body.get("params")
        if params is not None and not isinstance(params, dict):
            raise ServiceError("'params' must be an object", status=400)
        self.limiter.check(client)
        job, created = self.store.create(
            kind, params, client=client, priority=priority,
            idempotency_key=idem)
        if not created:
            return job_reply(job, 200, cache="hit")
        # Captured inside the request span, so the worker's spans merge
        # back under the request that submitted the job.
        job.trace = TraceContext.current()
        try:
            self.queue.put_nowait(job)
        except ServiceError:
            # Never retain a job that was refused admission — a retained
            # cancelled job would poison idempotent retries.
            self.store.discard(job)
            tel = get_telemetry()
            if tel.enabled:
                tel.counter("service.jobs.rejected").add(1)
            raise
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("service.jobs.submitted").add(1)
            tel.gauge("service.queue_depth").set(len(self.queue))
        self.events.publish("job", {"job": job.id, "kind": job.kind,
                                    "state": job.state.value,
                                    "coalesced": False})
        return job_reply(job, 202, cache="miss")

    async def poll(self, job_id: str, query: Dict[str, list]):
        job = self.store.get(job_id)
        if job is None:
            return _error_reply(404, f"no such job {job_id!r}")
        wait = 0.0
        if "wait" in query:
            try:
                wait = float(query["wait"][0])
            except (TypeError, ValueError, IndexError):
                raise ServiceError("'wait' must be a number",
                                   status=400) from None
            wait = max(0.0, min(wait, self.config.long_poll_max))
        if wait > 0 and not job.state.finished:
            try:
                await asyncio.wait_for(job.done.wait(), wait)
            except asyncio.TimeoutError:
                pass
        return job_reply(job, 200)

    def result(self, job_id: str):
        job = self.store.get(job_id)
        if job is None:
            return _error_reply(404, f"no such job {job_id!r}")
        return result_reply(job)

    def cancel(self, job_id: str):
        job = self.store.get(job_id)
        if job is None:
            return _error_reply(404, f"no such job {job_id!r}")
        if job.state.finished:
            return job_reply(job, 200)
        if job.state is JobState.QUEUED and self.queue.cancel(job):
            job.finish(JobState.CANCELLED, self.store.clock(),
                       error="cancelled by client")
            tel = get_telemetry()
            if tel.enabled:
                tel.counter("service.jobs.cancelled").add(1)
            return job_reply(job, 200)
        return _error_reply(409, f"job {job_id!r} is {job.state.value} "
                            "and can no longer be cancelled")

    def _record_finished(self, job: Job) -> None:
        """Pool hook: one run-ledger record per finished job.

        Recording is strictly best-effort — a full disk or unwritable
        ledger must never affect job outcomes or poller responses.
        """
        if self.ledger is None:
            return
        try:
            from ..ledger import build_record

            extra: Dict[str, Any] = {"job_id": job.id,
                                     "state": job.state.value,
                                     "client": job.client,
                                     "coalesced": job.coalesced}
            if job.error is not None:
                extra["error"] = job.error
            bench = None
            if isinstance(job.result, dict):
                bench = {k: v for k, v in job.result.items()
                         if isinstance(v, (int, float))
                         and not isinstance(v, bool)}
            duration = None
            if job.finished is not None and job.started is not None:
                duration = job.finished - job.started
            self.ledger.append(build_record(
                "service-job",
                config={"kind": job.kind, "params": job.params},
                created_unix=job.finished or self.store.clock(),
                bench=bench or None,
                git_sha=self._git_sha,
                trace_id=None if job.trace is None else job.trace.trace_id,
                duration_seconds=duration,
                extra=extra))
        except Exception:
            logger.exception("run-ledger record failed for job %s", job.id)

    # ------------------------------------------------------------------
    # Fleet health plane
    # ------------------------------------------------------------------
    @property
    def worker_id(self) -> str:
        """This process's fleet identity (stable across beats)."""
        if self.config.worker_id:
            return self.config.worker_id
        if self.host is not None and self.port is not None:
            return f"{self.host}:{self.port}"
        return f"pid-{os.getpid()}"

    async def _heartbeat_loop(self) -> None:
        """Beat every interval until the service starts draining."""
        interval = self.config.heartbeat_interval
        loop = asyncio.get_running_loop()
        while not self.draining:
            try:
                beat = self._build_beat()
                self.ingest_heartbeat(beat)
                if self.config.heartbeat_to:
                    # Push on the default executor: a slow or absent
                    # upstream must not stall the event loop or occupy
                    # a job-worker thread.
                    await loop.run_in_executor(
                        None, self._push_beat, beat)
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception:
                logger.exception("heartbeat failed; will retry")
            await asyncio.sleep(interval)

    def _build_beat(self) -> Dict[str, Any]:
        tel = self.telemetry if self.telemetry is not None \
            else get_telemetry()
        self._hb_seq += 1
        return build_heartbeat(
            tel, worker=self.worker_id, seq=self._hb_seq,
            interval=self.config.heartbeat_interval,
            queue_depth=len(self.queue),
            inflight=self.pool.inflight_jobs(),
            engine=self.pool.last_engine,
            started_unix=self.started_unix,
            extra={"ready": int(self.ready),
                   "events_dropped": self.events.dropped})

    def _push_beat(self, beat: Dict[str, Any]) -> None:
        from .client import ServiceClient, ServiceClientError

        try:
            ServiceClient(self.config.heartbeat_to,
                          client_id=self.worker_id,
                          timeout=max(1.0,
                                      self.config.heartbeat_interval)
                          ).heartbeat(beat)
        except (ServiceClientError, OSError) as exc:
            tel = get_telemetry()
            if tel.enabled:
                tel.counter("service.heartbeat_push_errors").add(1)
            logger.debug("heartbeat push to %s failed: %s",
                         self.config.heartbeat_to, exc)

    def ingest_heartbeat(self, beat: Dict[str, Any]) -> Dict[str, Any]:
        """Merge one beat (local or POSTed), publish fleet/alert events.

        Runs on the event loop.  Every beat also sweeps liveness and
        re-evaluates the alert rules, so a worker going quiet is
        detected as long as *anyone* still beats.
        """
        transitions = self.fleet.observe(beat)
        transitions.extend(self.fleet.sweep())
        for name, data in transitions:
            self.events.publish(name, data)
            if name == "fleet.worker":
                logger.info("fleet: worker %s is %s (%s)",
                            data.get("worker"), data.get("state"),
                            data.get("reason"))
        for name, data in self.alerts.evaluate(self.fleet.merged_values()):
            self.events.publish(name, data)
            log = logger.warning if name == "alert.fired" else logger.info
            log("%s: %s (%s; value %s)", name, data.get("alert"),
                data.get("rule"), data.get("value"))
            self._record_alert(name, data)
        return {"ok": True, "worker": str(beat.get("worker")),
                "workers": len(self.fleet.workers)}

    def _record_alert(self, event_name: str, data: Dict[str, Any]) -> None:
        """One best-effort ledger record per alert transition."""
        if self.ledger is None:
            return
        try:
            from ..ledger import build_record

            self.ledger.append(build_record(
                "alert",
                config={"alert": data.get("alert"),
                        "rule": data.get("rule"),
                        "severity": data.get("severity")},
                created_unix=time.time(),
                git_sha=self._git_sha,
                extra={"event": event_name,
                       "value": data.get("value"),
                       "threshold": data.get("threshold"),
                       "worker_id": self.worker_id,
                       "description": data.get("description")}))
        except Exception:
            logger.exception("run-ledger record failed for %s", event_name)

    def fleet_snapshot(self):
        """The ``GET /v1/fleet`` reply (sweeps liveness first)."""
        for name, data in self.fleet.sweep():
            self.events.publish(name, data)
        doc = self.fleet.snapshot()
        doc["alerts"] = self.alerts.active()
        doc["worker_id"] = self.worker_id
        return 200, doc, {}

    def healthz(self):
        return 200, {"status": "ok",
                     "uptime_seconds": time.time() - self.started_unix}, {}

    def readyz(self):
        if self.draining:
            return _error_reply(503, "draining", retry_after=5.0)
        if not self.ready:
            return _error_reply(503, "warming up", retry_after=1.0)
        return 200, {"status": "ready"}, {}

    def metrics(self, accept: str = ""):
        tel = self.telemetry if self.telemetry is not None \
            else get_telemetry()
        events = [inst.to_event() for inst in tel.metrics().values()]
        # Proper content negotiation (q-values, wildcards, specificity):
        # an unparseable or unmatched Accept falls back to JSON, the
        # historical default, rather than 406ing a monitoring probe.
        chosen = negotiate_media_type(accept,
                                      ("application/json", "text/plain"))
        if chosen == "text/plain":
            # Prometheus scrape: instrument snapshots plus the live
            # service-level gauges, in text exposition format.
            events.extend({"type": "gauge", "name": f"service.{name}",
                           "value": value} for name, value in (
                ("uptime_seconds", time.time() - self.started_unix),
                ("ready", int(self.ready)),
                ("draining", int(self.draining)),
                ("queue_depth", len(self.queue)),
                ("inflight", self.pool.inflight),
                ("events_subscribers", self.events.subscribers),
                ("events_published", self.events.published),
                ("events_dropped", self.events.dropped),
            ))
            text = prometheus_exposition(events)
            if self.fleet.workers:
                # Per-worker-labelled fleet series ride the same scrape.
                text += self.fleet.prometheus()
            return 200, text, {}
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for event in sorted(events, key=lambda e: str(e["name"])):
            name = str(event["name"])
            if event["type"] == "counter":
                counters[name] = event["value"]
            elif event["type"] == "gauge":
                gauges[name] = event["value"]
            else:
                histograms[name] = {
                    k: event[k] for k in
                    ("count", "sum", "min", "max", "edges", "counts",
                     "p50", "p90", "p99") if k in event}
        doc = {
            "service": {
                "uptime_seconds": time.time() - self.started_unix,
                "ready": self.ready,
                "draining": self.draining,
                "queue_depth": len(self.queue),
                "queue_capacity": self.queue.depth,
                "inflight": self.pool.inflight,
                "jobs": self.store.counts(),
                "jobs_done": self.pool.jobs_done,
                "jobs_failed": self.pool.jobs_failed,
                "jobs_coalesced": self.pool.jobs_coalesced,
                "batches": self.pool.batches,
                "avg_service_seconds": self.queue.avg_service_seconds,
                "events": {
                    "subscribers": self.events.subscribers,
                    "published": self.events.published,
                    "dropped": self.events.dropped,
                },
                "ledger": None if self.ledger is None else self.ledger.path,
                "fleet": dict(self.fleet.counts(),
                              alerts_firing=len(self.alerts.active())),
            },
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        return 200, doc, {}

    # ------------------------------------------------------------------
    # Blocking entry point (the CLI)
    # ------------------------------------------------------------------
    def run(self, *, announce=print) -> Dict[str, int]:
        """Start, serve until a signal, drain; returns the summary."""
        summary: Dict[str, int] = {}

        async def _main() -> None:
            nonlocal summary
            host, port = await self.start()
            self.install_signal_handlers()
            announce(f"repro service listening on http://{host}:{port}")
            await self.serve_until_shutdown()
            assert self._shutdown_task is not None
            summary = await self._shutdown_task

        asyncio.run(_main())
        self.pool.executor.shutdown(wait=True)
        announce(f"drain {'complete' if summary.get('clean') else 'ABORTED'}:"
                 f" {summary.get('done', 0)} done,"
                 f" {summary.get('failed', 0)} failed,"
                 f" {summary.get('coalesced', 0)} coalesced,"
                 f" {summary.get('batches', 0)} batches")
        return summary
