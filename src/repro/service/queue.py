"""Bounded async job queue: backpressure, fairness, rate limiting.

Three cooperating pieces:

* :class:`FairJobQueue` — the global bounded queue.  Internally it is a
  priority ladder (high / normal / low) of per-client FIFO deques with
  round-robin service across clients at each level, so one flooding
  client cannot starve the others; a full queue raises
  :class:`QueueFullError` (the HTTP layer maps it to 429 +
  ``Retry-After``).
* :class:`TokenBucket` / :class:`RateLimiter` — per-client token
  buckets checked at admission; an empty bucket raises
  :class:`RateLimitedError` with the exact refill wait.
* The ``Retry-After`` hint itself — derived from the queue's current
  depth and a service-time EWMA maintained by the workers, so clients
  back off roughly as long as the backlog actually needs.

Everything here runs on one event loop; the synchronous mutators
(``put_nowait``, ``cancel``, ``take_matching``) are called from
handlers and workers on that same loop, so no locks are needed.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional

from ..errors import ServiceError
from .jobs import Job, JobState

__all__ = ["FairJobQueue", "QueueClosedError", "QueueFullError",
           "RateLimitedError", "RateLimiter", "TokenBucket"]


class QueueFullError(ServiceError):
    """The queue is at capacity — shed load (HTTP 429)."""

    status = 429

    def __init__(self, depth: int, retry_after: float):
        super().__init__(f"queue full ({depth} jobs queued); "
                         f"retry in {retry_after:.1f}s",
                         retry_after=retry_after)
        self.depth = depth


class RateLimitedError(ServiceError):
    """The client exhausted its token bucket (HTTP 429)."""

    status = 429

    def __init__(self, client: str, retry_after: float):
        super().__init__(f"client {client!r} is rate limited; "
                         f"retry in {retry_after:.2f}s",
                         retry_after=retry_after)
        self.client = client


class QueueClosedError(ServiceError):
    """The queue stopped intake (drain) and has no jobs left."""

    status = 503

    def __init__(self) -> None:
        super().__init__("queue closed", retry_after=1.0)


class TokenBucket:
    """A classic token bucket; ``try_acquire`` never blocks.

    ``rate`` is tokens/second, ``burst`` the bucket capacity.  The
    clock is injectable so tests can step time deterministically.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ServiceError(f"rate and burst must be positive, "
                               f"got rate={rate} burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens; returns 0.0 on success, else the wait in
        seconds until ``n`` tokens will be available."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with shared rate/burst parameters."""

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst) if burst else max(1.0, 2 * self.rate)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str) -> None:
        """Charge one request to ``client``; raise when over budget."""
        if not self.enabled:
            return
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[client] = bucket
        wait = bucket.try_acquire()
        if wait > 0:
            raise RateLimitedError(client, wait)


class FairJobQueue:
    """Bounded priority queue with per-client round-robin fairness."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise ServiceError(f"queue depth must be positive, got {depth}")
        self.depth = depth
        # level -> client -> FIFO of queued jobs; OrderedDict order is
        # the round-robin order (served client rotates to the back).
        self._levels: Dict[int, "OrderedDict[str, Deque[Job]]"] = {
            0: OrderedDict(), 1: OrderedDict(), 2: OrderedDict()}
        self._size = 0
        self._closed = False
        self._wakeup = asyncio.Event()
        #: EWMA of per-job service seconds, maintained by the workers;
        #: feeds the Retry-After estimate.
        self.avg_service_seconds = 0.5

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def clients(self) -> List[str]:
        seen: List[str] = []
        for level in self._levels.values():
            for client in level:
                if client not in seen:
                    seen.append(client)
        return seen

    def retry_after(self) -> float:
        """How long a rejected client should wait before retrying.

        The backlog needs roughly ``size * avg_service`` worker-seconds
        to drain; half of that is a reasonable, bounded hint.
        """
        estimate = 0.5 * self._size * max(self.avg_service_seconds, 0.01)
        return min(60.0, max(1.0, estimate))

    def observe_service_seconds(self, seconds: float) -> None:
        """Fold one finished job's service time into the EWMA."""
        alpha = 0.2
        self.avg_service_seconds += alpha * (seconds
                                             - self.avg_service_seconds)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put_nowait(self, job: Job) -> None:
        """Enqueue or raise (:class:`QueueFullError` on backpressure)."""
        if self._closed:
            raise QueueClosedError()
        if self._size >= self.depth:
            raise QueueFullError(self._size, self.retry_after())
        level = self._levels[job.priority]
        level.setdefault(job.client, deque()).append(job)
        self._size += 1
        self._wakeup.set()

    def close(self) -> None:
        """Stop intake.  Getters drain what is queued, then raise
        :class:`QueueClosedError` — the shutdown path."""
        self._closed = True
        self._wakeup.set()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def _pop_once(self, kind: Optional[str] = None) -> Optional[Job]:
        """Next entry by priority then client round-robin; optionally
        restricted to one kind (for batch collection)."""
        for priority in sorted(self._levels):
            level = self._levels[priority]
            for client in list(level):
                dq = level[client]
                picked: Optional[Job] = None
                if kind is None:
                    if dq:
                        picked = dq.popleft()
                else:
                    for job in dq:
                        if job.kind == kind:
                            picked = job
                            dq.remove(job)
                            break
                if picked is None:
                    if not dq:
                        del level[client]
                    continue
                self._size -= 1
                # Rotate the served client to the back of its level.
                del level[client]
                if dq:
                    level[client] = dq
                return picked
        return None

    def _pop(self, kind: Optional[str] = None) -> Optional[Job]:
        """Like :meth:`_pop_once`, but lazily drops cancelled entries
        (belt and braces — :meth:`cancel` removes them eagerly)."""
        while True:
            job = self._pop_once(kind)
            if job is None or job.state is not JobState.CANCELLED:
                return job

    async def get(self) -> Job:
        """Wait for the next job (priority + fairness order).

        Raises :class:`QueueClosedError` once the queue is closed *and*
        empty, which is how workers learn the drain is complete.
        """
        while True:
            job = self._pop()
            if job is not None:
                return job
            if self._closed:
                raise QueueClosedError()
            self._wakeup.clear()
            await self._wakeup.wait()

    def take_matching(self, kind: str, limit: int) -> List[Job]:
        """Immediately pop up to ``limit`` queued jobs of ``kind``.

        Used by workers to coalesce a batch behind a just-claimed job;
        returns fewer (possibly zero) when the queue runs dry.
        """
        out: List[Job] = []
        while len(out) < limit:
            job = self._pop(kind=kind)
            if job is None:
                break
            out.append(job)
        return out

    def cancel(self, job: Job) -> bool:
        """Remove a queued job (DELETE endpoint); False if not queued."""
        dq = self._levels.get(job.priority, {}).get(job.client)
        if dq is None:
            return False
        try:
            dq.remove(job)
        except ValueError:
            return False
        self._size -= 1
        return True
