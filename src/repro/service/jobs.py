"""Job model and store for the evaluation service.

A :class:`Job` is one client request — rank, grade, spectrum or
serious-fault — flowing through the states ``queued -> running ->
done | failed | cancelled``.  Parameters are validated and
canonicalized at admission (:func:`canonical_params`), so everything
downstream — the queue, the coalescer, the workers — sees one spelling
per request, and the job's :attr:`~Job.cache_key` (a
:func:`~repro.cache.keys.stable_hash` over kind + canonical params) is
the coalescing identity: two jobs with equal keys are the same
computation.

The :class:`JobStore` owns every job the service has admitted,
deduplicates on client idempotency keys, and retains finished jobs for
a TTL so clients can poll results after completion without the store
growing without bound.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cache.keys import stable_hash
from ..errors import ServiceError
from ..resolve import resolve_design, resolve_generator, resolve_generator_key
from ..telemetry import TraceContext

__all__ = ["Job", "JobState", "JobStore", "JOB_KINDS", "BATCHABLE_KINDS",
           "PRIORITIES", "canonical_params"]

#: Request kinds the service evaluates (ISSUE terminology: spectrum
#: ranking per Table 3 is ``rank``, fault grading per Tables 4-5 is
#: ``grade``, serious-fault checks per Figures 2-3 are ``serious-fault``;
#: ``gate-grade`` is the exact gate-level grader, the long-running kind
#: whose per-batch progress shows up live on the job document;
#: ``recommend`` answers "best generator for this design" from the
#: analytic predictor, gate-grading only the top-k candidates;
#: ``grade-shard`` is one cluster shard of exact gate-level grading —
#: explicit global fault indices in, per-index verdicts + detection
#: times + a MISR signature partial out (see :mod:`repro.cluster`).
JOB_KINDS = ("rank", "grade", "spectrum", "serious-fault", "gate-grade",
             "recommend", "grade-shard")

#: Kinds whose requests are small enough that the worker pool batches
#: several queued ones into a single executor pass.
BATCHABLE_KINDS = ("rank", "grade", "spectrum")

#: Priority names -> scheduling levels (lower level drains first).
PRIORITIES = {"high": 0, "normal": 1, "low": 2}
_PRIORITY_NAMES = {v: k for k, v in PRIORITIES.items()}

#: Admission-time guard rails on request sizes.
MAX_VECTORS = 1 << 18
MAX_WIDTH = 24
MIN_WIDTH = 4
MAX_POINTS = 1 << 14
#: Gate-level grading is exact (and therefore slow); keep service
#: requests bounded so one job cannot monopolize an executor thread.
MAX_GATE_VECTORS = 1 << 12
MAX_GATE_FAULTS = 1 << 14
#: Largest fault universe a shard's global indices may address (the
#: MISR stream length); comfortably above every Table 1 design.
MAX_SHARD_TOTAL = 1 << 20
#: MISR compaction widths the shard signature partial supports.
MIN_MISR_WIDTH = 4
MAX_MISR_WIDTH = 24


class JobState(str, Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def _int_param(params: Dict[str, Any], name: str, default: int,
               lo: int, hi: int) -> int:
    raw = params.pop(name, default)
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ServiceError(f"parameter {name!r} must be an integer, "
                           f"got {raw!r}", status=400) from None
    if not lo <= value <= hi:
        raise ServiceError(f"parameter {name!r} must be in [{lo}, {hi}], "
                           f"got {value}", status=400)
    return value


def _index_list(params: Dict[str, Any], name: str,
                total: int) -> List[int]:
    """A non-empty list of distinct global fault indices ``< total``."""
    raw = params.pop(name, None)
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ServiceError(f"parameter {name!r} must be a non-empty "
                           f"list of fault indices", status=400)
    if len(raw) > MAX_GATE_FAULTS:
        raise ServiceError(f"parameter {name!r} holds {len(raw)} indices; "
                           f"at most {MAX_GATE_FAULTS} per shard",
                           status=400)
    out: List[int] = []
    for item in raw:
        try:
            value = int(item)
        except (TypeError, ValueError):
            raise ServiceError(f"parameter {name!r} must hold integers, "
                               f"got {item!r}", status=400) from None
        if not 0 <= value < total:
            raise ServiceError(f"fault index {value} out of range "
                               f"[0, {total})", status=400)
        out.append(value)
    if len(set(out)) != len(out):
        raise ServiceError(f"parameter {name!r} holds duplicate indices",
                           status=400)
    return out


def _engine_param(params: Dict[str, Any]) -> str:
    """The cone evaluator tier a gate-grading job runs (canonical
    spelling; empty/missing means the executing worker's default)."""
    raw = params.pop("engine", "")
    if raw in ("", None):
        return ""
    from ..gates import resolve_engine

    try:
        return resolve_engine(str(raw))
    except Exception as exc:
        raise ServiceError(str(exc), status=400) from None


def _trace_param(params: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """An optional ``{"trace_id": ..., "span_id": ...}`` dict naming
    where the shard's spans hang in the *coordinator's* trace."""
    raw = params.pop("trace", None)
    if raw is None:
        return None
    if (not isinstance(raw, dict)
            or not isinstance(raw.get("trace_id"), str)
            or not isinstance(raw.get("span_id"), (str, type(None)))):
        raise ServiceError("parameter 'trace' must be a dict with a "
                           "trace_id string and an optional span_id",
                           status=400)
    return {"trace_id": raw["trace_id"], "span_id": raw.get("span_id")}


def canonical_params(kind: str, params: Optional[Dict[str, Any]]
                     ) -> Dict[str, Any]:
    """Validate and canonicalize a request's parameters.

    Raises :class:`~repro.errors.ServiceError` (status 400) on unknown
    kinds, unknown parameter names, out-of-range values, and unknown
    design/generator names (via the shared resolver, so the message
    lists the valid choices).
    """
    if kind not in JOB_KINDS:
        raise ServiceError(f"unknown job kind {kind!r}; "
                           f"valid choices: {', '.join(JOB_KINDS)}",
                           status=400)
    params = dict(params or {})
    out: Dict[str, Any] = {}
    if kind == "rank":
        out["design"] = resolve_design(params.pop("design", "LP"))
        out["vectors"] = _int_param(params, "vectors", 4096, 2, MAX_VECTORS)
    elif kind == "grade":
        out["design"] = resolve_design(params.pop("design", "LP"))
        out["generator"] = resolve_generator_key(
            params.pop("generator", "LFSR-1"))
        out["vectors"] = _int_param(params, "vectors", 4096, 1, MAX_VECTORS)
        out["width"] = _int_param(params, "width", 12, MIN_WIDTH, MAX_WIDTH)
    elif kind == "spectrum":
        out["generator"] = resolve_generator(params.pop("generator", "lfsr1"))
        out["width"] = _int_param(params, "width", 12, MIN_WIDTH, MAX_WIDTH)
        out["points"] = _int_param(params, "points", 64, 1, MAX_POINTS)
    elif kind == "gate-grade":
        out["design"] = resolve_design(params.pop("design", "LP"))
        out["generator"] = resolve_generator(params.pop("generator", "lfsr1"))
        out["vectors"] = _int_param(params, "vectors", 256, 1,
                                    MAX_GATE_VECTORS)
        out["width"] = _int_param(params, "width", 12, MIN_WIDTH, MAX_WIDTH)
        # 0 means "the whole enumerated universe" (still capped at
        # execution time by the netlist's own fault count).
        out["faults"] = _int_param(params, "faults", 256, 0, MAX_GATE_FAULTS)
    elif kind == "grade-shard":
        out["design"] = resolve_design(params.pop("design", "LP"))
        out["generator"] = resolve_generator(params.pop("generator",
                                                        "lfsr1"))
        out["vectors"] = _int_param(params, "vectors", 256, 1,
                                    MAX_GATE_VECTORS)
        out["width"] = _int_param(params, "width", 12, MIN_WIDTH, MAX_WIDTH)
        out["total"] = _int_param(params, "total", 0, 1, MAX_SHARD_TOTAL)
        out["misr_width"] = _int_param(params, "misr_width", 16,
                                       MIN_MISR_WIDTH, MAX_MISR_WIDTH)
        # 0 = the engine's default time-chunk length.
        out["chunk"] = _int_param(params, "chunk", 0, 0, MAX_VECTORS)
        out["engine"] = _engine_param(params)
        out["indices"] = _index_list(params, "indices", out["total"])
        trace = _trace_param(params)
        if trace is not None:
            out["trace"] = trace
    elif kind == "recommend":
        out["design"] = resolve_design(params.pop("design", "LP"))
        out["vectors"] = _int_param(params, "vectors", 4096, 2, MAX_VECTORS)
        # top_k bounds the gate-level confirmation passes (0 = analytic
        # ranking only); the confirm budgets share the gate-grade caps.
        out["top_k"] = _int_param(params, "top_k", 2, 0, 5)
        out["confirm_vectors"] = _int_param(
            params, "confirm_vectors", 256, 0, MAX_GATE_VECTORS)
        out["confirm_faults"] = _int_param(
            params, "confirm_faults", 512, 0, MAX_GATE_FAULTS)
        out["bins"] = _int_param(params, "bins", 256, 16, 4096)
    else:  # serious-fault: the Figures 2-3 demonstration has no knobs
        pass
    if params:
        raise ServiceError(
            f"unknown parameter(s) for kind {kind!r}: "
            f"{', '.join(sorted(map(str, params)))}", status=400)
    return out


@dataclass
class Job:
    """One admitted request and everything known about it."""

    id: str
    kind: str
    params: Dict[str, Any]
    client: str
    priority: int
    cache_key: str
    idempotency_key: Optional[str] = None
    state: JobState = JobState.QUEUED
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    coalesced: bool = False
    #: Latest progress snapshot (stream name -> progress doc), written
    #: by the worker thread while the job runs; plain dict assignment so
    #: pollers on the event loop always see a consistent snapshot.
    progress: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: Where this job hangs in the submitting request's trace; the
    #: worker's spans merge back under it (None when telemetry is off).
    trace: Optional[TraceContext] = field(default=None, repr=False)
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def finish(self, state: JobState, now: float, *,
               result: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None) -> None:
        """Move to a terminal state and wake long-pollers."""
        self.state = state
        self.finished = now
        self.result = result
        self.error = error
        self.done.set()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (the ``GET /v1/jobs/{id}`` body)."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "params": dict(self.params),
            "client": self.client,
            "priority": _PRIORITY_NAMES.get(self.priority, self.priority),
            "state": self.state.value,
            "created_unix": self.created,
            "coalesced": self.coalesced,
        }
        if self.idempotency_key is not None:
            doc["idempotency_key"] = self.idempotency_key
        if self.trace is not None:
            doc["trace_id"] = self.trace.trace_id
        if self.started is not None:
            doc["started_unix"] = self.started
            doc["queued_seconds"] = self.started - self.created
        if self.finished is not None:
            doc["finished_unix"] = self.finished
            if self.started is not None:
                doc["running_seconds"] = self.finished - self.started
        if self.progress is not None:
            doc["progress"] = dict(self.progress)
        if self.error is not None:
            doc["error"] = self.error
        if self.state is JobState.DONE and self.result is not None:
            doc["result"] = self.result
        return doc


class JobStore:
    """Owns admitted jobs; idempotency index + TTL result retention.

    ``clock`` is injectable for tests; it must be monotonic-ish (the
    default wall clock is fine operationally, a fake clock is fine in
    tests).
    """

    def __init__(self, result_ttl: float = 600.0,
                 clock: Callable[[], float] = time.time):
        if result_ttl <= 0:
            raise ServiceError(f"result_ttl must be positive, "
                               f"got {result_ttl}")
        self.result_ttl = result_ttl
        self.clock = clock
        self._jobs: Dict[str, Job] = {}
        self._by_idem: Dict[Tuple[str, str], str] = {}
        self._seq = itertools.count(1)
        self._prefix = os.urandom(3).hex()

    def __len__(self) -> int:
        return len(self._jobs)

    def create(self, kind: str, params: Optional[Dict[str, Any]], *,
               client: str = "anonymous", priority: str = "normal",
               idempotency_key: Optional[str] = None) -> Tuple[Job, bool]:
        """Admit a request; returns ``(job, created)``.

        With an idempotency key the same ``(client, key)`` pair maps to
        the same job for as long as it is retained, so retried
        submissions are answered from the original job instead of
        re-queueing work — ``created`` is ``False`` then.
        """
        self.purge()
        if priority not in PRIORITIES:
            raise ServiceError(f"unknown priority {priority!r}; "
                               f"valid choices: "
                               f"{', '.join(sorted(PRIORITIES))}", status=400)
        if idempotency_key is not None:
            existing_id = self._by_idem.get((client, idempotency_key))
            if existing_id is not None and existing_id in self._jobs:
                return self._jobs[existing_id], False
        canon = canonical_params(kind, params)
        # The coordinator's trace pointer names *where spans hang*, not
        # *what is computed* — exclude it from the coalescing identity
        # so identical shards from different runs share one future.
        keyed = {k: v for k, v in canon.items() if k != "trace"}
        job = Job(
            id=f"j-{self._prefix}-{next(self._seq):06d}",
            kind=kind,
            params=canon,
            client=client,
            priority=PRIORITIES[priority],
            cache_key=stable_hash({"kind": kind, "params": keyed}),
            idempotency_key=idempotency_key,
            created=self.clock(),
        )
        self._jobs[job.id] = job
        if idempotency_key is not None:
            self._by_idem[(client, idempotency_key)] = job.id
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        self.purge()
        return self._jobs.get(job_id)

    def discard(self, job: Job) -> None:
        """Forget a job entirely (admission failed after ``create``)."""
        self._jobs.pop(job.id, None)
        if job.idempotency_key is not None:
            key = (job.client, job.idempotency_key)
            if self._by_idem.get(key) == job.id:
                del self._by_idem[key]

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Jobs per state (the ``/metrics`` breakdown)."""
        out = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            out[job.state.value] += 1
        return out

    def purge(self, now: Optional[float] = None) -> int:
        """Drop finished jobs older than the retention TTL."""
        now = self.clock() if now is None else now
        horizon = now - self.result_ttl
        stale = [j for j in self._jobs.values()
                 if j.state.finished and j.finished is not None
                 and j.finished < horizon]
        for job in stale:
            del self._jobs[job.id]
            if job.idempotency_key is not None:
                key = (job.client, job.idempotency_key)
                if self._by_idem.get(key) == job.id:
                    del self._by_idem[key]
        return len(stale)
