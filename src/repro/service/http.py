"""Minimal stdlib HTTP/1.1 layer for the evaluation service.

Implemented straight on :func:`asyncio.start_server` streams — no
framework, no dependencies — because the API surface is small and the
hard problems (queueing, fairness, shutdown) live elsewhere.  One
request per connection (responses carry ``Connection: close``), bodies
and responses are JSON.

Routes
------
``POST   /v1/jobs``             submit (rank | grade | spectrum |
                                serious-fault | gate-grade | recommend |
                                grade-shard — the cluster coordinator's
                                unit of dispatch, see
                                :mod:`repro.cluster`)
``GET    /v1/jobs/{id}``        poll; ``?wait=SECONDS`` long-polls
``GET    /v1/jobs/{id}/result`` the result document alone
``DELETE /v1/jobs/{id}``        cancel a queued job
``GET    /v1/events``           server-sent-events stream of job state
                                transitions, live progress snapshots and
                                ``fleet.*`` / ``alert.*`` health events;
                                ``?job=ID`` filters to one job and ends
                                the stream when that job finishes
``GET    /v1/fleet``            live fleet health snapshot: every known
                                worker's liveness, throughput, progress
                                cursors and the currently-firing alerts
                                (``repro-fleet/1``)
``POST   /v1/fleet/heartbeat``  ingest one worker heartbeat
                                (``repro-heartbeat/1``) — how downstream
                                workers report into an aggregating serve
``GET    /healthz``             liveness (always 200 while the process runs)
``GET    /readyz``              readiness (503 while warming or draining)
``GET    /metrics``             telemetry counters/gauges/histograms; JSON by
                                default, Prometheus text exposition when the
                                ``Accept`` header prefers ``text/plain``
                                (full negotiation: q-values, wildcards,
                                specificity — see
                                :func:`negotiate_media_type`)

Error envelope: ``{"error": "...", "status": N}``; 429/503 responses
carry a ``Retry-After`` header.  Every served request is emitted as a
``request`` telemetry event — the access log when a
:class:`~repro.telemetry.sinks.RequestLogSink` is attached — carrying
``trace_id``/``span_id`` (the request span) and, where the route names
one, ``job_id``, so access-log lines join against Chrome-trace exports
and job ledger records.
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError, ServiceError
from ..telemetry import TraceContext, get_telemetry
from .events import sse_frame
from .jobs import JobState

__all__ = ["HttpApi", "negotiate_media_type"]

logger = logging.getLogger("repro.service")

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_JOB_PATH = re.compile(r"/v1/jobs/([A-Za-z0-9_.-]+)(/result)?")

#: (status, payload, extra headers) triple every handler returns.  The
#: payload is normally a JSON-able dict; a plain ``str`` is sent as-is
#: with a text content type (the Prometheus ``/metrics`` exposition).
Reply = Tuple[int, Any, Dict[str, str]]


class _HttpError(ServiceError):
    """Protocol-level failure with a definite status code."""


def negotiate_media_type(accept: str, offers: Tuple[str, ...]
                         ) -> Optional[str]:
    """Pick the best of ``offers`` for an ``Accept`` header value.

    Implements the parts of RFC 7231 §5.3.2 a JSON/text API actually
    needs: comma-separated media ranges, ``q`` weights (params after
    ``q`` are ignored), ``type/*`` and ``*/*`` wildcards, and the rule
    that an offer's quality comes from its *most specific* matching
    range — so ``*/*;q=1, text/plain;q=0.1`` really does demote
    ``text/plain``.  Ties prefer the earlier offer (server preference).
    Returns ``None`` when nothing is acceptable; an empty or
    unparseable header accepts everything (first offer wins).
    """
    ranges = []
    for part in (accept or "").split(","):
        media, _, raw_params = part.partition(";")
        media = media.strip().lower()
        if "/" not in media:
            continue
        mtype, _, msub = media.partition("/")
        q = 1.0
        for param in raw_params.split(";"):
            name, sep, value = param.strip().partition("=")
            if sep and name.strip().lower() == "q":
                try:
                    q = float(value.strip())
                except ValueError:
                    q = 0.0
                break  # everything after q= is an accept-ext
        ranges.append((mtype, msub, max(0.0, min(1.0, q))))
    if not ranges:
        return offers[0] if offers else None
    best: Optional[Tuple[float, int]] = None
    best_offer: Optional[str] = None
    for idx, offer in enumerate(offers):
        otype, _, osub = offer.lower().partition("/")
        match: Optional[Tuple[int, float]] = None  # (specificity, q)
        for mtype, msub, q in ranges:
            if (mtype, msub) == (otype, osub):
                spec = 2
            elif mtype == otype and msub == "*":
                spec = 1
            elif (mtype, msub) == ("*", "*"):
                spec = 0
            else:
                continue
            if match is None or spec > match[0]:
                match = (spec, q)
        if match is None or match[1] <= 0:
            continue
        key = (match[1], -idx)
        if best is None or key > best:
            best, best_offer = key, offer
    return best_offer


def _error_reply(status: int, message: str,
                 retry_after: Optional[float] = None) -> Reply:
    headers: Dict[str, str] = {}
    if retry_after is not None:
        headers["Retry-After"] = f"{max(0.0, retry_after):.0f}" \
            if retry_after >= 1 else "1"
    return status, {"error": message, "status": status}, headers


class HttpApi:
    """Parses requests, routes them into the service, logs each one."""

    def __init__(self, service) -> None:
        self.service = service

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        clock = self.service.store.clock
        t0 = clock()
        method = path = "-"
        client = None
        status = 500
        cache_state: Optional[str] = None
        trace_ctx: Optional[TraceContext] = None
        job_id: Optional[str] = None
        try:
            try:
                method, target, headers, body = await self._read_request(
                    reader)
            except _HttpError as exc:
                status, payload, extra = _error_reply(exc.status, str(exc))
                await self._respond(writer, status, payload, extra)
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request
            split = urlsplit(target)
            path = split.path
            query = parse_qs(split.query)
            client = headers.get("x-repro-client")
            if path == "/v1/events" and method == "GET":
                # Streaming departs from the one-shot request/reply
                # shape (no Content-Length, the response outlives this
                # scope's span), so it is served outside _route.
                status = await self._serve_events(writer, query)
                return
            try:
                # The request span is the root every downstream span —
                # the job's worker-side spans included — hangs under.
                # The per-context span stack makes this safe across
                # concurrently served connections.
                with get_telemetry().span("service.request", route=path,
                                          method=method):
                    # Captured inside the span so the access-log line
                    # carries the ids that join it to the trace export.
                    trace_ctx = TraceContext.current()
                    status, payload, extra = await self._route(
                        method, path, query, headers, body)
                m = _JOB_PATH.fullmatch(path)
                if m is not None:
                    job_id = m.group(1)
                elif path == "/v1/jobs" and isinstance(payload, dict) \
                        and payload.get("id"):
                    job_id = str(payload["id"])
            except ServiceError as exc:
                status, payload, extra = _error_reply(
                    exc.status, str(exc), exc.retry_after)
            except ReproError as exc:
                status, payload, extra = _error_reply(400, str(exc))
            except Exception:
                logger.exception("unhandled error serving %s %s",
                                 method, path)
                status, payload, extra = _error_reply(
                    500, "internal server error")
            cache_state = extra.pop("x-repro-cache", None)
            await self._respond(writer, status, payload, extra)
        finally:
            writer.close()
            tel = get_telemetry()
            if tel.enabled:
                record: Dict[str, Any] = {
                    "route": path, "method": method, "status": status,
                    "latency_ms": round(1000 * (clock() - t0), 3),
                }
                if client:
                    record["client"] = client
                if cache_state:
                    record["cache"] = cache_state
                if trace_ctx is not None:
                    record["trace_id"] = trace_ctx.trace_id
                    if trace_ctx.span_id is not None:
                        record["span_id"] = trace_ctx.span_id
                if job_id is not None:
                    record["job_id"] = job_id
                tel.event("request", **record)
                tel.counter("service.requests").add(1)
                tel.counter(f"service.requests.{status}").add(1)
                tel.histogram("service.request_seconds").observe(
                    max(0.0, clock() - t0))

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, str], bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError("headers too large", status=413) from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError("headers too large", status=413)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _HttpError(f"malformed request line {lines[0]!r}",
                             status=400)
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError("bad Content-Length", status=400) from None
        if length > MAX_BODY_BYTES:
            raise _HttpError("request body too large", status=413)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _serve_events(self, writer: asyncio.StreamWriter,
                            query: Dict[str, list]) -> int:
        """Stream the event broker to one client as ``text/event-stream``.

        Frames job transitions and progress snapshots as they are
        published; a comment line keeps idle connections alive.  With
        ``?job=ID`` only that job's events pass, a snapshot of the job
        is sent up front, and the stream ends once the job reaches a
        terminal state — so ``repro runs watch`` terminates by itself.
        """
        service = self.service
        broker = getattr(service, "events", None)
        if broker is None:
            status, payload, extra = _error_reply(
                503, "event streaming is not enabled")
            await self._respond(writer, status, payload, extra)
            return status
        job_filter = None
        initial_job = None
        if query.get("job"):
            job_filter = str(query["job"][0])
            initial_job = service.store.get(job_filter)
            if initial_job is None:
                status, payload, extra = _error_reply(
                    404, f"no such job {job_filter!r}")
                await self._respond(writer, status, payload, extra)
                return status
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream; charset=utf-8\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        queue = broker.subscribe()
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("service.events.streams").add(1)
        keepalive = max(0.5, float(getattr(service.config,
                                           "events_keepalive", 15.0)))
        try:
            finished_already = False
            if initial_job is not None:
                writer.write(sse_frame(
                    {"event": "job", "data": initial_job.to_dict()}))
                finished_already = initial_job.state.finished
            await writer.drain()
            if finished_already:
                return 200
            while True:
                try:
                    event = await asyncio.wait_for(queue.get(), keepalive)
                except asyncio.TimeoutError:
                    if service.draining:
                        return 200
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if event.get("event") == "shutdown":
                    writer.write(sse_frame(event))
                    await writer.drain()
                    return 200
                data = event.get("data", {})
                if job_filter is not None and data.get("job") != job_filter:
                    continue
                writer.write(sse_frame(event))
                await writer.drain()
                if tel.enabled:
                    tel.counter("service.events.sent").add(1)
                if (job_filter is not None and event.get("event") == "job"
                        and data.get("state") in
                        ("done", "failed", "cancelled")):
                    return 200
        except ConnectionError:
            return 200  # client hung up; normal for a watch stream
        finally:
            broker.unsubscribe(queue)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       extra: Optional[Dict[str, str]] = None) -> None:
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(data)}",
                "Connection: close"]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + data)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     query: Dict[str, list], headers: Dict[str, str],
                     body: bytes) -> Reply:
        if path == "/healthz":
            return self.service.healthz()
        if path == "/readyz":
            return self.service.readyz()
        if path == "/metrics":
            return self.service.metrics(accept=headers.get("accept", ""))
        if path == "/v1/events":
            # GET is intercepted in handle() (streaming response).
            return _error_reply(405, f"{method} not allowed on {path}")
        if path == "/v1/fleet":
            if method != "GET":
                return _error_reply(405, f"{method} not allowed on {path}")
            return self.service.fleet_snapshot()
        if path == "/v1/fleet/heartbeat":
            if method != "POST":
                return _error_reply(405, f"{method} not allowed on {path}")
            try:
                ack = self.service.ingest_heartbeat(self._json_body(body))
            except ReproError as exc:
                return _error_reply(400, str(exc))
            return 200, ack, {}
        if path == "/v1/jobs":
            if method != "POST":
                return _error_reply(405, f"{method} not allowed on {path}")
            return self.service.submit(self._json_body(body), headers)
        m = _JOB_PATH.fullmatch(path)
        if m:
            job_id, want_result = m.group(1), bool(m.group(2))
            if method == "GET" and not want_result:
                return await self.service.poll(job_id, query)
            if method == "GET":
                return self.service.result(job_id)
            if method == "DELETE" and not want_result:
                return self.service.cancel(job_id)
            return _error_reply(405, f"{method} not allowed on {path}")
        return _error_reply(404, f"no route for {path}")

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(f"invalid JSON body: {exc}",
                             status=400) from None
        if not isinstance(doc, dict):
            raise _HttpError("JSON body must be an object", status=400)
        return doc


def job_reply(job, status: int = 200, *,
              cache: Optional[str] = None) -> Reply:
    """A job snapshot as a handler reply (shared by several routes)."""
    headers: Dict[str, str] = {}
    if cache is not None:
        headers["x-repro-cache"] = cache  # consumed by the access log
    return status, job.to_dict(), headers


def result_reply(job) -> Reply:
    """The ``/result`` document, or the right error for its state."""
    if job.state is JobState.DONE:
        return 200, {"id": job.id, "result": job.result}, {}
    if job.state is JobState.FAILED:
        return 200, {"id": job.id, "error": job.error,
                     "state": job.state.value}, {}
    if job.state is JobState.CANCELLED:
        return 409, {"id": job.id, "state": job.state.value,
                     "error": "job was cancelled"}, {}
    return 409, {"id": job.id, "state": job.state.value,
                 "error": "job has not finished"}, {}
