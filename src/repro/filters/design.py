"""Equiripple FIR prototype design (Parks-McClellan).

The paper's three designs came from FIRGEN-style CAD flows.  We rebuild
architecturally equivalent filters: a Parks-McClellan prototype, scaled
to unit L1 norm, quantized to canonic-signed-digit coefficients with a
small nonzero-digit budget, and mapped onto the transposed tap cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import signal as sp_signal

from ..errors import DesignError

__all__ = ["FilterSpec", "LOWPASS_SPEC", "BANDPASS_SPEC", "HIGHPASS_SPEC",
           "BANDSTOP_SPEC", "design_prototype"]


@dataclass(frozen=True)
class FilterSpec:
    """A piecewise-constant magnitude specification.

    ``bands`` are normalized frequency edges (0 to 0.5, cycles/sample),
    ``desired`` the target gain per band, ``weight`` the ripple weights.
    """

    name: str
    kind: str
    numtaps: int
    bands: Tuple[float, ...]
    desired: Tuple[float, ...]
    weight: Tuple[float, ...]

    @property
    def passband(self) -> Tuple[float, float]:
        """The (first) unity-gain band's frequency edges."""
        for i, d in enumerate(self.desired):
            if d > 0.5:
                return (self.bands[2 * i], self.bands[2 * i + 1])
        raise DesignError(f"{self.name} has no passband")


#: A narrow-band lowpass — "the low cutoff frequency of the filter"
#: combines with the Type 1 LFSR rolloff to cause the Section 5 miss.
LOWPASS_SPEC = FilterSpec(
    name="LP", kind="lowpass", numtaps=61,
    bands=(0.0, 0.035, 0.08, 0.5),
    desired=(1.0, 0.0),
    weight=(1.0, 2.0),
)

#: A mid-band bandpass with a comparatively wide passband (Section 8
#: notes it is "somewhat easier to test ... partly due to its wider
#: passband").
BANDPASS_SPEC = FilterSpec(
    name="BP", kind="bandpass", numtaps=59,
    bands=(0.0, 0.135, 0.195, 0.345, 0.405, 0.5),
    desired=(0.0, 1.0, 0.0),
    weight=(2.0, 1.0, 2.0),
)

#: A band-stop design, beyond the paper's three types: two passbands
#: straddling a notch.  Used to check that the compatibility machinery
#: generalizes (a compatible generator must power *both* passbands).
BANDSTOP_SPEC = FilterSpec(
    name="BS", kind="bandstop", numtaps=61,
    bands=(0.0, 0.1, 0.17, 0.3, 0.37, 0.5),
    desired=(1.0, 0.0, 1.0),
    weight=(1.0, 2.0, 1.0),
)

#: A highpass whose passband sits where the Ramp generator has
#: essentially no power.
HIGHPASS_SPEC = FilterSpec(
    name="HP", kind="highpass", numtaps=61,
    bands=(0.0, 0.295, 0.355, 0.5),
    desired=(0.0, 1.0),
    weight=(2.0, 1.0),
)


def design_prototype(spec: FilterSpec) -> np.ndarray:
    """Parks-McClellan coefficients for a spec (unquantized, unscaled)."""
    if len(spec.bands) != 2 * len(spec.desired):
        raise DesignError(f"{spec.name}: bands/desired mismatch")
    if spec.numtaps % 2 == 0 and spec.desired[-1] > 0.5:
        raise DesignError(
            f"{spec.name}: even-length symmetric FIRs force a null at "
            "Nyquist; use an odd tap count for highpass responses"
        )
    coefs = sp_signal.remez(
        spec.numtaps, spec.bands, spec.desired, weight=spec.weight, fs=1.0
    )
    return np.asarray(coefs, dtype=np.float64)


def response_magnitude(coefs: Sequence[float], n_points: int = 2048
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """(freqs, |H|) of a coefficient vector on [0, 0.5]."""
    w, h = sp_signal.freqz(coefs, worN=n_points, fs=1.0)
    return w, np.abs(h)
