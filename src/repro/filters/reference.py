"""The three reference designs of Table 1.

Lowpass, bandpass and highpass filters of comparable complexity:
~60 tap registers, 12-bit input, 14-15-bit coefficients, 16-bit output
datapath, and on the order of 160-185 ripple-carry operators carrying
~50-60k collapsed stuck-at faults.  Construction is deterministic, so the
designs are identical across runs; they are cached per process because
CSD quantization plus scaling takes a moment.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from ..fixedpoint import Fixed
from ..rtl.build import FilterDesign, design_from_coefficients
from .design import (
    BANDPASS_SPEC,
    HIGHPASS_SPEC,
    LOWPASS_SPEC,
    FilterSpec,
    design_prototype,
)

__all__ = ["lowpass_design", "bandpass_design", "highpass_design",
           "reference_designs", "build_reference"]

#: Input format shared by all Table 1 designs: 12-bit.
INPUT_FMT = Fixed(12, 11)

#: Output datapath of all Table 1 designs: 16-bit (frac 15).  Individual
#: operator widths come from L1 scaling analysis — the paper's first
#: design step removes the redundant sign bits a uniform-width chain
#: would carry — and reach 16 bits at the output end of the chain.
ACC_FRAC = 15
ACC_WIDTH = 16

#: Coefficient grids: LP and HP use 15 fractional bits, BP 14 (Table 1).
_COEF_FRAC = {"LP": 15, "BP": 14, "HP": 15}

#: Nonzero-CSD-digit budget per coefficient; 4 lands the operator counts
#: within a few percent of Table 1 (191/166/175 vs the paper's
#: 183/161/175).
_MAX_NONZEROS = 4


def build_reference(spec: FilterSpec) -> FilterDesign:
    """Build one reference design from its spec (uncached).

    Works for any spec; non-Table-1 specs default to 15 coefficient
    bits.
    """
    coefs = design_prototype(spec)
    design = design_from_coefficients(
        coefs,
        name=spec.name,
        input_fmt=INPUT_FMT,
        coef_frac=_COEF_FRAC.get(spec.name, 15),
        acc_frac=ACC_FRAC,
        max_nonzeros=_MAX_NONZEROS,
        scale=True,
        accumulator_width=None,
    )
    design.kind = spec.kind
    design.extra["spec"] = spec
    return design


@lru_cache(maxsize=None)
def lowpass_design() -> FilterDesign:
    """The 60-register narrow-band lowpass design (paper's LP)."""
    return build_reference(LOWPASS_SPEC)


@lru_cache(maxsize=None)
def bandpass_design() -> FilterDesign:
    """The 58-register bandpass design (paper's BP)."""
    return build_reference(BANDPASS_SPEC)


@lru_cache(maxsize=None)
def highpass_design() -> FilterDesign:
    """The 60-register highpass design (paper's HP)."""
    return build_reference(HIGHPASS_SPEC)


def reference_designs() -> Dict[str, FilterDesign]:
    """All three Table 1 designs, keyed LP/BP/HP."""
    return {
        "LP": lowpass_design(),
        "BP": bandpass_design(),
        "HP": highpass_design(),
    }
