"""Design statistics (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..faultsim.dictionary import build_fault_universe
from ..rtl.build import FilterDesign

__all__ = ["DesignStats", "design_statistics"]


@dataclass(frozen=True)
class DesignStats:
    """One row of Table 1."""

    name: str
    adders: int
    registers: int
    input_width: int
    coefficient_width: int
    output_width: int
    faults: int
    uncollapsed_faults: int

    def row(self) -> List[object]:
        return [self.name, self.adders, self.registers, self.input_width,
                self.coefficient_width, self.output_width, self.faults]


def _coefficient_width(design: FilterDesign) -> int:
    """Bits needed for the widest coefficient magnitude on its grid.

    Matches the paper's "coef." column: the number of fractional bits of
    the coefficient grid actually exercised (the least-significant used
    CSD digit position).
    """
    width = 0
    for tap in design.taps:
        for term in tap.plan.terms:
            width = max(width, term.shift)
    return width


def design_statistics(design: FilterDesign) -> DesignStats:
    """Compute the Table 1 row for one design."""
    universe = build_fault_universe(design.graph, name=design.name)
    return DesignStats(
        name=design.name,
        adders=design.adder_count,
        registers=design.register_count,
        input_width=design.input_fmt.width,
        coefficient_width=_coefficient_width(design),
        output_width=design.output_fmt.width,
        faults=universe.fault_count,
        uncollapsed_faults=universe.uncollapsed_count,
    )
