"""Filter prototype design and the three Table 1 reference datapaths."""

from .design import (
    BANDPASS_SPEC,
    BANDSTOP_SPEC,
    HIGHPASS_SPEC,
    LOWPASS_SPEC,
    FilterSpec,
    design_prototype,
    response_magnitude,
)
from .reference import (
    ACC_FRAC,
    ACC_WIDTH,
    INPUT_FMT,
    bandpass_design,
    build_reference,
    highpass_design,
    lowpass_design,
    reference_designs,
)
from .explore import TradeoffPoint, explore_design_space, response_quality
from .stats import DesignStats, design_statistics

__all__ = [
    "FilterSpec",
    "LOWPASS_SPEC",
    "BANDPASS_SPEC",
    "BANDSTOP_SPEC",
    "HIGHPASS_SPEC",
    "design_prototype",
    "response_magnitude",
    "lowpass_design",
    "bandpass_design",
    "highpass_design",
    "reference_designs",
    "build_reference",
    "INPUT_FMT",
    "ACC_FRAC",
    "ACC_WIDTH",
    "TradeoffPoint",
    "explore_design_space",
    "response_quality",
    "DesignStats",
    "design_statistics",
]
