"""CSD design-space exploration.

Reduced-complexity filter design (FIRGEN, Samueli — refs [6, 7] of the
paper) is a trade between hardware cost and frequency response quality:
fewer CSD digits per coefficient mean fewer ripple-carry operators but a
coarser coefficient grid and degraded stopband.  This module sweeps the
(digit budget × coefficient precision) plane and reports the realized
operator count alongside the achieved response, so a designer can pick
the paper-style operating point (budget 4 at 14-15 fractional bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..rtl.build import design_from_coefficients
from .design import FilterSpec, design_prototype

__all__ = ["TradeoffPoint", "explore_design_space", "response_quality"]


def response_quality(coefficients: np.ndarray, spec: FilterSpec,
                     n_points: int = 2048) -> Tuple[float, float]:
    """(stopband attenuation dB, passband ripple dB) of a realization."""
    freqs = np.linspace(0.0, 0.5, n_points)
    k = np.arange(len(coefficients))
    h = np.abs(np.exp(-2j * np.pi * np.outer(freqs, k)) @ coefficients)
    # normalize to the mean passband gain so scaling drops out
    p_lo, p_hi = spec.passband
    pass_mask = (freqs >= p_lo) & (freqs <= p_hi)
    gain = float(np.mean(h[pass_mask]))
    h = h / max(gain, 1e-12)
    ripple = 20.0 * np.log10(max(np.max(h[pass_mask]), 1e-12) /
                             max(np.min(h[pass_mask]), 1e-12))
    atten = np.inf
    for i, desired in enumerate(spec.desired):
        if desired > 0.5:
            continue
        lo, hi = spec.bands[2 * i], spec.bands[2 * i + 1]
        stop_mask = (freqs >= lo) & (freqs <= hi)
        worst = float(np.max(h[stop_mask]))
        atten = min(atten, -20.0 * np.log10(max(worst, 1e-12)))
    return atten, ripple


@dataclass(frozen=True)
class TradeoffPoint:
    """One realization in the cost/quality plane."""

    max_nonzeros: int
    coef_frac: int
    adders: int
    stopband_db: float
    passband_ripple_db: float

    def row(self) -> List[object]:
        return [self.max_nonzeros, self.coef_frac, self.adders,
                round(self.stopband_db, 1), round(self.passband_ripple_db, 2)]


def explore_design_space(
    spec: FilterSpec,
    budgets: Sequence[int] = (1, 2, 3, 4, 6),
    fracs: Sequence[int] = (12, 15),
) -> List[TradeoffPoint]:
    """Sweep digit budgets and coefficient precisions for one spec."""
    prototype = design_prototype(spec)
    points: List[TradeoffPoint] = []
    for frac in fracs:
        for budget in budgets:
            design = design_from_coefficients(
                prototype, name=f"{spec.name}-b{budget}-f{frac}",
                coef_frac=frac, max_nonzeros=budget,
            )
            atten, ripple = response_quality(design.coefficients, spec)
            points.append(TradeoffPoint(
                max_nonzeros=budget, coef_frac=frac,
                adders=design.adder_count,
                stopband_db=atten, passband_ripple_db=ripple,
            ))
    return points
