"""First-occurrence tracking of full-adder input patterns.

The fast coverage engine reduces fault simulation to one question per
cell and pattern: *when does pattern p first appear at cell c?*  This
module answers it by hooking the RTL simulator's per-operator callback,
deriving the ripple-carry cell inputs from the aligned operand words and
recording the earliest vector index of each of the 8 patterns at each
cell.

The tracker is incremental: feed it several simulation segments (e.g. a
mixed-mode session's phases) and indices keep counting across segments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SimulationError
from ..fixedpoint import cell_pattern_codes
from ..rtl.graph import Graph
from ..rtl.nodes import Node, OpKind
from ..rtl.simulate import simulate
from .dictionary import FaultUniverse

__all__ = ["PatternTracker", "track_patterns"]

UNSEEN = np.iinfo(np.int64).max


class PatternTracker:
    """Records the first vector index of each (cell, pattern) occurrence."""

    def __init__(self, universe: FaultUniverse):
        self.universe = universe
        self.first_seen = np.full((universe.cell_count, 8), UNSEEN,
                                  dtype=np.int64)
        self.offset = 0  # vectors consumed so far

    # ------------------------------------------------------------------
    # Simulator hook
    # ------------------------------------------------------------------
    def hook(self, node: Node, a: np.ndarray, b: np.ndarray) -> None:
        """Adder-hook callback: consume one operator's aligned operands."""
        width = node.fmt.width
        is_sub = node.kind is OpKind.SUB
        codes = cell_pattern_codes(a, b, 1 if is_sub else 0, width,
                                   invert_b=is_sub)
        self.observe_codes(node.nid, codes)

    def observe_codes(self, node_id: int, codes: np.ndarray) -> None:
        """Record per-cell pattern codes for one operator.

        ``codes`` has shape ``(width, T)``; row ``k`` holds the 3-bit
        input codes of the operator's bit-``k`` cell over the segment.
        The universe's cells for an operator are contiguous and start at
        bit 0, so one slice covers them all.  Usable for any operator
        style (ripple-carry, carry-save compressor) that registered its
        cells under ``node_id``.
        """
        width = codes.shape[0]
        base = self.universe.cell_index[(node_id, 0)]
        first = self.first_seen[base:base + width]  # view
        for p in range(8):
            hits = codes == p  # (width, T)
            any_hit = hits.any(axis=1)
            if not np.any(any_hit):
                continue
            idx = hits.argmax(axis=1) + self.offset
            update = any_hit & (idx < first[:, p])
            first[update, p] = idx[update]

    def advance(self, n_vectors: int) -> None:
        """Declare a simulation segment of ``n_vectors`` consumed."""
        self.offset += n_vectors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def vectors_seen(self) -> int:
        return self.offset

    def seen_mask(self, at: Optional[int] = None) -> np.ndarray:
        """(cells, 8) bool: pattern seen strictly before vector ``at``."""
        limit = self.offset if at is None else at
        return self.first_seen < limit

    def untested_patterns(self, node_id: int, bit: int) -> list:
        """Patterns never observed at one cell (as test numbers Tn)."""
        row = self.universe.cell_index[(node_id, bit)]
        return [p for p in range(8) if self.first_seen[row, p] == UNSEEN]


def track_patterns(
    graph: Graph,
    universe: FaultUniverse,
    input_raw: np.ndarray,
    tracker: Optional[PatternTracker] = None,
    extra_hook=None,
) -> PatternTracker:
    """Simulate ``input_raw`` and record pattern first occurrences.

    Pass an existing ``tracker`` to continue a session (indices keep
    counting), e.g. for mode-switched generators simulated per phase.
    NOTE: continuing a session re-runs the datapath from reset registers;
    for the long FIR pipelines studied here the few warm-up vectors are
    irrelevant, and generators like :class:`MixedModeLfsr` avoid the
    issue entirely by producing the whole session in one sequence.

    ``extra_hook`` is an additional ``AdderHook`` (e.g. a telemetry
    :class:`~repro.telemetry.ZoneTracer`'s ``hook``) observing the same
    aligned operands the tracker sees, in the same single pass.
    """
    if tracker is None:
        tracker = PatternTracker(universe)
    if tracker.universe is not universe:
        raise SimulationError("tracker belongs to a different fault universe")
    if extra_hook is None:
        hook = tracker.hook
    else:
        def hook(node, a, b):
            tracker.hook(node, a, b)
            extra_hook(node, a, b)
    simulate(graph, input_raw, adder_hook=hook)
    tracker.advance(len(input_raw))
    return tracker
