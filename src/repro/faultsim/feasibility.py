"""Structural feasibility of full-adder input patterns.

Some cell input patterns can never occur, no matter the test applied.
The dominant case in scaled FIR datapaths: at cells above the secondary
operand's significant bits, ``b`` is a sign-extension wire, and e.g. test
T1 (``a=0, b=0, c=1``) would force a sum bit inconsistent with the result
sign — the corresponding faults are *redundant*.  The paper's design flow
removes such redundancy structurally (refs [2,3], "scaling and redundant
operator elimination"); its fault universe therefore excludes them.  This
module reproduces that step analytically.

Model: an operator computes ``A ± B`` where the value intervals of ``A``
and ``B`` are known from scaling analysis and (in the transposed-form
architecture) the operands are controllable essentially independently —
``A`` accumulates *past* inputs, ``B`` is a shifted copy of the *current*
input.  A pattern ``(a, b, c)`` is feasible at cell ``k`` iff values
``A``, ``B`` exist in their intervals whose bit ``k`` values are ``a``
and ``b`` (after inversion for subtractors) and whose low ``k`` bits can
produce carry ``c``.  Everything reduces to the min/max of the low-k-bit
field of an integer interval, split by the value of bit ``k`` — exact
interval arithmetic, no simulation.

The analysis *over*-approximates feasibility (operand intervals are
treated as gap-free and independent), so pruning never removes a
genuinely testable fault class under those assumptions; residual
untestable faults may survive at cells where operands are correlated
within one tap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import FaultModelError
from ..rtl.build import FilterDesign
from ..rtl.intervals import value_intervals
from ..rtl.nodes import OpKind

__all__ = ["interval_low_bits", "feasible_cell_mask", "design_feasible_masks"]


def interval_low_bits(lo: int, hi: int, k: int) -> List[Tuple[int, int, int]]:
    """Possible ``(bit_k, min_low, max_low)`` for integers in ``[lo, hi]``.

    ``low`` is the value of bits ``0..k-1``.  Returns up to two entries,
    one per achievable ``bit_k`` value.  The computation works on the
    two's-complement residues modulo ``2**(k+1)``, which form either the
    full residue ring (wide interval) or one wrapped arc.
    """
    if hi < lo:
        raise FaultModelError(f"empty interval [{lo}, {hi}]")
    m = 1 << (k + 1)
    half = 1 << k
    out: Dict[int, Tuple[int, int]] = {}

    def add(bit: int, low_lo: int, low_hi: int) -> None:
        if low_lo > low_hi:
            return
        if bit in out:
            cur = out[bit]
            out[bit] = (min(cur[0], low_lo), max(cur[1], low_hi))
        else:
            out[bit] = (low_lo, low_hi)

    if hi - lo + 1 >= m:
        add(0, 0, half - 1)
        add(1, 0, half - 1)
    else:
        start = lo % m
        end = hi % m
        arcs = [(start, end)] if start <= end else [(start, m - 1), (0, end)]
        for a0, a1 in arcs:
            # Intersect the arc with each bit_k half of the residue ring.
            add(0, max(a0, 0), min(a1, half - 1))
            add(1, max(a0, half) - half, min(a1, m - 1) - half)
    return [(bit, v[0], v[1]) for bit, v in sorted(out.items())]


def feasible_cell_mask(
    a_interval: Tuple[int, int],
    b_interval: Tuple[int, int],
    k: int,
    is_subtractor: bool,
) -> int:
    """Bitmask of feasible codes ``(a<<2)|(b<<1)|c`` at cell ``k``.

    ``b`` in the code is the bit *physically at the cell*: the inverted
    operand bit for subtractors.  Carry-in at bit 0 is 0 for adders and 1
    for subtractors; for ``k == 0`` only codes with that carry value are
    feasible.
    """
    cin = 1 if is_subtractor else 0
    half = 1 << k
    a_stats = interval_low_bits(*a_interval, k)
    b_raw_stats = interval_low_bits(*b_interval, k)
    # Transform B stats to the complemented operand for subtractors:
    # ~B has bit_k = 1 - bit_k and low = 2**k - 1 - low (reversing order).
    if is_subtractor:
        b_stats = [
            (1 - bit, half - 1 - mx, half - 1 - mn)
            for bit, mn, mx in b_raw_stats
        ]
    else:
        b_stats = b_raw_stats
    mask = 0
    for a_bit, a_min, a_max in a_stats:
        for b_bit, b_min, b_max in b_stats:
            if k == 0:
                mask |= 1 << ((a_bit << 2) | (b_bit << 1) | cin)
                continue
            # carry into bit k is 1 iff lowA + lowB~ + cin >= 2**k
            if a_max + b_max + cin >= half:
                mask |= 1 << ((a_bit << 2) | (b_bit << 1) | 1)
            if a_min + b_min + cin < half:
                mask |= 1 << ((a_bit << 2) | (b_bit << 1) | 0)
    return mask


def design_feasible_masks(design_or_graph) -> Dict[Tuple[int, int], int]:
    """Feasible-code mask for every (operator, bit) cell of a design.

    Operand value intervals come from the exact interval analysis of
    :func:`repro.rtl.intervals.value_intervals` — tight enough to expose
    e.g. a ``x >> 15`` term that only ever takes the values ``-1`` and
    ``0``, whose consumers therefore never see certain carry patterns.
    """
    graph = design_or_graph.graph if isinstance(design_or_graph, FilterDesign) \
        else design_or_graph
    intervals = value_intervals(graph)
    out: Dict[Tuple[int, int], int] = {}
    for node in graph.arithmetic_nodes:
        is_sub = node.kind is OpKind.SUB
        a_iv = intervals[node.srcs[0]]
        b_iv = intervals[node.srcs[1]]
        for bit in range(node.fmt.width):
            out[(node.nid, bit)] = feasible_cell_mask(a_iv, b_iv, bit, is_sub)
    return out
