"""Fast cell-level fault-coverage engine.

Combines the fault dictionary (which patterns detect each fault) with the
pattern tracker (when each pattern first occurs at each cell) to produce
*exact per-vector* detection times for the whole ~50k-fault universe of a
Table 1 design in a couple of seconds — the workhorse behind the paper's
fault-simulation curves (Figures 10-13) and missed-fault tables
(Tables 4-6).

Detection model: a fault is detected at the first vector whose cell input
pattern is in the fault's detecting set, assuming the resulting output
error reaches the response analyzer (the paper assumes an alias-free
compactor and reports "very good observability"; the gate-level engine in
:mod:`repro.gates.faults` provides the exact-propagation ground truth the
model is validated against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from ..telemetry import get_telemetry
from .dictionary import DesignFault, FaultUniverse, build_fault_universe
from .patterns import UNSEEN, PatternTracker, track_patterns

__all__ = ["CoverageResult", "run_fault_coverage", "coverage_of_tracker",
           "coverage_from_detect_times"]

#: Detection-latency histogram buckets, in vectors (powers of two).
LATENCY_EDGES = tuple(float(1 << k) for k in range(0, 17, 2))


@dataclass
class CoverageResult:
    """Outcome of one fault-coverage session."""

    design_name: str
    generator_name: str
    universe: FaultUniverse
    detect_time: np.ndarray  # per fault; UNSEEN when never detected
    n_vectors: int

    # ------------------------------------------------------------------
    # Scalar summaries
    # ------------------------------------------------------------------
    def detected(self, at: Optional[int] = None) -> int:
        """Faults detected within the first ``at`` vectors (default: all)."""
        limit = self.n_vectors if at is None else at
        return int(np.sum(self.detect_time < limit))

    def missed(self, at: Optional[int] = None) -> int:
        """Faults still undetected after ``at`` vectors."""
        return self.universe.fault_count - self.detected(at)

    def coverage(self, at: Optional[int] = None) -> float:
        """Fault coverage in [0, 1]."""
        return self.detected(at) / max(1, self.universe.fault_count)

    def missed_faults(self, at: Optional[int] = None) -> List[DesignFault]:
        """The undetected fault objects (for localization reports)."""
        limit = self.n_vectors if at is None else at
        idx = np.nonzero(self.detect_time >= limit)[0]
        return [self.universe.faults[i] for i in idx]

    # ------------------------------------------------------------------
    # Curves
    # ------------------------------------------------------------------
    def curve(self, points: Optional[Sequence[int]] = None
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Undetected-fault count vs. vectors applied.

        Returns ``(vectors, undetected)``; default sample points are
        logarithmically spaced (fault-sim curves are read on log x).
        """
        if points is None:
            points = np.unique(np.concatenate([
                np.arange(1, min(65, self.n_vectors + 1)),
                np.geomspace(64, self.n_vectors, 96).astype(np.int64),
            ]))
        pts = np.asarray(list(points), dtype=np.int64)
        times = np.sort(self.detect_time[self.detect_time != UNSEEN])
        # detect_time t means "detected by the (t+1)-th vector", so after
        # `pts` vectors everything with time < pts is in.
        detected_at = np.searchsorted(times, pts, side="left")
        undetected = self.universe.fault_count - detected_at
        return pts, undetected

    def coverage_percent_curve(self, points: Optional[Sequence[int]] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
        pts, undetected = self.curve(points)
        n = max(1, self.universe.fault_count)
        return pts, 100.0 * (n - undetected) / n


def coverage_of_tracker(
    tracker: PatternTracker,
    design_name: str = "",
    generator_name: str = "",
) -> CoverageResult:
    """Fold a pattern tracker into per-fault detection times."""
    universe = tracker.universe
    first = tracker.first_seen  # (cells, 8)
    detect = np.full(universe.fault_count, UNSEEN, dtype=np.int64)
    masks = universe.fault_mask
    cells = universe.fault_cell
    for p in range(8):
        has_p = (masks & (1 << p)) != 0
        if not np.any(has_p):
            continue
        t = first[cells[has_p], p]
        np.minimum(detect[has_p], t, out=t)
        detect[has_p] = t
    return CoverageResult(
        design_name=design_name or universe.design_name,
        generator_name=generator_name,
        universe=universe,
        detect_time=detect,
        n_vectors=tracker.vectors_seen,
    )


def coverage_from_detect_times(
    universe: FaultUniverse,
    detect_time: np.ndarray,
    n_vectors: int,
    design_name: str = "",
    generator_name: str = "",
) -> CoverageResult:
    """Rehydrate a session from its per-fault detection times.

    Used by the parallel sweep (workers ship bare arrays) and the
    artifact cache (results are stored as arrays); validates the array
    against the universe so a mismatched pairing fails loudly.
    """
    detect = np.asarray(detect_time, dtype=np.int64)
    if detect.ndim != 1 or len(detect) != universe.fault_count:
        raise SimulationError(
            f"detect_time has shape {detect.shape} but universe "
            f"{universe.design_name!r} holds {universe.fault_count} faults")
    if n_vectors <= 0:
        raise SimulationError("n_vectors must be positive")
    return CoverageResult(
        design_name=design_name or universe.design_name,
        generator_name=generator_name,
        universe=universe,
        detect_time=detect,
        n_vectors=int(n_vectors),
    )


def _record_detection_latencies(tel, result: CoverageResult) -> None:
    """Per-fault-class detection-latency histograms (telemetry on only)."""
    detect = result.detect_time
    classes = np.array([f.cell_fault.name for f in result.universe.faults])
    for cls in np.unique(classes):
        times = detect[(classes == cls) & (detect != UNSEEN)]
        if times.size:
            tel.histogram(f"faultsim.detect_latency.{cls}",
                          edges=LATENCY_EDGES).observe_many(times + 1)


def run_fault_coverage(
    design: FilterDesign,
    generator: TestGenerator,
    n_vectors: int,
    universe: Optional[FaultUniverse] = None,
    zone_tracer=None,
) -> CoverageResult:
    """One complete BIST session: generator -> filter -> coverage.

    The generator is reset, ``n_vectors`` words are produced (width-matched
    to the filter input), and the full fault universe is graded.

    ``zone_tracer`` optionally attaches a
    :class:`repro.telemetry.ZoneTracer` whose hook observes every
    operator's session operands alongside the pattern tracker.
    """
    if n_vectors <= 0:
        raise SimulationError("n_vectors must be positive")
    tel = get_telemetry()
    with tel.span("faultsim.run", design=design.name,
                  generator=generator.name, vectors=n_vectors) as sp:
        # Coarse stage progress: the cell-level session is a handful of
        # vectorized passes, so the stream ticks per stage rather than
        # per vector (the chunked gate-level engines tick per batch).
        stages = 4.0
        if tel.enabled:
            tel.progress("faultsim.session", 0, stages, stage="start")
        if universe is None:
            with tel.span("faultsim.build_universe"):
                universe = build_fault_universe(design.graph, name=design.name)
        if tel.enabled:
            tel.progress("faultsim.session", 1, stages, stage="universe")
        with tel.span("faultsim.generate"):
            raw = generator.sequence(n_vectors)
            raw = match_width(raw, generator.width, design.input_fmt.width)
        if tel.enabled:
            tel.progress("faultsim.session", 2, stages, stage="generate")
        with tel.span("faultsim.track"):
            tracker = track_patterns(
                design.graph, universe, raw,
                extra_hook=None if zone_tracer is None else zone_tracer.hook)
        if tel.enabled:
            tel.progress("faultsim.session", 3, stages, stage="track")
        with tel.span("faultsim.classify"):
            result = coverage_of_tracker(tracker, design_name=design.name,
                                         generator_name=generator.name)
        if tel.enabled:
            tel.progress("faultsim.session", stages, stages,
                         stage="classified",
                         coverage=float(result.coverage()))
    if tel.enabled:
        tel.counter("faultsim.sessions").add(1)
        tel.counter("faultsim.vectors").add(n_vectors)
        tel.counter("faultsim.faults_graded").add(universe.fault_count)
        if sp.duration > 0:
            tel.gauge("faultsim.vectors_per_sec").set(n_vectors / sp.duration)
        _record_detection_latencies(tel, result)
    return result
