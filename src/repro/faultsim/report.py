"""Human-readable fault-coverage reporting."""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from .engine import CoverageResult

__all__ = ["coverage_summary", "missed_fault_map", "testability_report"]


def coverage_summary(result: CoverageResult, at: Optional[int] = None) -> str:
    """One-paragraph summary of a coverage session."""
    limit = result.n_vectors if at is None else at
    detected = result.detected(at)
    total = result.universe.fault_count
    lines = [
        f"design {result.design_name}, generator {result.generator_name}:",
        f"  vectors applied : {limit}",
        f"  faults modeled  : {total} (collapsed; "
        f"{result.universe.uncollapsed_count} uncollapsed)",
        f"  detected        : {detected} ({100.0 * detected / max(1, total):.2f}%)",
        f"  missed          : {total - detected}",
    ]
    return "\n".join(lines)


def missed_fault_map(result: CoverageResult, at: Optional[int] = None,
                     top: int = 12) -> str:
    """Where the missed faults live: operator and bit-position histogram.

    Shows how misses cluster in the upper bits of specific operators —
    the paper's signature of test-signal attenuation.
    """
    missed = result.missed_faults(at)
    if not missed:
        return "no missed faults"
    by_node = Counter(f.node_id for f in missed)
    lines: List[str] = [f"{len(missed)} missed faults"]
    lines.append("  worst operators (node id: misses):")
    for nid, count in by_node.most_common(top):
        lines.append(f"    node {nid}: {count}")
    by_depth = Counter(f.bit for f in missed)
    lines.append("  by bit position (LSB=0):")
    for bit in sorted(by_depth):
        lines.append(f"    bit {bit:2d}: {by_depth[bit]}")
    return "\n".join(lines)


def testability_report(design, result: CoverageResult, model=None,
                       at: Optional[int] = None) -> str:
    """Designer-facing per-tap testability report card.

    For every tap of a :class:`~repro.rtl.build.FilterDesign`: operator
    count, faults hosted, faults missed by the graded session, and — when
    an LFSR linear ``model`` is supplied — the predicted signal sigma at
    the tap (normalized, so values ≪ 0.5 flag the T1/T6 zones as out of
    reach).  The paper's Section 7 analysis, packaged as the report a
    filter designer would act on.
    """
    missed_by_node = Counter(f.node_id for f in result.missed_faults(at))
    total_by_node = Counter(f.node_id for f in result.universe.faults)
    lines = [
        f"testability report: {design.name}, generator "
        f"{result.generator_name}, {at or result.n_vectors} vectors",
        f"{'tap':>4s} {'ops':>4s} {'faults':>7s} {'missed':>7s}"
        + ("  predicted sigma" if model is not None else ""),
    ]
    sigma_fn = None
    if model is not None:
        from ..analysis.variance import predicted_sigma_at_tap

        def sigma_fn(t):
            return predicted_sigma_at_tap(design, t, model)
    for tap in design.taps:
        ops = tap.operators
        faults = sum(total_by_node[nid] for nid in ops)
        missed = sum(missed_by_node.get(nid, 0) for nid in ops)
        row = f"{tap.index:4d} {len(ops):4d} {faults:7d} {missed:7d}"
        if sigma_fn is not None and tap.accumulator is not None:
            row += f"  {sigma_fn(tap.index):15.4f}"
        lines.append(row)
    worst = missed_by_node.most_common(1)
    if worst:
        node = design.graph.node(worst[0][0])
        lines.append(f"worst operator: {node.name} ({worst[0][1]} missed)")
    return "\n".join(lines)
