"""Fault simulation: universe assembly, fast cell-level coverage engine,
fault injection and miss classification."""

from .dictionary import (
    DesignFault,
    FaultUniverse,
    build_fault_universe,
    build_universe_from_cells,
)
from .csa import build_csa_universe, run_csa_fault_coverage
from .feasibility import design_feasible_masks, feasible_cell_mask, interval_low_bits
from .observability import ObservabilityAudit, audit_observability, downstream_gains
from .patterns import UNSEEN, PatternTracker, track_patterns
from .engine import CoverageResult, coverage_of_tracker, run_fault_coverage
from .classify import MissClassification, activation_counts, classify_missed_faults
from .inject import fault_effect, faulty_output, to_injected_fault
from .report import coverage_summary, missed_fault_map, testability_report

__all__ = [
    "DesignFault",
    "FaultUniverse",
    "build_fault_universe",
    "build_universe_from_cells",
    "build_csa_universe",
    "run_csa_fault_coverage",
    "design_feasible_masks",
    "ObservabilityAudit",
    "audit_observability",
    "downstream_gains",
    "feasible_cell_mask",
    "interval_low_bits",
    "PatternTracker",
    "track_patterns",
    "UNSEEN",
    "CoverageResult",
    "run_fault_coverage",
    "coverage_of_tracker",
    "MissClassification",
    "classify_missed_faults",
    "activation_counts",
    "to_injected_fault",
    "faulty_output",
    "fault_effect",
    "coverage_summary",
    "testability_report",
    "missed_fault_map",
]
