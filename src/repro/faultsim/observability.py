"""Observability audit for the ideal-observability detection model.

The fast engine counts a fault detected when its cell is *excited*; the
paper justifies this with "very good observability of most signals".
This module quantifies that justification per fault site: a single-cell
error of weight ``2**bit`` (in the operator's LSB units) reaches the
filter output scaled by the downstream path gain, and if the resulting
output error falls below one output LSB it can be masked by truncation.

The audit is conservative in the safe direction: it flags every fault
whose *minimum* guaranteed output error is sub-LSB as "attenuation-
maskable", even though wrap-around and carry disturbances usually make
real errors much larger than the single-bit minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..rtl.build import FilterDesign
from ..rtl.graph import Graph
from ..rtl.nodes import OpKind
from .dictionary import FaultUniverse

__all__ = ["ObservabilityAudit", "downstream_gains", "audit_observability"]


def downstream_gains(graph: Graph) -> Dict[int, float]:
    """Max |gain| from each node's output to the filter output.

    Computed by back-propagation over the DAG: OUTPUT has gain 1, an
    ADD/SUB passes values through unscaled, a SHIFT scales by
    ``2**-shift`` times its format change, and fanout takes the max over
    consumers (an error needs only one live path).
    """
    order = graph.topological_order()
    gains: Dict[int, float] = {nid: 0.0 for nid in order}
    gains[graph.output_id] = 1.0
    for nid in reversed(order):
        node = graph.node(nid)
        for src in node.srcs:
            if node.kind is OpKind.SHIFT:
                src_fmt = graph.node(src).fmt
                # engineering gain of the shift operator
                g = 2.0 ** -node.shift
            else:
                g = 1.0
            gains[src] = max(gains[src], gains[nid] * g)
    return gains


@dataclass
class ObservabilityAudit:
    """Per-fault minimum guaranteed output error, in output LSBs."""

    min_output_error_lsb: np.ndarray
    maskable: np.ndarray  # bool per fault

    @property
    def maskable_count(self) -> int:
        return int(np.sum(self.maskable))

    def maskable_fraction(self) -> float:
        return self.maskable_count / max(1, len(self.maskable))


def audit_observability(design: FilterDesign,
                        universe: FaultUniverse) -> ObservabilityAudit:
    """Audit every universe fault for attenuation masking.

    A fault at bit ``b`` of an operator produces a local error of at
    least one unit at that bit (engineering weight ``lsb * 2**b``); the
    audit multiplies by the downstream gain and compares against the
    output LSB.
    """
    gains = downstream_gains(design.graph)
    out_lsb = design.output_fmt.lsb
    errors = np.empty(universe.fault_count)
    for f in universe.faults:
        node = design.graph.node(f.node_id)
        local = node.fmt.lsb * (1 << f.bit)
        errors[f.index] = local * gains[f.node_id] / out_lsb
    return ObservabilityAudit(
        min_output_error_lsb=errors,
        maskable=errors < 1.0 - 1e-12,
    )
