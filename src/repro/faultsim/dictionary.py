"""Design-wide fault universe assembly.

Places the collapsed cell fault classes of
:mod:`repro.gates.cells` at every bit of every adder/subtractor in a
datapath and packs the result into flat numpy arrays for the coverage
engine: one row per *cell* (an operator bit position) and one entry per
*fault* (a collapsed class at a cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import FaultModelError
from ..gates.cells import CellFault, variant_for_bit
from ..rtl.graph import Graph
from ..rtl.nodes import OpKind

__all__ = ["DesignFault", "FaultUniverse", "build_fault_universe",
           "build_universe_from_cells"]


@dataclass(frozen=True)
class DesignFault:
    """One collapsed fault class at a concrete (operator, bit) location.

    ``effective_mask`` is the detecting-pattern mask restricted to codes
    that are structurally feasible at this cell (see
    :mod:`repro.faultsim.feasibility`); it equals ``detect_mask`` when no
    pruning information was supplied.
    """

    index: int
    node_id: int
    bit: int
    cell_fault: CellFault
    effective_mask: int = 0

    @property
    def label(self) -> str:
        return f"node{self.node_id}.bit{self.bit}.{self.cell_fault.name}"


@dataclass
class FaultUniverse:
    """The complete single-stuck-at universe of a datapath's operators.

    Attributes
    ----------
    cells:
        ``(node_id, bit)`` per cell row, in a fixed order shared with the
        pattern tracker.
    fault_cell:
        For each fault, the row index of its cell.
    fault_mask:
        For each fault, the 8-bit detecting-pattern mask.
    """

    design_name: str
    faults: List[DesignFault]
    cells: List[Tuple[int, int]]
    cell_index: Dict[Tuple[int, int], int]
    fault_cell: np.ndarray
    fault_mask: np.ndarray
    uncollapsed_count: int
    #: Fault classes removed as structurally untestable (pruning on).
    untestable_count: int = 0

    @property
    def fault_count(self) -> int:
        """Number of collapsed fault classes (the headline fault count)."""
        return len(self.faults)

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    def faults_at(self, node_id: int, bit: int) -> List[DesignFault]:
        """All fault classes of one cell."""
        if (node_id, bit) not in self.cell_index:
            raise FaultModelError(f"no cell at node {node_id} bit {bit}")
        return [f for f in self.faults if f.node_id == node_id and f.bit == bit]


def build_universe_from_cells(cell_specs, name: str) -> FaultUniverse:
    """Assemble a universe from explicit cell descriptions.

    ``cell_specs`` is an iterable of ``(node_id, bit, variant,
    feasible_mask)`` where ``variant`` is a
    :class:`~repro.gates.cells.CellVariant`.  Cells of one ``node_id``
    must be supplied contiguously starting at bit 0 (the pattern tracker
    relies on that layout).  Used by non-graph operator styles such as
    the carry-save accumulation chain.
    """
    faults: List[DesignFault] = []
    cells: List[Tuple[int, int]] = []
    cell_index: Dict[Tuple[int, int], int] = {}
    fault_cell: List[int] = []
    fault_mask: List[int] = []
    uncollapsed = 0
    untestable = 0
    for node_id, bit, variant, feasible in cell_specs:
        row = len(cells)
        cells.append((node_id, bit))
        cell_index[(node_id, bit)] = row
        uncollapsed += variant.uncollapsed_count
        for cf in variant.faults:
            effective = cf.detect_mask & feasible
            if effective == 0:
                untestable += 1
                continue
            faults.append(
                DesignFault(index=len(faults), node_id=node_id, bit=bit,
                            cell_fault=cf, effective_mask=effective)
            )
            fault_cell.append(row)
            fault_mask.append(effective)
    return FaultUniverse(
        design_name=name,
        faults=faults,
        cells=cells,
        cell_index=cell_index,
        fault_cell=np.array(fault_cell, dtype=np.int64),
        fault_mask=np.array(fault_mask, dtype=np.uint8),
        uncollapsed_count=uncollapsed,
        untestable_count=untestable,
    )


def build_fault_universe(
    graph: Graph, name: str = "", prune_untestable: bool = True
) -> FaultUniverse:
    """Enumerate the collapsed adder/subtractor fault universe of a graph.

    With ``prune_untestable`` (default), fault classes whose detecting
    patterns are structurally infeasible at their cell are excluded —
    matching the paper's flow, where scaling and redundant-operator
    elimination (refs [2, 3]) remove such redundancy before fault counts
    are reported.  Pass ``False`` for the raw structural universe.
    """
    feasible = None
    if prune_untestable:
        from .feasibility import design_feasible_masks
        feasible = design_feasible_masks(graph)
    faults: List[DesignFault] = []
    cells: List[Tuple[int, int]] = []
    cell_index: Dict[Tuple[int, int], int] = {}
    fault_cell: List[int] = []
    fault_mask: List[int] = []
    uncollapsed = 0
    untestable = 0
    for node in graph.arithmetic_nodes:
        width = node.fmt.width
        is_sub = node.kind is OpKind.SUB
        for bit in range(width):
            row = len(cells)
            cells.append((node.nid, bit))
            cell_index[(node.nid, bit)] = row
            variant = variant_for_bit(bit, width, is_sub)
            uncollapsed += variant.uncollapsed_count
            cell_feasible = 0xFF if feasible is None else feasible[(node.nid, bit)]
            for cf in variant.faults:
                effective = cf.detect_mask & cell_feasible
                if effective == 0:
                    untestable += 1
                    continue
                faults.append(
                    DesignFault(index=len(faults), node_id=node.nid,
                                bit=bit, cell_fault=cf,
                                effective_mask=effective)
                )
                fault_cell.append(row)
                fault_mask.append(effective)
    return FaultUniverse(
        design_name=name or graph.name,
        faults=faults,
        cells=cells,
        cell_index=cell_index,
        fault_cell=np.array(fault_cell, dtype=np.int64),
        fault_mask=np.array(fault_mask, dtype=np.uint8),
        uncollapsed_count=uncollapsed,
        untestable_count=untestable,
    )
