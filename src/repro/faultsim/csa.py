"""Fault universe and coverage grading for carry-save chains.

The 3:2 compressor cells of :class:`~repro.rtl.carrysave.CarrySaveFir`
are full adders, so the same collapsed fault dictionary applies; this
module wires the carry-save simulator's per-rank pattern codes into the
standard pattern tracker and coverage engine, enabling the
ripple-vs-carry-save testability ablation the paper's Section 3 alludes
to ("the analysis is more complex in the case of carry-save arrays").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SimulationError
from ..gates.cells import CellVariant, cell_variant
from ..generators.base import TestGenerator, match_width
from ..rtl.carrysave import CarrySaveFir
from .dictionary import FaultUniverse, build_universe_from_cells
from .engine import CoverageResult, coverage_of_tracker
from .patterns import PatternTracker

__all__ = ["build_csa_universe", "run_csa_fault_coverage"]


def _csa_cell_specs(csa: CarrySaveFir):
    """Cell descriptions for every compressor rank plus the merge adder.

    Compressor cells have three live inputs, so even bit 0 is a ``full``
    cell; only the top cell drops its carry (``msb``).  The vector-merge
    ripple adder is a standard adder (``lsb0`` / ``full`` / ``msb``).
    """
    width = csa.fmt.width
    specs: List[Tuple[int, int, CellVariant, int]] = []
    for stage in csa.stages:
        for bit in range(width):
            kind = "msb" if bit == width - 1 else "full"
            variant = cell_variant(kind)
            specs.append((stage.stage_id, bit, variant, variant.feasible_mask))
    for bit in range(width):
        if bit == 0:
            kind = "lsb0"
        elif bit == width - 1:
            kind = "msb"
        else:
            kind = "full"
        variant = cell_variant(kind)
        specs.append((csa.MERGE_ID, bit, variant, variant.feasible_mask))
    return specs


def build_csa_universe(csa: CarrySaveFir) -> FaultUniverse:
    """The collapsed stuck-at universe of a carry-save chain."""
    return build_universe_from_cells(_csa_cell_specs(csa), name=csa.name)


def run_csa_fault_coverage(
    csa: CarrySaveFir,
    generator: TestGenerator,
    n_vectors: int,
    universe: Optional[FaultUniverse] = None,
) -> CoverageResult:
    """One BIST session against the carry-save realization."""
    if n_vectors <= 0:
        raise SimulationError("n_vectors must be positive")
    if universe is None:
        universe = build_csa_universe(csa)
    raw = generator.sequence(n_vectors)
    raw = match_width(raw, generator.width, csa.input_fmt.width)
    tracker = PatternTracker(universe)
    csa.simulate(raw, observer=tracker.observe_codes)
    tracker.advance(n_vectors)
    return coverage_of_tracker(tracker, design_name=csa.name,
                               generator_name=generator.name)
