"""Difficult vs. near-redundant fault classification (Sections 4-5).

Faults a BIST session misses fall in two classes:

* **difficult** — activatable by signals within the filter's normal
  operating envelope; missing these is "a serious test failure";
* **near-redundant** — activatable only by overdriven, highly distorted
  inputs that never occur in operation; the paper suggests formally
  excluding them from the fault universe when worst-case input statistics
  are known.

The classifier here follows the paper's operational definition: a fault
is *activatable in normal operation* when its cell receives a detecting
pattern under a representative normal-mode stimulus (bounded-amplitude,
in-band).  Faults that a test session missed are then split by that
activatability.  An analytic estimate of per-fault activation probability
from amplitude distributions is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from .dictionary import DesignFault, FaultUniverse
from .engine import CoverageResult
from .patterns import PatternTracker, track_patterns

__all__ = ["MissClassification", "classify_missed_faults", "activation_counts"]


@dataclass
class MissClassification:
    """Missed faults split into serious (difficult) and near-redundant."""

    difficult: List[DesignFault]
    near_redundant: List[DesignFault]
    stimulus_name: str
    stimulus_vectors: int

    @property
    def serious_count(self) -> int:
        return len(self.difficult)

    @property
    def total_missed(self) -> int:
        return len(self.difficult) + len(self.near_redundant)


def _normal_operation_tracker(
    design: FilterDesign,
    universe: FaultUniverse,
    stimulus: TestGenerator,
    n_vectors: int,
) -> PatternTracker:
    raw = stimulus.sequence(n_vectors)
    raw = match_width(raw, stimulus.width, design.input_fmt.width)
    return track_patterns(design.graph, universe, raw)


def classify_missed_faults(
    design: FilterDesign,
    result: CoverageResult,
    stimulus: TestGenerator,
    n_vectors: int = 16384,
    at: Optional[int] = None,
) -> MissClassification:
    """Split a session's missed faults by normal-operation activatability.

    ``stimulus`` should model the worst-case *legitimate* input (e.g. a
    near-full-scale in-band sine or band-limited noise).  A missed fault
    whose detecting pattern appears under the stimulus is a difficult
    fault the BIST scheme cannot afford to miss; the rest are
    near-redundant with respect to that operating envelope.
    """
    missed = result.missed_faults(at)
    tracker = _normal_operation_tracker(design, result.universe, stimulus,
                                        n_vectors)
    seen = tracker.seen_mask()
    difficult: List[DesignFault] = []
    near_redundant: List[DesignFault] = []
    for fault in missed:
        cell = result.universe.fault_cell[fault.index]
        mask = fault.cell_fault.detect_mask
        patterns = [p for p in range(8) if mask & (1 << p)]
        if any(seen[cell, p] for p in patterns):
            difficult.append(fault)
        else:
            near_redundant.append(fault)
    return MissClassification(
        difficult=difficult,
        near_redundant=near_redundant,
        stimulus_name=stimulus.name,
        stimulus_vectors=n_vectors,
    )


def activation_counts(
    design: FilterDesign,
    universe: FaultUniverse,
    stimulus: TestGenerator,
    n_vectors: int = 16384,
) -> np.ndarray:
    """Per-fault 0/1 activatability under a stimulus (1 = excitable).

    Useful for pre-computing the "critical fault" subset the conclusion
    proposes reaching 100% coverage on.
    """
    tracker = _normal_operation_tracker(design, universe, stimulus, n_vectors)
    seen = tracker.seen_mask()
    out = np.zeros(universe.fault_count, dtype=np.uint8)
    for fault in universe.faults:
        cell = universe.fault_cell[fault.index]
        mask = fault.cell_fault.detect_mask
        if any(seen[cell, p] for p in range(8) if mask & (1 << p)):
            out[fault.index] = 1
    return out
