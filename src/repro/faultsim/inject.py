"""Bridging fault universe entries to injectable faults.

Turns a :class:`~repro.faultsim.dictionary.DesignFault` into the
:class:`~repro.rtl.simulate.InjectedFault` the RTL simulator understands,
so any fault graded by the coverage engine can be *injected* and watched
at the filter output — the Section 5 / Figure 2 experiment.
"""

from __future__ import annotations

import numpy as np

from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from ..rtl.simulate import InjectedFault, simulate
from .dictionary import DesignFault

__all__ = ["to_injected_fault", "faulty_output", "fault_effect"]


def to_injected_fault(fault: DesignFault) -> InjectedFault:
    """RTL-injectable form of a universe fault."""
    return InjectedFault(
        node_id=fault.node_id,
        bit=fault.bit,
        sum_lut=fault.cell_fault.sum_array(),
        cout_lut=fault.cell_fault.cout_array(),
        label=fault.label,
    )


def faulty_output(
    design: FilterDesign,
    fault: DesignFault,
    stimulus: TestGenerator,
    n_vectors: int,
) -> np.ndarray:
    """Normalized output of the *faulty* filter under a stimulus."""
    raw = stimulus.sequence(n_vectors)
    raw = match_width(raw, stimulus.width, design.input_fmt.width)
    result = simulate(design.graph, raw, fault=to_injected_fault(fault))
    return result.output


def fault_effect(
    design: FilterDesign,
    fault: DesignFault,
    stimulus: TestGenerator,
    n_vectors: int,
) -> np.ndarray:
    """Output error waveform (faulty minus fault-free), normalized.

    Nonzero samples are the "spikes" of Figure 2.
    """
    raw = stimulus.sequence(n_vectors)
    raw = match_width(raw, stimulus.width, design.input_fmt.width)
    good = simulate(design.graph, raw).output
    bad = simulate(design.graph, raw, fault=to_injected_fault(fault)).output
    return bad - good
