"""Power-spectrum estimation for test generators (Figure 4).

Two estimators:

* :func:`exact_period_spectrum` — for periodic generators (LFSRs over a
  full m-sequence period, ramps over a full count cycle) the discrete
  power spectrum of one period is exact.
* :func:`welch_spectrum` — averaged periodogram for arbitrary sources.

All spectra are one-sided over normalized frequency ``f in [0, 0.5]``
(cycles/sample) and scaled so that the mean of the power values equals
the signal's total power (Parseval), making generator-to-generator
comparisons meaningful.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal as sp_signal

from ..errors import AnalysisError
from ..generators.base import TestGenerator
from ..generators.ramp import RampGenerator

__all__ = [
    "exact_period_spectrum",
    "welch_spectrum",
    "generator_spectrum",
    "power_db",
    "band_power",
]


def power_db(power: np.ndarray, floor_db: float = -120.0) -> np.ndarray:
    """10*log10 with a floor for zero bins."""
    p = np.asarray(power, dtype=np.float64)
    floor = 10.0 ** (floor_db / 10.0)
    return 10.0 * np.log10(np.maximum(p, floor))


def exact_period_spectrum(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided power spectrum of exactly one period of a signal.

    Returns ``(freqs, power)`` where ``power[k]`` is the two-sided power
    density folded onto ``[0, 0.5]``; ``mean(power) ==`` total AC+DC
    power of the period (Parseval).
    """
    x = np.asarray(samples, dtype=np.float64)
    n = len(x)
    if n < 2:
        raise AnalysisError("need at least two samples for a spectrum")
    line_power = np.abs(np.fft.rfft(x)) ** 2 / n**2  # two-sided per-line power
    freqs = np.fft.rfftfreq(n)
    # Fold two-sided power onto one side: interior lines appear twice.
    folded = line_power.copy()
    interior = slice(1, -1 if n % 2 == 0 else None)
    folded[interior] *= 2.0
    # sum(folded) is the total power (Parseval); scale so the *mean* over
    # the reported bins equals the total power.
    return freqs, folded * len(folded)


def welch_spectrum(
    samples: np.ndarray, nperseg: int = 1024
) -> Tuple[np.ndarray, np.ndarray]:
    """Averaged-periodogram spectrum; same normalization convention."""
    x = np.asarray(samples, dtype=np.float64)
    if len(x) < nperseg:
        nperseg = len(x)
    freqs, psd = sp_signal.welch(x, fs=1.0, nperseg=nperseg, window="hann",
                                 detrend=False)
    # scipy returns a density whose integral over [0, 0.5] is total power;
    # rescale so the mean over bins equals total power (matching
    # exact_period_spectrum).
    power = psd.copy()
    if len(freqs) > 1:
        df = freqs[1] - freqs[0]
        total = np.sum(psd) * df
        mean_bins = np.mean(power)
        if mean_bins > 0:
            power = power * (total / mean_bins)
    return freqs, power


def generator_spectrum(
    gen: TestGenerator, n: int = 0, exact: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Spectrum of a generator's normalized output.

    With ``exact=True`` and ``n == 0``, LFSR-class generators use one full
    m-sequence period (``2**width - 1`` vectors) and ramps one full count
    cycle; otherwise ``n`` vectors feed the Welch estimator.
    """
    if exact and n == 0:
        if isinstance(gen, RampGenerator):
            period = 1 << gen.width  # one full counter cycle
        else:
            period = (1 << gen.width) - 1  # one m-sequence period
        samples = gen.sequence(period) / float(1 << (gen.width - 1))
        return exact_period_spectrum(samples)
    if n <= 0:
        n = 1 << 14
    samples = gen.sequence(n) / float(1 << (gen.width - 1))
    return welch_spectrum(samples)


def band_power(freqs: np.ndarray, power: np.ndarray, lo: float, hi: float) -> float:
    """Average power in the band ``[lo, hi]`` (normalized frequency)."""
    mask = (freqs >= lo) & (freqs <= hi)
    if not np.any(mask):
        raise AnalysisError(f"no spectral bins inside [{lo}, {hi}]")
    return float(np.mean(power[mask]))
