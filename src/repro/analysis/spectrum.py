"""Power-spectrum estimation for test generators (Figure 4).

Two estimators:

* :func:`exact_period_spectrum` — for periodic generators (LFSRs over a
  full m-sequence period, ramps over a full count cycle) the discrete
  power spectrum of one period is exact.
* :func:`welch_spectrum` — averaged periodogram for arbitrary sources.

All spectra are one-sided over normalized frequency ``f in [0, 0.5]``
(cycles/sample) and scaled so that the mean of the power values equals
the signal's total power (Parseval), making generator-to-generator
comparisons meaningful.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal as sp_signal

from ..errors import AnalysisError
from ..generators.base import TestGenerator
from ..generators.ramp import RampGenerator

__all__ = [
    "exact_period_spectrum",
    "exact_period_spectra",
    "welch_spectrum",
    "generator_spectrum",
    "generator_spectra",
    "power_db",
    "band_power",
]


def power_db(power: np.ndarray, floor_db: float = -120.0) -> np.ndarray:
    """10*log10 with a floor for zero bins."""
    p = np.asarray(power, dtype=np.float64)
    floor = 10.0 ** (floor_db / 10.0)
    return 10.0 * np.log10(np.maximum(p, floor))


def exact_period_spectrum(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided power spectrum of exactly one period of a signal.

    Returns ``(freqs, power)`` where ``power[k]`` is the two-sided power
    density folded onto ``[0, 0.5]``; ``mean(power) ==`` total AC+DC
    power of the period (Parseval).
    """
    x = np.asarray(samples, dtype=np.float64)
    n = len(x)
    if n < 2:
        raise AnalysisError("need at least two samples for a spectrum")
    line_power = np.abs(np.fft.rfft(x)) ** 2 / n**2  # two-sided per-line power
    freqs = np.fft.rfftfreq(n)
    # Fold two-sided power onto one side: interior lines appear twice.
    folded = line_power.copy()
    interior = slice(1, -1 if n % 2 == 0 else None)
    folded[interior] *= 2.0
    # sum(folded) is the total power (Parseval); scale so the *mean* over
    # the reported bins equals the total power.
    return freqs, folded * len(folded)


def exact_period_spectra(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided power spectra of several equal-length periods at once.

    ``matrix`` is ``(signals, samples)``; returns ``(freqs, power)``
    with ``power`` of shape ``(signals, bins)``.  Row ``i`` is
    bit-identical to ``exact_period_spectrum(matrix[i])[1]`` — the
    stacked transform applies the same per-row FFT and the same scaling
    in the same order — which is what lets the evaluation service batch
    many small spectrum requests into one vectorized pass without
    changing any answer.
    """
    x = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    n = x.shape[1]
    if n < 2:
        raise AnalysisError("need at least two samples for a spectrum")
    line_power = np.abs(np.fft.rfft(x, axis=-1)) ** 2 / n**2
    freqs = np.fft.rfftfreq(n)
    folded = line_power.copy()
    interior = slice(1, -1 if n % 2 == 0 else None)
    folded[:, interior] *= 2.0
    return freqs, folded * folded.shape[1]


def welch_spectrum(
    samples: np.ndarray, nperseg: int = 1024
) -> Tuple[np.ndarray, np.ndarray]:
    """Averaged-periodogram spectrum; same normalization convention."""
    x = np.asarray(samples, dtype=np.float64)
    if len(x) < nperseg:
        nperseg = len(x)
    freqs, psd = sp_signal.welch(x, fs=1.0, nperseg=nperseg, window="hann",
                                 detrend=False)
    # scipy returns a density whose integral over [0, 0.5] is total power;
    # rescale so the mean over bins equals total power (matching
    # exact_period_spectrum).
    power = psd.copy()
    if len(freqs) > 1:
        df = freqs[1] - freqs[0]
        total = np.sum(psd) * df
        mean_bins = np.mean(power)
        if mean_bins > 0:
            power = power * (total / mean_bins)
    return freqs, power


def generator_spectrum(
    gen: TestGenerator, n: int = 0, exact: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Spectrum of a generator's normalized output.

    With ``exact=True`` and ``n == 0``, LFSR-class generators use one full
    m-sequence period (``2**width - 1`` vectors) and ramps one full count
    cycle; otherwise ``n`` vectors feed the Welch estimator.
    """
    if exact and n == 0:
        if isinstance(gen, RampGenerator):
            period = 1 << gen.width  # one full counter cycle
        else:
            period = (1 << gen.width) - 1  # one m-sequence period
        samples = gen.sequence(period) / float(1 << (gen.width - 1))
        return exact_period_spectrum(samples)
    if n <= 0:
        n = 1 << 14
    samples = gen.sequence(n) / float(1 << (gen.width - 1))
    return welch_spectrum(samples)


def generator_spectra(gens) -> "list[Tuple[np.ndarray, np.ndarray]]":
    """Exact one-period spectra for several generators in one pass.

    Generators whose one-period sample vectors share a length are
    stacked and transformed together via :func:`exact_period_spectra`;
    results are returned in input order and are bit-identical to
    calling :func:`generator_spectrum` on each generator alone.
    """
    gens = list(gens)
    periods = [(1 << g.width) if isinstance(g, RampGenerator)
               else (1 << g.width) - 1 for g in gens]
    out: "list" = [None] * len(gens)
    by_period = {}
    for i, n in enumerate(periods):
        by_period.setdefault(n, []).append(i)
    for n, idxs in by_period.items():
        if len(idxs) == 1:
            i = idxs[0]
            out[i] = generator_spectrum(gens[i])
            continue
        rows = np.stack([
            gens[i].sequence(n) / float(1 << (gens[i].width - 1))
            for i in idxs])
        freqs, power = exact_period_spectra(rows)
        for row, i in enumerate(idxs):
            out[i] = (freqs, power[row])
    return out


def band_power(freqs: np.ndarray, power: np.ndarray, lo: float, hi: float) -> float:
    """Average power in the band ``[lo, hi]`` (normalized frequency)."""
    mask = (freqs >= lo) & (freqs <= hi)
    if not np.any(mask):
        raise AnalysisError(f"no spectral bins inside [{lo}, {hi}]")
    return float(np.mean(power[mask]))
