"""Correlation structure of test-generator outputs.

The paper motivates the decorrelator by "the linear correlation between
successive test vectors" and credits it with reducing "the correlation
between all bits in two successive vectors" (Section 6); LFSR-M's
low-bit blindness comes from "the correlation between adjacent bits".
This module measures both structures directly:

* :func:`word_autocorrelation` — the normalized autocorrelation of the
  word sequence (lag 0..L), whose lag-1 value is ~0.5 for a Type 1 LFSR
  (successive words share all but one bit) and ~0 after decorrelation;
* :func:`bit_correlation_matrix` — Pearson correlations between all word
  bits at a chosen vector lag, exposing the all-bits-identical structure
  of the maximum-variance generator and the shifted-diagonal structure
  of plain LFSR words.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import AnalysisError
from ..generators.base import TestGenerator

__all__ = ["word_autocorrelation", "bit_correlation_matrix",
           "successive_vector_correlation"]


def word_autocorrelation(gen: TestGenerator, max_lag: int = 16,
                         n_vectors: int = 0) -> np.ndarray:
    """Normalized autocorrelation of the word sequence, lags 0..max_lag."""
    if n_vectors <= 0:
        n_vectors = (1 << gen.width) - 1
    x = gen.sequence(n_vectors).astype(np.float64)
    x -= x.mean()
    var = float(np.mean(x * x))
    if var <= 0:
        raise AnalysisError("constant sequence has no autocorrelation")
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        if lag == 0:
            out[0] = 1.0
        else:
            out[lag] = float(np.mean(x[:-lag] * x[lag:])) / var
    return out


def _bit_matrix(gen: TestGenerator, n_vectors: int) -> np.ndarray:
    words = gen.sequence(n_vectors)
    ks = np.arange(gen.width)
    return ((words[:, None] >> ks[None, :]) & 1).astype(np.float64)


def bit_correlation_matrix(gen: TestGenerator, lag: int = 0,
                           n_vectors: int = 4096) -> np.ndarray:
    """Pearson correlation between bit ``i`` at time t and bit ``j`` at
    time ``t + lag``; shape ``(width, width)``.

    Degenerate (constant) bits yield zero correlation rows rather than
    NaNs, so structural constants don't poison the matrix.
    """
    if lag < 0:
        raise AnalysisError("lag must be non-negative")
    bits = _bit_matrix(gen, n_vectors + lag)
    a = bits[: n_vectors]
    b = bits[lag: n_vectors + lag]
    a = a - a.mean(axis=0)
    b = b - b.mean(axis=0)
    sa = np.sqrt(np.mean(a * a, axis=0))
    sb = np.sqrt(np.mean(b * b, axis=0))
    cov = a.T @ b / len(a)
    denom = np.outer(sa, sb)
    out = np.zeros_like(cov)
    ok = denom > 1e-12
    out[ok] = cov[ok] / denom[ok]
    return out


def successive_vector_correlation(gen: TestGenerator,
                                  n_vectors: int = 4096) -> Tuple[float, float]:
    """(lag-1 word autocorrelation, mean |bit correlation| at lag 1).

    The two summary numbers behind the paper's decorrelator discussion.
    """
    auto = word_autocorrelation(gen, max_lag=1, n_vectors=n_vectors)
    bitcorr = bit_correlation_matrix(gen, lag=1, n_vectors=n_vectors)
    return float(auto[1]), float(np.mean(np.abs(bitcorr)))
