"""Variance-based testability analysis (Section 7.1, Eq. 1).

For a linear datapath, the variance at adder ``k`` under a white test
source of variance ``sigma_x**2`` is ``sigma_x**2 * sum_i h_k[i]**2``
(Eq. 1); for correlated LFSR sources the subfilter response is first
convolved with the LFSR's linear model.  A *low predicted variance
relative to the node's full-scale range* flags a potential test problem
before any fault simulation is run — the analysis that predicts the
tap-20 attenuation of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..rtl.build import FilterDesign
from ..rtl.impulse import impulse_responses
from .linear_model import SourceModel, cascade

__all__ = ["NodeVariance", "predict_node_variances", "flag_attenuated_nodes",
           "predicted_sigma_at_tap"]


@dataclass(frozen=True)
class NodeVariance:
    """Predicted signal statistics at one arithmetic node.

    ``sigma_normalized`` rescales the engineering-unit prediction by the
    node's half-scale, i.e. into the paper's [-1, 1) convention, so 1.0
    means "fills the available range".  ``untested_upper_bits`` estimates
    how many bits below the MSB the ±4-sigma swing fails to reach — the
    per-node headroom the test signal leaves unexercised.
    """

    node_id: int
    name: str
    sigma: float
    sigma_normalized: float
    untested_upper_bits: float


def predict_node_variances(
    design: FilterDesign, model: SourceModel
) -> Dict[int, NodeVariance]:
    """Eq. 1 applied to every arithmetic node of a design.

    The source model is expressed on the generator's normalized output
    (full scale = 1); the design input format has the same convention, so
    the cascade is dimensionless until rescaled per node.
    """
    responses = impulse_responses(design.graph)
    input_half_scale = design.input_fmt.half_scale
    out: Dict[int, NodeVariance] = {}
    for node in design.graph.arithmetic_nodes:
        h = responses[node.nid].h
        seen = cascade(model, h)
        sigma_eng = float(np.sqrt(seen.output_variance())) * input_half_scale
        half_scale = node.fmt.half_scale
        sigma_norm = sigma_eng / half_scale
        swing = 4.0 * sigma_norm  # ±4σ covers ~99.99% of excursions
        if swing <= 0:
            untested = float(node.fmt.width)
        else:
            untested = max(0.0, -np.log2(max(swing, 1e-30)))
        out[node.nid] = NodeVariance(
            node_id=node.nid,
            name=node.name,
            sigma=sigma_eng,
            sigma_normalized=sigma_norm,
            untested_upper_bits=untested,
        )
    return out


def flag_attenuated_nodes(
    design: FilterDesign, model: SourceModel, threshold_bits: float = 1.0
) -> List[NodeVariance]:
    """Nodes where the predicted swing leaves upper bits unexercised.

    Returns the flagged nodes sorted worst-first.  ``threshold_bits`` is
    the number of unexercised upper bits considered a problem.
    """
    flagged = [
        nv for nv in predict_node_variances(design, model).values()
        if nv.untested_upper_bits >= threshold_bits
    ]
    return sorted(flagged, key=lambda nv: -nv.untested_upper_bits)


def predicted_sigma_at_tap(
    design: FilterDesign, tap_index: int, model: SourceModel
) -> float:
    """Predicted normalized sigma at a tap accumulator (paper's tap-20 test)."""
    nid = design.tap_accumulator(tap_index)
    responses = impulse_responses(design.graph)
    seen = cascade(model, responses[nid].h)
    sigma_eng = float(np.sqrt(seen.output_variance())) * design.input_fmt.half_scale
    return sigma_eng / design.graph.node(nid).fmt.half_scale
