"""Difficult tests and test zones (Section 4.1, Table 2, Figure 1).

At a variance-mismatched adder's next-to-MSB cell (the bit of weight 0.5
in the paper's normalized convention), four of the eight full-adder tests
are difficult: T1, T2, T5 and T6, each assertable by two input/output
equivalence classes (``a``/``b``).  This module encodes

* the behavioural I/O conditions of Table 2,
* the *test zones* of Figure 1 — the intervals the primary input must
  fall in for each class, given a bound on the secondary input, and
* helpers for computing zone hit probabilities under a predicted
  amplitude distribution.

All quantities are in normalized units: the adder output range is
[-1, 1), so the next-to-MSB bit has weight 0.5.  ``A`` is the primary
(high-variance) input, ``B`` the secondary input, and the *output* is the
adder's wrapped two's-complement result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import AnalysisError
from .distribution import AmplitudeDistribution

__all__ = [
    "DIFFICULT_TESTS",
    "DifficultTestClass",
    "test_zones",
    "zone_probabilities",
    "next_to_msb_code",
    "difficult_test_table",
]

#: The four difficult test numbers (n = abc at the next-to-MSB cell).
DIFFICULT_TESTS = (1, 2, 5, 6)


@dataclass(frozen=True)
class DifficultTestClass:
    """One row of Table 2.

    ``input_range`` constrains the primary input A; ``output_condition``
    describes the adder's (wrapped) output; ``overflow`` marks classes
    that require the true sum to overflow the output range.
    """

    test: int
    variant: str
    input_range: Tuple[float, float]
    output_condition: str
    overflow: bool

    @property
    def label(self) -> str:
        return f"T{self.test}{self.variant}"


#: Table 2, transcribed.  Input ranges are half-open [lo, hi) over A.
_TABLE2: Tuple[DifficultTestClass, ...] = (
    DifficultTestClass(1, "a", (0.0, 0.5), "A+B >= 0.5", False),
    DifficultTestClass(1, "b", (-1.0, -0.5), "A+B >= -0.5", False),
    DifficultTestClass(2, "a", (0.0, 0.5), "A+B < 0", False),
    DifficultTestClass(2, "b", (-1.0, -0.5), "A+B >= 0.5 (ovf)", True),
    DifficultTestClass(5, "a", (-0.5, 0.0), "A+B >= 0", False),
    DifficultTestClass(5, "b", (0.5, 1.0), "A+B < -0.5 (ovf)", True),
    DifficultTestClass(6, "a", (-0.5, 0.0), "A+B < -0.5", False),
    DifficultTestClass(6, "b", (0.5, 1.0), "A+B < 0.5", False),
)


def difficult_test_table() -> Tuple[DifficultTestClass, ...]:
    """The eight difficult test classes of Table 2."""
    return _TABLE2


def test_zones(beta: float) -> Dict[str, Tuple[float, float]]:
    """Figure 1's test zones on the primary input.

    ``beta`` bounds the secondary input magnitude (its half-range; zone
    width is proportional to the secondary input's spread).  Returns a
    mapping from class label to the half-open interval of primary-input
    values that can assert the class.
    """
    if not 0.0 < beta <= 0.5:
        raise AnalysisError(f"beta must be in (0, 0.5], got {beta}")
    return {
        "T2b": (-1.0, -1.0 + beta),
        "T1b": (-0.5 - beta, -0.5),
        "T6a": (-0.5, -0.5 + beta),
        "T5a": (-beta, 0.0),
        "T2a": (0.0, beta),
        "T1a": (0.5 - beta, 0.5),
        "T6b": (0.5, 0.5 + beta),
        "T5b": (1.0 - beta, 1.0),
    }


def zone_probabilities(
    dist: AmplitudeDistribution, beta: float
) -> Dict[str, float]:
    """Probability that the primary input falls in each test zone.

    Combines a predicted (or measured) primary-input distribution with
    the Figure 1 zones; a vanishing probability for T1/T6 zones flags the
    excess-headroom problem analytically.
    """
    return {
        label: dist.probability(lo, hi)
        for label, (lo, hi) in test_zones(beta).items()
    }


def next_to_msb_code(a_raw, b_raw, width: int, is_subtractor: bool = False):
    """Bit-true (a, b, c) code at the next-to-MSB cell of a real operator.

    Used by the tests to verify Table 2: the behavioural conditions above
    must agree with the actual ripple-carry bits for every operand pair.
    Returns the 3-bit codes as an integer array.
    """
    from ..fixedpoint import cell_pattern_codes

    codes = cell_pattern_codes(
        np.asarray(a_raw), np.asarray(b_raw),
        1 if is_subtractor else 0, width, invert_b=is_subtractor,
    )
    return codes[width - 2]


def classes_for_code(code: int) -> List[DifficultTestClass]:
    """The Table 2 classes asserting a given cell input code."""
    return [c for c in _TABLE2 if c.test == code]
