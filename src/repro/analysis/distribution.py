"""Exact amplitude-distribution prediction (Section 7.2, Figures 8-9).

Signal variance is "a very rough measure"; the paper sharpens it by
predicting the full probability distribution of the signal at a node.
For LFSR sources this is exact: the node value is a finite weighted sum
of i.i.d. Bernoulli(1/2) bits (the LFSR linear model cascaded with the
subfilter), whose distribution is computed by convolving two-point masses
on a fine amplitude grid.  For idealized generators the node value is a
weighted sum of independent uniform words, handled the same way with box
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import AnalysisError
from ..generators.base import TestGenerator, match_width
from ..rtl.build import FilterDesign
from ..rtl.impulse import impulse_responses
from ..rtl.simulate import simulate
from .linear_model import SourceModel, cascade

__all__ = [
    "AmplitudeDistribution",
    "bernoulli_sum_distribution",
    "uniform_sum_distribution",
    "predicted_tap_distribution",
    "simulated_tap_histogram",
]


@dataclass
class AmplitudeDistribution:
    """A pdf sampled on a uniform amplitude grid."""

    grid: np.ndarray     # bin centers (normalized amplitude)
    pdf: np.ndarray      # probability *density* per bin

    @property
    def bin_width(self) -> float:
        return float(self.grid[1] - self.grid[0])

    def probability(self, lo: float, hi: float) -> float:
        """P(lo <= X < hi)."""
        mask = (self.grid >= lo) & (self.grid < hi)
        return float(np.sum(self.pdf[mask]) * self.bin_width)

    def sigma(self) -> float:
        """Standard deviation of the distribution."""
        w = self.pdf * self.bin_width
        mean = float(np.sum(self.grid * w))
        return float(np.sqrt(max(np.sum((self.grid - mean) ** 2 * w), 0.0)))


def _make_grid(span: float, bins: int) -> Tuple[np.ndarray, float]:
    grid = np.linspace(-span, span, bins)
    return grid, grid[1] - grid[0]


def bernoulli_sum_distribution(
    weights: np.ndarray, bins: int = 4096, span: float = 0.0
) -> AmplitudeDistribution:
    """Distribution of ``sum_i w_i B_i`` with ``B_i`` i.i.d. Bernoulli(1/2).

    Exact up to grid resolution: each weight splits the mass between
    "bit = 0" (no shift) and "bit = 1" (shift by ``w_i``), implemented as
    probability-mass convolution on the grid.
    """
    w = np.asarray(weights, dtype=np.float64)
    if span <= 0.0:
        span = float(np.sum(np.abs(w))) + 1e-9
    grid, step = _make_grid(span, bins)
    pmf = np.zeros(bins)
    pmf[bins // 2] = 1.0  # mass at amplitude 0
    for wi in w:
        if wi == 0.0:
            continue
        shift = int(round(wi / step))
        shifted = np.zeros_like(pmf)
        if shift >= 0:
            shifted[shift:] = pmf[: bins - shift] if shift else pmf
        else:
            shifted[:shift] = pmf[-shift:]
        pmf = 0.5 * pmf + 0.5 * shifted
    return AmplitudeDistribution(grid=grid, pdf=pmf / step)


def uniform_sum_distribution(
    weights: np.ndarray, bins: int = 4096, span: float = 0.0
) -> AmplitudeDistribution:
    """Distribution of ``sum_i w_i U_i`` with ``U_i`` i.i.d. uniform[-1, 1)."""
    w = np.asarray(weights, dtype=np.float64)
    if span <= 0.0:
        span = float(np.sum(np.abs(w))) + 1e-9
    grid, step = _make_grid(span, bins)
    pmf = np.zeros(bins)
    pmf[bins // 2] = 1.0
    for wi in w:
        half_width = abs(wi)
        if half_width < step:  # narrower than a bin: negligible smearing
            continue
        k = max(1, int(round(2.0 * half_width / step)))
        kernel = np.ones(k) / k
        pmf = np.convolve(pmf, kernel, mode="same")
    pmf /= max(np.sum(pmf), 1e-300)
    return AmplitudeDistribution(grid=grid, pdf=pmf / step)


def predicted_tap_distribution(
    design: FilterDesign,
    tap_index: int,
    model: SourceModel,
    bins: int = 4096,
    span: float = 0.0,
) -> AmplitudeDistribution:
    """Predicted amplitude distribution at a tap accumulator.

    The prediction is expressed in the node's normalized [-1, 1) units
    (the paper's convention for Figures 8-9).  Bernoulli-source models
    (LFSR linear models; ``mean == 0.5``) use the exact two-point-mass
    convolution; zero-mean unit-branch models use the uniform-word sum.
    """
    nid = design.tap_accumulator(tap_index)
    node = design.graph.node(nid)
    h = impulse_responses(design.graph)[nid].h
    seen = cascade(model, h)
    # Scale from generator-normalized units to this node's normalized units.
    scale = design.input_fmt.half_scale / node.fmt.half_scale
    weights = np.concatenate([np.asarray(b) for b in seen.branches]) * scale
    if abs(model.mean - 0.5) < 1e-12 and abs(model.sigma2 - 0.25) < 1e-12:
        return bernoulli_sum_distribution(weights, bins=bins, span=span)
    if abs(model.mean) < 1e-12 and abs(model.sigma2 - 1.0 / 3.0) < 1e-12:
        return uniform_sum_distribution(weights, bins=bins, span=span)
    raise AnalysisError(
        f"no exact distribution rule for source {model.name} "
        f"(sigma2={model.sigma2}, mean={model.mean})"
    )


def simulated_tap_histogram(
    design: FilterDesign,
    tap_index: int,
    generator: TestGenerator,
    n_vectors: int = 8192,
    bins: int = 256,
    span: float = 0.0,
) -> AmplitudeDistribution:
    """Histogram estimate of the tap amplitude distribution by simulation."""
    nid = design.tap_accumulator(tap_index)
    raw = generator.sequence(n_vectors)
    raw = match_width(raw, generator.width, design.input_fmt.width)
    result = simulate(design.graph, raw, keep_nodes=[nid])
    samples = result.normalized(nid)
    if span <= 0.0:
        span = float(np.max(np.abs(samples))) * 1.25 + 1e-9
    hist, edges = np.histogram(samples, bins=bins, range=(-span, span),
                               density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return AmplitudeDistribution(grid=centers, pdf=hist)
