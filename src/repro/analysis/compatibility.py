"""Frequency-domain generator/filter compatibility (Section 6.1, Table 3).

The output signal variance of a filter under a test generator is
estimated from spectra alone:

    sigma_y^2 = (1/L) * sum_k |G[k]|^2 |H[k]|^2          (Section 6.1)

A mismatch between the generator spectrum ``G`` and the filter response
``H`` starves the passband and attenuates the test signal at internal
taps.  The *compatibility ratio* reported here normalizes that estimate
by what a spectrally flat generator of the same total power would
deliver, so 1.0 means "as good as white", below ~0.5 means the generator
wastes most of its power outside the passband, and above 1.0 means its
power happens to concentrate inside the passband.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..generators.base import TestGenerator
from .spectrum import generator_spectrum

__all__ = [
    "CompatibilityResult",
    "output_variance_estimate",
    "compatibility_ratio",
    "classify_ratio",
    "compatibility_table",
    "per_band_compatibility",
    "RATING_GOOD",
    "RATING_POOR",
]

#: Classification thresholds on the compatibility ratio.
RATING_GOOD = 0.55
RATING_POOR = 0.20


@dataclass(frozen=True)
class CompatibilityResult:
    """Compatibility of one generator with one filter."""

    generator: str
    filter_name: str
    sigma_y2: float
    flat_sigma_y2: float

    @property
    def ratio(self) -> float:
        if self.flat_sigma_y2 <= 0:
            raise AnalysisError("filter has no passband energy")
        return self.sigma_y2 / self.flat_sigma_y2

    @property
    def rating(self) -> str:
        return classify_ratio(self.ratio)


def _filter_gain_on(freqs: np.ndarray, h: np.ndarray) -> np.ndarray:
    """|H(e^j2πf)|^2 sampled on the generator's frequency grid."""
    h = np.asarray(h, dtype=np.float64)
    response = np.exp(-2j * np.pi * np.outer(freqs, np.arange(len(h)))) @ h
    return np.abs(response) ** 2


def output_variance_estimate(
    freqs: np.ndarray, gen_power: np.ndarray, h: np.ndarray
) -> float:
    """``(1/L) sum |G|^2 |H|^2`` on the given grid.

    ``gen_power`` must follow this package's spectrum normalization
    (bin mean equals total signal power), which makes the estimate an
    actual output variance in normalized units.
    """
    gain = _filter_gain_on(freqs, h)
    return float(np.mean(gen_power * gain))


def compatibility_ratio(
    freqs: np.ndarray, gen_power: np.ndarray, h: np.ndarray
) -> Tuple[float, float]:
    """(sigma_y^2, flat-reference sigma_y^2) for a generator spectrum."""
    sigma_y2 = output_variance_estimate(freqs, gen_power, h)
    total_power = float(np.mean(gen_power))
    flat = total_power * float(np.mean(_filter_gain_on(freqs, h)))
    return sigma_y2, flat


def classify_ratio(ratio: float) -> str:
    """Map a compatibility ratio to the paper's +/±/− rating."""
    if ratio >= RATING_GOOD:
        return "+"
    if ratio < RATING_POOR:
        return "-"
    return "±"


def per_band_compatibility(
    freqs: np.ndarray,
    gen_power: np.ndarray,
    passbands: Sequence[Tuple[float, float]],
) -> Tuple[float, List[float]]:
    """Worst-passband compatibility of a generator.

    The paper's single-number metric ``sigma_y^2`` can be fooled by
    multi-passband filters: a generator that floods one passband while
    starving another still averages well (a Ramp "passes" a band-stop
    whose lower band touches DC).  This variant rates each unity band
    separately — generator band power over flat-generator band power —
    and returns ``(min_ratio, per_band_ratios)``; the *minimum* is the
    honest compatibility, since faults downstream of the starved band
    stay untested.
    """
    if not passbands:
        raise AnalysisError("need at least one passband")
    total_power = float(np.mean(gen_power))
    ratios: List[float] = []
    for lo, hi in passbands:
        mask = (freqs >= lo) & (freqs <= hi)
        if not np.any(mask):
            raise AnalysisError(f"no spectral bins inside [{lo}, {hi}]")
        band = float(np.mean(gen_power[mask]))
        ratios.append(band / max(total_power, 1e-300))
    return min(ratios), ratios


def compatibility_table(
    generators: Sequence[TestGenerator],
    filters: Sequence[Tuple[str, np.ndarray]],
) -> List[CompatibilityResult]:
    """Table 3: rate every generator against every filter.

    ``filters`` is a list of ``(name, impulse_response)`` pairs (the
    realized coefficients of a design work directly).
    """
    results: List[CompatibilityResult] = []
    for gen in generators:
        freqs, power = generator_spectrum(gen)
        for name, h in filters:
            sigma_y2, flat = compatibility_ratio(freqs, power, h)
            results.append(
                CompatibilityResult(
                    generator=gen.name, filter_name=name,
                    sigma_y2=sigma_y2, flat_sigma_y2=flat,
                )
            )
    return results
