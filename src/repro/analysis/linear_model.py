"""Linear models of LFSR-generated test signals (Section 7.1).

A Type 1 LFSR word sequence is exactly a 0/1 white-noise bit stream
filtered by the finite impulse response

    g[0] = -1,   g[n] = 2**-n  (n = 1 .. N-1),

for MSB-to-LSB shifting (the time-reversed response for LSB-to-MSB; the
power spectrum is identical).  Cascading ``g`` with a subfilter's impulse
response ``h_k`` predicts the signal seen at any adder, which drives both
the variance analysis (Eq. 1) and the exact amplitude-distribution
prediction of Figures 8-9.

Type 2 (Galois) LFSRs are modeled per the paper by splitting the register
at its embedded XOR gates: within each segment the stages carry one
sequence at consecutive delays, so each segment is a small Type-1-like
window; contributions of different segments are treated as independent
and their variances/spectra summed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import AnalysisError
from ..generators.polynomials import degree

__all__ = [
    "SourceModel",
    "type1_lfsr_model",
    "decorrelated_lfsr_model",
    "max_variance_lfsr_model",
    "uniform_white_model",
    "type2_lfsr_model",
    "cascade",
    "model_power_spectrum",
    "flattest_type2_polynomial",
]


@dataclass(frozen=True)
class SourceModel:
    """A test source as white noise through parallel FIR branches.

    The source emits i.i.d. samples with variance ``sigma2`` and mean
    ``mean``; the output is the sum of the branches, each branch being the
    source stream (independently, per the paper's Type 2 approximation)
    filtered by one impulse response in ``branches``.
    """

    name: str
    branches: Tuple[Tuple[float, ...], ...]
    sigma2: float
    mean: float

    @property
    def g(self) -> np.ndarray:
        """The single branch response (errors if the model has several)."""
        if len(self.branches) != 1:
            raise AnalysisError(
                f"{self.name} has {len(self.branches)} branches; use "
                "`branches` explicitly"
            )
        return np.array(self.branches[0])

    def output_variance(self) -> float:
        """Variance of the modeled generator output itself."""
        return self.sigma2 * float(
            sum(np.sum(np.square(b)) for b in self.branches)
        )

    def output_mean(self) -> float:
        """Mean of the modeled generator output."""
        return self.mean * float(sum(np.sum(b) for b in self.branches))


def type1_lfsr_model(width: int, direction: str = "msb_to_lsb") -> SourceModel:
    """The paper's Type 1 LFSR linear model (0/1 source, variance 0.25)."""
    g = np.empty(width)
    g[0] = -1.0
    g[1:] = 2.0 ** -np.arange(1, width)
    if direction == "lsb_to_msb":
        g = g[::-1]
    elif direction != "msb_to_lsb":
        raise AnalysisError(f"unknown direction {direction!r}")
    return SourceModel(name=f"LFSR-1/{width} model",
                       branches=(tuple(g),), sigma2=0.25, mean=0.5)


def decorrelated_lfsr_model(width: int) -> SourceModel:
    """LFSR-D modeled as ideal word-white noise, variance 1/3."""
    return SourceModel(name=f"LFSR-D/{width} model",
                       branches=((1.0,),), sigma2=1.0 / 3.0, mean=0.0)


def max_variance_lfsr_model(width: int) -> SourceModel:
    """LFSR-M modeled as ideal ±1 white noise, variance 1."""
    return SourceModel(name=f"LFSR-M/{width} model",
                       branches=((1.0,),), sigma2=1.0, mean=0.0)


def uniform_white_model(width: int) -> SourceModel:
    """Idealized statistically-independent uniform words, variance 1/3."""
    return SourceModel(name=f"White/{width} model",
                       branches=((1.0,),), sigma2=1.0 / 3.0, mean=0.0)


def type2_lfsr_model(width: int, poly: int,
                     direction: str = "lsb_to_msb") -> SourceModel:
    """Per-XOR-segment model of a Galois LFSR (paper's Section 7.1 remark).

    For LSB-to-MSB shifting, stage ``i`` receives an XOR when polynomial
    bit ``i`` is set (``0 < i < N``); segments are the maximal XOR-free
    stage runs.  Stage ``j`` carries weight ``-1`` (sign) for ``j = N-1``
    and ``2**-(N-1-j)`` otherwise, and within a segment starting at stage
    ``a``, stage ``j`` lags the segment driver by ``j - a`` samples.
    """
    n = degree(poly)
    if n != width:
        raise AnalysisError(f"polynomial degree {n} != width {width}")
    if direction == "msb_to_lsb":
        # A right-shifting Galois register is the left-shifting one with
        # the reciprocal polynomial and mirrored stage weights; reuse the
        # same segmentation on the mirrored structure.
        poly = _mirror_poly(poly, width)
    xor_positions = [i for i in range(1, width) if poly & (1 << i)]
    boundaries = sorted(set([0] + xor_positions + [width]))
    branches: List[Tuple[float, ...]] = []
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        # stages a .. b-1 form one segment; newest stage is `a`
        # (its value moves up to b-1 over b-1-a cycles).
        taps = []
        for lag, j in enumerate(range(a, b)):
            weight = -1.0 if j == width - 1 else 2.0 ** -(width - 1 - j)
            taps.append((lag, weight))
        g = np.zeros(b - a)
        for lag, weight in taps:
            g[lag] = weight
        branches.append(tuple(g))
    return SourceModel(name=f"LFSR-2/{width} model",
                       branches=tuple(branches), sigma2=0.25, mean=0.5)


def flattest_type2_polynomial(width: int, candidates=None,
                              low_band: float = 0.02) -> Tuple[int, float]:
    """Pick the Type 2 polynomial with the least low-frequency rolloff.

    Section 6: "Choosing a polynomial that puts an XOR gate near the MSB
    can help flatten the spectrum", and "using the reciprocal polynomial
    will help ... by moving an XOR gate closer to the MSB".  This scores
    candidate primitive polynomials by the per-segment linear model's
    predicted power below ``low_band`` and returns ``(best_poly,
    low_band_power)``.
    """
    from ..generators.polynomials import reciprocal, search_primitive_polys

    if candidates is None:
        base = search_primitive_polys(width, 8)
        candidates = sorted({p for c in base for p in (c, reciprocal(c))})
    best_poly = 0
    best_power = -1.0
    for poly in candidates:
        model = type2_lfsr_model(width, poly)
        freqs, power = model_power_spectrum(model, n_points=256)
        mask = (freqs > 1e-6) & (freqs <= low_band)
        lo = float(np.mean(power[mask]))
        if lo > best_power:
            best_power = lo
            best_poly = poly
    return best_poly, best_power


def _mirror_poly(poly: int, width: int) -> int:
    out = 1 << width
    for i in range(width):
        if poly & (1 << i):
            out |= 1 << (width - i) if i > 0 else 1
    return out | 1


def cascade(model: SourceModel, h: np.ndarray) -> SourceModel:
    """The model seen *through* a subfilter with impulse response ``h``."""
    branches = tuple(
        tuple(np.convolve(np.asarray(b), np.asarray(h, dtype=np.float64)))
        for b in model.branches
    )
    return SourceModel(name=f"{model.name} * h", branches=branches,
                       sigma2=model.sigma2, mean=model.mean)


def model_power_spectrum(model: SourceModel, n_points: int = 512
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Predicted power spectrum of a modeled source.

    The spectrum of white noise (variance ``sigma2``) through FIR ``g`` is
    ``sigma2 * |G(e^j2πf)|**2``; independent branches add.  The DC line
    carries the squared mean in addition.  Normalization matches
    :func:`repro.analysis.spectrum.exact_period_spectrum`: the mean over
    bins equals total power.
    """
    freqs = np.linspace(0.0, 0.5, n_points)
    total = np.zeros(n_points)
    for b in model.branches:
        g = np.asarray(b, dtype=np.float64)
        response = np.abs(
            np.exp(-2j * np.pi * np.outer(freqs, np.arange(len(g)))) @ g
        ) ** 2
        total += model.sigma2 * response
    # AC power spectral density folded one-sided: double all non-DC bins.
    total[1:] *= 2.0
    dc_mean = model.output_mean()
    total[0] += dc_mean**2 * n_points  # a DC line concentrates in one bin
    # Scale so that the mean over bins equals total power (AC + DC).
    ac_power = sum(model.sigma2 * float(np.sum(np.square(b)))
                   for b in model.branches)
    target = ac_power + dc_mean**2
    mean_now = float(np.mean(total))
    if mean_now > 0:
        total *= target / mean_now
    return freqs, total
