"""Distribution-based test-length prediction (Section 7.2's "more precise
analysis", after the paper's ref [5]).

Signal variance flags a problem; the amplitude *distribution* quantifies
it: from the predicted distributions of an operator's two operands, the
probability that a cell receives each of the eight input patterns per
vector follows directly, and with it the expected pseudorandom test
length of every fault (``1/p``) and the expected number of faults still
missed after an ``N``-vector session (``sum (1-p)**N``).

Assumptions (stated in the paper's spirit, checked in the benches):

* operands are treated as independent.  In the transposed digit-folded
  architecture this is *exact* for the first digit of every tap (the
  accumulated primary depends only on past inputs, the term only on the
  current input) and an approximation for later digits of multi-digit
  taps;
* distributions are evaluated on a finite amplitude grid, so pattern
  probabilities are reliable for the *upper* cells (the difficult-fault
  territory) and coarse for cells near the LSB, where the grid cannot
  resolve individual raw codes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import AnalysisError
from ..faultsim.dictionary import FaultUniverse
from ..fixedpoint import cell_pattern_codes
from ..rtl.build import FilterDesign
from ..rtl.impulse import impulse_responses
from ..rtl.nodes import OpKind
from .distribution import (
    AmplitudeDistribution,
    bernoulli_sum_distribution,
    uniform_sum_distribution,
)
from .linear_model import SourceModel, cascade

__all__ = [
    "node_distribution",
    "operator_pattern_probabilities",
    "expected_detection_times",
    "predicted_missed_count",
]


def node_distribution(
    design: FilterDesign,
    node_id: int,
    model: SourceModel,
    bins: int = 1024,
    reference_half_scale: Optional[float] = None,
) -> AmplitudeDistribution:
    """Predicted amplitude distribution of any node's value.

    Normalized by ``reference_half_scale`` (engineering units; defaults
    to the node's own half scale) so operand distributions can be placed
    on a *consuming operator's* scale.
    """
    node = design.graph.node(node_id)
    h = impulse_responses(design.graph)[node_id].h
    seen = cascade(model, h)
    half = reference_half_scale or node.fmt.half_scale
    scale = design.input_fmt.half_scale / half
    weights = np.concatenate([np.asarray(b) for b in seen.branches]) * scale
    span = float(np.sum(np.abs(weights))) + 1e-9
    if abs(model.mean - 0.5) < 1e-12 and abs(model.sigma2 - 0.25) < 1e-12:
        return bernoulli_sum_distribution(weights, bins=bins, span=span)
    if abs(model.mean) < 1e-12 and abs(model.sigma2 - 1.0 / 3.0) < 1e-12:
        return uniform_sum_distribution(weights, bins=bins, span=span)
    if abs(model.mean) < 1e-12 and abs(model.sigma2 - 1.0) < 1e-12:
        # ±full-scale source: two-point mass per branch weight
        return bernoulli_sum_distribution(2.0 * weights, bins=bins,
                                          span=float(np.sum(np.abs(weights)) * 2 + 1e-9))
    raise AnalysisError(f"no distribution rule for source {model.name}")


def _distribution_as_raw_pmf(
    dist: AmplitudeDistribution, half_scale_raw: int, max_support: int = 512
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse a gridded pdf to (raw values, probabilities).

    Support is capped at ``max_support`` points by merging consecutive
    bins (probability-weighted mean position), which bounds the joint
    enumeration cost at ``max_support**2`` per operator.
    """
    probs = dist.pdf * dist.bin_width
    raws = np.floor(dist.grid * half_scale_raw + 0.5).astype(np.int64)
    keep = probs > 1e-12
    raws, probs = raws[keep], probs[keep]
    if len(raws) > max_support:
        groups = np.array_split(np.arange(len(raws)), max_support)
        merged_r = np.empty(len(groups), dtype=np.int64)
        merged_p = np.empty(len(groups))
        for i, g in enumerate(groups):
            w = probs[g]
            total = np.sum(w)
            merged_p[i] = total
            merged_r[i] = np.int64(np.round(np.sum(raws[g] * w) / max(total, 1e-300)))
        raws, probs = merged_r, merged_p
    return raws, probs / np.sum(probs)


def operator_pattern_probabilities(
    design: FilterDesign,
    node_id: int,
    model: SourceModel,
    bins: int = 1024,
) -> np.ndarray:
    """Per-cell pattern probabilities of one operator, shape ``(W, 8)``.

    Entry ``[k, n]`` is the predicted per-vector probability that bit
    ``k``'s cell receives test ``Tn``.
    """
    node = design.graph.node(node_id)
    if not node.is_arithmetic:
        raise AnalysisError(f"node {node_id} is not an adder/subtractor")
    width = node.fmt.width
    half_raw = 1 << (width - 1)
    dists = []
    for src in node.srcs:
        dist = node_distribution(design, src, model, bins=bins,
                                 reference_half_scale=node.fmt.half_scale)
        dists.append(_distribution_as_raw_pmf(dist, half_raw))
    (a_raw, a_p), (b_raw, b_p) = dists
    a_raw = np.clip(a_raw, -half_raw, half_raw - 1)
    b_raw = np.clip(b_raw, -half_raw, half_raw - 1)
    is_sub = node.kind is OpKind.SUB
    codes = cell_pattern_codes(
        a_raw[:, None], b_raw[None, :], 1 if is_sub else 0, width,
        invert_b=is_sub,
    )  # (W, nA, nB)
    joint = a_p[:, None] * b_p[None, :]
    out = np.zeros((width, 8))
    for k in range(width):
        flat = codes[k].ravel()
        out[k] = np.bincount(flat, weights=joint.ravel(), minlength=8)[:8]
    return out


def expected_detection_times(
    design: FilterDesign,
    universe: FaultUniverse,
    model: SourceModel,
    bins: int = 1024,
) -> np.ndarray:
    """Expected pseudorandom test length of every fault (vectors).

    ``inf`` marks faults whose detecting patterns have (numerically) zero
    predicted probability.
    """
    prob_cache: Dict[int, np.ndarray] = {}
    out = np.empty(universe.fault_count)
    for f in universe.faults:
        if f.node_id not in prob_cache:
            prob_cache[f.node_id] = operator_pattern_probabilities(
                design, f.node_id, model, bins=bins)
        probs = prob_cache[f.node_id][f.bit]
        p = sum(probs[n] for n in range(8) if f.effective_mask & (1 << n))
        out[f.index] = np.inf if p <= 0 else 1.0 / p
    return out


def predicted_missed_count(
    design: FilterDesign,
    universe: FaultUniverse,
    model: SourceModel,
    n_vectors: int,
    bins: int = 1024,
) -> float:
    """Expected number of faults undetected after ``n_vectors``.

    Treats vectors as independent draws: a fault with per-vector hit
    probability ``p`` survives with probability ``(1-p)**N``.
    """
    times = expected_detection_times(design, universe, model, bins=bins)
    with np.errstate(divide="ignore"):
        p = np.where(np.isinf(times), 0.0, 1.0 / times)
    return float(np.sum((1.0 - p) ** n_vectors))
