"""Shared experiment parameters and the memoizing experiment context.

All tables and figures draw from the same few coverage runs; the
:class:`ExperimentContext` caches designs, fault universes and coverage
sessions so a full benchmark sweep builds each once.  Give it an
:class:`~repro.cache.ArtifactCache` (or set ``$REPRO_CACHE_DIR``) and
the memo tables become cache-backed: a rerun in a fresh process loads
universes, netlists, golden waveforms and coverage arrays from disk
instead of recomputing them, and :meth:`ExperimentContext.run_grid`
fans whole design x generator grids out across worker processes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..faultsim.dictionary import FaultUniverse, build_fault_universe
from ..faultsim.engine import CoverageResult, run_fault_coverage
from ..filters.reference import (
    bandpass_design,
    highpass_design,
    lowpass_design,
)
from ..generators.base import TestGenerator, match_width
from ..generators.mixed import MixedModeLfsr
from ..generators.ramp import RampGenerator
from ..generators.variants import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    Type1Lfsr,
    Type2Lfsr,
)
from ..rtl.build import FilterDesign

__all__ = ["ExperimentConfig", "ExperimentContext", "DEFAULT_CONFIG"]

_DESIGN_BUILDERS = {
    "LP": lowpass_design,
    "BP": bandpass_design,
    "HP": highpass_design,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the reproduction experiments.

    Defaults follow the paper: 12-bit generators, 4k-vector sessions for
    Tables 4-5 and Figures 10-12, an 8k mixed session (switch at 4k) for
    Table 6, and a 2k switch point for Figure 13.  Set the environment
    variable ``REPRO_FAST=1`` to quarter the vector counts during smoke
    runs.
    """

    generator_width: int = 12
    table4_vectors: int = 4096
    table6_vectors: int = 8192
    table6_switch: int = 4096
    fig13_switch: int = 2048
    analysis_tap: int = 20  # the paper's running example

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        if os.environ.get("REPRO_FAST"):
            return cls(table4_vectors=1024, table6_vectors=2048,
                       table6_switch=1024, fig13_switch=512)
        return cls()


DEFAULT_CONFIG = ExperimentConfig()


class ExperimentContext:
    """Caches designs, universes and coverage sessions across experiments.

    Parameters
    ----------
    config:
        Experiment knobs; defaults to :meth:`ExperimentConfig.from_env`.
    cache:
        Optional :class:`~repro.cache.ArtifactCache`.  When present,
        every memoized artifact is also persisted content-addressed on
        disk and reloaded on later runs (in this or any process).
    jobs:
        Default worker count for :meth:`run_grid` (``None`` = resolve
        from ``$REPRO_JOBS`` / CPU count at call time).
    coverage_cache:
        When ``False``, coverage sessions are always recomputed even
        with a cache attached (designs/universes/netlists stay
        cache-backed) — the knob ``repro bench`` uses so timed sessions
        measure real grading work.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None,
                 cache=None, jobs: Optional[int] = None,
                 coverage_cache: bool = True):
        self.config = config or ExperimentConfig.from_env()
        self.cache = cache
        self.jobs = jobs
        self.coverage_cache = coverage_cache
        self._designs: Optional[Dict[str, FilterDesign]] = None
        self._universes: Dict[str, FaultUniverse] = {}
        self._netlists: Dict[str, object] = {}
        self._coverage: Dict[Tuple[str, str, int], CoverageResult] = {}

    @classmethod
    def from_env(cls, config: Optional[ExperimentConfig] = None
                 ) -> "ExperimentContext":
        """A context whose cache follows ``$REPRO_CACHE_DIR`` (if set)."""
        cache = None
        if os.environ.get("REPRO_CACHE_DIR"):
            from ..cache import ArtifactCache

            cache = ArtifactCache()
        return cls(config=config, cache=cache)

    # ------------------------------------------------------------------
    # Designs and fault universes
    # ------------------------------------------------------------------
    def _build_design(self, name: str) -> FilterDesign:
        from ..cache import cached_design

        design = cached_design(self.cache, name, _DESIGN_BUILDERS[name])
        # The JSON snapshot omits the filter spec the figures annotate
        # with; reattach it for cache-rehydrated designs.
        if "spec" not in design.extra:
            from ..filters.design import (
                BANDPASS_SPEC,
                HIGHPASS_SPEC,
                LOWPASS_SPEC,
            )

            spec = {"LP": LOWPASS_SPEC, "BP": BANDPASS_SPEC,
                    "HP": HIGHPASS_SPEC}[name]
            design.extra["spec"] = spec
            design.kind = spec.kind
        return design

    @property
    def designs(self) -> Dict[str, FilterDesign]:
        if self._designs is None:
            self._designs = {name: self._build_design(name)
                             for name in _DESIGN_BUILDERS}
        return self._designs

    def universe(self, name: str) -> FaultUniverse:
        if name not in self._universes:
            from ..cache import cached_universe

            design = self.designs[name]
            self._universes[name] = cached_universe(
                self.cache, design,
                lambda: build_fault_universe(design.graph, name=name))
        return self._universes[name]

    def netlist(self, name: str):
        """The design's elaborated gate netlist (cache-backed)."""
        if name not in self._netlists:
            from ..cache import cached_netlist
            from ..gates.netlist import elaborate

            design = self.designs[name]
            self._netlists[name] = cached_netlist(
                self.cache, design, lambda: elaborate(design.graph))
        return self._netlists[name]

    def golden(self, name: str, generator: TestGenerator,
               n_vectors: int) -> np.ndarray:
        """Fault-free gate-level output waveform (cache-backed)."""
        from ..cache import cached_golden

        design = self.designs[name]

        def compute() -> np.ndarray:
            from ..gates.gatesim import simulate_netlist

            raw = generator.sequence(n_vectors)
            raw = match_width(raw, generator.width, design.input_fmt.width)
            return simulate_netlist(self.netlist(name), raw)["output"]

        return cached_golden(self.cache, design, generator, n_vectors,
                             compute)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    def standard_generators(self) -> Dict[str, TestGenerator]:
        """The four generators of Tables 4-5 / Figures 10-12."""
        w = self.config.generator_width
        return {
            "LFSR-1": Type1Lfsr(w),
            "LFSR-D": DecorrelatedLfsr(w),
            "LFSR-M": MaxVarianceLfsr(w),
            "Ramp": RampGenerator(w),
        }

    def spectrum_generators(self) -> Dict[str, TestGenerator]:
        """The five generators whose spectra Figure 4 plots."""
        w = self.config.generator_width
        gens = self.standard_generators()
        gens["LFSR-2"] = Type2Lfsr(w)
        return gens

    def mixed_generator(self, switch_after: Optional[int] = None) -> MixedModeLfsr:
        return MixedModeLfsr(self.config.generator_width,
                             switch_after=switch_after
                             if switch_after is not None
                             else self.config.table6_switch)

    # ------------------------------------------------------------------
    # Coverage runs (memoized, cache-backed)
    # ------------------------------------------------------------------
    def coverage(self, design_name: str, generator: TestGenerator,
                 n_vectors: int) -> CoverageResult:
        key = (design_name, generator.name, n_vectors)
        if key not in self._coverage:
            from ..cache import cached_coverage

            design = self.designs[design_name]
            universe = self.universe(design_name)
            self._coverage[key] = cached_coverage(
                self.cache if self.coverage_cache else None,
                design, generator, n_vectors, universe,
                lambda: run_fault_coverage(design, generator, n_vectors,
                                           universe=universe))
        return self._coverage[key]

    def reset_coverage(self) -> None:
        """Forget memoized coverage sessions (benchmarking aid)."""
        self._coverage.clear()

    def adopt_coverage(self, design_name: str, generator_name: str,
                       n_vectors: int, result: CoverageResult) -> None:
        """Install an externally graded session into the memo table."""
        self._coverage[(design_name, generator_name, n_vectors)] = result

    def run_grid(self, design_names: Optional[Sequence[str]] = None,
                 generator_keys: Optional[Sequence[str]] = None,
                 n_vectors: Optional[int] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None
                 ) -> Dict[Tuple[str, str], CoverageResult]:
        """Grade a design x generator grid across worker processes.

        Defaults reproduce the Table 4/5 grid: all reference designs,
        the four standard generators, ``table4_vectors``-long sessions.
        Every result also lands in the memo table, so the table/figure
        builders that follow hit it directly.
        """
        from ..parallel.sweep import SweepTask, run_sweep

        designs = list(design_names or self.designs)
        gens = list(generator_keys or self.standard_generators())
        vectors = n_vectors if n_vectors is not None \
            else self.config.table4_vectors
        tasks = [SweepTask(design=d, generator=g, n_vectors=vectors,
                           width=self.config.generator_width)
                 for d in designs for g in gens]
        results = run_sweep(self, tasks,
                            jobs=self.jobs if jobs is None else jobs,
                            timeout=timeout)
        return {(t.design, t.generator): r
                for t, r in zip(tasks, results)}
