"""Shared experiment parameters and the memoizing experiment context.

All tables and figures draw from the same few coverage runs; the
:class:`ExperimentContext` caches designs, fault universes and coverage
sessions so a full benchmark sweep builds each once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..faultsim.dictionary import FaultUniverse, build_fault_universe
from ..faultsim.engine import CoverageResult, run_fault_coverage
from ..filters.reference import reference_designs
from ..generators.base import TestGenerator
from ..generators.mixed import MixedModeLfsr
from ..generators.ramp import RampGenerator
from ..generators.variants import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    Type1Lfsr,
    Type2Lfsr,
)
from ..rtl.build import FilterDesign

__all__ = ["ExperimentConfig", "ExperimentContext", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the reproduction experiments.

    Defaults follow the paper: 12-bit generators, 4k-vector sessions for
    Tables 4-5 and Figures 10-12, an 8k mixed session (switch at 4k) for
    Table 6, and a 2k switch point for Figure 13.  Set the environment
    variable ``REPRO_FAST=1`` to quarter the vector counts during smoke
    runs.
    """

    generator_width: int = 12
    table4_vectors: int = 4096
    table6_vectors: int = 8192
    table6_switch: int = 4096
    fig13_switch: int = 2048
    analysis_tap: int = 20  # the paper's running example

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        if os.environ.get("REPRO_FAST"):
            return cls(table4_vectors=1024, table6_vectors=2048,
                       table6_switch=1024, fig13_switch=512)
        return cls()


DEFAULT_CONFIG = ExperimentConfig()


class ExperimentContext:
    """Caches designs, universes and coverage sessions across experiments."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config or ExperimentConfig.from_env()
        self._designs: Optional[Dict[str, FilterDesign]] = None
        self._universes: Dict[str, FaultUniverse] = {}
        self._coverage: Dict[Tuple[str, str, int], CoverageResult] = {}

    # ------------------------------------------------------------------
    # Designs and fault universes
    # ------------------------------------------------------------------
    @property
    def designs(self) -> Dict[str, FilterDesign]:
        if self._designs is None:
            self._designs = reference_designs()
        return self._designs

    def universe(self, name: str) -> FaultUniverse:
        if name not in self._universes:
            self._universes[name] = build_fault_universe(
                self.designs[name].graph, name=name
            )
        return self._universes[name]

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    def standard_generators(self) -> Dict[str, TestGenerator]:
        """The four generators of Tables 4-5 / Figures 10-12."""
        w = self.config.generator_width
        return {
            "LFSR-1": Type1Lfsr(w),
            "LFSR-D": DecorrelatedLfsr(w),
            "LFSR-M": MaxVarianceLfsr(w),
            "Ramp": RampGenerator(w),
        }

    def spectrum_generators(self) -> Dict[str, TestGenerator]:
        """The five generators whose spectra Figure 4 plots."""
        w = self.config.generator_width
        gens = self.standard_generators()
        gens["LFSR-2"] = Type2Lfsr(w)
        return gens

    def mixed_generator(self, switch_after: Optional[int] = None) -> MixedModeLfsr:
        return MixedModeLfsr(self.config.generator_width,
                             switch_after=switch_after
                             if switch_after is not None
                             else self.config.table6_switch)

    # ------------------------------------------------------------------
    # Coverage runs (memoized)
    # ------------------------------------------------------------------
    def coverage(self, design_name: str, generator: TestGenerator,
                 n_vectors: int) -> CoverageResult:
        key = (design_name, generator.name, n_vectors)
        if key not in self._coverage:
            self._coverage[key] = run_fault_coverage(
                self.designs[design_name], generator, n_vectors,
                universe=self.universe(design_name),
            )
        return self._coverage[key]
