"""Reproduction drivers for the paper's tables.

Each ``table_n`` function computes the data behind Table *n* and returns
a result object with the raw values plus a ``render()`` method printing
the same rows the paper reports.  Paper values are bundled for
side-by-side comparison in EXPERIMENTS.md and the benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.compatibility import classify_ratio, compatibility_ratio
from ..analysis.spectrum import generator_spectrum
from ..analysis.testzones import difficult_test_table
from ..filters.stats import design_statistics
from ..telemetry import traced
from .config import ExperimentContext
from .render import ascii_table

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
]

DESIGN_ORDER = ("LP", "BP", "HP")
GENERATOR_ORDER = ("LFSR-1", "LFSR-D", "LFSR-M", "Ramp")

#: Paper Table 1: (adders, regs, in, coef, out, faults).
PAPER_TABLE1 = {
    "LP": (183, 60, 12, 15, 16, 57148),
    "BP": (161, 58, 12, 14, 16, 50650),
    "HP": (175, 60, 12, 15, 16, 55042),
}

#: Paper Table 3 ratings, generator -> (LP, BP, HP).
PAPER_TABLE3 = {
    "LFSR-1": ("-", "±", "+"),
    "LFSR-2": ("±", "±", "+"),
    "LFSR-D": ("+", "+", "+"),
    "LFSR-M": ("+", "+", "+"),
    "Ramp": ("+", "-", "-"),
}

#: Paper Table 4: missed faults after 4k vectors.
PAPER_TABLE4 = {
    "LP": {"LFSR-1": 519, "LFSR-D": 331, "LFSR-M": 1097, "Ramp": 485},
    "BP": {"LFSR-1": 201, "LFSR-D": 193, "LFSR-M": 1005, "Ramp": 1230},
    "HP": {"LFSR-1": 308, "LFSR-D": 315, "LFSR-M": 1030, "Ramp": 1679},
}

#: Paper Table 5: Table 4 normalized by operator count.
PAPER_TABLE5 = {
    "LP": {"LFSR-1": 2.84, "LFSR-D": 1.81, "LFSR-M": 5.99, "Ramp": 2.65},
    "BP": {"LFSR-1": 1.25, "LFSR-D": 1.20, "LFSR-M": 6.24, "Ramp": 7.64},
    "HP": {"LFSR-1": 1.76, "LFSR-D": 1.80, "LFSR-M": 5.89, "Ramp": 9.59},
}

#: Paper Table 6: mixed LFSR-1/LFSR-M misses at 8k (and normalized).
PAPER_TABLE6 = {"LP": (148, 0.81), "HP": (137, 0.40)}


@dataclass
class TableResult:
    """Computed rows plus paper reference values."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    paper_rows: List[List[object]] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        out = [ascii_table(self.headers, self.rows, title=f"{self.name} (measured)")]
        if self.paper_rows:
            out.append("")
            out.append(ascii_table(self.headers, self.paper_rows,
                                   title=f"{self.name} (paper)"))
        if self.notes:
            out.append("")
            out.append(self.notes)
        return "\n".join(out)


# ----------------------------------------------------------------------
# Table 1 — design statistics
# ----------------------------------------------------------------------
@traced("experiments.table1")
def table1(ctx: Optional[ExperimentContext] = None) -> TableResult:
    ctx = ctx or ExperimentContext()
    headers = ["design", "adders", "regs", "in", "coef", "out", "faults"]
    rows = []
    for name in DESIGN_ORDER:
        s = design_statistics(ctx.designs[name])
        rows.append(s.row())
    paper_rows = [[n, *PAPER_TABLE1[n]] for n in DESIGN_ORDER]
    return TableResult(
        name="Table 1: design statistics", headers=headers, rows=rows,
        paper_rows=paper_rows,
        notes=("fault counts are collapsed classes after structural "
               "redundancy pruning; absolute values depend on the exact "
               "coefficient sets, which are re-derived"),
    )


# ----------------------------------------------------------------------
# Table 2 — difficult test conditions (definitional, plus verification)
# ----------------------------------------------------------------------
@traced("experiments.table2")
def table2(ctx: Optional[ExperimentContext] = None) -> TableResult:
    headers = ["test", "input", "output"]
    rows = []
    for c in difficult_test_table():
        lo, hi = c.input_range
        if lo <= -1.0:
            input_str = f"A < {hi}"
        elif hi >= 1.0:
            input_str = f"A >= {lo}"
        else:
            input_str = f"{lo} <= A < {hi}"
        rows.append([c.label, input_str, c.output_condition])
    return TableResult(
        name="Table 2: difficult test classes at the next-to-MSB cell",
        headers=headers, rows=rows,
        notes=("verified against bit-level ripple-carry enumeration in "
               "tests/test_analysis_testzones.py"),
    )


# ----------------------------------------------------------------------
# Table 3 — generator/filter compatibility
# ----------------------------------------------------------------------
@traced("experiments.table3")
def table3(ctx: Optional[ExperimentContext] = None) -> TableResult:
    ctx = ctx or ExperimentContext()
    gens = ctx.spectrum_generators()
    order = ["LFSR-1", "LFSR-2", "LFSR-D", "LFSR-M", "Ramp"]
    headers = ["generator", "LP", "BP", "HP"]
    rows = []
    for gname in order:
        gen = gens[gname]
        freqs, power = generator_spectrum(gen)
        cells = [gname]
        for dname in DESIGN_ORDER:
            h = ctx.designs[dname].coefficients
            sigma_y2, flat = compatibility_ratio(freqs, power, h)
            ratio = sigma_y2 / flat
            cells.append(f"{classify_ratio(ratio)} ({ratio:.2f})")
        rows.append(cells)
    paper_rows = [[g, *PAPER_TABLE3[g]] for g in order]
    return TableResult(
        name="Table 3: frequency-domain compatibility (rating and ratio)",
        headers=headers, rows=rows, paper_rows=paper_rows,
    )


# ----------------------------------------------------------------------
# Tables 4 and 5 — missed faults after 4k vectors
# ----------------------------------------------------------------------
@traced("experiments.table4")
def table4(ctx: Optional[ExperimentContext] = None) -> TableResult:
    ctx = ctx or ExperimentContext()
    n = ctx.config.table4_vectors
    gens = ctx.standard_generators()
    headers = ["design", *GENERATOR_ORDER]
    rows = []
    for dname in DESIGN_ORDER:
        row: List[object] = [dname]
        for gname in GENERATOR_ORDER:
            row.append(ctx.coverage(dname, gens[gname], n).missed())
        rows.append(row)
    paper_rows = [
        [d, *[PAPER_TABLE4[d][g] for g in GENERATOR_ORDER]]
        for d in DESIGN_ORDER
    ]
    return TableResult(
        name=f"Table 4: missed faults after {n} vectors",
        headers=headers, rows=rows, paper_rows=paper_rows,
    )


@traced("experiments.table5")
def table5(ctx: Optional[ExperimentContext] = None) -> TableResult:
    ctx = ctx or ExperimentContext()
    n = ctx.config.table4_vectors
    gens = ctx.standard_generators()
    headers = ["design", *GENERATOR_ORDER]
    rows = []
    for dname in DESIGN_ORDER:
        adders = ctx.designs[dname].adder_count
        row: List[object] = [dname]
        for gname in GENERATOR_ORDER:
            missed = ctx.coverage(dname, gens[gname], n).missed()
            row.append(round(missed / adders, 2))
        rows.append(row)
    paper_rows = [
        [d, *[PAPER_TABLE5[d][g] for g in GENERATOR_ORDER]]
        for d in DESIGN_ORDER
    ]
    return TableResult(
        name="Table 5: missed faults normalized by operator count",
        headers=headers, rows=rows, paper_rows=paper_rows,
    )


# ----------------------------------------------------------------------
# Table 6 — mixed LFSR-1 / LFSR-M scheme
# ----------------------------------------------------------------------
@traced("experiments.table6")
def table6(ctx: Optional[ExperimentContext] = None) -> TableResult:
    ctx = ctx or ExperimentContext()
    n = ctx.config.table6_vectors
    headers = ["design", "misses", "normalized"]
    rows = []
    for dname in ("LP", "HP"):
        gen = ctx.mixed_generator()
        result = ctx.coverage(dname, gen, n)
        missed = result.missed()
        rows.append([dname, missed,
                     round(missed / ctx.designs[dname].adder_count, 2)])
    paper_rows = [[d, *PAPER_TABLE6[d]] for d in ("LP", "HP")]
    return TableResult(
        name=(f"Table 6: mixed LFSR-1/LFSR-M misses "
              f"({ctx.config.table6_switch} normal + "
              f"{n - ctx.config.table6_switch} max-variance vectors)"),
        headers=headers, rows=rows, paper_rows=paper_rows,
    )
