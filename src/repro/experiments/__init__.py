"""Experiment drivers: one function per table and figure of the paper."""

from .config import DEFAULT_CONFIG, ExperimentConfig, ExperimentContext
from .render import ascii_table, series_block, waveform_sketch
from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from .report import full_report, save_report
from .figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    find_serious_missed_fault,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "DEFAULT_CONFIG",
    "ascii_table",
    "series_block",
    "waveform_sketch",
    "table1", "table2", "table3", "table4", "table5", "table6",
    "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "figure7", "figure8", "figure9", "figure10", "figure11", "figure12",
    "figure13",
    "find_serious_missed_fault",
    "full_report",
    "save_report",
    "PAPER_TABLE1", "PAPER_TABLE3", "PAPER_TABLE4", "PAPER_TABLE5",
    "PAPER_TABLE6",
]
