"""Plain-text rendering for experiment outputs.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diffable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ascii_table", "series_block", "waveform_sketch"]


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str = "") -> str:
    """A simple fixed-width table."""
    cols = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row {row!r} has {len(row)} cells, want {cols}")
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(cols)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def series_block(x: Sequence[float], y: Sequence[float],
                 x_label: str, y_label: str, title: str = "",
                 max_points: int = 24) -> str:
    """Print a data series as aligned (x, y) pairs, thinned if long."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("series lengths differ")
    idx = np.linspace(0, len(x) - 1, min(max_points, len(x))).astype(int)
    idx = np.unique(idx)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>12s}  {y_label}")
    for i in idx:
        lines.append(f"{x[i]:12.5g}  {y[i]:.6g}")
    return "\n".join(lines)


def waveform_sketch(samples: Sequence[float], width: int = 64,
                    height: int = 12, title: str = "") -> str:
    """A crude ASCII waveform plot, for eyeballing Figure 2-style spikes."""
    s = np.asarray(samples, dtype=np.float64)
    if len(s) == 0:
        return "(empty waveform)"
    idx = np.linspace(0, len(s) - 1, width).astype(int)
    vals = s[idx]
    lo, hi = float(np.min(s)), float(np.max(s))
    if hi - lo < 1e-12:
        hi = lo + 1e-12
    rows = []
    levels = np.round((vals - lo) / (hi - lo) * (height - 1)).astype(int)
    for r in range(height - 1, -1, -1):
        row = "".join("*" if lv == r else " " for lv in levels)
        rows.append(row)
    out = []
    if title:
        out.append(title)
    out.append(f"max {hi:+.4f}")
    out.extend(rows)
    out.append(f"min {lo:+.4f}")
    return "\n".join(out)
