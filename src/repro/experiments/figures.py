"""Reproduction drivers for the paper's figures.

Each ``figure_n`` function computes the data series behind Figure *n*
and returns a result object carrying the arrays plus a ``render()``
method that prints them as text (the benchmark harness regenerates
figures as data series, not images).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.distribution import (
    predicted_tap_distribution,
    simulated_tap_histogram,
)
from ..analysis.linear_model import type1_lfsr_model, uniform_white_model
from ..analysis.spectrum import generator_spectrum, power_db
from ..analysis.testzones import test_zones
from ..faultsim.dictionary import DesignFault
from ..faultsim.inject import fault_effect
from ..generators.base import match_width
from ..generators.sine import SineGenerator
from ..rtl.simulate import simulate
from ..telemetry import traced
from .config import ExperimentContext
from .render import ascii_table, series_block, waveform_sketch

__all__ = [
    "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "figure7", "figure8", "figure9", "figure10", "figure11", "figure12",
    "figure13", "find_serious_missed_fault",
]


@dataclass
class FigureResult:
    """Series data plus a text rendering."""

    name: str
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)
    text: str = ""

    def render(self) -> str:
        parts = [self.name]
        if self.scalars:
            parts.append("  " + "  ".join(
                f"{k}={v:.5g}" for k, v in self.scalars.items()))
        if self.text:
            parts.append(self.text)
        for label, (x, y) in self.series.items():
            parts.append("")
            parts.append(series_block(x, y, "x", label))
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Figure 1 — test zones on a hypothetical primary-input pdf
# ----------------------------------------------------------------------
@traced("experiments.figure1")
def figure1(beta: float = 0.08, sigma: float = 0.35) -> FigureResult:
    """Zones over a Gaussian-ish primary-input density (illustrative)."""
    grid = np.linspace(-1.25, 1.25, 501)
    pdf = np.exp(-0.5 * (grid / sigma) ** 2)
    pdf /= np.trapezoid(pdf, grid)
    zones = test_zones(beta)
    rows = [[label, f"[{lo:+.3f}, {hi:+.3f})"] for label, (lo, hi) in
            sorted(zones.items(), key=lambda kv: kv[1][0])]
    return FigureResult(
        name=f"Figure 1: test zones (secondary input bound beta={beta})",
        series={"primary input pdf": (grid, pdf)},
        text=ascii_table(["zone", "primary-input interval"], rows),
    )


# ----------------------------------------------------------------------
# Figures 2 and 3 — the serious missed fault
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriousMiss:
    """The Section 5 demonstration fault and a sine that excites it."""

    fault: DesignFault
    freq: float
    amplitude: float
    spikes: int


_DIFFICULT_MASK = 0b01100110  # tests T1, T2, T5, T6


def find_serious_missed_fault(ctx: ExperimentContext) -> SeriousMiss:
    """The Section 5 fault: missed by the LFSR-1 session despite >99%
    coverage, yet excited by an in-band sine — i.e. a *serious* miss.

    Search order mimics the paper's account (Figure 3): an upper-bit
    fault of a mid-chain (tap ~20) accumulation operator, detectable only
    by a difficult test, whose effect shows as a spike train on the sine
    response.  A small frequency/amplitude sweep picks a stimulus that
    excites it repeatedly ("somewhat sensitive to the amplitude and
    frequency of the sine wave", Section 5).
    """
    cfg = ctx.config
    design = ctx.designs["LP"]
    result = ctx.coverage("LP", ctx.standard_generators()["LFSR-1"],
                          cfg.table4_vectors)
    missed = result.missed_faults()

    def sort_key(f: DesignFault) -> Tuple[int, int, int]:
        node = design.graph.node(f.node_id)
        below_msb = node.fmt.width - 1 - f.bit
        tap = node.tap if node.tap is not None else 999
        only_difficult = (f.effective_mask & ~_DIFFICULT_MASK) == 0
        return (0 if only_difficult else 1, abs(tap - cfg.analysis_tap),
                below_msb)

    passband_hi = design.extra["spec"].passband[1]
    sweep = [(passband_hi * r, a) for r in (0.3, 0.45, 0.6)
             for a in (0.97, 0.9)]
    width = design.input_fmt.width
    for fault in sorted(missed, key=sort_key):
        node = design.graph.node(fault.node_id)
        if node.role != "accumulator":
            continue
        best: Optional[SeriousMiss] = None
        for freq, amp in sweep:
            effect = fault_effect(
                design, fault, SineGenerator(width, freq=freq, amplitude=amp),
                2000,
            )
            spikes = int(np.sum(effect != 0))
            if spikes >= 2 and (best is None or spikes > best.spikes):
                best = SeriousMiss(fault=fault, freq=freq, amplitude=amp,
                                   spikes=spikes)
        if best is not None:
            return best
    raise RuntimeError("no sine-excitable missed fault found")


@traced("experiments.figure2")
def figure2(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    design = ctx.designs["LP"]
    miss = find_serious_missed_fault(ctx)
    sine = SineGenerator(design.input_fmt.width, freq=miss.freq,
                         amplitude=miss.amplitude)
    n = 2000
    raw = match_width(sine.sequence(n), sine.width, design.input_fmt.width)
    good = simulate(design.graph, raw).output
    from ..faultsim.inject import to_injected_fault
    bad = simulate(design.graph, raw, fault=to_injected_fault(miss.fault)).output
    t = np.arange(n, dtype=np.float64)
    err = bad - good
    return FigureResult(
        name="Figure 2: faulty lowpass output under an in-band sine",
        series={"faulty output": (t[:600], bad[:600]),
                "error (spikes)": (t[:600], err[:600])},
        scalars={
            "sine freq": miss.freq,
            "sine amplitude": miss.amplitude,
            "peak |error|": float(np.max(np.abs(err))),
            "error samples": float(np.sum(err != 0)),
        },
        text=waveform_sketch(bad[:400], title=f"injected: {miss.fault.label}"),
    )


@traced("experiments.figure3")
def figure3(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    design = ctx.designs["LP"]
    fault = find_serious_missed_fault(ctx).fault
    node = design.graph.node(fault.node_id)
    below = node.fmt.width - 1 - fault.bit
    detecting = [f"T{p}" for p in range(8)
                 if fault.effective_mask & (1 << p)]
    rows = [
        ["design", design.name],
        ["operator", node.name],
        ["tap", str(node.tap)],
        ["operator width", str(node.fmt.width)],
        ["fault site", fault.cell_fault.name],
        ["bits below MSB", str(below)],
        ["detected only by", ", ".join(detecting)],
    ]
    return FigureResult(
        name="Figure 3: location of the serious missed fault",
        text=ascii_table(["property", "value"], rows),
        scalars={"bits_below_msb": float(below)},
    )


# ----------------------------------------------------------------------
# Figure 4 — generator power spectra
# ----------------------------------------------------------------------
@traced("experiments.figure4")
def figure4(ctx: Optional[ExperimentContext] = None,
            n_bins: int = 64) -> FigureResult:
    ctx = ctx or ExperimentContext()
    series = {}
    for name, gen in ctx.spectrum_generators().items():
        freqs, power = generator_spectrum(gen)
        # Thin to a readable number of bins (average within bins).
        edges = np.linspace(0, len(freqs), n_bins + 1).astype(int)
        f_out = np.array([freqs[a:b].mean() for a, b in
                          zip(edges[:-1], edges[1:]) if b > a])
        p_out = np.array([power[a:b].mean() for a, b in
                          zip(edges[:-1], edges[1:]) if b > a])
        series[f"{name} power (dB)"] = (f_out, power_db(p_out))
    return FigureResult(name="Figure 4: test generator power spectra",
                        series=series)


# ----------------------------------------------------------------------
# Figure 5 — LFSR-1 waveform segment
# ----------------------------------------------------------------------
@traced("experiments.figure5")
def figure5(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    w = ctx.config.generator_width
    from ..generators.variants import Type1Lfsr
    gen = Type1Lfsr(w, direction="lsb_to_msb")
    seg = gen.sequence(300) / float(1 << (w - 1))
    t = np.arange(300, dtype=np.float64)
    return FigureResult(
        name="Figure 5: Type 1 LFSR test sequence segment",
        series={"normalized amplitude": (t, seg)},
        scalars={"std": float(seg.std()), "paper std": 0.577},
        text=waveform_sketch(seg[:120]),
    )


# ----------------------------------------------------------------------
# Figures 6 and 7 — the signal at tap 20
# ----------------------------------------------------------------------
def _tap_signal_figure(ctx: ExperimentContext, generator_key: str,
                       paper_std: float, paper_untested: int,
                       fig_name: str) -> FigureResult:
    design = ctx.designs["LP"]
    tap = ctx.config.analysis_tap
    nid = design.tap_accumulator(tap)
    gen = ctx.standard_generators()[generator_key]
    raw = match_width(gen.sequence(4096), gen.width, design.input_fmt.width)
    sim = simulate(design.graph, raw, keep_nodes=[nid])
    signal = sim.normalized(nid)

    # "Not fully tested" upper bits at this operator: consecutive bit
    # positions below the MSB whose cells still hold undetected faults
    # after the session (the criterion behind the paper's "four bits
    # below the MSB are not fully tested").
    result = ctx.coverage("LP", gen, ctx.config.table4_vectors)
    missed_bits = {f.bit for f in result.missed_faults() if f.node_id == nid}
    node = design.graph.node(nid)
    untested_bits = 0
    for bit in range(node.fmt.width - 2, 0, -1):  # below MSB, downward
        if bit in missed_bits:
            untested_bits += 1
        else:
            break
    t = np.arange(512, dtype=np.float64)
    return FigureResult(
        name=fig_name,
        series={"normalized amplitude": (t, signal[:512])},
        scalars={
            "std": float(signal.std()),
            "paper std": paper_std,
            "untested upper bits": float(untested_bits),
            "paper untested bits": float(paper_untested),
        },
        text=waveform_sketch(signal[:200]),
    )


@traced("experiments.figure6")
def figure6(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    return _tap_signal_figure(
        ctx, "LFSR-1", paper_std=0.036, paper_untested=4,
        fig_name="Figure 6: attenuated LFSR-1 test signal at tap 20",
    )


@traced("experiments.figure7")
def figure7(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    return _tap_signal_figure(
        ctx, "LFSR-D", paper_std=0.121, paper_untested=1,
        fig_name="Figure 7: decorrelated test signal at tap 20",
    )


# ----------------------------------------------------------------------
# Figures 8 and 9 — amplitude distributions at tap 20
# ----------------------------------------------------------------------
def _distribution_figure(ctx: ExperimentContext, generator_key: str,
                         model, fig_name: str) -> FigureResult:
    design = ctx.designs["LP"]
    tap = ctx.config.analysis_tap
    gen = ctx.standard_generators()[generator_key]
    predicted = predicted_tap_distribution(design, tap, model)
    measured = simulated_tap_histogram(design, tap, gen, n_vectors=16384,
                                       bins=128, span=predicted.grid[-1])
    # Resample prediction onto the histogram grid for the overlay.
    pred_on = np.interp(measured.grid, predicted.grid, predicted.pdf)
    overlap = _pdf_overlap(measured.grid, pred_on, measured.pdf)
    return FigureResult(
        name=fig_name,
        series={
            "theory pdf": (measured.grid, pred_on),
            "simulated pdf": (measured.grid, measured.pdf),
        },
        scalars={
            "overlap coefficient": overlap,
            "theory sigma": predicted.sigma(),
            "simulated sigma": measured.sigma(),
        },
    )


def _pdf_overlap(grid: np.ndarray, p: np.ndarray, q: np.ndarray) -> float:
    step = grid[1] - grid[0]
    return float(np.sum(np.minimum(p, q)) * step)


@traced("experiments.figure8")
def figure8(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    model = type1_lfsr_model(ctx.config.generator_width)
    return _distribution_figure(
        ctx, "LFSR-1", model,
        "Figure 8: tap-20 amplitude distribution, Type 1 LFSR "
        "(theory vs simulation)",
    )


@traced("experiments.figure9")
def figure9(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    model = uniform_white_model(ctx.config.generator_width)
    return _distribution_figure(
        ctx, "LFSR-D", model,
        "Figure 9: tap-20 amplitude distribution, decorrelated tests "
        "(idealized theory vs LFSR-D simulation)",
    )


# ----------------------------------------------------------------------
# Figures 10-12 — fault simulation curves
# ----------------------------------------------------------------------
def _coverage_figure(ctx: ExperimentContext, design_name: str,
                     fig_name: str) -> FigureResult:
    n = ctx.config.table4_vectors
    series = {}
    finals = {}
    for gname, gen in ctx.standard_generators().items():
        result = ctx.coverage(design_name, gen, n)
        pts, undetected = result.curve()
        series[f"{gname} undetected"] = (pts.astype(np.float64),
                                         undetected.astype(np.float64))
        finals[gname] = result.missed()
    return FigureResult(
        name=fig_name,
        series=series,
        scalars={f"{g} final": float(v) for g, v in finals.items()},
    )


@traced("experiments.figure10")
def figure10(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    return _coverage_figure(ctx, "LP",
                            "Figure 10: fault simulation, lowpass filter")


@traced("experiments.figure11")
def figure11(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    return _coverage_figure(ctx, "BP",
                            "Figure 11: fault simulation, bandpass filter")


@traced("experiments.figure12")
def figure12(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    return _coverage_figure(ctx, "HP",
                            "Figure 12: fault simulation, highpass filter")


# ----------------------------------------------------------------------
# Figure 13 — mixed-mode advantage
# ----------------------------------------------------------------------
@traced("experiments.figure13")
def figure13(ctx: Optional[ExperimentContext] = None) -> FigureResult:
    ctx = ctx or ExperimentContext()
    n = ctx.config.table4_vectors
    switch = ctx.config.fig13_switch
    gens = ctx.standard_generators()
    series = {}
    finals = {}
    for label, gen in (
        ("LFSR-1", gens["LFSR-1"]),
        ("LFSR-M", gens["LFSR-M"]),
        (f"mixed@{switch}", ctx.mixed_generator(switch_after=switch)),
    ):
        result = ctx.coverage("LP", gen, n)
        pts, undetected = result.curve()
        series[f"{label} undetected"] = (pts.astype(np.float64),
                                         undetected.astype(np.float64))
        finals[label] = result.missed()
    return FigureResult(
        name=("Figure 13: combining test generators on the lowpass filter "
              f"(switch to max-variance after {switch} vectors)"),
        series=series,
        scalars={f"{k} final": float(v) for k, v in finals.items()},
    )
