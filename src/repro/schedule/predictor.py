"""Per-fault detection-probability prediction from the analytic model.

The Section 7.2 analysis already predicts, per arithmetic operator, the
probability that each ripple-carry cell receives each of the eight
input patterns per vector
(:func:`repro.analysis.testlength.operator_pattern_probabilities`).  A
collapsed fault class is detected by a fixed subset of those patterns
(:attr:`repro.gates.cells.CellFault.detect_mask`), so its predicted
per-vector detection probability is just the summed probability of its
detecting codes — and its predicted pseudorandom test length is
``1/p``.  :class:`FaultPredictor` evaluates that for whole fault
universes, caching the expensive per-operator tables so scoring 65k
faults costs a couple of hundred operator distributions plus a
dictionary walk.

Generators map onto white-noise-through-FIR source models exactly as in
:mod:`repro.analysis.linear_model`; the mixed generator is modeled as
the time-average of its two phases (each phase contributes half the
session's vectors, so the average per-vector hit probability is the
weighted mean of the per-phase probabilities).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.linear_model import (
    SourceModel,
    decorrelated_lfsr_model,
    max_variance_lfsr_model,
    type1_lfsr_model,
    type2_lfsr_model,
    uniform_white_model,
)
from ..analysis.testlength import operator_pattern_probabilities
from ..resolve import resolve_generator
from ..rtl.build import FilterDesign

__all__ = ["FaultPredictor", "source_models_for"]

#: Amplitude-grid resolution for the pattern-probability tables; 1024
#: bins is where the predicted-vs-actual rank correlation saturates on
#: the Table 1 designs (see ``repro bench --schedule``).
DEFAULT_BINS = 1024


def source_models_for(generator: str, width: int
                      ) -> List[Tuple[SourceModel, float]]:
    """Weighted linear source models for any accepted generator spelling.

    Returns ``[(model, weight), ...]`` with weights summing to 1.  Most
    generators are a single model; ``mixed`` is the half/half average of
    its Type 1 and maximum-variance phases.  The ramp's *amplitude
    distribution* is exactly uniform over a period, so it shares the
    uniform-white model (its pathological spectrum shows up in Eq. 1
    compatibility, not in the marginal distribution this predictor
    consumes).
    """
    kind = resolve_generator(generator)
    if kind == "lfsr1":
        return [(type1_lfsr_model(width), 1.0)]
    if kind == "lfsr2":
        from ..generators.variants import Type2Lfsr

        gen = Type2Lfsr(width)
        return [(type2_lfsr_model(width, gen.poly), 1.0)]
    if kind == "lfsrd":
        return [(decorrelated_lfsr_model(width), 1.0)]
    if kind == "lfsrm":
        return [(max_variance_lfsr_model(width), 1.0)]
    if kind == "mixed":
        return [(type1_lfsr_model(width), 0.5),
                (max_variance_lfsr_model(width), 0.5)]
    # ramp and white: uniform word-value marginal
    return [(uniform_white_model(width), 1.0)]


def _fault_mask(fault) -> int:
    """Detecting-code bitmask of an enumerated or dictionary fault."""
    mask = getattr(fault, "effective_mask", None)
    if mask is None:
        mask = fault.cell_fault.detect_mask
    return int(mask)


class FaultPredictor:
    """Analytic per-fault detection-probability scores for one
    generator × design pair.

    Score extraction is two-level cached: one ``(W, 8)`` pattern table
    per arithmetic operator (the expensive distribution work) and one
    summed probability per distinct ``(node, bit, mask)`` triple (the
    hot path when rescoring deepening-stage survivors).  Accepts both
    :class:`~repro.gates.faults.EnumeratedFault` (gate-level) and
    :class:`~repro.faultsim.dictionary.DesignFault` (behavioral) fault
    objects.
    """

    def __init__(self, design: FilterDesign, generator: str, *,
                 bins: int = DEFAULT_BINS):
        self.design = design
        self.generator = resolve_generator(generator)
        self.bins = int(bins)
        self.models = source_models_for(generator, design.input_fmt.width)
        self._tables: Dict[int, np.ndarray] = {}
        self._memo: Dict[Tuple[int, int, int], float] = {}

    def node_table(self, node_id: int) -> np.ndarray:
        """Weighted-average per-cell pattern probabilities, shape (W, 8)."""
        table = self._tables.get(node_id)
        if table is None:
            parts = [
                weight * operator_pattern_probabilities(
                    self.design, node_id, model, bins=self.bins)
                for model, weight in self.models
            ]
            table = parts[0]
            for part in parts[1:]:
                table = table + part
            self._tables[node_id] = table
        return table

    def detection_probability(self, faults: Sequence) -> np.ndarray:
        """Predicted per-vector detection probability, aligned with
        ``faults``."""
        out = np.empty(len(faults))
        memo = self._memo
        for i, fault in enumerate(faults):
            key = (fault.node_id, fault.bit, _fault_mask(fault))
            p = memo.get(key)
            if p is None:
                probs = self.node_table(fault.node_id)[fault.bit]
                mask = key[2]
                # Clip float summation dust: eight summed bin-integrals
                # can land at 1 + O(eps).
                p = min(1.0, max(0.0, float(sum(
                    probs[n] for n in range(8) if mask & (1 << n)))))
                memo[key] = p
            out[i] = p
        return out

    def expected_times(self, faults: Sequence) -> np.ndarray:
        """Predicted pseudorandom test length ``1/p`` per fault
        (``inf`` where the detecting patterns have zero predicted
        probability)."""
        p = self.detection_probability(faults)
        out = np.full(len(p), np.inf)
        hit = p > 0
        out[hit] = 1.0 / p[hit]
        return out
