"""Analytic predictor-guided fault scheduling.

The paper's central asset is that test-zone occupancy — and therefore
which faults are hard — is *analytically predictable* before any fault
simulation runs: Eq. 1 (``sigma_y^2 = (1/L) sum |G[k]|^2 |H[k]|^2``)
places each operator's signal variance, and the Section 7.2 amplitude
distributions turn that into per-cell test-pattern probabilities.  This
package converts the prediction into a scheduler for the gate-level
fault engine:

* :mod:`repro.schedule.predictor` scores every enumerated fault with
  its predicted per-vector detection probability (reusing
  :mod:`repro.analysis`), cached per-operator so a 65k-fault universe
  scores in well under a second;
* :mod:`repro.schedule.order` turns the scores into a batch-ordering
  policy for :func:`repro.gates.fault_parallel.gate_level_missed` —
  predicted-easy faults first, so PR 4's per-word fault dropping
  compacts early — alongside the ``cone`` (locality-order) default and
  a seeded ``random`` control arm;
* :mod:`repro.schedule.stats` provides the Spearman rank correlation
  and work-to-coverage accounting the ``repro bench --schedule``
  benchmark gates on;
* :mod:`repro.schedule.recommend` answers "best generator for this
  filter" from the analytic model alone, running gate-level grading
  only to confirm the top-k candidates (the service's ``recommend``
  job kind).

Because verdicts are scattered back by fault index, every schedule is
bit-identical in its *results*; scheduling only moves work earlier.
"""

from .order import (
    DEFAULT_SCHEDULE_SEED,
    SCHEDULE_MODES,
    PredictedScheduler,
    RandomScheduler,
    make_scheduler,
    order_sweep_tasks,
)
from .predictor import FaultPredictor, source_models_for
from .recommend import recommend_generator
from .stats import average_ranks, spearman_rank_correlation, work_to_coverage

__all__ = [
    "DEFAULT_SCHEDULE_SEED",
    "SCHEDULE_MODES",
    "FaultPredictor",
    "PredictedScheduler",
    "RandomScheduler",
    "average_ranks",
    "make_scheduler",
    "order_sweep_tasks",
    "recommend_generator",
    "source_models_for",
    "spearman_rank_correlation",
    "work_to_coverage",
]
