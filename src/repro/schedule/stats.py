"""Rank statistics and work accounting for the schedule benchmark.

Numpy-only (no scipy dependency at import time): the Spearman
correlation with average-rank tie handling, and the work-to-coverage
reduction over the per-batch checkpoints ``gate_level_missed`` streams
through its ``on_batch`` hook.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["average_ranks", "spearman_rank_correlation",
           "work_to_coverage"]


def average_ranks(values: Sequence[float]) -> np.ndarray:
    """1-based ranks with ties sharing their average rank."""
    v = np.asarray(values, dtype=np.float64)
    order = np.argsort(v, kind="mergesort")
    sv = v[order]
    # Group boundaries of runs of equal values in sorted order.
    new_group = np.empty(len(sv), dtype=bool)
    new_group[:1] = True
    new_group[1:] = sv[1:] != sv[:-1]
    group = np.cumsum(new_group) - 1
    starts = np.flatnonzero(new_group)
    ends = np.append(starts[1:], len(sv))
    # Average of 1-based positions start+1 .. end over each run.
    avg = 0.5 * (starts + ends + 1)
    ranks = np.empty(len(sv))
    ranks[order] = avg[group]
    return ranks


def spearman_rank_correlation(x: Sequence[float],
                              y: Sequence[float]) -> float:
    """Spearman's rho with average-rank tie handling.

    Pearson correlation of the two rank vectors; returns 0.0 when
    either input is constant (no ordering to correlate).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two observations")
    rx = average_ranks(x) - (x.size + 1) / 2.0
    ry = average_ranks(y) - (y.size + 1) / 2.0
    denom = float(np.sqrt(np.sum(rx * rx) * np.sum(ry * ry)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(rx * ry) / denom)


def work_to_coverage(checkpoints: Sequence[Tuple[int, int]],
                     target_detected: int) -> Optional[int]:
    """Cumulative work at which cumulative detections first reach
    ``target_detected``.

    ``checkpoints`` is the monotone per-batch stream of
    ``(cumulative_work, cumulative_detected)`` pairs (work in
    active-lane × vector units).  Returns ``None`` when the target is
    never reached.
    """
    if target_detected <= 0:
        return 0
    for work, detected in checkpoints:
        if detected >= target_detected:
            return int(work)
    return None
