"""Generator recommendation: analytic ranking, gate-level confirmation.

"Which generator should test this filter?" is answered in two stages,
mirroring the paper's own workflow:

1. **Analytic** (cheap, no simulation): every candidate is scored by
   its predicted number of missed faults after an ``N``-vector session
   — per-fault detection probabilities from
   :class:`~repro.schedule.predictor.FaultPredictor` over the
   behavioral fault universe, survival ``(1-p)**N`` summed — plus the
   Eq. 1 frequency-domain compatibility ratio as the tie-breaker (it
   penalizes spectrally pathological sources, e.g. the ramp, whose
   amplitude *marginal* alone looks benign).
2. **Confirmation** (bounded gate-level grading): only the top-k
   analytic candidates are graded exactly, on a subsampled enumerated
   fault universe and a bounded vector count, with the predictor-guided
   schedule so fault dropping compacts early.  The best candidate is
   the confirmed-coverage winner, analytic order breaking ties.

Exposed as the service's ``recommend`` job kind and as
``repro recommend`` on the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..bist.selection import rank_generators
from ..generators.base import match_width
from ..resolve import make_generator, resolve_design, resolve_generator
from .order import PredictedScheduler
from .predictor import FaultPredictor

__all__ = ["DEFAULT_CANDIDATES", "recommend_generator"]

#: The paper's generator menagerie plus its Section 9 mixed scheme.
DEFAULT_CANDIDATES = ("lfsr1", "lfsr2", "lfsrd", "lfsrm", "ramp", "mixed")


def _subsample(faults, limit: int):
    """Evenly spaced fault subset (keeps every operator represented)."""
    if not limit or limit >= len(faults):
        return list(faults)
    idx = np.unique(np.linspace(0, len(faults) - 1, limit).astype(int))
    return [faults[i] for i in idx]


def recommend_generator(
    ctx,
    design_name: str,
    *,
    vectors: int = 4096,
    top_k: int = 2,
    confirm_vectors: int = 512,
    confirm_faults: int = 2048,
    bins: int = 512,
    candidates: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Recommend a test generator for a design; see the module doc.

    ``ctx`` is an :class:`~repro.experiments.ExperimentContext` (its
    design/universe/netlist memos and artifact cache are reused).
    Setting ``confirm_vectors`` or ``confirm_faults`` to 0 skips the
    gate-level stage and recommends from the analytic ranking alone.
    """
    name = resolve_design(design_name)
    kinds = [resolve_generator(c) for c in
             (candidates or DEFAULT_CANDIDATES)]
    design = ctx.designs[name]
    universe = ctx.universe(name)
    width = design.input_fmt.width

    gens = {kind: make_generator(kind, width, vectors) for kind in kinds}
    ratios = {r.generator.name: r for r in
              rank_generators(design, list(gens.values()))}

    scored = []
    for kind in kinds:
        predictor = FaultPredictor(design, kind, bins=bins)
        p = predictor.detection_probability(universe.faults)
        predicted_missed = float(np.sum((1.0 - p) ** vectors))
        ranking = ratios[gens[kind].name]
        scored.append({
            "generator": kind,
            "name": gens[kind].name,
            "predicted_missed": predicted_missed,
            "predicted_coverage":
                1.0 - predicted_missed / max(1, universe.fault_count),
            "compatibility_ratio": float(ranking.ratio),
            "rating": ranking.rating,
        })
    scored.sort(key=lambda s: (s["predicted_missed"],
                               -s["compatibility_ratio"]))
    for rank, entry in enumerate(scored, start=1):
        entry["analytic_rank"] = rank

    out: Dict[str, Any] = {
        "design": name,
        "vectors": int(vectors),
        "width": int(width),
        "fault_count": int(universe.fault_count),
        "candidates": scored,
        "confirm_vectors": int(confirm_vectors),
        "confirm_faults": int(confirm_faults),
        "confirmed": [],
    }

    if not (top_k and confirm_vectors and confirm_faults):
        out["best"] = scored[0]["generator"]
        return out

    from ..gates import enumerate_cell_faults, gate_level_missed

    nl = ctx.netlist(name)
    enumerated = _subsample(enumerate_cell_faults(design.graph, nl),
                            confirm_faults)
    confirmed = []
    for entry in scored[:top_k]:
        kind = entry["generator"]
        gen = make_generator(kind, width, confirm_vectors)
        raw = match_width(gen.sequence(confirm_vectors), gen.width, width)
        scheduler = PredictedScheduler(
            FaultPredictor(design, kind, bins=bins))
        missed = gate_level_missed(nl, raw, enumerated,
                                   cache=ctx.cache, scheduler=scheduler)
        detected = len(enumerated) - len(missed)
        confirmed.append({
            "generator": kind,
            "vectors": int(confirm_vectors),
            "faults": len(enumerated),
            "detected": detected,
            "missed": len(missed),
            "coverage": detected / max(1, len(enumerated)),
            "analytic_rank": entry["analytic_rank"],
        })
    # Highest confirmed coverage wins; analytic order breaks ties.
    best = max(confirmed,
               key=lambda c: (c["coverage"], -c["analytic_rank"]))
    out["confirmed"] = confirmed
    out["best"] = best["generator"]
    return out
