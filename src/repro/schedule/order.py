"""Batch-ordering policies for the gate-level fault engine.

:func:`repro.gates.fault_parallel.gate_level_missed` accepts any
``(faults, batch_size) -> List[List[int]]`` callable as its
``scheduler``; verdicts scatter back through the index lists, so every
valid schedule is bit-identical in results and only the *order* of
work changes.  Three policies:

``cone``
    PR 4's default: :func:`repro.gates.faults.schedule_fault_batches`
    locality order, first-come batch sequence.
``predicted``
    The same cone-local batches, reordered easiest-first by the
    analytic predictor (:class:`~repro.schedule.predictor.FaultPredictor`)
    — ascending mean predicted detection time — so per-word fault
    dropping compacts early and coverage accumulates front-loaded.
``random``
    The cone batches in a seeded-shuffled order: the control arm that
    ``repro bench --schedule`` measures the predicted ordering against.

All three keep the cone-locality *packing* untouched; they permute
batches, never faults across batches, so the comparison isolates
ordering from cone size.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..gates.faults import EnumeratedFault, schedule_fault_batches
from .predictor import FaultPredictor

__all__ = [
    "DEFAULT_SCHEDULE_SEED",
    "SCHEDULE_MODES",
    "PredictedScheduler",
    "RandomScheduler",
    "make_scheduler",
    "order_sweep_tasks",
]

#: The batch-ordering policies the CLI knobs accept.
SCHEDULE_MODES: Tuple[str, ...] = ("cone", "predicted", "random")

#: Seed of the ``random`` control arm (deterministic in CI).
DEFAULT_SCHEDULE_SEED = 0x5EED


class PredictedScheduler:
    """Cone batches, easiest-first by predicted detection time.

    Called once per iterative-deepening stage with the surviving
    subset; the predictor's memo makes rescoring survivors cheap.
    ``inf`` predicted times (analytically undetectable patterns) sort
    last via a finite sentinel so ``argsort`` stays well-defined.
    """

    def __init__(self, predictor: FaultPredictor):
        self.predictor = predictor

    def __call__(self, faults: Sequence[EnumeratedFault],
                 batch_size: int = 64) -> List[List[int]]:
        batches = schedule_fault_batches(faults, batch_size)
        times = self.predictor.expected_times(faults)
        finite = np.isfinite(times)
        cap = 2.0 * float(times[finite].max()) + 1.0 if finite.any() else 1.0
        scores = np.where(finite, times, cap)
        keys = np.array([float(np.mean(scores[np.asarray(b, dtype=np.int64)]))
                         for b in batches])
        order = np.argsort(keys, kind="stable")
        return [batches[i] for i in order]


class RandomScheduler:
    """Cone batches in a seeded-shuffled order (the control arm).

    The shuffle is keyed on ``(seed, len(faults))`` so each deepening
    stage draws a fresh — but reproducible — permutation.
    """

    def __init__(self, seed: int = DEFAULT_SCHEDULE_SEED):
        self.seed = int(seed)

    def __call__(self, faults: Sequence[EnumeratedFault],
                 batch_size: int = 64) -> List[List[int]]:
        batches = schedule_fault_batches(faults, batch_size)
        rng = np.random.default_rng((self.seed, len(faults)))
        return [batches[i] for i in rng.permutation(len(batches))]


def order_sweep_tasks(designs, tasks, mode: str, *,
                      seed: int = DEFAULT_SCHEDULE_SEED) -> List:
    """Reorder behavioral sweep sessions by schedule policy.

    The session-level analogue of the batch schedulers above:
    ``predicted`` runs the sessions the Eq. 1 compatibility ratio rates
    best first (so early grid lines show the generators the analytic
    model would pick), ``random`` is the seeded control shuffle, and
    ``cone`` keeps the design x generator product order.  ``designs``
    maps design name to :class:`~repro.rtl.build.FilterDesign`;
    ``tasks`` are :class:`~repro.parallel.sweep.SweepTask` rows.
    """
    if mode not in SCHEDULE_MODES:
        raise ReproError(f"unknown schedule mode {mode!r}; "
                         f"valid choices: {', '.join(SCHEDULE_MODES)}")
    tasks = list(tasks)
    if mode == "cone":
        return tasks
    if mode == "random":
        rng = np.random.default_rng((DEFAULT_SCHEDULE_SEED
                                     if seed is None else seed, len(tasks)))
        return [tasks[i] for i in rng.permutation(len(tasks))]

    from ..bist.selection import rank_generators
    from ..resolve import make_generator, resolve_generator

    ratios = {}
    for task in tasks:
        key = (task.design, task.generator)
        if key in ratios:
            continue
        gen = make_generator(resolve_generator(task.generator),
                             task.width, task.n_vectors)
        ratios[key] = float(rank_generators(designs[task.design],
                                            [gen])[0].ratio)
    order = sorted(range(len(tasks)),
                   key=lambda i: -ratios[(tasks[i].design,
                                          tasks[i].generator)])
    return [tasks[i] for i in order]


def make_scheduler(mode: str, *, predictor: FaultPredictor = None,
                   seed: int = DEFAULT_SCHEDULE_SEED):
    """A ``gate_level_missed``-compatible scheduler for ``mode``.

    ``predicted`` requires a :class:`FaultPredictor`; ``cone`` returns
    the stock :func:`~repro.gates.faults.schedule_fault_batches`.
    """
    if mode not in SCHEDULE_MODES:
        raise ReproError(f"unknown schedule mode {mode!r}; "
                         f"valid choices: {', '.join(SCHEDULE_MODES)}")
    if mode == "cone":
        return schedule_fault_batches
    if mode == "random":
        return RandomScheduler(seed)
    if predictor is None:
        raise ReproError("schedule mode 'predicted' needs a FaultPredictor")
    return PredictedScheduler(predictor)
