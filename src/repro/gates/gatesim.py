"""Vectorized gate-level simulation with stuck-at fault injection.

Because the elaborated netlists are feed-forward (FIR datapaths), every
net can be evaluated over the whole time axis at once: a D flip-flop is a
one-sample shift of its input waveform.  Evaluation runs the netlist's
**compiled levelized program** (:mod:`repro.gates.compiled`): per level,
each gate kind's input waveforms are gathered with fancy indexing into a
nets x time boolean matrix and combined with one numpy op — replacing the
historical per-gate Python loop.

This engine is the reproduction's ground truth: slower than the
cell-level coverage engine in :mod:`repro.faultsim.engine`, but it models
fault effect *propagation* exactly, including masking and overflow
wrap-around, so the two are cross-validated against each other in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..telemetry import get_telemetry
from .netlist import GateNetlist

__all__ = ["NetlistFault", "pack_input_bits", "bits_to_raw", "simulate_netlist",
           "netlist_fault_detected"]


@dataclass(frozen=True)
class NetlistFault:
    """A stuck-at fault on one or more netlist lines.

    ``lines`` is either ``("net", net_id)`` — the driver of a net stuck,
    visible to every reader — or ``("pins", ((gate, pin), ...))`` — the
    wire segments into specific gate pins stuck, as for a fanout-branch
    or cell-input-stem fault.
    """

    lines: Tuple[str, object]
    value: int
    label: str = ""


def pack_input_bits(raw: Sequence[int], width: int) -> np.ndarray:
    """Two's-complement raw samples -> boolean matrix of shape (width, T)."""
    arr = np.asarray(raw, dtype=np.int64)
    ks = np.arange(width).reshape(-1, 1)
    return ((arr[None, :] >> ks) & 1).astype(bool)


def bits_to_raw(bits: np.ndarray) -> np.ndarray:
    """Boolean (width, T) matrix -> signed raw samples (MSB is sign)."""
    width = bits.shape[0]
    weights = np.array([1 << k for k in range(width)], dtype=np.int64)
    unsigned = (bits.astype(np.int64).T * weights).sum(axis=1)
    half = 1 << (width - 1)
    return (unsigned + half) % (1 << width) - half


def simulate_netlist(
    nl: GateNetlist,
    input_raw: Sequence[int],
    fault: Optional[NetlistFault] = None,
    observe_nets: Optional[Iterable[int]] = None,
) -> Dict[str, object]:
    """Simulate the netlist over ``input_raw`` samples.

    Returns a dict with ``"output"`` (signed raw output samples) and, when
    ``observe_nets`` is given, ``"nets"`` mapping net id to its waveform.
    """
    raw = np.asarray(input_raw, dtype=np.int64)
    length = len(raw)
    tel = get_telemetry()
    with tel.span("gates.simulate_netlist", gates=len(nl.gates),
                  dffs=len(nl.dffs), vectors=length,
                  faulty=fault is not None) as span:
        result = _simulate_netlist_body(nl, raw, length, fault, observe_nets)
    if tel.enabled:
        evals = len(nl.gates) * length
        tel.counter("gates.simulations").add(1)
        tel.counter("gates.gate_evals").add(evals)
        if span.duration > 0:
            tel.gauge("gates.gate_evals_per_sec").set(evals / span.duration)
    return result


def fault_lines(fault: Optional[NetlistFault]
                ) -> Tuple[Optional[int], Dict[int, List[int]], bool]:
    """Split a fault into (stuck_net, {gate: pins}, stuck_value)."""
    if fault is None:
        return None, {}, False
    stuck_value = bool(fault.value)
    kind, payload = fault.lines
    if kind == "net":
        return int(payload), {}, stuck_value  # type: ignore[arg-type]
    if kind == "pins":
        stuck_pins: Dict[int, List[int]] = {}
        for gate, pin in payload:  # type: ignore[union-attr]
            stuck_pins.setdefault(int(gate), []).append(int(pin))
        return None, stuck_pins, stuck_value
    raise SimulationError(f"unknown fault line kind {kind!r}")


def _simulate_netlist_body(
    nl: GateNetlist,
    raw: np.ndarray,
    length: int,
    fault: Optional[NetlistFault],
    observe_nets: Optional[Iterable[int]],
) -> Dict[str, object]:
    from .compiled import compiled_program, simulate_waves

    prog = compiled_program(nl)
    in_bits = pack_input_bits(raw, len(nl.input_bits))
    stuck_net, stuck_pins, stuck_value = fault_lines(fault)
    values = simulate_waves(prog, in_bits, stuck_net=stuck_net,
                            stuck_pins=stuck_pins, stuck_value=stuck_value)
    result: Dict[str, object] = {
        "output": bits_to_raw(values[prog.output_bits])}
    if observe_nets is not None:
        result["nets"] = {n: values[n] for n in observe_nets}
    return result


def netlist_fault_detected(
    nl: GateNetlist,
    input_raw: Sequence[int],
    fault: NetlistFault,
    golden: Optional[np.ndarray] = None,
) -> bool:
    """True when the faulty output sequence differs from the fault-free one.

    This is the paper's detection criterion with an alias-free response
    analyzer: any output difference over the test session is caught.
    """
    if golden is None:
        golden = simulate_netlist(nl, input_raw)["output"]
    faulty = simulate_netlist(nl, input_raw, fault=fault)["output"]
    return bool(np.any(faulty != golden))
