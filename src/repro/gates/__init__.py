"""Gate-level substrate: cell fault dictionaries, netlist elaboration and
the exact parallel-pattern fault-injection simulator."""

from .cells import CellFault, CellVariant, VARIANT_KINDS, cell_variant, variant_for_bit
from .netlist import Dff, Gate, GateNetlist, GateRef, elaborate
from .gatesim import (
    NetlistFault,
    bits_to_raw,
    netlist_fault_detected,
    pack_input_bits,
    simulate_netlist,
)
from .compiled import CompiledNetlist, compile_netlist, compiled_program
from .faults import (
    EnumeratedFault,
    enumerate_cell_faults,
    gate_level_fault_simulation,
    schedule_fault_batches,
)
from .fault_parallel import (
    DEFAULT_CHUNK,
    DEFAULT_ENGINE,
    DEFAULT_WORDS,
    ENGINES,
    fault_parallel_detect,
    fault_parallel_grade,
    fault_parallel_reference,
    gate_level_missed,
    gate_level_missed_reference,
    resolve_engine,
)
from .eventsim import (
    EventCone,
    FusedProgram,
    fuse_program,
    fused_program,
    recipe_truth_table,
)
from .verilog import generate_testbench, netlist_to_verilog, save_verilog

__all__ = [
    "CellFault",
    "CellVariant",
    "VARIANT_KINDS",
    "cell_variant",
    "variant_for_bit",
    "GateNetlist",
    "Gate",
    "Dff",
    "GateRef",
    "elaborate",
    "NetlistFault",
    "simulate_netlist",
    "netlist_fault_detected",
    "pack_input_bits",
    "bits_to_raw",
    "CompiledNetlist",
    "compile_netlist",
    "compiled_program",
    "DEFAULT_CHUNK",
    "DEFAULT_ENGINE",
    "DEFAULT_WORDS",
    "ENGINES",
    "EventCone",
    "FusedProgram",
    "fuse_program",
    "fused_program",
    "recipe_truth_table",
    "resolve_engine",
    "EnumeratedFault",
    "enumerate_cell_faults",
    "gate_level_fault_simulation",
    "schedule_fault_batches",
    "fault_parallel_detect",
    "fault_parallel_grade",
    "fault_parallel_reference",
    "gate_level_missed",
    "gate_level_missed_reference",
    "netlist_to_verilog",
    "generate_testbench",
    "save_verilog",
]
