"""Gate-level substrate: cell fault dictionaries, netlist elaboration and
the exact parallel-pattern fault-injection simulator."""

from .cells import CellFault, CellVariant, VARIANT_KINDS, cell_variant, variant_for_bit
from .netlist import Dff, Gate, GateNetlist, GateRef, elaborate
from .gatesim import (
    NetlistFault,
    bits_to_raw,
    netlist_fault_detected,
    pack_input_bits,
    simulate_netlist,
)
from .faults import EnumeratedFault, enumerate_cell_faults, gate_level_fault_simulation
from .fault_parallel import fault_parallel_detect, gate_level_missed
from .verilog import generate_testbench, netlist_to_verilog, save_verilog

__all__ = [
    "CellFault",
    "CellVariant",
    "VARIANT_KINDS",
    "cell_variant",
    "variant_for_bit",
    "GateNetlist",
    "Gate",
    "Dff",
    "GateRef",
    "elaborate",
    "NetlistFault",
    "simulate_netlist",
    "netlist_fault_detected",
    "pack_input_bits",
    "bits_to_raw",
    "EnumeratedFault",
    "enumerate_cell_faults",
    "gate_level_fault_simulation",
    "fault_parallel_detect",
    "gate_level_missed",
    "netlist_to_verilog",
    "generate_testbench",
    "save_verilog",
]
