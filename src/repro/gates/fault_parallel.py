"""Fault-parallel exact gate-level fault simulation.

The serial injector in :mod:`repro.gates.faults` re-simulates the whole
netlist once per fault — fine for spot checks, hopeless for a Table 1
design's ~60k faults.  This engine packs **64 faulty circuit copies into
each machine word**: every net's waveform is a ``uint64`` array, bit
``j`` of each word belonging to copy ``j`` of the batch, and stuck-at
faults become per-line set/clear masks — so one pass grades 64 faults
bit-exactly, and the full universe costs ``ceil(F / 64)`` passes.

Three composable optimizations make each pass cheap while keeping every
verdict bit-identical to the straightforward whole-netlist evaluation
(retained below as :func:`fault_parallel_reference` /
:func:`gate_level_missed_reference`, the oracle of the randomized
equivalence suite and the baseline of ``repro bench --gates``):

* **compiled evaluation** — the netlist is lowered once to a levelized
  structure-of-arrays program (:mod:`repro.gates.compiled`), the golden
  machine is simulated once recording every net's waveform, and up to
  :data:`DEFAULT_WORDS` 64-fault words are evaluated side by side so
  each numpy call is amortized over hundreds of faulty machines — the
  decisive lever on deeply-levelized ripple-carry datapaths;
* **cone restriction** — each batch evaluates only the transitive
  fanout cone of its fault sites, reading golden waveforms at the cone
  boundary (:class:`~repro.gates.compiled.BatchCone`); the cone-aware
  scheduler (:func:`repro.gates.faults.schedule_fault_batches`) packs
  cone-local faults into the same batch to keep cones small;
* **chunked time with fault dropping** — the cone is evaluated in time
  chunks (:data:`DEFAULT_CHUNK` vectors), per-word detection words
  accumulate after each chunk, fully-detected words are compacted away
  (:meth:`~repro.gates.compiled.BatchCone.compact`), and a batch stops
  early once every lane is detected — which the paper's own coverage
  curves say happens within the first few hundred vectors for >99% of
  faults.

Cone sizes, skipped chunks and dropped faults surface as the telemetry
counters ``gates.cone_nets``, ``gates.chunks_skipped`` and
``gates.faults_dropped`` (see ``repro profile --exact``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..telemetry import get_telemetry
from .compiled import (
    BatchCone,
    CompiledNetlist,
    ConeWorkspace,
    compiled_program,
    expand_lane_waves,
    golden_net_waves,
)
from .faults import EnumeratedFault, schedule_fault_batches
from .gatesim import NetlistFault, pack_input_bits
from .netlist import GateNetlist

__all__ = [
    "DEFAULT_CHUNK",
    "DEFAULT_ENGINE",
    "DEFAULT_WORDS",
    "ENGINES",
    "fault_parallel_detect",
    "fault_parallel_grade",
    "fault_parallel_reference",
    "gate_level_missed",
    "gate_level_missed_reference",
    "resolve_engine",
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Time-chunk length (vectors) for the chunked batch evaluator.
DEFAULT_CHUNK = 512

#: 64-fault words evaluated side by side per cone pass.
DEFAULT_WORDS = 8

#: First-deepening-stage word width for the event engine.  The event
#: evaluator's per-chunk cost is dominated by fixed per-op Python
#: overhead while the stage-1 prefix is short, so packing 4x more
#: faults per cone pass cuts the pass count (and cone construction)
#: almost linearly; later stages keep :data:`DEFAULT_WORDS` so the
#: per-net buffers stay small at full stimulus length.  Verdicts and
#: chunk-end detection times are batch-size independent, so widening
#: one stage cannot change a result.
EVENT_STAGE1_WORDS = 32

#: Selectable engine tiers, fastest first: ``event`` is the
#: event-driven frontier evaluator over fused LUT super-gates
#: (:mod:`repro.gates.eventsim`), ``word`` the dense word-widened cone
#: engine (:class:`~repro.gates.compiled.BatchCone`), ``reference`` the
#: pre-optimization whole-netlist oracle.  All three produce
#: bit-identical verdicts; ``event`` and ``word`` additionally share
#: chunk-end detection times.
ENGINES = ("event", "word", "reference")

#: Engine used when callers pass ``engine=None``.
DEFAULT_ENGINE = "event"


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an ``engine=`` knob value, defaulting and validating."""
    name = DEFAULT_ENGINE if engine is None else str(engine)
    if name not in ENGINES:
        raise SimulationError(
            f"unknown gate engine {name!r}; choose from "
            f"{', '.join(ENGINES)}")
    return name


def _line_masks(
    faults: Sequence[NetlistFault],
    words: int = 1,
) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray]],
           Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]]:
    """Per-line (set, clear) lane-mask words for up to ``64 * words`` faults.

    Fault ``j`` becomes bit ``j % 64`` of word ``j // 64``; masks are
    ``(words,)`` uint64 arrays.
    """
    net_masks: Dict[int, np.ndarray] = {}
    pin_masks: Dict[Tuple[int, int], np.ndarray] = {}

    def _mark(table, key, word, bit, is_set):
        entry = table.get(key)
        if entry is None:
            entry = table[key] = np.zeros((2, words), dtype=np.uint64)
        entry[0 if is_set else 1, word] |= bit

    for j, fault in enumerate(faults):
        word, bit = j // 64, np.uint64(1 << (j % 64))
        kind, payload = fault.lines
        if kind == "net":
            _mark(net_masks, int(payload), word, bit, fault.value)
        elif kind == "pins":
            for gate, pin in payload:
                _mark(pin_masks, (int(gate), int(pin)), word, bit,
                      fault.value)
        else:
            raise SimulationError(f"unknown fault line kind {kind!r}")
    return (
        {k: (v[0], v[1]) for k, v in net_masks.items()},
        {k: (v[0], v[1]) for k, v in pin_masks.items()},
    )


def _grade_cone_batch(
    prog: CompiledNetlist,
    lane_waves: np.ndarray,
    faults: Sequence[NetlistFault],
    chunk: int,
    ws: ConeWorkspace,
    length: Optional[int] = None,
    first_detect: Optional[np.ndarray] = None,
    engine: str = "word",
    dense_hint: Optional[bool] = None,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Verdicts + drop statistics for one multi-word cone pass.

    ``engine`` picks the cone evaluator: ``"word"`` builds the dense
    :class:`BatchCone`, ``"event"`` the frontier-driven
    :class:`~repro.gates.eventsim.EventCone` over the fused super-gate
    program.  Both share this driver — chunking, deepening prefix,
    per-word dropping and chunk-end detection-time capture are
    identical, so verdicts and times are bit-identical across engines.

    ``length`` grades only the stimulus prefix ``[0, length)`` — the
    building block of the iterative-deepening driver; detection over a
    prefix is exact for that prefix.

    ``first_detect`` (an ``int64`` array aligned with ``faults``, filled
    with ``-1``) optionally receives each detected fault's first
    detection time at chunk-end granularity: the end, in vectors, of the
    chunk in which its faulty waveform first diverged.  Because every
    pass grades from ``t=0`` the times are independent of batch
    composition and schedule — the "actual" axis of the predicted-vs-
    actual rank correlation in ``repro bench --schedule``.
    """
    n = len(faults)
    words = -(-n // 64)
    if length is None:
        length = lane_waves.shape[1]
    chunk = min(chunk, length) if length else 1
    net_masks, pin_masks = _line_masks(faults, words)
    if engine == "event":
        from .eventsim import EventCone, fused_program

        cone = EventCone(fused_program(prog), net_masks, pin_masks, words)
        # The driver knows whether this pass grades an all-fresh fault
        # population (first deepening stage: frontier provably wide,
        # start dense) or deepening survivors (start sparse).
        if dense_hint is not None:
            cone.dense_hint = dense_hint
    else:
        cone = BatchCone(prog, net_masks, pin_masks, words)
    if engine == "event":
        # The event cone reads golden lazily straight from the full
        # (contiguous) matrix; per-chunk slices stay within [0, length).
        cone.bind_golden(ws, lane_waves, length)
    else:
        # Bind only the graded stimulus window: a deepening-prefix pass
        # reads golden rows in [0, length) alone, and gathering the full
        # waveform length would dominate short-prefix stages.
        cone.bind_golden(ws, lane_waves if length >= lane_waves.shape[1]
                         else lane_waves[:, :length])

    full = np.full(words, _ALL_ONES, dtype=np.uint64)
    tail = n - 64 * (words - 1)
    if tail < 64:
        full[-1] = np.uint64((1 << tail) - 1)
    lanes_of = np.full(words, 64, dtype=np.int64)
    lanes_of[-1] = tail

    detected = np.zeros(words, dtype=np.uint64)
    active = np.arange(words)
    skipped = dropped = work = 0
    lanes64 = np.arange(64, dtype=np.uint64)
    # Wide passes (the widened first deepening stage) evaluate in fine
    # sub-chunk steps so fully-detected words compact away *within* the
    # canonical chunk: on a short prefix most faults are caught inside
    # the first few dozen vectors, after which the remaining columns
    # run over a handful of words instead of all of them.  Steps never
    # cross a canonical chunk boundary and detection times are rounded
    # up to it, so verdicts and times are independent of the stepping.
    fine = max(32, chunk // 4)
    t0 = 0
    while length and t0 < length:
        bnd = (t0 // chunk + 1) * chunk
        t1 = min(t0 + (fine if active.size >= 16 else chunk), bnd,
                 length)
        work += int(lanes_of[active].sum()) * (t1 - t0)
        hits = cone.evaluate_chunk(ws, t0, t1)
        if first_detect is not None:
            fresh = hits & ~detected[active]
            if fresh.any():
                bits = ((fresh[:, None] >> lanes64[None, :])
                        & np.uint64(1)).astype(bool)
                rows = (active[:, None] * 64
                        + np.arange(64)[None, :])[bits]
                first_detect[rows[rows < n]] = min(bnd, length)
        detected[active] |= hits
        done = detected[active] == full[active]
        if t1 == length:
            break
        if done.any():
            skipped += -(-(length - t1) // chunk) * int(done.sum())
            dropped += int(lanes_of[active[done]].sum())
            if done.all():
                break
            cone.compact(~done)
            active = active[~done]
        t0 = t1
    stats = {
        "cone_nets": cone.cone_nets,
        "chunks_skipped": skipped,
        "faults_dropped": dropped,
        "work": work,
        "frontier_nets": int(getattr(cone, "frontier_rows", 0)),
        "words_skipped": int(getattr(cone, "words_skipped", 0)),
    }
    lanes = np.arange(64, dtype=np.uint64)
    bits = ((detected[:, None] >> lanes[None, :]) & np.uint64(1))
    return bits.astype(bool).ravel()[:n], stats


def _deepening_schedule(length: int, chunk: int,
                        growth: int = 8) -> List[int]:
    """Prefix lengths for iterative-deepening fault grading.

    Detection is monotone in the stimulus prefix — a faulty output that
    differs anywhere in ``[0, T1)`` differs in ``[0, T)`` for any
    ``T >= T1`` — so the easy majority of faults can be finalized on a
    short prefix and only the survivors re-graded (from t=0, no state
    carrying) on geometrically longer ones.  The last stage is always
    the full length, which keeps every verdict bit-exact.
    """
    stages: List[int] = []
    t = max(64, chunk // 4)
    while t < length:
        stages.append(t)
        t *= growth
    stages.append(length)
    return stages


def _emit_batch_stats(tel, n_faults: int, stats: Dict[str, int]) -> None:
    tel.counter("gates.fault_batches").add(1)
    tel.counter("gates.faults_graded").add(n_faults)
    tel.counter("gates.cone_nets").add(stats["cone_nets"])
    tel.counter("gates.lane_vectors").add(stats["work"])
    if stats["chunks_skipped"]:
        tel.counter("gates.chunks_skipped").add(stats["chunks_skipped"])
    if stats["faults_dropped"]:
        tel.counter("gates.faults_dropped").add(stats["faults_dropped"])
    if stats.get("frontier_nets"):
        tel.counter("gates.frontier_nets").add(stats["frontier_nets"])
    if stats.get("words_skipped"):
        tel.counter("gates.words_skipped").add(stats["words_skipped"])


def fault_parallel_detect(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[NetlistFault],
    golden: Optional[np.ndarray] = None,
    *,
    program: Optional[CompiledNetlist] = None,
    net_waves: Optional[np.ndarray] = None,
    chunk: Optional[int] = None,
    engine: Optional[str] = None,
) -> np.ndarray:
    """Exact detection verdicts for up to 64 faults in one pass.

    Returns a boolean array aligned with ``faults``: True when the faulty
    copy's output sequence differs from the fault-free one anywhere
    (the alias-free response-analyzer criterion).

    ``golden`` (the fault-free *output* sequence) is accepted for
    backward compatibility but no longer needed: detection reads the
    golden per-net waveform matrix, which callers grading many batches
    should precompute once and pass as ``net_waves`` (with the compiled
    ``program``) to amortize the single golden simulation.
    """
    if len(faults) > 64:
        raise SimulationError("at most 64 faults per batch")
    return fault_parallel_grade(nl, input_raw, faults, program=program,
                                net_waves=net_waves, chunk=chunk,
                                engine=engine)


def fault_parallel_grade(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[NetlistFault],
    *,
    program: Optional[CompiledNetlist] = None,
    net_waves: Optional[np.ndarray] = None,
    chunk: Optional[int] = None,
    words: Optional[int] = None,
    workspace: Optional[ConeWorkspace] = None,
    engine: Optional[str] = None,
) -> np.ndarray:
    """Exact detection verdicts for arbitrarily many faults.

    Faults are graded ``64 * words`` at a time (one cone pass per
    group); pass pre-scheduled faults (see
    :func:`repro.gates.faults.schedule_fault_batches`) to keep each
    pass's cone small.  Verdicts align with ``faults``.  ``engine``
    selects the cone evaluator tier (:data:`ENGINES`); the
    ``reference`` tier is only reachable through
    :func:`gate_level_missed` / :func:`fault_parallel_reference`.
    """
    tel = get_telemetry()
    engine = resolve_engine(engine)
    if engine == "reference":
        raise SimulationError(
            "fault_parallel_grade has no reference tier; use "
            "fault_parallel_reference")
    prog = program if program is not None else compiled_program(nl)
    if net_waves is None:
        raw = np.asarray(input_raw, dtype=np.int64)
        net_waves = golden_net_waves(
            prog, pack_input_bits(raw, len(nl.input_bits)))
    lane_waves = expand_lane_waves(net_waves)
    chunk_len = DEFAULT_CHUNK if chunk is None else max(1, int(chunk))
    auto_words = words is None
    words = DEFAULT_WORDS if words is None else max(1, int(words))
    ws = workspace if workspace is not None else ConeWorkspace()

    faults = list(faults)
    verdicts = np.zeros(len(faults), dtype=bool)
    # Same iterative-deepening strategy as gate_level_missed: finalize
    # the easy majority on a short prefix, regrade survivors (packed
    # densely, preserving the caller's locality order) on longer ones.
    remaining = np.arange(len(faults))
    stages = _deepening_schedule(lane_waves.shape[1], chunk_len)
    for stage_len in stages:
        stage_words = (EVENT_STAGE1_WORDS
                       if auto_words and engine == "event"
                       and stage_len == stages[0] else words)
        span_size = 64 * stage_words
        for start in range(0, remaining.size, span_size):
            idx = remaining[start:start + span_size]
            batch = [faults[i] for i in idx]
            with tel.span("gates.fault_batch", faults=len(batch),
                          prefix=stage_len):
                batch_verdicts, stats = _grade_cone_batch(
                    prog, lane_waves, batch, chunk_len, ws,
                    length=stage_len, engine=engine, dense_hint=True)
            verdicts[idx] = batch_verdicts
            if tel.enabled:
                _emit_batch_stats(tel, len(batch), stats)
        if stage_len == lane_waves.shape[1]:
            break
        remaining = remaining[~verdicts[remaining]]
        if not remaining.size:
            break
    return verdicts


def gate_level_missed(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[EnumeratedFault],
    progress: Optional[Callable[[int, int], None]] = None,
    *,
    cache=None,
    chunk: Optional[int] = None,
    words: Optional[int] = None,
    scheduler: Optional[Callable[[Sequence[EnumeratedFault], int],
                                 List[List[int]]]] = None,
    on_batch: Optional[Callable[[Dict[str, int]], None]] = None,
    detect_times: Optional[np.ndarray] = None,
    deepening: bool = True,
    engine: Optional[str] = None,
    program: Optional[CompiledNetlist] = None,
    net_waves: Optional[np.ndarray] = None,
) -> List[EnumeratedFault]:
    """Exact gate-level missed-fault list over an arbitrary universe.

    Faults are grouped into cone-local batches
    (:func:`repro.gates.faults.schedule_fault_batches`) of
    ``64 * words`` and graded by the cone engine; the returned list
    preserves the input fault order, so results are deterministic
    regardless of scheduling.  ``progress`` ticks once per 64 graded
    faults, matching the historical batch granularity.

    Pass an :class:`~repro.cache.ArtifactCache` as ``cache`` to persist
    (and reuse) the compiled program and the golden per-net waveforms,
    keyed on netlist + stimulus content.

    ``scheduler`` swaps the batch-ordering policy: a callable with the
    :func:`~repro.gates.faults.schedule_fault_batches` signature
    (``(faults, batch_size) -> List[List[int]]``, index lists covering
    every fault exactly once).  Verdicts are scattered back by index, so
    any valid schedule yields bit-identical results — the property
    ``repro bench --schedule`` asserts while measuring how much sooner a
    predictor-guided order reaches 90% coverage (see
    :mod:`repro.schedule`).

    ``on_batch`` is invoked after every graded batch with a dict of
    ``faults``/``prefix``/``work``/``dropped``/``detected``/
    ``finalized`` — ``work`` being the exact active-lane × vector
    products evaluated, the schedule benchmark's work unit.

    ``detect_times`` (an ``int64`` array aligned with ``faults``, filled
    with ``-1``) receives each detected fault's first detection time at
    chunk-end granularity; undetected faults keep ``-1``.

    ``deepening=False`` grades every batch at the full stimulus length
    in one stage (per-word dropping still compacts within each batch).
    The schedule benchmark uses this to isolate batch *ordering* as the
    only easy-first mechanism; production callers should leave
    deepening on.

    ``engine`` selects the evaluator tier (:data:`ENGINES`, default
    :data:`DEFAULT_ENGINE`).  ``"event"`` and ``"word"`` share this
    driver and are bit-identical in verdicts *and* detection times;
    ``"reference"`` delegates to :func:`gate_level_missed_reference`
    (verdict-identical, but it predates the hooks below and rejects
    them).

    ``program``/``net_waves`` accept a pre-compiled program and a
    pre-simulated golden per-net waveform matrix, skipping the
    corresponding pipeline stages here.  ``repro bench --gates`` uses
    this to time the compile/golden/grade phases separately.
    """
    tel = get_telemetry()
    engine = resolve_engine(engine)
    if engine == "reference":
        if (scheduler is not None or on_batch is not None
                or detect_times is not None or program is not None
                or net_waves is not None):
            raise SimulationError(
                "engine='reference' supports none of scheduler=/"
                "on_batch=/detect_times=/program=/net_waves=")
        return gate_level_missed_reference(nl, input_raw, faults,
                                           progress)
    plan_batches = (schedule_fault_batches if scheduler is None
                    else scheduler)
    raw = np.asarray(input_raw, dtype=np.int64)
    auto_words = words is None
    n_words = DEFAULT_WORDS if words is None else max(1, int(words))
    with tel.span("gates.fault_parallel", faults=len(faults),
                  vectors=len(raw)) as span:
        from ..cache.pipeline import cached_gate_program, cached_net_waves

        prog = (program if program is not None
                else cached_gate_program(cache, nl,
                                         lambda: compiled_program(nl)))
        if net_waves is None:
            net_waves = cached_net_waves(
                cache, nl, raw,
                lambda: golden_net_waves(
                    prog, pack_input_bits(raw, len(nl.input_bits))))

        lane_waves = expand_lane_waves(net_waves)
        if engine == "event" and tel.enabled:
            from .eventsim import fused_program

            tel.counter("gates.lut_fused_levels").add(
                fused_program(prog).stats["levels_fused"])
        chunk_len = DEFAULT_CHUNK if chunk is None else max(1, int(chunk))
        chunk_len = min(chunk_len, max(len(raw), 1))
        ws = ConeWorkspace()
        n_faults = len(faults)
        verdicts = np.zeros(n_faults, dtype=bool)
        # Iterative deepening: every fault is graded on a short stimulus
        # prefix first; detected faults are final (detection is monotone
        # in the prefix), survivors are repacked into fresh dense
        # batches and re-graded on geometrically longer prefixes, the
        # last being the full sequence — so the hard tail of each batch
        # never drags a full-length cone evaluation along with it.
        remaining = np.arange(n_faults)
        finalized = emitted = dropped = 0
        stages = (_deepening_schedule(len(raw), chunk_len) if deepening
                  else [len(raw)])
        for stage_len in stages:
            final = stage_len == len(raw)
            stage_words = (EVENT_STAGE1_WORDS
                           if auto_words and engine == "event"
                           and stage_len == stages[0] else n_words)
            subset = [faults[i] for i in remaining]
            for batch in plan_batches(subset, 64 * stage_words):
                idx = remaining[np.asarray(batch, dtype=np.int64)]
                first_detect = (np.full(len(batch), -1, dtype=np.int64)
                                if detect_times is not None else None)
                with tel.span("gates.fault_batch", faults=len(batch),
                              prefix=stage_len):
                    batch_verdicts, stats = _grade_cone_batch(
                        prog, lane_waves,
                        [faults[i].netlist_fault for i in idx],
                        chunk_len, ws, length=stage_len,
                        first_detect=first_detect, engine=engine,
                        dense_hint=True)
                verdicts[idx] = batch_verdicts
                if first_detect is not None:
                    hit = first_detect >= 0
                    detect_times[idx[hit]] = first_detect[hit]
                dropped += stats["faults_dropped"]
                if tel.enabled:
                    _emit_batch_stats(tel, len(batch), stats)
                finalized += (len(batch) if final
                              else int(batch_verdicts.sum()))
                if on_batch is not None:
                    on_batch({
                        "faults": len(batch),
                        "prefix": stage_len,
                        "work": stats["work"],
                        "dropped": stats["faults_dropped"],
                        "detected": int(verdicts.sum()),
                        "finalized": finalized,
                    })
                if tel.enabled:
                    tel.progress(
                        "gates.grade", finalized, n_faults,
                        detected=int(verdicts.sum()),
                        coverage=float(verdicts.sum()) / max(1, n_faults),
                        dropped=dropped, prefix=stage_len)
                while progress is not None and (emitted + 1) * 64 <= finalized:
                    emitted += 1
                    progress(emitted * 64, n_faults)
            if final:
                break
            remaining = remaining[~verdicts[remaining]]
            if not remaining.size:
                break
        if progress is not None and emitted * 64 < n_faults:
            progress(n_faults, n_faults)
        missed = [f for f, hit in zip(faults, verdicts) if not hit]
    if tel.enabled and span.duration > 0:
        tel.gauge("gates.faults_per_sec").set(len(faults) / span.duration)
    return missed


# ----------------------------------------------------------------------
# Reference engine (pre-optimization): whole netlist, whole time axis
# ----------------------------------------------------------------------
def fault_parallel_reference(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[NetlistFault],
    golden: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The straightforward fault-parallel pass: every net, every vector.

    Kept as the bit-exactness oracle for the cone-restricted engine (the
    randomized equivalence suite asserts verdict-for-verdict identity)
    and as the baseline ``repro bench --gates`` measures speedup against.
    """
    if len(faults) > 64:
        raise SimulationError("at most 64 faults per batch")
    raw = np.asarray(input_raw, dtype=np.int64)
    length = len(raw)
    word_net_masks, word_pin_masks = _line_masks(faults)
    net_masks = {net: (np.uint64(s[0]), np.uint64(c[0]))
                 for net, (s, c) in word_net_masks.items()}
    pin_masks = {key: (np.uint64(s[0]), np.uint64(c[0]))
                 for key, (s, c) in word_pin_masks.items()}

    # Reference-count nets so waveforms are freed after their last reader.
    reads: Dict[int, int] = {}
    for gate in nl.gates:
        for net in gate.ins:
            reads[net] = reads.get(net, 0) + 1
    for dff in nl.dffs:
        reads[dff.d] = reads.get(dff.d, 0) + 1
    for net in nl.output_bits:
        reads[net] = reads.get(net, 0) + 1

    values: Dict[int, np.ndarray] = {}

    def write(net: int, wave: np.ndarray) -> None:
        if net in net_masks:
            s, c = net_masks[net]
            wave = (wave | s) & ~c
        values[net] = wave

    def read(net: int) -> np.ndarray:
        wave = values[net]
        reads[net] -= 1
        if reads[net] == 0:
            del values[net]
        return wave

    zero = np.zeros(length, dtype=np.uint64)
    ones = np.full(length, _ALL_ONES, dtype=np.uint64)
    write(nl.CONST0, zero)
    write(nl.CONST1, ones)
    for j, net in enumerate(nl.input_bits):
        bits = ((raw >> j) & 1).astype(bool)
        write(net, np.where(bits, _ALL_ONES, np.uint64(0)))

    # Constants and inputs may have zero registered reads (unused nets);
    # guard the refcount so `read` is never called on them implicitly.
    for elem_kind, idx in nl.elements:
        if elem_kind == "gate":
            gate = nl.gates[idx]
            ins = []
            for pin, net in enumerate(gate.ins):
                wave = read(net)
                key = (idx, pin)
                if key in pin_masks:
                    s, c = pin_masks[key]
                    wave = (wave | s) & ~c
                ins.append(wave)
            if gate.kind == "xor":
                out = ins[0] ^ ins[1]
            elif gate.kind == "and":
                out = ins[0] & ins[1]
            elif gate.kind == "or":
                out = ins[0] | ins[1]
            elif gate.kind == "not":
                out = ~ins[0]
            elif gate.kind == "buf":
                out = ins[0]
            else:  # pragma: no cover - elaboration only emits these kinds
                raise SimulationError(f"unknown gate kind {gate.kind!r}")
            write(gate.out, out)
        else:
            dff = nl.dffs[idx]
            d = read(dff.d)
            q = np.empty_like(d)
            q[0] = 0
            q[1:] = d[:-1]
            write(dff.q, q)

    # Compare each copy's outputs against the fault-free machine.
    if golden is None:
        from .gatesim import simulate_netlist

        golden = simulate_netlist(nl, raw)["output"]
    detected = np.uint64(0)
    for j, net in enumerate(nl.output_bits):
        good = ((golden >> j) & 1).astype(bool)
        good_wave = np.where(good, _ALL_ONES, np.uint64(0))
        detected |= np.bitwise_or.reduce(read(net) ^ good_wave)
    # Unpack the detected word: bit j of `detected` is copy j's verdict.
    lanes = np.arange(len(faults), dtype=np.uint64)
    return ((detected >> lanes) & np.uint64(1)).astype(bool)


def gate_level_missed_reference(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[EnumeratedFault],
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[EnumeratedFault]:
    """Pre-optimization missed-fault list: plain 64-fault slices.

    Grades the whole netlist over the whole time axis per batch; the
    equivalence oracle and benchmark baseline for
    :func:`gate_level_missed`.
    """
    from .gatesim import simulate_netlist

    golden = simulate_netlist(nl, input_raw)["output"]
    missed: List[EnumeratedFault] = []
    for start in range(0, len(faults), 64):
        batch = faults[start:start + 64]
        verdicts = fault_parallel_reference(
            nl, input_raw, [f.netlist_fault for f in batch], golden=golden)
        for fault, hit in zip(batch, verdicts):
            if not hit:
                missed.append(fault)
        if progress is not None:
            progress(min(start + 64, len(faults)), len(faults))
    return missed
