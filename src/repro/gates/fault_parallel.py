"""Fault-parallel exact gate-level fault simulation.

The serial injector in :mod:`repro.gates.faults` re-simulates the whole
netlist once per fault — fine for spot checks, hopeless for a Table 1
design's ~60k faults.  This engine packs **64 faulty circuit copies into
each machine word**: every net's waveform is a ``uint64`` array over the
whole (feed-forward) time axis, bit ``j`` of each word belonging to copy
``j`` of the batch.  Gates evaluate bitwise on whole waveforms, D
flip-flops shift the time axis, and stuck-at faults become per-line
set/clear masks — so one topological pass grades 64 faults bit-exactly,
and the full universe costs ``ceil(F / 64)`` passes.

This is the classic parallel fault simulation idea (single stuck fault
per bit position) adapted to vectorized whole-axis evaluation, and it is
what makes *exact* gate-level cross-validation of the fast cell-level
engine feasible at design scale (see ``bench_gate_crossval.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..telemetry import get_telemetry
from .faults import EnumeratedFault
from .gatesim import NetlistFault
from .netlist import GateNetlist

__all__ = ["fault_parallel_detect", "gate_level_missed"]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _line_masks(
    faults: Sequence[NetlistFault],
) -> Tuple[Dict[int, Tuple[int, int]], Dict[Tuple[int, int], Tuple[int, int]]]:
    """Per-line (set_mask, clear_mask) for one batch of <= 64 faults."""
    net_masks: Dict[int, List[int]] = {}
    pin_masks: Dict[Tuple[int, int], List[int]] = {}
    for j, fault in enumerate(faults):
        bit = 1 << j
        kind, payload = fault.lines
        if kind == "net":
            entry = net_masks.setdefault(int(payload), [0, 0])
        elif kind == "pins":
            for gate, pin in payload:
                entry = pin_masks.setdefault((int(gate), int(pin)), [0, 0])
                entry[0 if fault.value else 1] |= bit
            continue
        else:
            raise SimulationError(f"unknown fault line kind {kind!r}")
        entry[0 if fault.value else 1] |= bit
    return (
        {k: (v[0], v[1]) for k, v in net_masks.items()},
        {k: (v[0], v[1]) for k, v in pin_masks.items()},
    )


def fault_parallel_detect(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[NetlistFault],
    golden: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact detection verdicts for up to 64 faults in one pass.

    Returns a boolean array aligned with ``faults``: True when the faulty
    copy's output sequence differs from the fault-free one anywhere
    (the alias-free response-analyzer criterion).  Pass the fault-free
    output sequence as ``golden`` to avoid recomputing it per batch.
    """
    tel = get_telemetry()
    with tel.span("gates.fault_batch", faults=len(faults)):
        verdicts = _fault_parallel_body(nl, input_raw, faults, golden)
    if tel.enabled:
        tel.counter("gates.fault_batches").add(1)
        tel.counter("gates.faults_graded").add(len(faults))
    return verdicts


def _fault_parallel_body(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[NetlistFault],
    golden: Optional[np.ndarray] = None,
) -> np.ndarray:
    if len(faults) > 64:
        raise SimulationError("at most 64 faults per batch")
    raw = np.asarray(input_raw, dtype=np.int64)
    length = len(raw)
    net_masks, pin_masks = _line_masks(faults)
    set_arr = {net: np.uint64(s) for net, (s, c) in net_masks.items()}
    clr_arr = {net: np.uint64(c) for net, (s, c) in net_masks.items()}

    # Reference-count nets so waveforms are freed after their last reader.
    reads: Dict[int, int] = {}
    for gate in nl.gates:
        for net in gate.ins:
            reads[net] = reads.get(net, 0) + 1
    for dff in nl.dffs:
        reads[dff.d] = reads.get(dff.d, 0) + 1
    for net in nl.output_bits:
        reads[net] = reads.get(net, 0) + 1

    values: Dict[int, np.ndarray] = {}

    def write(net: int, wave: np.ndarray) -> None:
        if net in net_masks:
            s, c = set_arr[net], clr_arr[net]
            wave = (wave | s) & ~c
        values[net] = wave

    def read(net: int) -> np.ndarray:
        wave = values[net]
        reads[net] -= 1
        if reads[net] == 0:
            del values[net]
        return wave

    zero = np.zeros(length, dtype=np.uint64)
    ones = np.full(length, _ALL_ONES, dtype=np.uint64)
    write(nl.CONST0, zero)
    write(nl.CONST1, ones)
    good_bits: Dict[int, np.ndarray] = {}
    for j, net in enumerate(nl.input_bits):
        bits = ((raw >> j) & 1).astype(bool)
        wave = np.where(bits, _ALL_ONES, np.uint64(0))
        good_bits[net] = bits
        write(net, wave)

    # Constants and inputs may have zero registered reads (unused nets);
    # guard the refcount so `read` is never called on them implicitly.
    for elem_kind, idx in nl.elements:
        if elem_kind == "gate":
            gate = nl.gates[idx]
            ins = []
            for pin, net in enumerate(gate.ins):
                wave = read(net)
                key = (idx, pin)
                if key in pin_masks:
                    s, c = pin_masks[key]
                    wave = (wave | np.uint64(s)) & ~np.uint64(c)
                ins.append(wave)
            if gate.kind == "xor":
                out = ins[0] ^ ins[1]
            elif gate.kind == "and":
                out = ins[0] & ins[1]
            elif gate.kind == "or":
                out = ins[0] | ins[1]
            elif gate.kind == "not":
                out = ~ins[0]
            elif gate.kind == "buf":
                out = ins[0]
            else:  # pragma: no cover - elaboration only emits these kinds
                raise SimulationError(f"unknown gate kind {gate.kind!r}")
            write(gate.out, out)
        else:
            dff = nl.dffs[idx]
            d = read(dff.d)
            q = np.empty_like(d)
            q[0] = 0
            q[1:] = d[:-1]
            write(dff.q, q)

    # Compare each copy's outputs against the fault-free machine.
    if golden is None:
        from .gatesim import simulate_netlist

        golden = simulate_netlist(nl, raw)["output"]
    detected = np.uint64(0)
    for j, net in enumerate(nl.output_bits):
        good = ((golden >> j) & 1).astype(bool)
        good_wave = np.where(good, _ALL_ONES, np.uint64(0))
        diff = values[net] ^ good_wave
        detected |= np.bitwise_or.reduce(diff)
        reads[net] -= 1
        if reads[net] == 0:
            del values[net]
    # Unpack the detected word: bit j of `detected` is copy j's verdict.
    lanes = np.arange(len(faults), dtype=np.uint64)
    return ((detected >> lanes) & np.uint64(1)).astype(bool)


def gate_level_missed(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence[EnumeratedFault],
    progress: Optional[callable] = None,
) -> List[EnumeratedFault]:
    """Exact gate-level missed-fault list over an arbitrary universe.

    Batches the faults 64 at a time through :func:`fault_parallel_detect`.
    """
    from .gatesim import simulate_netlist

    tel = get_telemetry()
    with tel.span("gates.fault_parallel", faults=len(faults),
                  vectors=len(input_raw)) as span:
        golden = simulate_netlist(nl, input_raw)["output"]
        missed: List[EnumeratedFault] = []
        for start in range(0, len(faults), 64):
            batch = faults[start:start + 64]
            verdicts = fault_parallel_detect(
                nl, input_raw, [f.netlist_fault for f in batch], golden=golden)
            for fault, hit in zip(batch, verdicts):
                if not hit:
                    missed.append(fault)
            if progress is not None:
                progress(min(start + 64, len(faults)), len(faults))
    if tel.enabled and span.duration > 0:
        tel.gauge("gates.faults_per_sec").set(len(faults) / span.duration)
    return missed
