"""Compiled, levelized gate-netlist evaluation.

Elaborated netlists are feed-forward, so every net can be evaluated over
the whole time axis at once.  The interpreters in :mod:`repro.gates.gatesim`
historically walked ``nl.elements`` gate by gate in Python; this module
lowers a :class:`~repro.gates.netlist.GateNetlist` once into a **levelized
structure-of-arrays program**: nets are assigned topological levels, the
elements of each level are grouped by gate kind, and evaluation becomes,
per (level, kind) group, one fancy-indexed gather of the input waveforms
out of a nets x time matrix and one vectorized numpy op — hundreds of
gates per Python bytecode step instead of one.

The same program drives three consumers:

* :func:`simulate_waves` — fault-free (or single-fault) boolean
  simulation of every net, used by
  :func:`repro.gates.gatesim.simulate_netlist`;
* :func:`golden_net_waves` — the per-net golden waveform matrix the
  cone-restricted batch engine reads at cone boundaries;
* :class:`BatchCone` — the fault-parallel (64 copies per ``uint64``
  lane word, several words side by side) cone-restricted, time-chunked
  evaluator behind :func:`repro.gates.fault_parallel.fault_parallel_detect`.

The ripple-carry adders of Table 1 designs levelize into hundreds of
tiny levels, so per-group numpy dispatch overhead — not arithmetic — is
the cost that matters.  The cone machinery therefore (a) builds cones
with whole-level vectorized sweeps over a flattened op view
(:class:`_FlatProgram`), never per-group Python, and (b) evaluates
``words`` 64-lane fault words side by side in a ``(nets, words, time)``
scratch cube, amortizing each numpy call over up to
``64 * words`` faulty machines.

Compiling is cheap (milliseconds) and cached on the netlist object by
:func:`compiled_program`; the artifact cache can additionally persist
programs and golden waveform matrices across processes
(:func:`repro.cache.pipeline.cached_gate_program` /
:func:`repro.cache.pipeline.cached_net_waves`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .netlist import GateNetlist

__all__ = [
    "OP_KINDS",
    "LevelOp",
    "CompiledNetlist",
    "compile_netlist",
    "compiled_program",
    "simulate_waves",
    "golden_net_waves",
    "expand_lane_waves",
    "ConeWorkspace",
    "BatchCone",
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Evaluation-order-stable op kinds; ``dff`` is the one-sample time shift.
OP_KINDS = ("xor", "and", "or", "not", "buf", "dff")

_TWO_INPUT = frozenset(("xor", "and", "or"))


@dataclass
class LevelOp:
    """One (level, kind) group of the compiled program.

    ``elem`` indexes into ``nl.gates`` (or ``nl.dffs`` for kind
    ``"dff"``); the parallel ``out`` / ``in0`` / ``in1`` arrays carry the
    group's net ids.  ``in1`` is ``None`` for one-input kinds.
    """

    kind: str
    elem: np.ndarray
    out: np.ndarray
    in0: np.ndarray
    in1: Optional[np.ndarray] = None


@dataclass
class CompiledNetlist:
    """A levelized structure-of-arrays program for one netlist."""

    n_nets: int
    input_bits: np.ndarray
    output_bits: np.ndarray
    #: ``levels[k]`` holds the LevelOps whose outputs are level ``k+1``.
    levels: List[List[LevelOp]] = field(default_factory=list)
    #: Topological level of every net (0 for constants and inputs).
    net_level: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: ``gate_loc[g]`` -> (level_index, op_index, position) of gate ``g``.
    gate_loc: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def op_count(self) -> int:
        return sum(len(op.out) for ops in self.levels for op in ops)


def compile_netlist(nl: GateNetlist) -> CompiledNetlist:
    """Lower a netlist to its levelized structure-of-arrays program.

    Deterministic: groups follow ascending level, :data:`OP_KINDS` order
    within a level, and element creation order within a group.
    """
    n_nets = nl.net_count
    level = np.zeros(n_nets, dtype=np.int64)
    buckets: Dict[Tuple[int, str], List[Tuple[int, int, int, int]]] = {}
    max_level = 0
    for elem_kind, idx in nl.elements:
        if elem_kind == "gate":
            gate = nl.gates[idx]
            kind = gate.kind
            if kind not in OP_KINDS:  # pragma: no cover - elaboration only
                raise SimulationError(f"unknown gate kind {kind!r}")
            out = gate.out
            in0 = gate.ins[0]
            in1 = gate.ins[1] if len(gate.ins) > 1 else -1
            lvl = 1 + int(max(level[n] for n in gate.ins))
        else:
            dff = nl.dffs[idx]
            kind, out, in0, in1 = "dff", dff.q, dff.d, -1
            lvl = 1 + int(level[in0])
        level[out] = lvl
        max_level = max(max_level, lvl)
        buckets.setdefault((lvl, kind), []).append((idx, out, in0, in1))

    prog = CompiledNetlist(
        n_nets=n_nets,
        input_bits=np.asarray(nl.input_bits, dtype=np.int64),
        output_bits=np.asarray(nl.output_bits, dtype=np.int64),
        net_level=level,
    )
    for lvl in range(1, max_level + 1):
        ops: List[LevelOp] = []
        for kind in OP_KINDS:
            rows = buckets.get((lvl, kind))
            if not rows:
                continue
            arr = np.array(rows, dtype=np.int64)
            op = LevelOp(
                kind=kind,
                elem=arr[:, 0].copy(),
                out=arr[:, 1].copy(),
                in0=arr[:, 2].copy(),
                in1=arr[:, 3].copy() if kind in _TWO_INPUT else None,
            )
            if kind != "dff":
                li, oi = len(prog.levels), len(ops)
                for pos, gidx in enumerate(op.elem):
                    prog.gate_loc[int(gidx)] = (li, oi, pos)
            ops.append(op)
        prog.levels.append(ops)
    return prog


def compiled_program(nl: GateNetlist) -> CompiledNetlist:
    """The netlist's compiled program, memoized on the netlist object."""
    prog = getattr(nl, "_compiled_program", None)
    if prog is None or prog.n_nets != nl.net_count:
        prog = compile_netlist(nl)
        nl._compiled_program = prog  # type: ignore[attr-defined]
    return prog


# ----------------------------------------------------------------------
# Boolean whole-axis evaluation (golden machine / single fault)
# ----------------------------------------------------------------------
def simulate_waves(
    prog: CompiledNetlist,
    in_bits: np.ndarray,
    stuck_net: Optional[int] = None,
    stuck_pins: Optional[Dict[int, Sequence[int]]] = None,
    stuck_value: bool = False,
) -> np.ndarray:
    """Every net's boolean waveform, as a ``(n_nets, T)`` matrix.

    ``in_bits`` is the ``(n_inputs, T)`` boolean input-bit matrix.  A
    single stuck-at fault can be injected either as a whole-net force
    (``stuck_net``) or as per-gate-pin forces (``stuck_pins`` maps gate
    index to the faulted pin numbers) — the same fault model as
    :class:`repro.gates.gatesim.NetlistFault`.
    """
    length = in_bits.shape[1]
    values = np.zeros((prog.n_nets, length), dtype=bool)
    values[GateNetlist.CONST1] = True
    if len(prog.input_bits):
        values[prog.input_bits] = in_bits
    if stuck_net is not None and prog.net_level[stuck_net] == 0:
        values[stuck_net] = stuck_value

    overrides: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for gidx, pins in (stuck_pins or {}).items():
        li, oi, pos = prog.gate_loc[int(gidx)]
        for pin in pins:
            overrides.setdefault((li, oi), []).append((pos, int(pin)))

    for li, ops in enumerate(prog.levels):
        for oi, op in enumerate(ops):
            a = values[op.in0]
            b = values[op.in1] if op.in1 is not None else None
            for pos, pin in overrides.get((li, oi), ()):
                (a if pin == 0 else b)[pos] = stuck_value
            if op.kind == "xor":
                out = a ^ b
            elif op.kind == "and":
                out = a & b
            elif op.kind == "or":
                out = a | b
            elif op.kind == "not":
                out = ~a
            elif op.kind == "buf":
                out = a
            else:  # dff: one-sample shift, reset value 0
                out = np.zeros_like(a)
                out[:, 1:] = a[:, :-1]
            values[op.out] = out
        if stuck_net is not None and prog.net_level[stuck_net] == li + 1:
            values[stuck_net] = stuck_value
    return values


def golden_net_waves(prog: CompiledNetlist, in_bits: np.ndarray) -> np.ndarray:
    """Fault-free per-net waveforms; the cone engine's boundary oracle."""
    return simulate_waves(prog, in_bits)


# ----------------------------------------------------------------------
# Fault-parallel cone-restricted evaluation
# ----------------------------------------------------------------------
@dataclass
class _FlatProgram:
    """Level-ordered flat view of a program, for vectorized cone sweeps.

    All per-op arrays are concatenated in (level, kind-group, position)
    order; ``in1x`` duplicates ``in0`` for one-input kinds so cone
    propagation needs no arity branches.
    """

    n_ops: int
    out: np.ndarray
    in0: np.ndarray
    in1x: np.ndarray
    elem: np.ndarray
    #: flat [start, end) of each level
    level_bounds: List[Tuple[int, int]]
    #: per level: (kind, flat_start, flat_end) of each kind group
    group_slices: List[List[Tuple[str, int, int]]]
    #: gate index -> flat op position
    gate_flat: Dict[int, int]


def _flat_program(prog: CompiledNetlist) -> _FlatProgram:
    flat = getattr(prog, "_flat", None)
    if flat is not None:
        return flat
    outs: List[np.ndarray] = []
    in0s: List[np.ndarray] = []
    in1s: List[np.ndarray] = []
    elems: List[np.ndarray] = []
    level_bounds: List[Tuple[int, int]] = []
    group_slices: List[List[Tuple[str, int, int]]] = []
    gate_flat: Dict[int, int] = {}
    pos = 0
    for ops in prog.levels:
        start = pos
        groups: List[Tuple[str, int, int]] = []
        for op in ops:
            outs.append(op.out)
            in0s.append(op.in0)
            in1s.append(op.in1 if op.in1 is not None else op.in0)
            elems.append(op.elem)
            if op.kind != "dff":
                for off, gidx in enumerate(op.elem):
                    gate_flat[int(gidx)] = pos + off
            groups.append((op.kind, pos, pos + len(op.out)))
            pos += len(op.out)
        level_bounds.append((start, pos))
        group_slices.append(groups)
    empty = np.zeros(0, dtype=np.int64)
    flat = _FlatProgram(
        n_ops=pos,
        out=np.concatenate(outs) if outs else empty,
        in0=np.concatenate(in0s) if in0s else empty,
        in1x=np.concatenate(in1s) if in1s else empty,
        elem=np.concatenate(elems) if elems else empty,
        level_bounds=level_bounds,
        group_slices=group_slices,
        gate_flat=gate_flat,
    )
    prog._flat = flat  # type: ignore[attr-defined]
    return flat


def _word_arr(value) -> np.ndarray:
    """Normalize a mask to a (words,) uint64 array."""
    arr = np.asarray(value, dtype=np.uint64)
    return arr.reshape(1) if arr.ndim == 0 else arr


def expand_lane_waves(net_waves: np.ndarray) -> np.ndarray:
    """Boolean waveforms widened to all-ones/all-zeros uint64 lane words.

    Computed once per grading run; the cone evaluator reads boundary and
    comparison rows straight out of this matrix instead of re-expanding
    booleans every chunk.
    """
    return np.where(net_waves, _ALL_ONES, np.uint64(0))


class ConeWorkspace:
    """Reusable flat uint64 buffers for the chunk evaluator.

    numpy temporaries above the allocator's mmap threshold are returned
    to the OS on free, so a fresh gather/op/scatter per group would
    page-fault its buffers back in on every single call — an order of
    magnitude slower than the arithmetic itself.  All chunk-evaluation
    arrays are therefore carved out of named flat buffers that persist
    across groups, chunks and batches, growing monotonically.
    """

    def __init__(self) -> None:
        self._bufs: Dict[str, np.ndarray] = {}

    def get(self, name: str, *shape: int) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= dim
        buf = self._bufs.get(name)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 1), dtype=np.uint64)
            self._bufs[name] = buf
        return buf[:n].reshape(shape)


@dataclass
class _ConeOp:
    """A cone-restricted slice of one LevelOp, plus its fault masks.

    Operand positions are **cone rows**, not net ids: every cone gets a
    private dense row space assigned in evaluation order, so the group's
    outputs are always the contiguous slice ``[o0, o1)`` of the scratch
    cube and results are computed straight into it — no scatter pass.
    ``in0`` / ``in1`` hold input row indices; when an input happens to be
    a contiguous ascending run (common for the chained adders of Table 1
    designs) the matching ``*_slice`` is set and the evaluator reads a
    view instead of gathering.  ``in01`` concatenates both row arrays so
    a two-input group needs a single ``take``.
    """

    kind: str
    o0: int
    o1: int
    in0: np.ndarray
    in1: Optional[np.ndarray]
    in0_slice: Optional[Tuple[int, int]] = None
    in1_slice: Optional[Tuple[int, int]] = None
    in01: Optional[np.ndarray] = None
    #: per-pin fault forces: (position, pin, set_words, clear_words)
    pin_masks: List[Tuple[int, int, np.ndarray, np.ndarray]] = field(
        default_factory=list)
    #: per-output-net fault forces, vectorized over positions
    out_pos: Optional[np.ndarray] = None
    out_set: Optional[np.ndarray] = None
    out_clr: Optional[np.ndarray] = None
    #: dff carry words per lane-packed flop, (flops, words) chunk state
    carry: Optional[np.ndarray] = None


def _run_slice(rows: np.ndarray) -> Optional[Tuple[int, int]]:
    """``(start, stop)`` when ``rows`` is a contiguous ascending run."""
    n = rows.size
    if n == 0:
        return (0, 0)
    lo = int(rows[0])
    if int(rows[-1]) - lo + 1 != n:
        return None
    if n > 1 and not bool(np.all(np.diff(rows) == 1)):
        return None
    return (lo, lo + n)


class BatchCone:
    """The transitive fanout cone of one multi-word fault batch.

    Built once per batch from the compiled program and the batch's fault
    lines, then evaluated chunk by chunk with :meth:`evaluate_chunk`
    over a ``(n_nets, words, chunk)`` uint64 scratch cube — ``words``
    64-lane fault words side by side.  Nets outside the cone are never
    computed; reads that cross the cone boundary come from the golden
    per-net waveform matrix, expanded from ``bool`` to
    all-ones/all-zeros lane words.  :meth:`compact` drops fully-detected
    words between chunks so dropped faults stop costing work.

    ``net_masks`` / ``pin_masks`` map fault lines to ``(set, clear)``
    lane masks — scalars for a single-word batch, ``(words,)`` arrays
    otherwise.
    """

    def __init__(
        self,
        prog: CompiledNetlist,
        net_masks: Dict[int, Tuple],
        pin_masks: Dict[Tuple[int, int], Tuple],
        words: int = 1,
    ):
        self.prog = prog
        self.words = words
        flat = _flat_program(prog)
        n_nets = prog.n_nets

        affected = np.zeros(n_nets, dtype=bool)
        stuck = np.fromiter(net_masks.keys(), dtype=np.int64,
                            count=len(net_masks))
        affected[stuck] = True

        # Pin-faulted gates are forced into the cone even when their
        # inputs carry golden values: the masked pin itself differs.
        forced = np.zeros(flat.n_ops, dtype=bool)
        for (gidx, _pin) in pin_masks:
            forced[flat.gate_flat[int(gidx)]] = True

        # Whole-level sweeps: an op joins the cone when any input is
        # affected (or it is pin-forced); its inputs that are *not*
        # affected are boundary reads.  Same-level ops never read
        # same-level outputs, so updating `affected` after the sweep of
        # each level is safe.
        sel_all = np.zeros(flat.n_ops, dtype=bool)
        bmask = np.zeros(n_nets, dtype=bool)
        live_levels: List[int] = []
        for li, (s, e) in enumerate(flat.level_bounds):
            if s == e:
                continue
            sel = affected[flat.in0[s:e]]
            sel |= affected[flat.in1x[s:e]]
            sel |= forced[s:e]
            if not sel.any():
                continue
            i0 = flat.in0[s:e][sel]
            i1 = flat.in1x[s:e][sel]
            clean = ~affected[i0]
            if clean.any():
                bmask[i0[clean]] = True
            clean = ~affected[i1]
            if clean.any():
                bmask[i1[clean]] = True
            sel_all[s:e] = sel
            affected[flat.out[s:e][sel]] = True
            live_levels.append(li)

        driven = np.zeros(n_nets, dtype=bool)
        driven[flat.out[sel_all]] = True
        is_stuck = np.zeros(n_nets, dtype=bool)
        is_stuck[stuck] = True

        # --- private row space -----------------------------------------
        # Evaluated nets get dense rows in evaluation order (so every
        # group's outputs are one contiguous slice of the scratch cube),
        # followed by a block of boundary rows and a block of seed rows.
        # Small cones therefore evaluate in a small, cache-resident
        # scratch instead of an (n_nets, ...) cube.
        row_of = np.full(n_nets, -1, dtype=np.int64)
        next_row = 0
        raw_ops: List[Tuple[_ConeOp, np.ndarray, np.ndarray,
                            Optional[np.ndarray]]] = []
        for li in live_levels:
            for kind, gs, ge in flat.group_slices[li]:
                gsel = sel_all[gs:ge]
                if not gsel.any():
                    continue
                idx = np.nonzero(gsel)[0]
                out = flat.out[gs:ge][idx]
                in0 = flat.in0[gs:ge][idx]
                two = kind in _TWO_INPUT
                o0 = next_row
                next_row += len(idx)
                row_of[out] = np.arange(o0, next_row)
                cone_op = _ConeOp(
                    kind=kind, o0=o0, o1=next_row,
                    in0=in0, in1=flat.in1x[gs:ge][idx] if two else None)
                if pin_masks:
                    frows = np.nonzero(forced[gs:ge][idx])[0]
                    for row in frows:
                        gidx = int(flat.elem[gs + idx[row]])
                        for pin in (0, 1) if two else (0,):
                            entry = pin_masks.get((gidx, pin))
                            if entry is not None:
                                cone_op.pin_masks.append(
                                    (int(row), pin, _word_arr(entry[0]),
                                     _word_arr(entry[1])))
                hit = is_stuck[out]
                if hit.any():
                    pos = np.nonzero(hit)[0]
                    cone_op.out_pos = pos
                    cone_op.out_set = np.stack(
                        [_word_arr(net_masks[int(out[p])][0]) for p in pos])
                    cone_op.out_clr = np.stack(
                        [_word_arr(net_masks[int(out[p])][1]) for p in pos])
                if kind == "dff":
                    cone_op.carry = np.zeros((len(idx), words),
                                             dtype=np.uint64)
                raw_ops.append((cone_op, in0,
                                cone_op.in1 if two else in0, cone_op.in1))

        # Rows the chunk evaluator must seed from the golden matrix:
        # cone-boundary reads, plus masked nets nothing in the cone
        # drives (their faulty row is the masked golden row).
        self.boundary = np.nonzero(bmask)[0]
        self.brow0 = next_row
        row_of[self.boundary] = np.arange(next_row,
                                          next_row + self.boundary.size)
        next_row += self.boundary.size
        seed = stuck[~driven[stuck]]
        self.seed_nets = seed
        self.srow0 = next_row
        row_of[seed] = np.arange(next_row, next_row + seed.size)
        next_row += seed.size
        self.n_rows = next_row
        if seed.size:
            self.seed_set = np.stack(
                [_word_arr(net_masks[int(net)][0]) for net in seed])
            self.seed_clr = np.stack(
                [_word_arr(net_masks[int(net)][1]) for net in seed])
        else:
            self.seed_set = np.zeros((0, words), dtype=np.uint64)
            self.seed_clr = np.zeros((0, words), dtype=np.uint64)

        # Second pass: map operand nets to cone rows (boundary/seed rows
        # only exist now), detect contiguous runs, fuse double gathers.
        self.ops: List[_ConeOp] = []
        for cone_op, in0_nets, _in1x, in1_nets in raw_ops:
            cone_op.in0 = row_of[in0_nets]
            cone_op.in0_slice = _run_slice(cone_op.in0)
            if in1_nets is not None:
                cone_op.in1 = row_of[in1_nets]
                cone_op.in1_slice = _run_slice(cone_op.in1)
                if cone_op.in0_slice is None or cone_op.in1_slice is None:
                    cone_op.in01 = np.concatenate(
                        (cone_op.in0, cone_op.in1))
            self.ops.append(cone_op)

        out_bits = prog.output_bits
        self.affected_outputs = np.unique(out_bits[affected[out_bits]])
        self.out_rows = row_of[self.affected_outputs]
        self.cone_nets = int(np.count_nonzero(affected))

    def compact(self, keep: np.ndarray) -> None:
        """Drop word columns whose 64 lanes are all detected.

        ``keep`` is a boolean array over the currently active words; all
        per-word state (dff carries, fault masks) is sliced down so
        later chunks stop simulating the dropped faults.
        """
        self.words = int(np.count_nonzero(keep))
        self.seed_set = self.seed_set[:, keep]
        self.seed_clr = self.seed_clr[:, keep]
        for op in self.ops:
            if op.carry is not None:
                op.carry = op.carry[:, keep]
            if op.out_set is not None:
                op.out_set = op.out_set[:, keep]
                op.out_clr = op.out_clr[:, keep]
            if op.pin_masks:
                op.pin_masks = [(row, pin, s[keep], c[keep])
                                for row, pin, s, c in op.pin_masks]

    def bind_golden(self, ws: ConeWorkspace,
                    lane_waves: np.ndarray) -> None:
        """Gather the golden rows this cone reads, once per batch.

        ``np.take`` from a time-sliced (strided) view would copy the
        whole source per chunk, so boundary, seed and output rows are
        pulled out of the contiguous ``lane_waves`` matrix a single time
        and the chunk loop slices these compact blocks instead.
        """
        length = lane_waves.shape[1]
        self._bgold = ws.get("bgold", self.boundary.size, length)
        lane_waves.take(self.boundary, 0, self._bgold, "clip")
        self._sgold = ws.get("sgold", self.seed_nets.size, length)
        lane_waves.take(self.seed_nets, 0, self._sgold, "clip")
        self._ogold = ws.get("ogold", self.affected_outputs.size, length)
        lane_waves.take(self.affected_outputs, 0, self._ogold, "clip")

    def evaluate_chunk(self, ws: ConeWorkspace, t0: int,
                       t1: int) -> np.ndarray:
        """Evaluate the cone over ``[t0, t1)``; returns per-word diffs.

        ``ws`` supplies the persistent scratch buffers;
        :meth:`bind_golden` must have been called for this run.  Bit
        ``j`` of returned word ``w`` is set when copy ``64 w + j``'s
        outputs differ from the golden machine anywhere in the chunk.
        All gathers/ops run through preallocated buffers (``np.take``
        with ``out=``) — per-group temporaries would dominate runtime.
        """
        wc = self.words
        span = t1 - t0
        w = ws.get("nets", self.n_rows, wc, span)
        if self.boundary.size:
            w[self.brow0:self.brow0 + self.boundary.size] = \
                self._bgold[:, None, t0:t1]
        if self.seed_nets.size:
            w[self.srow0:self.srow0 + self.seed_nets.size] = \
                ((self._sgold[:, None, t0:t1]
                  | self.seed_set[:, :, None])
                 & ~self.seed_clr[:, :, None])
        for op in self.ops:
            n = op.o1 - op.o0
            v = w[op.o0:op.o1]
            # Operand views where the input rows are contiguous runs;
            # buffer gathers otherwise.  Pin-faulted groups always copy
            # into buffers — their masks may not mutate shared rows.
            if op.in1 is not None:
                if op.pin_masks or op.in01 is not None:
                    if op.pin_masks and op.in01 is None:
                        ab = ws.get("ab", 2 * n, wc, span)
                        ab[:n] = w[op.in0_slice[0]:op.in0_slice[1]]
                        ab[n:] = w[op.in1_slice[0]:op.in1_slice[1]]
                    else:
                        ab = ws.get("ab", 2 * n, wc, span)
                        w.take(op.in01, 0, ab, "clip")
                    a, b = ab[:n], ab[n:]
                else:
                    a = w[op.in0_slice[0]:op.in0_slice[1]]
                    b = w[op.in1_slice[0]:op.in1_slice[1]]
            else:
                if op.in0_slice is not None and not op.pin_masks:
                    a = w[op.in0_slice[0]:op.in0_slice[1]]
                else:
                    a = ws.get("ab", n, wc, span)
                    w.take(op.in0, 0, a, "clip")
                b = None
            for pos, pin, s, c in op.pin_masks:
                arr = a if pin == 0 else b
                arr[pos] = (arr[pos] | s[:, None]) & ~c[:, None]
            if op.kind == "xor":
                np.bitwise_xor(a, b, out=v)
            elif op.kind == "and":
                np.bitwise_and(a, b, out=v)
            elif op.kind == "or":
                np.bitwise_or(a, b, out=v)
            elif op.kind == "not":
                np.invert(a, out=v)
            elif op.kind == "buf":
                v[:] = a
            else:  # dff: shift in the previous chunk's final d values
                carry = a[:, :, -1].copy()
                v[:, :, 1:] = a[:, :, :-1]
                v[:, :, 0] = op.carry
                op.carry = carry
            if op.out_pos is not None:
                v[op.out_pos] = ((v[op.out_pos]
                                  | op.out_set[:, :, None])
                                 & ~op.out_clr[:, :, None])
        if not self.out_rows.size:
            return np.zeros(wc, dtype=np.uint64)
        d = ws.get("diff", self.out_rows.size, wc, span)
        w.take(self.out_rows, 0, d, "clip")
        np.bitwise_xor(d, self._ogold[:, None, t0:t1], out=d)
        return np.bitwise_or.reduce(d, axis=(0, 2))
