"""Event-driven incremental fault evaluation over fused LUT super-gates.

The word-widened cone engine (:class:`repro.gates.compiled.BatchCone`)
re-evaluates its whole cone at every level for every time chunk, even
when the faulty waveform has long reconverged to the golden one.  The
paper's own premise — faults matter only while narrow test zones are
exercised (§1.1) — means most of those evaluations provably reproduce
golden values.  This module is the third engine tier exploiting that:

* **super-gate fusion** (:func:`fuse_program`) — at program-compile
  time, chains of single-fanout gates spanning up to
  :data:`MAX_FUSE_DEPTH` consecutive levels are fused into LUT
  super-gates of at most :data:`MAX_FUSE_INPUTS` external inputs and
  :data:`MAX_FUSE_MEMBERS` member gates.  Each super-gate's boolean
  function is captured as a truth table over its external inputs
  (:func:`recipe_truth_table`, one bit per minterm — at most ``2**6``
  bits, so it always fits a machine word; 3-input super-gates fit a
  ``uint8``).  The table is the super-gate's *identity*: units sharing
  a recipe batch into one vectorized group, and the re-levelized
  super-gate graph has fewer levels than the original program, cutting
  the per-level dispatch count where the frontier is still wide.
  Packed 64-lane words evaluate a super-gate by replaying its fused
  recipe (2-5 bitwise ops) — cheaper than a ``2**K``-term minterm
  expansion of the same table, and bit-identical to it.

* **event-driven evaluation** (:class:`EventCone`) — per time chunk,
  only *difference words* propagate: a super-gate is evaluated only
  when one of its external inputs is **dirty** (its faulty waveform
  differs from golden somewhere in the chunk) or the unit itself hosts
  a fault force.  Clean operands are substituted straight from the
  golden waveform matrix, computed outputs are compared against golden
  to detect reconvergence (a row that comes back clean stops
  propagating), and a chunk whose frontier is empty — no dirty seeds,
  no forced units, no dirty flop carries — is skipped outright.

:class:`EventCone` mirrors the :class:`BatchCone` driver contract
(``bind_golden`` / ``evaluate_chunk`` / ``compact``), so the grading
loop in :mod:`repro.gates.fault_parallel` — iterative deepening,
per-word fault dropping, chunk-end detection times — is shared between
tiers and verdicts, detection times and MISR signatures stay
bit-identical by construction.  Frontier sizes and skipped chunks
surface as the telemetry counters ``gates.frontier_nets`` and
``gates.words_skipped``; levels removed by fusion as
``gates.lut_fused_levels``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .compiled import (
    CompiledNetlist,
    ConeWorkspace,
    _TWO_INPUT,
    _flat_program,
    _word_arr,
)

__all__ = [
    "MAX_FUSE_DEPTH",
    "MAX_FUSE_INPUTS",
    "MAX_FUSE_MEMBERS",
    "FusedGroup",
    "FusedProgram",
    "EventCone",
    "fuse_program",
    "fused_program",
    "recipe_truth_table",
]

#: Maximum original gate levels absorbed into one super-gate.
MAX_FUSE_DEPTH = 3

#: Maximum distinct external input nets per super-gate (truth tables
#: stay <= 64 bits).
MAX_FUSE_INPUTS = 6

#: Maximum member gates per super-gate recipe.
MAX_FUSE_MEMBERS = 5

#: Pre-built workspace-buffer names for recipe-member temporaries —
#: the chunk loop runs hot enough that per-op f-string formatting of
#: buffer keys shows up in profiles.
_MKEYS = tuple(f"ev_m{j}" for j in range(max(MAX_FUSE_MEMBERS, 8) * 4))


def recipe_truth_table(recipe: Tuple[Tuple[str, int, int], ...],
                       n_ext: int) -> int:
    """Truth table of a fused recipe over its external inputs.

    Bit ``m`` of the result is the super-gate's output for the input
    minterm ``m`` (external slot ``i`` = bit ``i`` of ``m``).  Recipe
    members are ``(kind, src0, src1)`` with ``src >= 0`` naming an
    external slot and ``src < 0`` the earlier member ``-(src + 1)``;
    one-input kinds mirror ``src0`` into ``src1``.  Returns ``-1`` for
    sequential (dff) recipes, which have no combinational table.
    """
    if n_ext > MAX_FUSE_INPUTS or any(k == "dff" for k, _s0, _s1 in recipe):
        return -1
    minterms = np.arange(1 << n_ext, dtype=np.uint64)
    one = np.uint64(1)
    ext = [(minterms >> np.uint64(i)) & one for i in range(n_ext)]
    vals: List[np.ndarray] = []
    for kind, s0, s1 in recipe:
        a = ext[s0] if s0 >= 0 else vals[-s0 - 1]
        b = ext[s1] if s1 >= 0 else vals[-s1 - 1]
        if kind == "xor":
            v = a ^ b
        elif kind == "and":
            v = a & b
        elif kind == "or":
            v = a | b
        elif kind == "not":
            v = a ^ one
        else:  # buf
            v = a
        vals.append(v)
    return int(np.bitwise_or.reduce(vals[-1] << minterms))


@dataclass
class FusedGroup:
    """All super-gates of one level sharing one recipe.

    ``recipe`` is the member-op sequence (see
    :func:`recipe_truth_table`); ``table`` its truth table over the
    ``n_ext`` external inputs.  ``out`` / ``ext`` / ``elem`` are
    parallel arrays over the group's units: final output net, external
    input nets (every unit has exactly ``n_ext`` distinct ones — the
    slot count is part of the group key) and the original gate/dff
    indices of each member.
    """

    recipe: Tuple[Tuple[str, int, int], ...]
    n_ext: int
    table: int
    out: np.ndarray
    ext: np.ndarray
    elem: np.ndarray

    @property
    def is_dff(self) -> bool:
        return self.recipe[-1][0] == "dff"

    @property
    def n_members(self) -> int:
        return len(self.recipe)


@dataclass
class FusedProgram:
    """The super-gate graph lowered from one compiled program.

    ``gate_loc`` locates every original gate's member position
    ``(level, group, row, member)`` — the pin-fault injection map;
    ``internal_loc`` locates nets absorbed inside a super-gate (their
    waveforms are never materialized, so net faults on them become
    member-output forces); ``out_loc`` locates every unit's final
    output net.
    """

    prog: CompiledNetlist
    n_nets: int
    levels: List[List[FusedGroup]] = field(default_factory=list)
    gate_loc: Dict[int, Tuple[int, int, int, int]] = field(
        default_factory=dict)
    internal_loc: Dict[int, Tuple[int, int, int, int]] = field(
        default_factory=dict)
    out_loc: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def unit_count(self) -> int:
        return sum(len(g.out) for groups in self.levels for g in groups)


class _Unit:
    """One super-gate under construction during the fusion sweep."""

    __slots__ = ("members", "ext", "out", "depth", "absorbed", "internal")

    def __init__(self, members, ext, out, depth, internal):
        self.members = members      # [(kind, elem_idx, src0, src1)]
        self.ext = ext              # ordered distinct external net ids
        self.out = out
        self.depth = depth
        self.absorbed = False
        self.internal = internal    # [(net, member_index)]


def fuse_program(prog: CompiledNetlist) -> FusedProgram:
    """Fuse single-fanout chains of a compiled program into super-gates.

    One topological sweep: each gate starts as its own unit; a producer
    unit is absorbed into its reader when it is the net's *only* reader,
    the net is not a primary output, and the merged unit stays within
    the depth/input/member budgets.  Flops are never fused (their
    one-sample shift is not a combinational member).  Root units are
    re-levelized by longest path over the super-gate graph and grouped
    deterministically by ``(level, n_ext, recipe)``.
    """
    flat = _flat_program(prog)
    n_nets = prog.n_nets

    readers = np.zeros(n_nets, dtype=np.int64)
    for groups in flat.group_slices:
        for kind, s, e in groups:
            np.add.at(readers, flat.in0[s:e], 1)
            if kind in _TWO_INPUT:
                np.add.at(readers, flat.in1x[s:e], 1)
    if prog.output_bits.size:
        np.add.at(readers, prog.output_bits, 1)
    is_out = np.zeros(n_nets, dtype=bool)
    is_out[prog.output_bits] = True

    unit_by_out: Dict[int, _Unit] = {}
    order: List[_Unit] = []
    for groups in flat.group_slices:
        for kind, s, e in groups:
            two = kind in _TWO_INPUT
            for i in range(s, e):
                out = int(flat.out[i])
                eidx = int(flat.elem[i])
                if kind == "dff":
                    u = _Unit([("dff", eidx, 0, 0)], [int(flat.in0[i])],
                              out, 1, [])
                    unit_by_out[out] = u
                    order.append(u)
                    continue
                srcs = ([int(flat.in0[i]), int(flat.in1x[i])] if two
                        else [int(flat.in0[i])])
                members: List[Tuple[str, int, int, int]] = []
                ext: List[int] = []
                internal: List[Tuple[int, int]] = []
                depth = 1
                codes: List[int] = []
                for pos, net in enumerate(srcs):
                    remaining = len(srcs) - pos - 1
                    child = unit_by_out.get(net)
                    fuse = (
                        child is not None
                        and not child.absorbed
                        and child.members[-1][0] != "dff"
                        and readers[net] == 1
                        and not is_out[net]
                        and len(members) + len(child.members) + 1
                        <= MAX_FUSE_MEMBERS
                        and max(depth, child.depth + 1) <= MAX_FUSE_DEPTH
                    )
                    if fuse:
                        extra = [n for n in child.ext if n not in ext]
                        if len(ext) + len(extra) + remaining \
                                > MAX_FUSE_INPUTS:
                            fuse = False
                    if fuse:
                        offset = len(members)
                        for ck, ce, cs0, cs1 in child.members:
                            members.append((ck, ce,
                                            _remap(cs0, child.ext, ext,
                                                   offset),
                                            _remap(cs1, child.ext, ext,
                                                   offset)))
                        for nnet, mi in child.internal:
                            internal.append((nnet, mi + offset))
                        internal.append(
                            (net, offset + len(child.members) - 1))
                        child.absorbed = True
                        codes.append(-(offset + len(child.members)))
                        depth = max(depth, child.depth + 1)
                    else:
                        codes.append(_slot(net, ext))
                s0 = codes[0]
                s1 = codes[1] if two else codes[0]
                members.append((kind, eidx, s0, s1))
                u = _Unit(members, ext, out, depth, internal)
                unit_by_out[out] = u
                order.append(u)

    roots = [u for u in order if not u.absorbed]

    # Re-levelize by longest path over super-gates: processing in the
    # original topological order guarantees every external input's
    # level is final before its readers are placed.
    slevel = np.zeros(n_nets, dtype=np.int64)
    buckets: Dict[Tuple[int, int, Tuple], List[_Unit]] = {}
    max_lvl = 0
    for u in roots:
        lvl = 1 + max((int(slevel[n]) for n in u.ext), default=0)
        slevel[u.out] = lvl
        recipe = tuple((k, a, b) for k, _e, a, b in u.members)
        buckets.setdefault((lvl, len(u.ext), recipe), []).append(u)
        max_lvl = max(max_lvl, lvl)

    fused = FusedProgram(prog=prog, n_nets=n_nets,
                         levels=[[] for _ in range(max_lvl)])
    for key in sorted(buckets):
        lvl, n_ext, recipe = key
        units = buckets[key]
        li = lvl - 1
        gi = len(fused.levels[li])
        group = FusedGroup(
            recipe=recipe,
            n_ext=n_ext,
            table=recipe_truth_table(recipe, n_ext),
            out=np.array([u.out for u in units], dtype=np.int64),
            ext=np.array([u.ext for u in units],
                         dtype=np.int64).reshape(len(units), n_ext),
            elem=np.array([[m[1] for m in u.members] for u in units],
                          dtype=np.int64),
        )
        fused.levels[li].append(group)
        for row, u in enumerate(units):
            fused.out_loc[u.out] = (li, gi, row)
            for mi, (mk, me, _a, _b) in enumerate(u.members):
                if mk != "dff":
                    fused.gate_loc[me] = (li, gi, row, mi)
            for nnet, mi in u.internal:
                fused.internal_loc[nnet] = (li, gi, row, mi)

    n_ops = prog.op_count()
    fused.stats = {
        "orig_levels": prog.n_levels,
        "fused_levels": max_lvl,
        "levels_fused": prog.n_levels - max_lvl,
        "units": len(roots),
        "super_gates": sum(1 for u in roots if len(u.members) > 1),
        "gates_absorbed": n_ops - len(roots),
        "ops": n_ops,
    }
    return fused


def _slot(net: int, ext: List[int]) -> int:
    """Index of ``net`` in the external slot list, appending if new."""
    try:
        return ext.index(net)
    except ValueError:
        ext.append(net)
        return len(ext) - 1


def _remap(code: int, child_ext: List[int], ext: List[int],
           offset: int) -> int:
    """Rebase one member src code when a child unit is absorbed."""
    if code < 0:
        return code - offset
    return _slot(child_ext[code], ext)


def fused_program(prog: CompiledNetlist) -> FusedProgram:
    """The program's fused super-gate graph, memoized on the program."""
    fused = getattr(prog, "_fused", None)
    if fused is None:
        fused = fuse_program(prog)
        prog._fused = fused  # type: ignore[attr-defined]
    return fused


# ----------------------------------------------------------------------
# Flat fused view for vectorized cone sweeps
# ----------------------------------------------------------------------
@dataclass
class _FusedFlat:
    """Level-ordered flat unit view: one row per super-gate.

    ``ext`` is padded to the widest slot count with the sentinel net id
    ``n_nets`` so the cone sweep's "any input affected" test is one
    fancy index over a boolean array with an always-False sentinel.
    """

    n_units: int
    out: np.ndarray
    ext: np.ndarray
    level_bounds: List[Tuple[int, int]]
    #: per level: (group, flat_start, flat_end)
    groups: List[List[Tuple[FusedGroup, int, int]]]


def _fused_flat(fused: FusedProgram) -> _FusedFlat:
    flat = getattr(fused, "_flat", None)
    if flat is not None:
        return flat
    kmax = max((g.n_ext for groups in fused.levels for g in groups),
               default=0)
    outs: List[np.ndarray] = []
    exts: List[np.ndarray] = []
    level_bounds: List[Tuple[int, int]] = []
    level_groups: List[List[Tuple[FusedGroup, int, int]]] = []
    pos = 0
    for groups in fused.levels:
        start = pos
        entries: List[Tuple[FusedGroup, int, int]] = []
        for g in groups:
            n = len(g.out)
            outs.append(g.out)
            padded = np.full((n, kmax), fused.n_nets, dtype=np.int64)
            padded[:, :g.n_ext] = g.ext
            exts.append(padded)
            entries.append((g, pos, pos + n))
            pos += n
        level_bounds.append((start, pos))
        level_groups.append(entries)
    flat = _FusedFlat(
        n_units=pos,
        out=(np.concatenate(outs) if outs
             else np.zeros(0, dtype=np.int64)),
        ext=(np.concatenate(exts) if exts
             else np.zeros((0, 0), dtype=np.int64)),
        level_bounds=level_bounds,
        groups=level_groups,
    )
    fused._flat = flat  # type: ignore[attr-defined]
    return flat


# ----------------------------------------------------------------------
# Event-driven cone evaluation
# ----------------------------------------------------------------------
@dataclass
class _EventOp:
    """One cone-restricted slice of a fused group, plus fault forces.

    ``ext_rows`` maps external inputs to cone rows (the sentinel
    ``n_rows`` for nets outside the row space — always clean); clean
    operands substitute golden straight from the bound lane-wave matrix
    by net id.  ``forced`` rows carry pin or member-output forces and
    are evaluated every chunk; ``row_masks`` holds those masks keyed by
    cone-row position within the op.  Output-net stuck masks
    (``out_pos``/``out_set``/``out_clr``) are *not* forced: the cone's
    pseudo-seed sweep realizes them from masked golden whenever the
    row's inputs are clean, and ``fo_base`` indexes the cone's global
    pseudo-seed block for the exact-claiming handshake.
    """

    recipe: Tuple[Tuple[str, int, int], ...]
    n_ext: int
    o0: int
    o1: int
    out_nets: np.ndarray
    ext_rows: np.ndarray
    ext_nets: np.ndarray
    obs: np.ndarray
    forced: np.ndarray
    is_dff: bool
    forced_any: bool = False
    out_pos: Optional[np.ndarray] = None
    out_set: Optional[np.ndarray] = None
    out_clr: Optional[np.ndarray] = None
    fo_base: Optional[np.ndarray] = None
    pf_idx: Optional[Dict[int, int]] = None
    row_masks: Dict[int, List[Tuple]] = field(default_factory=dict)
    carry: Optional[np.ndarray] = None
    carry_dirty: Optional[np.ndarray] = None
    dff_nets: Optional[np.ndarray] = None
    # Dense-sweep statics (slot-major gather indices, out-of-cone
    # substitution nets, observed-row positions) and lazy-carry state.
    flat_rows: Optional[np.ndarray] = None
    sent: Optional[np.ndarray] = None
    sent_nets: Optional[np.ndarray] = None
    sent_any: bool = False
    obs_idx: Optional[np.ndarray] = None
    obs_nets: Optional[np.ndarray] = None
    obs_any: bool = False
    lazy_t: Optional[int] = None
    carry_any: bool = False


class EventCone:
    """Event-driven evaluator for one multi-word fault batch.

    Same driver contract as :class:`~repro.gates.compiled.BatchCone`
    (build, :meth:`bind_golden`, :meth:`evaluate_chunk` per time chunk,
    :meth:`compact` between chunks), same cone-membership rule — so the
    shared grading loop produces bit-identical verdicts and chunk-end
    detection times — but each chunk evaluates only the *frontier*:
    super-gates with a dirty input, a dirty flop carry, or a resident
    fault force.  Everything else is proven equal to golden without
    being computed, and a chunk with an empty frontier is skipped
    outright (``words_skipped``); ``frontier_rows`` accumulates the
    super-gate evaluations actually performed.
    """

    def __init__(
        self,
        fused: FusedProgram,
        net_masks: Dict[int, Tuple],
        pin_masks: Dict[Tuple[int, int], Tuple],
        words: int = 1,
    ):
        self.fused = fused
        self.words = words
        self.frontier_rows = 0
        self.words_skipped = 0
        prog = fused.prog
        n_nets = fused.n_nets
        flat = _fused_flat(fused)

        # Net faults on fused-internal nets act as member-output forces
        # on their containing unit; every other masked net is marked
        # affected up front, exactly like BatchCone.
        internal_stuck = [n for n in net_masks if n in fused.internal_loc]
        ext_stuck = np.array(
            [n for n in net_masks if n not in fused.internal_loc],
            dtype=np.int64)

        affected = np.zeros(n_nets + 1, dtype=bool)
        affected[ext_stuck] = True
        forced_u = np.zeros(flat.n_units, dtype=bool)
        for gidx, _pin in pin_masks:
            li, gi, row, _m = fused.gate_loc[int(gidx)]
            forced_u[flat.groups[li][gi][1] + row] = True
        for net in internal_stuck:
            li, gi, row, _m = fused.internal_loc[int(net)]
            forced_u[flat.groups[li][gi][1] + row] = True

        sel_all = np.zeros(flat.n_units, dtype=bool)
        for s, e in flat.level_bounds:
            if s == e:
                continue
            sel = affected[flat.ext[s:e]].any(axis=1)
            sel |= forced_u[s:e]
            if not sel.any():
                continue
            sel_all[s:e] = sel
            affected[flat.out[s:e][sel]] = True

        driven = np.zeros(n_nets + 1, dtype=bool)
        driven[flat.out[sel_all]] = True
        is_stuck = np.zeros(n_nets + 1, dtype=bool)
        is_stuck[ext_stuck] = True
        is_output = np.zeros(n_nets + 1, dtype=bool)
        is_output[prog.output_bits] = True

        # Rows: evaluated units in (level, group, position) order, then
        # seed rows; clean reads substitute golden by net, so no
        # boundary rows are materialized at all.
        row_of = np.full(n_nets + 1, -1, dtype=np.int64)
        next_row = 0
        self.ops: List[_EventOp] = []
        opmap: Dict[Tuple[int, int], Tuple[_EventOp, np.ndarray]] = {}
        raw: List[Tuple[_EventOp, np.ndarray]] = []
        fo_rows_l: List[np.ndarray] = []
        fo_nets_l: List[np.ndarray] = []
        fo_ops: List[_EventOp] = []
        fo_off = 0
        for li, entries in enumerate(flat.groups):
            for gi, (group, s, e) in enumerate(entries):
                gsel = sel_all[s:e]
                if not gsel.any():
                    continue
                idx = np.nonzero(gsel)[0]
                out_nets = group.out[idx]
                ext_nets = group.ext[idx]
                o0 = next_row
                next_row += idx.size
                row_of[out_nets] = np.arange(o0, next_row)
                forced_rows = forced_u[s:e][idx].copy()
                op = _EventOp(
                    recipe=group.recipe,
                    n_ext=group.n_ext,
                    o0=o0, o1=next_row,
                    out_nets=out_nets,
                    ext_rows=ext_nets,  # remapped to rows below
                    ext_nets=ext_nets,
                    obs=is_output[out_nets],
                    forced=forced_rows,
                    is_dff=group.is_dff,
                )
                hit = is_stuck[out_nets]
                if hit.any():
                    # Output-net stucks join the pseudo-seed block
                    # instead of forcing the op: masked golden stands
                    # in whenever the row's inputs are clean.
                    pos = np.nonzero(hit)[0]
                    op.out_pos = pos
                    op.out_set = np.stack(
                        [_word_arr(net_masks[int(out_nets[p])][0])
                         for p in pos])
                    op.out_clr = np.stack(
                        [_word_arr(net_masks[int(out_nets[p])][1])
                         for p in pos])
                    op.fo_base = np.arange(fo_off, fo_off + pos.size)
                    fo_off += pos.size
                    fo_rows_l.append(o0 + pos)
                    fo_nets_l.append(out_nets[pos])
                    fo_ops.append(op)
                if op.is_dff:
                    op.carry = np.zeros((idx.size, words), dtype=np.uint64)
                    op.carry_dirty = np.zeros(idx.size, dtype=bool)
                opmap[(li, gi)] = (op, idx)
                raw.append((op, ext_nets))
                self.ops.append(op)

        for (gidx, pin), (mset, mclr) in pin_masks.items():
            li, gi, row, mi = fused.gate_loc[int(gidx)]
            op, idx = opmap[(li, gi)]
            p = int(np.searchsorted(idx, row))
            op.row_masks.setdefault(p, []).append(
                ("pin", mi, int(pin), _word_arr(mset), _word_arr(mclr)))
        for net in internal_stuck:
            li, gi, row, mi = fused.internal_loc[int(net)]
            op, idx = opmap[(li, gi)]
            p = int(np.searchsorted(idx, row))
            mset, mclr = net_masks[net]
            op.row_masks.setdefault(p, []).append(
                ("mout", mi, _word_arr(mset), _word_arr(mclr)))

        # Pin/member-masked rows are pseudo-seeds too: their clean-input
        # faulty waveform is precomputed once per stage (lazily, first
        # sparse chunk) by replaying the recipe over golden operands
        # with the masks applied, so no op is ever *forced* — a chunk
        # where no fault is excited skips outright.
        pf_rows_l: List[np.ndarray] = []
        pf_nets_l: List[np.ndarray] = []
        pf_off = 0
        self._pf_ops: List[Tuple[_EventOp, np.ndarray]] = []
        for op in self.ops:
            if op.row_masks:
                ps = np.array(sorted(op.row_masks), dtype=np.int64)
                op.pf_idx = {int(p): pf_off + j
                             for j, p in enumerate(ps)}
                pf_rows_l.append(op.o0 + ps)
                pf_nets_l.append(op.out_nets[ps])
                pf_off += ps.size
                self._pf_ops.append((op, ps))
        if pf_rows_l:
            self.pf_rows = np.concatenate(pf_rows_l)
            self.pf_nets = np.concatenate(pf_nets_l)
        else:
            self.pf_rows = np.zeros(0, dtype=np.int64)
            self.pf_nets = np.zeros(0, dtype=np.int64)
        self.pf_obs = is_output[self.pf_nets]
        self._pf_obs_any = bool(self.pf_obs.any())
        self._pf_claimed = np.zeros(pf_off, dtype=bool)
        self._pf = None
        self._pf_gold = None

        seed = (ext_stuck[~driven[ext_stuck]] if ext_stuck.size
                else ext_stuck)
        self.seed_nets = seed
        self.srow0 = next_row
        row_of[seed] = np.arange(next_row, next_row + seed.size)
        next_row += seed.size
        self.n_rows = next_row
        if seed.size:
            self.seed_set = np.stack(
                [_word_arr(net_masks[int(n)][0]) for n in seed])
            self.seed_clr = np.stack(
                [_word_arr(net_masks[int(n)][1]) for n in seed])
        else:
            self.seed_set = np.zeros((0, words), dtype=np.uint64)
            self.seed_clr = np.zeros((0, words), dtype=np.uint64)
        self.seed_obs = is_output[seed]

        # Pseudo-seed block: every out-masked unit row, globally.  The
        # sparse sweep realizes these rows from masked golden in one
        # vectorized pass (exactly like seeds); their op only evaluates
        # when its *inputs* go dirty, and claims back the rows it
        # recomputes so detection stays exact.
        if fo_rows_l:
            self.fo_rows = np.concatenate(fo_rows_l)
            self.fo_nets = np.concatenate(fo_nets_l)
            self.fo_set = np.concatenate([op.out_set for op in fo_ops])
            self.fo_clr = np.concatenate([op.out_clr for op in fo_ops])
            # Rows that also carry pin/member masks are owned by the
            # pf block (which stacks the out-mask on top) — drop them
            # here so each row lives in exactly one pseudo-seed block.
            pf_owned = set(self.pf_rows.tolist())
            if pf_owned:
                keep_fo = np.array(
                    [int(r) not in pf_owned for r in self.fo_rows],
                    dtype=bool)
                if not keep_fo.all():
                    remap = np.cumsum(keep_fo) - 1
                    for op in fo_ops:
                        op.fo_base = np.where(keep_fo[op.fo_base],
                                              remap[op.fo_base], -1)
                    self.fo_rows = self.fo_rows[keep_fo]
                    self.fo_nets = self.fo_nets[keep_fo]
                    self.fo_set = self.fo_set[keep_fo]
                    self.fo_clr = self.fo_clr[keep_fo]
        else:
            self.fo_rows = np.zeros(0, dtype=np.int64)
            self.fo_nets = np.zeros(0, dtype=np.int64)
            self.fo_set = np.zeros((0, words), dtype=np.uint64)
            self.fo_clr = np.zeros((0, words), dtype=np.uint64)
        self.fo_obs = is_output[self.fo_nets]
        self._fo_obs_any = bool(self.fo_obs.any())
        self._fo_claimed = np.zeros(self.fo_rows.size, dtype=bool)

        # Second pass: operand nets -> cone rows (sentinel n_rows when
        # outside the row space); golden reads stay lazy against the
        # bound lane-wave matrix, keyed by net id.
        for op, ext_nets in raw:
            rows = row_of[ext_nets]
            rows[rows < 0] = self.n_rows
            op.ext_rows = rows
            op.flat_rows = np.ascontiguousarray(rows.T).reshape(-1)
            sent = op.flat_rows == self.n_rows
            op.sent_any = bool(sent.any())
            if op.sent_any:
                op.sent = sent
                op.sent_nets = np.ascontiguousarray(
                    ext_nets.T).reshape(-1)[sent]
            oi = np.nonzero(op.obs)[0]
            op.obs_any = bool(oi.size)
            if op.obs_any:
                op.obs_idx = oi
                op.obs_nets = op.out_nets[oi]
            if op.is_dff:
                op.dff_nets = np.ascontiguousarray(ext_nets[:, 0])
        self._dff_ops = [op for op in self.ops if op.is_dff]
        self._carry_live = False
        self._dirty = np.zeros(self.n_rows + 1, dtype=bool)
        self.cone_nets = int(np.count_nonzero(affected[:n_nets]))

        # Reader CSR (cone row -> ops reading it): the sparse sweep
        # visits only ops marked by a producer whose output went dirty,
        # so chunks with a narrow frontier never even *test* the cold
        # part of the cone.
        if self.ops:
            rows_all = np.concatenate(
                [op.ext_rows.ravel() for op in self.ops])
            ops_all = np.repeat(
                np.arange(len(self.ops), dtype=np.int64),
                [op.ext_rows.size for op in self.ops])
            inside = rows_all < self.n_rows
            rows_all = rows_all[inside]
            ops_all = ops_all[inside]
            order = np.argsort(rows_all, kind="stable")
            self._rd_ops = ops_all[order]
            counts = np.bincount(rows_all, minlength=self.n_rows)
            self._rd_indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
            np.cumsum(counts, out=self._rd_indptr[1:])
        else:
            self._rd_ops = np.zeros(0, dtype=np.int64)
            self._rd_indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        self._cand = np.zeros(len(self.ops), dtype=bool)

        # Dense/sparse mode: a chunk whose frontier covers most of the
        # cone is cheaper evaluated densely over the fused program (no
        # selection, no substitution, golden compares only at observed
        # rows).  The first chunk follows ``dense_hint``; afterwards a
        # cost controller keeps an exponential moving average of the
        # measured per-chunk seconds of each mode and picks the cheaper
        # one.  While dense stays ahead, sparse probes are amortized:
        # one probe only after the dense time accumulated since the
        # last probe exceeds a few times the expected probe cost, so a
        # large cone with a wide frontier never burns a noticeable
        # fraction of its runtime rediscovering that sparse loses.
        # Both modes are exact, so the adaptive (machine-dependent)
        # choice never changes a verdict, a detection time or a
        # signature — only throughput.  Dense
        # chunks still whole-chunk skip: when the seed sweep comes back
        # clean and no carry is live, the pseudo-seed sweeps run and a
        # provably-golden chunk is skipped without touching the ops.
        self.dense_hint: Optional[bool] = None
        self._dense_next: Optional[bool] = None
        self._dense_accum = 0.0
        self._fr_mark = 0
        self._d_ms: Optional[float] = None
        self._s_ms: Optional[float] = None

    # ------------------------------------------------------------------
    def compact(self, keep: np.ndarray) -> None:
        """Drop word columns whose 64 lanes are all detected."""
        self.words = int(np.count_nonzero(keep))
        self.seed_set = self.seed_set[:, keep]
        self.seed_clr = self.seed_clr[:, keep]
        self.fo_set = self.fo_set[:, keep]
        self.fo_clr = self.fo_clr[:, keep]
        if self._pf is not None:
            self._pf = np.ascontiguousarray(self._pf[:, keep, :])
        for op in self.ops:
            if op.carry is not None:
                op.carry = op.carry[:, keep]
            if op.out_set is not None:
                op.out_set = op.out_set[:, keep]
                op.out_clr = op.out_clr[:, keep]
            if op.row_masks:
                # Prune mask entries whose surviving words are all
                # zero: once every fault in a masked row's lanes is
                # detected and dropped, the row behaves like a plain
                # row and skips the per-row recompute entirely (its
                # pin-fault pseudo-seed likewise compares clean).
                masks = {}
                for p, entries in op.row_masks.items():
                    kept = []
                    for entry in entries:
                        mset = entry[-2][keep]
                        mclr = entry[-1][keep]
                        if mset.any() or mclr.any():
                            kept.append((entry[0], *entry[1:-2], mset,
                                         mclr))
                    if kept:
                        masks[p] = kept
                op.row_masks = masks

    def bind_golden(self, ws: ConeWorkspace, lane_waves: np.ndarray,
                    length: Optional[int] = None) -> None:
        """Bind the golden lane-wave matrix for this batch.

        Golden reads are lazy — per-op slices gather straight from the
        matrix by net id, so nothing cone-sized is copied up front.
        Only the two rows-needed-every-chunk blocks (seeds and the
        pseudo-seed out-mask rows) are gathered once.  ``length``
        bounds the graded prefix (defaults to the full waveform).
        """
        self._blen = int(length or lane_waves.shape[1])
        self._lw = lane_waves
        # Advanced indexing, not ``take``: the small row gathers stay
        # fast even if a caller hands a strided column-window view.
        self._sgold = lane_waves[self.seed_nets]
        self._fgold = lane_waves[self.fo_nets]
        self._pf = None
        self._pf_gold = None

    # ------------------------------------------------------------------
    def evaluate_chunk(self, ws: ConeWorkspace, t0: int,
                       t1: int) -> np.ndarray:
        """Frontier-driven evaluation of ``[t0, t1)``; per-word diffs.

        Same return contract as ``BatchCone.evaluate_chunk``: bit ``j``
        of word ``w`` is set when copy ``64 w + j`` differs from golden
        at an observed output anywhere in the chunk.  Both modes —
        sparse frontier propagation and the dense fused sweep — are
        exact, so the adaptive mode choice never changes a verdict.
        """
        tstart = time.perf_counter()
        wc = self.words
        span = t1 - t0
        det = np.zeros(wc, dtype=np.uint64)
        dirty = self._dirty
        dirty[:] = False
        # One golden column-window view shared by every op this chunk.
        self._gsl = self._lw[:, t0:t1]
        w = ws.get("ev_nets", self.n_rows, wc, span)
        if self._dense_next is None:
            dense = True if self.dense_hint is None else bool(
                self.dense_hint)
        else:
            dense = self._dense_next

        # Seed rows first: their dirtiness is chunk-dependent (a
        # stuck-at force that matches the golden value all chunk is
        # clean), and they gate the whole-chunk skip.  The masked
        # waveform is written straight into the row space — for clean
        # seeds it *is* the golden waveform, so dense readers need no
        # substitution.
        n_seed = int(self.seed_nets.size)
        seeds_dirty = False
        srd = None
        if n_seed:
            sg = self._sgold[:, t0:t1]
            sf = w[self.srow0:self.srow0 + n_seed]
            np.bitwise_or(sg[:, None, :], self.seed_set[:, :, None],
                          out=sf)
            np.bitwise_and(sf, ~self.seed_clr[:, :, None], out=sf)
            sd = ws.get("ev_sdiff", n_seed, wc, span)
            np.bitwise_xor(sf, sg[:, None, :], out=sd)
            sdw = np.bitwise_or.reduce(sd, axis=2)
            srd = sdw.any(axis=1)
            if srd.any():
                seeds_dirty = True
                dirty[self.srow0:self.srow0 + n_seed] = srd
                ohit = self.seed_obs & srd
                if ohit.any():
                    det |= np.bitwise_or.reduce(sdw[ohit], axis=0)

        # Pseudo-seed sweeps: out-masked rows realized from masked
        # golden, pin/member-masked rows from their precomputed
        # clean-input faulty waveforms, both in one vectorized pass.
        # Sparse chunks always need them (the rows stand in as extra
        # seeds for the op loop; ops that run claim back the rows they
        # recompute exactly, so the end-of-chunk settle only credits
        # unclaimed rows).  Dense chunks recompute every masked row
        # exactly and need neither values nor settle — they run the
        # sweeps only while a whole-chunk skip is still plausible
        # (seeds clean, no live carry), keeping the dense hot path
        # untouched when the cone is visibly excited.
        n_fo = int(self.fo_rows.size)
        n_pf = int(self.pf_rows.size)
        pseudo_dirty = pf_dirty = False
        # A dense skip attempt additionally requires the pin-fault
        # waveforms to be materialized already (a sparse chunk pays
        # that once); dense never fronts the materialization cost.
        if (not dense) or (not (seeds_dirty or self._carry_live)
                           and (n_pf == 0 or self._pf is not None)):
            if n_fo:
                fg = self._fgold[:, t0:t1]
                ff = ws.get("ev_fo", n_fo, wc, span)
                np.bitwise_or(fg[:, None, :], self.fo_set[:, :, None],
                              out=ff)
                np.bitwise_and(ff, ~self.fo_clr[:, :, None], out=ff)
                fd = ws.get("ev_fdiff", n_fo, wc, span)
                np.bitwise_xor(ff, fg[:, None, :], out=fd)
                fdw = np.bitwise_or.reduce(fd, axis=2)
                frd = fdw.any(axis=1)
                w[self.fo_rows] = ff
                dirty[self.fo_rows] = frd
                self._fo_dw = fdw
                self._fo_rd = frd
                self._fo_claimed[:] = False
                if frd.any():
                    pseudo_dirty = True

            if n_pf:
                if self._pf is None:
                    self._materialize_pf()
                pfv = self._pf[:, :, t0:t1]
                pd = ws.get("ev_pdiff", n_pf, wc, span)
                np.bitwise_xor(pfv, self._pf_gold[:, None, t0:t1],
                               out=pd)
                pdw = np.bitwise_or.reduce(pd, axis=2)
                prd = pdw.any(axis=1)
                w[self.pf_rows] = pfv
                dirty[self.pf_rows] = prd
                self._pf_dw = pdw
                self._pf_rd = prd
                self._pf_claimed[:] = False
                if prd.any():
                    pf_dirty = True

            if not (seeds_dirty or pseudo_dirty or pf_dirty
                    or self._carry_live):
                # Empty frontier: every net provably equals golden over
                # the chunk (no fault is excited), so skip it outright
                # — in either mode.  Flop carries are *lazily* golden:
                # only a timestamp is recorded, and the golden d value
                # is materialized if the flop is ever evaluated again.
                self.words_skipped += wc
                for op in self._dff_ops:
                    op.lazy_t = t1
                self._fr_mark = self.frontier_rows
                self._mode_feedback(False, time.perf_counter() - tstart)
                return det

        if dense:
            self.frontier_rows += self.srow0
            for op in self.ops:
                if op.is_dff:
                    self._eval_dff_dense(op, ws, w, det, t0, t1)
                else:
                    self._eval_gate_dense(op, ws, w, det, t0, t1)
            self._fr_mark = self.frontier_rows
            self._carry_live = any(
                op.carry_any for op in self._dff_ops)
            self._mode_feedback(True, time.perf_counter() - tstart)
            return det

        cand = self._cand
        cand[:] = False
        if seeds_dirty:
            self._mark_readers(np.nonzero(srd)[0] + self.srow0)
        if pseudo_dirty:
            self._mark_readers(self.fo_rows[frd])
        if pf_dirty:
            self._mark_readers(self.pf_rows[prd])
        for i, op in enumerate(self.ops):
            if op.is_dff:
                if cand[i] or op.carry_any:
                    self._eval_dff(op, ws, w, dirty, det, t0, t1)
                else:
                    op.lazy_t = t1
            elif cand[i]:
                self._eval_gate(op, ws, w, dirty, det, t0, t1)
        if n_fo and self._fo_obs_any:
            ob = self.fo_obs & self._fo_rd & ~self._fo_claimed
            if ob.any():
                det |= np.bitwise_or.reduce(self._fo_dw[ob], axis=0)
        if n_pf and self._pf_obs_any:
            ob = self.pf_obs & self._pf_rd & ~self._pf_claimed
            if ob.any():
                det |= np.bitwise_or.reduce(self._pf_dw[ob], axis=0)
        frac = ((self.frontier_rows - self._fr_mark)
                / max(1, self.srow0))
        self._fr_mark = self.frontier_rows
        self._carry_live = any(op.carry_any for op in self._dff_ops)
        self._mode_feedback(False, time.perf_counter() - tstart,
                            frac=frac)
        return det

    # ------------------------------------------------------------------
    def _mode_feedback(self, dense: bool, dt: float,
                       frac: Optional[float] = None) -> None:
        """Cost-based mode controller: pick the measured-cheaper mode.

        Each chunk feeds its wall-clock seconds into a per-mode
        exponential moving average; the next chunk runs the cheaper
        mode.  While dense stays ahead, sparse probes are amortized
        against the expected probe cost (last sparse EWMA, or a 4x
        dense estimate before any sparse sample exists): a probe fires
        only once the dense time accumulated since the last probe
        exceeds three times that estimate, bounding probe overhead to
        a small fraction of wall-clock even on cones whose frontier
        stays wide forever.  Sparsity is phase-dependent — a cone that
        goes quiet mid-stimulus is still rediscovered by the periodic
        probe — and a skipped chunk counts as a (near-free) sparse
        sample, so skip-heavy cones lock into sparse.  Before any
        dense sample exists the sparse frontier fraction decides,
        mirroring the old fixed-threshold policy.
        """
        if dense:
            self._d_ms = (dt if self._d_ms is None
                          else 0.5 * (self._d_ms + dt))
            self._dense_accum += dt
            if self._s_ms is not None and self._s_ms < 0.9 * self._d_ms:
                self._dense_next = False
            else:
                probe_cost = (self._s_ms if self._s_ms is not None
                              else 4.0 * self._d_ms)
                if self._dense_accum >= 3.0 * probe_cost:
                    self._dense_next = False
                    self._dense_accum = 0.0
                else:
                    self._dense_next = True
        else:
            self._s_ms = (dt if self._s_ms is None
                          else 0.5 * (self._s_ms + dt))
            if self._d_ms is None:
                self._dense_next = frac is not None and frac > 0.3
            else:
                self._dense_next = self._s_ms >= 0.9 * self._d_ms

    # ------------------------------------------------------------------
    def _mark_readers(self, rows: np.ndarray) -> None:
        """Flag every op reading ``rows`` as a sparse-sweep candidate."""
        ip = self._rd_indptr
        s = ip[rows]
        ln = ip[rows + 1] - s
        tot = int(ln.sum())
        if not tot:
            return
        cs = np.cumsum(ln)
        flat = np.arange(tot, dtype=np.int64) + np.repeat(s - (cs - ln),
                                                          ln)
        self._cand[self._rd_ops[flat]] = True

    def _eval_gate(self, op: _EventOp, ws: ConeWorkspace, w: np.ndarray,
                   dirty: np.ndarray, det: np.ndarray, t0: int,
                   t1: int) -> None:
        dirt = dirty[op.ext_rows]
        sel = dirt.any(axis=1)
        if not sel.any():
            return
        idx = np.nonzero(sel)[0]
        n = idx.size
        self.frontier_rows += n
        wc = self.words
        span = t1 - t0
        k = op.n_ext

        # Slot-major operand gather with golden substitution for clean
        # rows: ab[j] is external slot j's (n, words, span) block.
        rows = op.ext_rows[idx]
        ab = ws.get("ev_ext", k * n, wc, span)
        w.take(rows.T.reshape(-1), 0, ab, "clip")
        cleanf = ~dirt[idx].T.reshape(-1)
        if cleanf.any():
            nets = op.ext_nets[idx].T.reshape(-1)[cleanf]
            ab[cleanf] = self._gsl[nets][:, None, :]
        ext_view = ab.reshape(k, n, wc, span)

        m_res: List[np.ndarray] = []
        for j, (kind, s0, s1) in enumerate(op.recipe):
            a = ext_view[s0] if s0 >= 0 else m_res[-s0 - 1]
            out_buf = ws.get(_MKEYS[j], n, wc, span)
            if kind == "xor":
                np.bitwise_xor(a, ext_view[s1] if s1 >= 0
                               else m_res[-s1 - 1], out=out_buf)
            elif kind == "and":
                np.bitwise_and(a, ext_view[s1] if s1 >= 0
                               else m_res[-s1 - 1], out=out_buf)
            elif kind == "or":
                np.bitwise_or(a, ext_view[s1] if s1 >= 0
                              else m_res[-s1 - 1], out=out_buf)
            elif kind == "not":
                np.invert(a, out=out_buf)
            else:  # buf
                np.copyto(out_buf, a)
            m_res.append(out_buf)
        v = m_res[-1]

        # Pin/member-masked rows are recomputed alone (masks applied
        # mid-recipe) only when selected — and claimed back from the
        # pf pseudo-seed block so the chunk-end settle stays exact.
        for p, entries in op.row_masks.items():
            fp = int(np.searchsorted(idx, p))
            if fp < idx.size and idx[fp] == p:
                v[fp] = self._recompute_row(op, ext_view, fp, entries)
                self._pf_claimed[op.pf_idx[p]] = True
        self._finish_rows(op, ws, w, dirty, det, v, idx, t0, t1)

    def _eval_dff(self, op: _EventOp, ws: ConeWorkspace, w: np.ndarray,
                  dirty: np.ndarray, det: np.ndarray, t0: int,
                  t1: int) -> None:
        gold_last = self._lw[op.dff_nets, t1 - 1]
        sel = dirty[op.ext_rows[:, 0]] | op.carry_dirty
        if not sel.any():
            # Clean flops still track golden carries across chunks,
            # lazily (materialized only if evaluated again).
            op.lazy_t = t1
            op.carry_any = False
            return
        self._materialize_carry(op)
        idx = np.nonzero(sel)[0]
        n = idx.size
        self.frontier_rows += n
        wc = self.words
        span = t1 - t0
        rows = op.ext_rows[idx, 0]
        a = ws.get("ev_ext", n, wc, span)
        w.take(rows, 0, a, "clip")
        clean = ~dirty[rows]
        if clean.any():
            a[clean] = self._gsl[op.dff_nets[idx][clean]][
                :, None, :]
        v = ws.get("ev_m0", n, wc, span)
        v[:, :, 1:] = a[:, :, :-1]
        v[:, :, 0] = op.carry[idx]
        new_carry = a[:, :, -1].copy()
        op.carry[:] = gold_last[:, None]
        op.carry[idx] = new_carry
        op.carry_dirty[:] = False
        op.carry_dirty[idx] = (
            new_carry != gold_last[idx][:, None]).any(axis=1)
        op.carry_any = bool(op.carry_dirty.any())
        self._finish_rows(op, ws, w, dirty, det, v, idx, t0, t1)

    def _materialize_pf(self) -> None:
        """Precompute clean-input faulty waveforms for masked rows.

        Replays each masked row's recipe over its golden operand
        waveforms with the pin/member masks (and any output stuck on
        top) applied — once per stage, reused by every chunk whose
        inputs stay clean.
        """
        lw = self._lw[:, :self._blen]
        length = self._blen
        wc = self.words
        pf = np.empty((self.pf_rows.size, wc, length), dtype=np.uint64)
        self._pf_gold = lw[self.pf_nets]
        for op, ps in self._pf_ops:
            gops = lw[op.ext_nets[ps]]
            for j, p in enumerate(ps):
                p = int(p)
                # compact() prunes positions whose surviving mask
                # words are all zero — their clean-input replay is
                # just the golden waveform.
                v = self._recompute_row(
                    op,
                    np.broadcast_to(gops[j][:, None, None, :],
                                    (op.n_ext, 1, wc, length)),
                    0, op.row_masks.get(p, []))
                if op.out_pos is not None:
                    hit = np.nonzero(op.out_pos == p)[0]
                    if hit.size:
                        h = int(hit[0])
                        v = ((v | op.out_set[h][:, None])
                             & ~op.out_clr[h][:, None])
                pf[op.pf_idx[p]] = v
        self._pf = pf

    def _materialize_carry(self, op: _EventOp) -> None:
        """Realize a lazily-golden carry before the flop is evaluated."""
        if op.lazy_t is not None:
            op.carry[:] = self._lw[op.dff_nets, op.lazy_t - 1][:, None]
            op.carry_dirty[:] = False
            op.lazy_t = None

    def _finish_rows(self, op: _EventOp, ws: ConeWorkspace,
                     w: np.ndarray, dirty: np.ndarray, det: np.ndarray,
                     v: np.ndarray, idx: np.ndarray, t0: int,
                     t1: int) -> None:
        """Apply output forces, detect reconvergence, scatter results."""
        if op.out_pos is not None:
            # Out-masked rows are only recomputed when selected; the
            # rest keep their pseudo-seed value.  Recomputed rows are
            # claimed so the chunk-end settle doesn't double-count.
            loc = np.searchsorted(idx, op.out_pos)
            np.minimum(loc, idx.size - 1, out=loc)
            inin = idx[loc] == op.out_pos
            if inin.any():
                mp = loc[inin]
                v[mp] = ((v[mp] | op.out_set[inin][:, :, None])
                         & ~op.out_clr[inin][:, :, None])
                fb = op.fo_base[inin]
                self._fo_claimed[fb[fb >= 0]] = True
        gold = self._gsl[op.out_nets[idx]]
        dbuf = ws.get("ev_diff", idx.size, self.words, t1 - t0)
        np.bitwise_xor(v, gold[:, None, :], out=dbuf)
        dw = np.bitwise_or.reduce(dbuf, axis=2)
        rd = dw.any(axis=1)
        # Set *and clear*: a recomputed-clean row may carry stale
        # pseudo-seed dirt from earlier in this chunk.
        dirty[op.o0 + idx] = rd
        if not rd.any():
            return
        rows = op.o0 + idx[rd]
        w[rows] = v[rd]
        self._mark_readers(rows)
        ob = op.obs[idx] & rd
        if ob.any():
            det |= np.bitwise_or.reduce(dw[ob], axis=0)

    # ------------------------------------------------------------------
    # Dense fused sweep: every unit evaluated, no selection, no
    # substitution (in-cone operand rows are all valid, out-of-cone
    # slots read golden through a static mask), golden compares only at
    # observed rows.  Exact, like the sparse sweep — just cheaper when
    # the frontier covers most of the cone.
    # ------------------------------------------------------------------
    def _eval_gate_dense(self, op: _EventOp, ws: ConeWorkspace,
                         w: np.ndarray, det: np.ndarray, t0: int,
                         t1: int) -> None:
        n = op.o1 - op.o0
        wc = self.words
        span = t1 - t0
        k = op.n_ext
        ab = ws.get("ev_ext", k * n, wc, span)
        w.take(op.flat_rows, 0, ab, "clip")
        if op.sent_any:
            ab[op.sent] = self._gsl[op.sent_nets][:, None, :]
        ext_view = ab.reshape(k, n, wc, span)
        vout = w[op.o0:op.o1]
        last = len(op.recipe) - 1
        m_res: List[np.ndarray] = []
        for j, (kind, s0, s1) in enumerate(op.recipe):
            a = ext_view[s0] if s0 >= 0 else m_res[-s0 - 1]
            out_buf = vout if j == last else ws.get(_MKEYS[j], n, wc,
                                                    span)
            if kind == "xor":
                np.bitwise_xor(a, ext_view[s1] if s1 >= 0
                               else m_res[-s1 - 1], out=out_buf)
            elif kind == "and":
                np.bitwise_and(a, ext_view[s1] if s1 >= 0
                               else m_res[-s1 - 1], out=out_buf)
            elif kind == "or":
                np.bitwise_or(a, ext_view[s1] if s1 >= 0
                              else m_res[-s1 - 1], out=out_buf)
            elif kind == "not":
                np.invert(a, out=out_buf)
            else:  # buf
                np.copyto(out_buf, a)
            m_res.append(out_buf)
        for p, entries in op.row_masks.items():
            vout[p] = self._recompute_row(op, ext_view, p, entries)
        if op.out_pos is not None:
            vout[op.out_pos] = ((vout[op.out_pos]
                                 | op.out_set[:, :, None])
                                & ~op.out_clr[:, :, None])
        if op.obs_any:
            self._dense_obs(op, ws, vout, det, t0, t1)

    def _eval_dff_dense(self, op: _EventOp, ws: ConeWorkspace,
                        w: np.ndarray, det: np.ndarray, t0: int,
                        t1: int) -> None:
        n = op.o1 - op.o0
        wc = self.words
        span = t1 - t0
        self._materialize_carry(op)
        a = ws.get("ev_ext", n, wc, span)
        w.take(op.flat_rows, 0, a, "clip")
        if op.sent_any:
            a[op.sent] = self._gsl[op.sent_nets][:, None, :]
        vout = w[op.o0:op.o1]
        vout[:, :, 1:] = a[:, :, :-1]
        vout[:, :, 0] = op.carry
        gold_last = self._lw[op.dff_nets, t1 - 1]
        np.copyto(op.carry, a[:, :, -1])
        np.any(op.carry != gold_last[:, None], axis=1,
               out=op.carry_dirty)
        op.carry_any = bool(op.carry_dirty.any())
        if op.out_pos is not None:
            vout[op.out_pos] = ((vout[op.out_pos]
                                 | op.out_set[:, :, None])
                                & ~op.out_clr[:, :, None])
        if op.obs_any:
            self._dense_obs(op, ws, vout, det, t0, t1)

    def _dense_obs(self, op: _EventOp, ws: ConeWorkspace,
                   vout: np.ndarray, det: np.ndarray, t0: int,
                   t1: int) -> None:
        oi = op.obs_idx
        dbuf = ws.get("ev_diff", oi.size, self.words, t1 - t0)
        np.bitwise_xor(vout[oi],
                       self._gsl[op.obs_nets][:, None, :],
                       out=dbuf)
        det |= np.bitwise_or.reduce(
            np.bitwise_or.reduce(dbuf, axis=2), axis=0)

    def _recompute_row(self, op: _EventOp, ext_view: np.ndarray,
                       fp: int, entries: List[Tuple]) -> np.ndarray:
        """Replay one row's recipe with its pin/member forces applied."""
        pin_of: Dict[Tuple[int, int], Tuple] = {}
        mout_of: Dict[int, Tuple] = {}
        for entry in entries:
            if entry[0] == "pin":
                _tag, mi, pin, mset, mclr = entry
                pin_of[(mi, pin)] = (mset, mclr)
            else:
                _tag, mi, mset, mclr = entry
                mout_of[mi] = (mset, mclr)
        vals: List[np.ndarray] = []
        for j, (kind, s0, s1) in enumerate(op.recipe):
            def operand(code: int, pin: int) -> np.ndarray:
                base = (ext_view[code][fp] if code >= 0
                        else vals[-code - 1])
                pm = pin_of.get((j, pin))
                if pm is not None:
                    base = (base | pm[0][:, None]) & ~pm[1][:, None]
                return base
            a = operand(s0, 0)
            if kind == "xor":
                r = a ^ operand(s1, 1)
            elif kind == "and":
                r = a & operand(s1, 1)
            elif kind == "or":
                r = a | operand(s1, 1)
            elif kind == "not":
                r = ~a
            else:  # buf
                r = a.copy()
            mm = mout_of.get(j)
            if mm is not None:
                r = (r | mm[0][:, None]) & ~mm[1][:, None]
            vals.append(r)
        return vals[-1]
