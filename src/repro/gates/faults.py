"""Fault universe enumeration over elaborated netlists.

Bridges the collapsed cell-level dictionary of :mod:`repro.gates.cells`
onto a flat :class:`~repro.gates.netlist.GateNetlist`, producing concrete
:class:`~repro.gates.gatesim.NetlistFault` objects that the gate-level
simulator can inject.  Used by the cross-validation tests and by the
exhaustive (small-design) gate-level fault simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..rtl.graph import Graph
from ..rtl.nodes import OpKind
from .cells import CellFault, variant_for_bit
from .gatesim import NetlistFault, netlist_fault_detected, simulate_netlist
from .netlist import GateNetlist

__all__ = ["EnumeratedFault", "enumerate_cell_faults",
           "gate_level_fault_simulation", "schedule_fault_batches"]


@dataclass(frozen=True)
class EnumeratedFault:
    """One collapsed cell fault placed at a concrete design location."""

    node_id: int
    bit: int
    cell_fault: CellFault
    netlist_fault: NetlistFault

    @property
    def label(self) -> str:
        return f"node{self.node_id}.bit{self.bit}.{self.cell_fault.name}"


def enumerate_cell_faults(graph: Graph, nl: GateNetlist) -> List[EnumeratedFault]:
    """Every collapsed adder/subtractor fault, mapped onto netlist lines.

    The representative site of each collapsed class is injected; all class
    members behave identically at the cell boundary, and cell outputs
    reconverge only at the next cell, so the representative's detection
    behaviour stands for the whole class.
    """
    out: List[EnumeratedFault] = []
    for node in graph.arithmetic_nodes:
        width = node.fmt.width
        is_sub = node.kind is OpKind.SUB
        for bit in range(width):
            variant = variant_for_bit(bit, width, is_sub)
            for cf in variant.faults:
                site, value_str = cf.name.rsplit("/", 1)
                lines = nl.cell_fault_line(node.nid, bit, site)
                nf = NetlistFault(
                    lines=lines, value=int(value_str),
                    label=f"node{node.nid}.bit{bit}.{cf.name}",
                )
                out.append(EnumeratedFault(node_id=node.nid, bit=bit,
                                           cell_fault=cf, netlist_fault=nf))
    return out


def _locality_key(fault: EnumeratedFault) -> Tuple:
    """Sort key placing faults with overlapping fanout cones together.

    Faults in the same elaborated cell share (almost) the same transitive
    fanout cone, and neighbouring bits of the same operator overlap
    heavily, so ordering by (node, bit, concrete line) makes each
    64-fault batch's *union* cone barely larger than a single fault's.
    The anchor line id breaks ties deterministically.
    """
    nf = fault.netlist_fault
    kind, payload = nf.lines
    if kind == "net":
        anchor = (0, int(payload), 0)  # type: ignore[arg-type]
    else:
        gate, pin = payload[0]  # type: ignore[index]
        anchor = (1, int(gate), int(pin))
    return (fault.node_id, fault.bit, anchor, nf.value)


def schedule_fault_batches(faults: Sequence[EnumeratedFault],
                           batch_size: int = 64) -> List[List[int]]:
    """Cone-aware batch schedule: lists of indices into ``faults``.

    Stable-sorts the fault indices by :func:`_locality_key` and slices
    the sorted order into ``batch_size`` groups, so each batch's fault
    sites are localized and the union fanout cone the batch engine must
    evaluate stays small.  Every index appears exactly once; callers
    scatter per-batch verdicts back through the indices, keeping results
    independent of the schedule.
    """
    order = sorted(range(len(faults)), key=lambda i: _locality_key(faults[i]))
    return [order[start:start + batch_size]
            for start in range(0, len(order), batch_size)]


def gate_level_fault_simulation(
    graph: Graph,
    nl: GateNetlist,
    input_raw,
    faults: Optional[List[EnumeratedFault]] = None,
    progress_every: int = 0,
) -> Tuple[List[EnumeratedFault], List[EnumeratedFault]]:
    """Serial gate-level fault simulation of the full (or given) universe.

    Returns ``(detected, missed)``.  Exact but O(faults x netlist), so
    intended for small designs and spot checks; the production coverage
    engine lives in :mod:`repro.faultsim.engine`.
    """
    if faults is None:
        faults = enumerate_cell_faults(graph, nl)
    golden = simulate_netlist(nl, input_raw)["output"]
    detected: List[EnumeratedFault] = []
    missed: List[EnumeratedFault] = []
    for i, f in enumerate(faults):
        if progress_every and i % progress_every == 0:
            print(f"  gate-level fault sim: {i}/{len(faults)}")
        hit = netlist_fault_detected(nl, input_raw, f.netlist_fault, golden=golden)
        (detected if hit else missed).append(f)
    return detected, missed
