"""Fault universe enumeration over elaborated netlists.

Bridges the collapsed cell-level dictionary of :mod:`repro.gates.cells`
onto a flat :class:`~repro.gates.netlist.GateNetlist`, producing concrete
:class:`~repro.gates.gatesim.NetlistFault` objects that the gate-level
simulator can inject.  Used by the cross-validation tests and by the
exhaustive (small-design) gate-level fault simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..rtl.graph import Graph
from ..rtl.nodes import OpKind
from .cells import CellFault, variant_for_bit
from .gatesim import NetlistFault, netlist_fault_detected, simulate_netlist
from .netlist import GateNetlist

__all__ = ["EnumeratedFault", "enumerate_cell_faults", "gate_level_fault_simulation"]


@dataclass(frozen=True)
class EnumeratedFault:
    """One collapsed cell fault placed at a concrete design location."""

    node_id: int
    bit: int
    cell_fault: CellFault
    netlist_fault: NetlistFault

    @property
    def label(self) -> str:
        return f"node{self.node_id}.bit{self.bit}.{self.cell_fault.name}"


def enumerate_cell_faults(graph: Graph, nl: GateNetlist) -> List[EnumeratedFault]:
    """Every collapsed adder/subtractor fault, mapped onto netlist lines.

    The representative site of each collapsed class is injected; all class
    members behave identically at the cell boundary, and cell outputs
    reconverge only at the next cell, so the representative's detection
    behaviour stands for the whole class.
    """
    out: List[EnumeratedFault] = []
    for node in graph.arithmetic_nodes:
        width = node.fmt.width
        is_sub = node.kind is OpKind.SUB
        for bit in range(width):
            variant = variant_for_bit(bit, width, is_sub)
            for cf in variant.faults:
                site, value_str = cf.name.rsplit("/", 1)
                lines = nl.cell_fault_line(node.nid, bit, site)
                nf = NetlistFault(
                    lines=lines, value=int(value_str),
                    label=f"node{node.nid}.bit{bit}.{cf.name}",
                )
                out.append(EnumeratedFault(node_id=node.nid, bit=bit,
                                           cell_fault=cf, netlist_fault=nf))
    return out


def gate_level_fault_simulation(
    graph: Graph,
    nl: GateNetlist,
    input_raw,
    faults: Optional[List[EnumeratedFault]] = None,
    progress_every: int = 0,
) -> Tuple[List[EnumeratedFault], List[EnumeratedFault]]:
    """Serial gate-level fault simulation of the full (or given) universe.

    Returns ``(detected, missed)``.  Exact but O(faults x netlist), so
    intended for small designs and spot checks; the production coverage
    engine lives in :mod:`repro.faultsim.engine`.
    """
    if faults is None:
        faults = enumerate_cell_faults(graph, nl)
    golden = simulate_netlist(nl, input_raw)["output"]
    detected: List[EnumeratedFault] = []
    missed: List[EnumeratedFault] = []
    for i, f in enumerate(faults):
        if progress_every and i % progress_every == 0:
            print(f"  gate-level fault sim: {i}/{len(faults)}")
        hit = netlist_fault_detected(nl, input_raw, f.netlist_fault, golden=golden)
        (detected if hit else missed).append(f)
    return detected, missed
