"""Gate-level ripple-carry cell models and their stuck-at fault tables.

Every adder/subtractor bit position is one of four cell variants:

``full``
    The classic 5-gate full adder: ``s1 = a XOR b``, ``sum = s1 XOR c``,
    ``g1 = a AND b``, ``g2 = s1 AND c``, ``cout = g1 OR g2``.
``msb``
    The most significant cell.  Its carry-out is architecturally dropped,
    so the carry gates are not instantiated at all — "the MSB logic is
    less of a test problem since it does not contain any carry logic"
    (Section 4.1).  Netlist: the two XORs only.
``lsb0`` / ``lsb1``
    Bit 0 with a constant carry-in: a half adder (XOR/AND) for adders
    (``cin = 0``) and the XNOR/OR reduction for subtractors (``cin = 1``).

Faults are single stuck-at faults on every gate input/output line,
*including fanout branches* (a stem and each of its branches are distinct
fault sites).  Each variant's faults are exhaustively simulated over the
eight input codes ``(a << 2) | (b << 1) | c`` and collapsed into
equivalence classes with identical observable faulty behaviour.  A class
records the full faulty output tables, so the same object drives both
coverage accounting and fault *injection*.

For subtractor cells the secondary operand passes through an inverter
before reaching the cell.  Stuck-at faults on the inverter collapse onto
the cell's ``b`` lines (``b_in`` s-a-v is equivalent to ``b`` s-a-(1-v)),
so no extra fault sites are modeled; the pattern-extraction layer feeds
cells the *post-inversion* ``b`` bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultModelError

__all__ = ["CellFault", "CellVariant", "cell_variant", "VARIANT_KINDS", "variant_for_bit"]

VARIANT_KINDS = ("full", "msb", "lsb0", "lsb1")

# A gate is (kind, output_net, input_branch_names); a branch name is either
# a plain net name (single fanout) or "net.tag" marking one branch of a
# multi-fanout stem.
_Gate = Tuple[str, str, Tuple[str, ...]]

_NETLISTS: Dict[str, Tuple[Tuple[_Gate, ...], Tuple[str, ...], Optional[str], Optional[int]]] = {
    # kind: (gates, observable_outputs, constant_carry_net, constant_value)
    "full": (
        (
            ("xor", "s1", ("a.x", "b.x")),
            ("xor", "sum", ("s1.x", "c.x")),
            ("and", "g1", ("a.g", "b.g")),
            ("and", "g2", ("s1.g", "c.g")),
            ("or", "cout", ("g1", "g2")),
        ),
        ("sum", "cout"),
        None,
        None,
    ),
    "msb": (
        (
            ("xor", "s1", ("a", "b")),
            ("xor", "sum", ("s1", "c")),
        ),
        ("sum",),
        None,
        None,
    ),
    "lsb0": (
        (
            ("xor", "sum", ("a.x", "b.x")),
            ("and", "cout", ("a.g", "b.g")),
        ),
        ("sum", "cout"),
        "c",
        0,
    ),
    "lsb1": (
        (
            ("xor", "s1", ("a.x", "b.x")),
            ("not", "sum", ("s1",)),
            ("or", "cout", ("a.g", "b.g")),
        ),
        ("sum", "cout"),
        "c",
        1,
    ),
}

_GATE_FUNCS = {
    "xor": lambda ins: ins[0] ^ ins[1],
    "and": lambda ins: ins[0] & ins[1],
    "or": lambda ins: ins[0] | ins[1],
    "not": lambda ins: 1 - ins[0],
}


@dataclass(frozen=True)
class CellFault:
    """One collapsed stuck-at fault class of a ripple-carry cell.

    Attributes
    ----------
    name:
        Representative fault site, e.g. ``"s1.g/1"`` (branch of ``s1``
        into the AND gate, stuck at 1).
    members:
        All uncollapsed fault sites with this exact behaviour.
    detect_mask:
        Bitmask over input codes 0..7; bit ``n`` set means test ``Tn``
        detects the fault at an observable output.  Only feasible codes
        are included for constant-carry variants.
    sum_lut / cout_lut:
        Faulty output tables over all 8 codes (used for injection).
    """

    name: str
    members: Tuple[str, ...]
    detect_mask: int
    sum_lut: Tuple[int, ...]
    cout_lut: Tuple[int, ...]

    @property
    def detecting_codes(self) -> Tuple[int, ...]:
        """Sorted input codes whose tests detect this fault."""
        return tuple(n for n in range(8) if self.detect_mask & (1 << n))

    def sum_array(self) -> np.ndarray:
        return np.array(self.sum_lut, dtype=np.uint8)

    def cout_array(self) -> np.ndarray:
        return np.array(self.cout_lut, dtype=np.uint8)


@dataclass(frozen=True)
class CellVariant:
    """A cell kind plus its collapsed fault universe."""

    kind: str
    faults: Tuple[CellFault, ...]
    undetectable: Tuple[str, ...]
    feasible_mask: int
    uncollapsed_count: int

    @property
    def fault_count(self) -> int:
        """Number of collapsed, detectable fault classes."""
        return len(self.faults)


def _lines_of(gates: Sequence[_Gate]) -> List[str]:
    """All fault sites: every gate output net, every stem, every branch."""
    sites: List[str] = []
    stems_seen = set()
    for _, out, ins in gates:
        for branch in ins:
            stem = branch.split(".")[0]
            if "." in branch:
                sites.append(branch)
            if stem not in stems_seen:
                stems_seen.add(stem)
                if stem not in [g[1] for g in gates]:
                    sites.append(stem)  # primary input stem
        sites.append(out)
    # Multi-fanout internal nets: their stem is the gate output (already
    # added); branches were added above.  Deduplicate, preserve order.
    seen = set()
    unique: List[str] = []
    for s in sites:
        if s not in seen:
            seen.add(s)
            unique.append(s)
    return unique


def _evaluate(
    kind: str,
    a: int,
    b: int,
    c: int,
    fault: Optional[Tuple[str, int]] = None,
) -> Tuple[int, int]:
    """Evaluate one cell variant, optionally with a stuck line."""
    gates, _observable, const_net, const_val = _NETLISTS[kind]
    nets: Dict[str, int] = {"a": a, "b": b, "c": c}
    if const_net is not None:
        nets[const_net] = const_val

    def read(branch: str) -> int:
        stem = branch.split(".")[0]
        v = nets[stem]
        if fault is not None:
            site, sv = fault
            if site == stem or site == branch:
                v = sv
        return v

    for gkind, out, ins in gates:
        value = _GATE_FUNCS[gkind]([read(i) for i in ins])
        if fault is not None and fault[0] == out:
            value = fault[1]
        nets[out] = value
    sum_v = nets["sum"]
    cout_v = nets.get("cout", (a & b) | (c & (a ^ b)))  # msb drops its carry
    return sum_v, cout_v


def _good_outputs(a: int, b: int, c: int) -> Tuple[int, int]:
    return a ^ b ^ c, (a & b) | (c & (a ^ b))


@lru_cache(maxsize=None)
def cell_variant(kind: str) -> CellVariant:
    """Build (and cache) the collapsed fault universe of one cell kind."""
    if kind not in _NETLISTS:
        raise FaultModelError(f"unknown cell variant {kind!r}")
    gates, observable, const_net, const_val = _NETLISTS[kind]
    sites = _lines_of(gates)
    feasible = []
    for code in range(8):
        a, b, c = (code >> 2) & 1, (code >> 1) & 1, code & 1
        if const_net == "c" and c != const_val:
            continue
        feasible.append(code)
    feasible_mask = sum(1 << n for n in feasible)

    # Behaviour signature of each uncollapsed fault.
    by_signature: Dict[Tuple, List[str]] = {}
    luts: Dict[Tuple, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    undetectable: List[str] = []
    uncollapsed = 0
    for site in sites:
        for sv in (0, 1):
            uncollapsed += 1
            name = f"{site}/{sv}"
            sum_lut = []
            cout_lut = []
            detect = 0
            signature: List[Tuple[int, ...]] = []
            for code in range(8):
                a, b, c = (code >> 2) & 1, (code >> 1) & 1, code & 1
                fs, fc = _evaluate(kind, a, b, c, fault=(site, sv))
                gs, gc = _good_outputs(a, b, c)
                sum_lut.append(fs)
                cout_lut.append(fc)
                if code in feasible:
                    differs = (fs != gs and "sum" in observable) or (
                        fc != gc and "cout" in observable
                    )
                    if differs:
                        detect |= 1 << code
                    signature.append(
                        (fs if "sum" in observable else -1,
                         fc if "cout" in observable else -1)
                    )
            if detect == 0:
                undetectable.append(name)
                continue
            key = (detect, tuple(signature))
            by_signature.setdefault(key, []).append(name)
            luts[key] = (tuple(sum_lut), tuple(cout_lut))

    faults = tuple(
        CellFault(
            name=members[0],
            members=tuple(members),
            detect_mask=key[0],
            sum_lut=luts[key][0],
            cout_lut=luts[key][1],
        )
        for key, members in sorted(by_signature.items(), key=lambda kv: kv[1][0])
    )
    return CellVariant(
        kind=kind,
        faults=faults,
        undetectable=tuple(undetectable),
        feasible_mask=feasible_mask,
        uncollapsed_count=uncollapsed,
    )


def variant_for_bit(bit: int, width: int, is_subtractor: bool) -> CellVariant:
    """Cell variant at a given bit of a ``width``-bit operator."""
    if width < 2:
        raise FaultModelError("operators must be at least 2 bits wide")
    if not 0 <= bit < width:
        raise FaultModelError(f"bit {bit} outside width {width}")
    if bit == 0:
        return cell_variant("lsb1" if is_subtractor else "lsb0")
    if bit == width - 1:
        return cell_variant("msb")
    return cell_variant("full")
