"""Flat gate-level netlists elaborated from RTL graphs.

Every RTL node becomes a bundle of single-bit nets; adders and
subtractors expand into the same cell netlists the fault dictionary is
built from (:mod:`repro.gates.cells`), registers become D flip-flops, and
shift/sign-extension operators become pure wiring.  The result is a
self-contained structural netlist that the parallel-pattern simulator in
:mod:`repro.gates.gatesim` can evaluate with or without an injected
stuck-at fault — the ground truth the fast cell-level fault engine is
validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DesignError, FaultModelError
from ..rtl.graph import Graph
from ..rtl.nodes import OpKind
from .cells import _NETLISTS  # shared single-source cell topology

__all__ = ["GateRef", "Gate", "Dff", "GateNetlist", "elaborate"]


@dataclass(frozen=True)
class GateRef:
    """Location of one elaborated cell: RTL node id and bit position."""

    node_id: int
    bit: int


@dataclass
class Gate:
    """One logic gate: ``kind`` in {xor, and, or, not, buf}."""

    kind: str
    out: int
    ins: Tuple[int, ...]
    cell: Optional[GateRef] = None


@dataclass
class Dff:
    """A D flip-flop with reset value 0."""

    d: int
    q: int


@dataclass
class GateNetlist:
    """A flat structural netlist.

    Net 0 is constant 0 and net 1 is constant 1.  ``input_bits[j]`` is the
    net carrying bit ``j`` of the RTL input; ``node_bits[nid][j]`` maps
    every RTL node's output bits to nets (sign-extension duplicates the
    MSB net rather than adding hardware, exactly like wiring).
    """

    names: List[str] = field(default_factory=lambda: ["const0", "const1"])
    gates: List[Gate] = field(default_factory=list)
    dffs: List[Dff] = field(default_factory=list)
    #: Creation sequence of ("gate", i) / ("dff", i); elaboration appends in
    #: topological order, so simulators can evaluate in one pass.
    elements: List[Tuple[str, int]] = field(default_factory=list)
    input_bits: List[int] = field(default_factory=list)
    output_bits: List[int] = field(default_factory=list)
    node_bits: Dict[int, List[int]] = field(default_factory=dict)
    cell_sites: Dict[Tuple[int, int], Dict[str, object]] = field(default_factory=dict)

    CONST0 = 0
    CONST1 = 1

    def new_net(self, name: str) -> int:
        self.names.append(name)
        return len(self.names) - 1

    def add_gate(self, kind: str, ins: Sequence[int], name: str,
                 cell: Optional[GateRef] = None) -> int:
        out = self.new_net(name)
        self.gates.append(Gate(kind=kind, out=out, ins=tuple(ins), cell=cell))
        self.elements.append(("gate", len(self.gates) - 1))
        return out

    def add_dff(self, d: int, name: str) -> int:
        q = self.new_net(name)
        self.dffs.append(Dff(d=d, q=q))
        self.elements.append(("dff", len(self.dffs) - 1))
        return q

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def net_count(self) -> int:
        return len(self.names)

    def fault_site_count(self) -> int:
        """Stuck-at sites: every gate output and every gate input pin."""
        return sum(1 + len(g.ins) for g in self.gates)

    def cell_fault_line(self, node_id: int, bit: int, site: str) -> Tuple[str, object]:
        """Resolve a cell-level fault site name to a netlist line.

        Returns ``("net", net_id)`` for stems/outputs or
        ``("pin", (gate_index, pin_index))`` for fanout branches.
        """
        key = (node_id, bit)
        if key not in self.cell_sites:
            raise FaultModelError(f"no elaborated cell at node {node_id} bit {bit}")
        sites = self.cell_sites[key]
        if site not in sites:
            raise FaultModelError(
                f"unknown site {site!r} in cell {key}; known: {sorted(sites)}"
            )
        return sites[site]  # type: ignore[return-value]


def _sign_extend_bits(bits: List[int], width: int) -> List[int]:
    if len(bits) >= width:
        return bits[:width]
    return bits + [bits[-1]] * (width - len(bits))


def _elaborate_cell(
    nl: GateNetlist,
    kind: str,
    node_id: int,
    bit: int,
    a: int,
    b: int,
    c: int,
) -> Tuple[int, int]:
    """Instantiate one cell variant; returns (sum_net, cout_net).

    Also records the mapping from the dictionary's fault-site names
    (``a``, ``a.x``, ``s1`` ...) to concrete netlist lines so cell-level
    faults can be injected into the flat netlist.
    """
    gates, _obs, const_net, const_val = _NETLISTS[kind]
    prefix = f"n{node_id}.b{bit}"
    nets: Dict[str, int] = {"a": a, "b": b, "c": c}
    if const_net is not None:
        nets[const_net] = nl.CONST1 if const_val else nl.CONST0
    ref = GateRef(node_id=node_id, bit=bit)
    # A stem fault sticks every pin of *this cell* that reads the stem
    # (the wire segment into the cell), never the shared driving net.
    stem_pins: Dict[str, List[Tuple[int, int]]] = {}
    sites: Dict[str, object] = {}
    for gkind, out, ins in gates:
        in_nets = [nets[i.split(".")[0]] for i in ins]
        gate_index = len(nl.gates)
        out_net = nl.add_gate(gkind, in_nets, f"{prefix}.{out}", cell=ref)
        nets[out] = out_net
        # Internal stems (s1, g1, g2, sum, cout) are gate outputs: a stem
        # fault is the driver stuck, which reaches all readers via the net.
        sites[out] = ("net", out_net)
        for pin, branch in enumerate(ins):
            stem = branch.split(".")[0]
            stem_pins.setdefault(stem, []).append((gate_index, pin))
            if "." in branch:
                sites[branch] = ("pins", ((gate_index, pin),))
    for stem, pins in stem_pins.items():
        if stem not in sites:  # primary input stems a / b / c
            sites[stem] = ("pins", tuple(pins))
    cout = nets.get("cout", nl.CONST0)
    nl.cell_sites[(node_id, bit)] = sites
    return nets["sum"], cout


def elaborate(graph: Graph) -> GateNetlist:
    """Expand an RTL graph into a flat gate netlist."""
    graph.validate()
    nl = GateNetlist()
    for nid in graph.topological_order():
        node = graph.node(nid)
        width = node.fmt.width
        if node.kind is OpKind.INPUT:
            bits = [nl.new_net(f"x.{j}") for j in range(width)]
            nl.input_bits = bits
        elif node.kind is OpKind.CONST:
            bits = [nl.CONST0] * width
        elif node.kind is OpKind.DELAY:
            src_bits = nl.node_bits[node.srcs[0]]
            bits = [
                nl.add_dff(src_bits[j], f"n{nid}.q{j}") for j in range(width)
            ]
        elif node.kind is OpKind.SHIFT:
            src = graph.node(node.srcs[0])
            src_bits = nl.node_bits[node.srcs[0]]
            e = node.fmt.frac - src.fmt.frac - node.shift
            bits = []
            for j in range(width):
                k = j - e
                if k < 0:
                    bits.append(nl.CONST0)
                elif k >= src.fmt.width:
                    bits.append(src_bits[-1])  # sign extension
                else:
                    bits.append(src_bits[k])
        elif node.kind in (OpKind.ADD, OpKind.SUB):
            a_node, b_node = (graph.node(s) for s in node.srcs)
            a_bits = _sign_extend_bits(nl.node_bits[node.srcs[0]], width)
            b_bits = _sign_extend_bits(nl.node_bits[node.srcs[1]], width)
            if node.kind is OpKind.SUB:
                b_bits = [
                    nl.add_gate("not", [b], f"n{nid}.binv{j}")
                    for j, b in enumerate(b_bits)
                ]
            carry = nl.CONST1 if node.kind is OpKind.SUB else nl.CONST0
            bits = []
            for j in range(width):
                if j == 0:
                    kind = "lsb1" if node.kind is OpKind.SUB else "lsb0"
                elif j == width - 1:
                    kind = "msb"
                else:
                    kind = "full"
                s, carry = _elaborate_cell(nl, kind, nid, j, a_bits[j], b_bits[j], carry)
                bits.append(s)
        elif node.kind is OpKind.OUTPUT:
            bits = list(nl.node_bits[node.srcs[0]])
            nl.output_bits = bits
        else:  # pragma: no cover - exhaustive over OpKind
            raise DesignError(f"unhandled node kind {node.kind}")
        nl.node_bits[nid] = bits
    return nl
