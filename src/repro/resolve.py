"""Shared name resolution for designs and generators.

The CLI, the evaluation service and the examples all accept design and
generator names from the outside world.  This module is the single
place that turns those strings into canonical keys, with one behaviour
everywhere: an unknown name raises :class:`UnknownNameError`, whose
message is a single line listing the valid choices.  The CLI prints
that line and exits 2; the service returns it as an HTTP 400.

Two generator namespaces exist historically — the lowercase CLI
spellings (``lfsr1``, ``lfsrd``, ...) and the paper's sweep keys
(``LFSR-1``, ``LFSR-D``, ...).  Both resolvers accept either spelling,
case-insensitively, and return the canonical form of their namespace.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .errors import ReproError

__all__ = [
    "DESIGN_NAMES",
    "GENERATOR_CHOICES",
    "SWEEP_GENERATOR_KEYS",
    "UnknownNameError",
    "make_generator",
    "resolve_design",
    "resolve_generator",
    "resolve_generator_key",
    "resolve_names",
]

#: The Table 1 reference designs.
DESIGN_NAMES: Tuple[str, ...] = ("LP", "BP", "HP")

#: Canonical CLI generator spellings (``grade``/``spectrum``/``profile``).
GENERATOR_CHOICES: Tuple[str, ...] = ("lfsr1", "lfsr2", "lfsrd", "lfsrm",
                                      "ramp", "mixed", "white")

#: Canonical sweep keys (``sweep``/``bench``/service grids, Tables 4-6).
SWEEP_GENERATOR_KEYS: Tuple[str, ...] = ("LFSR-1", "LFSR-2", "LFSR-D",
                                         "LFSR-M", "Ramp", "Mixed")

#: lowercase alias -> canonical CLI spelling.
_CLI_ALIASES = {
    "lfsr-1": "lfsr1", "lfsr-2": "lfsr2", "lfsr-d": "lfsrd",
    "lfsr-m": "lfsrm",
}

#: canonical CLI spelling -> sweep key (``white`` has no sweep key: the
#: white-noise source is not one of the paper's hardware generators).
_CLI_TO_SWEEP = {
    "lfsr1": "LFSR-1", "lfsr2": "LFSR-2", "lfsrd": "LFSR-D",
    "lfsrm": "LFSR-M", "ramp": "Ramp", "mixed": "Mixed",
}


class UnknownNameError(ReproError):
    """An externally supplied name that resolves to nothing.

    Carries the offending name and the valid choices so front-ends can
    re-render the message; ``str()`` is already the one-line form.
    """

    def __init__(self, kind: str, name: object, choices: Sequence[str]):
        self.kind = kind
        self.name = name
        self.choices = tuple(choices)
        super().__init__(f"unknown {kind} {name!r}; "
                         f"valid choices: {', '.join(self.choices)}")


def resolve_design(name: object) -> str:
    """Canonical design name (``"lp"`` -> ``"LP"``), or raise."""
    cand = str(name).strip().upper()
    if cand in DESIGN_NAMES:
        return cand
    raise UnknownNameError("design", name, sorted(DESIGN_NAMES))


def resolve_generator(name: object) -> str:
    """Canonical CLI generator spelling (``"LFSR-1"`` -> ``"lfsr1"``)."""
    cand = str(name).strip().lower()
    cand = _CLI_ALIASES.get(cand, cand)
    if cand in GENERATOR_CHOICES:
        return cand
    raise UnknownNameError("generator", name, GENERATOR_CHOICES)


def resolve_generator_key(name: object) -> str:
    """Canonical sweep key (``"lfsr1"`` -> ``"LFSR-1"``), or raise."""
    try:
        cand = resolve_generator(name)
    except UnknownNameError:
        raise UnknownNameError("generator", name,
                               SWEEP_GENERATOR_KEYS) from None
    key = _CLI_TO_SWEEP.get(cand)
    if key is None:  # e.g. "white": valid CLI spelling, not a sweep key
        raise UnknownNameError("generator", name, SWEEP_GENERATOR_KEYS)
    return key


def resolve_names(raw: str, resolver) -> List[str]:
    """Resolve a comma-separated list through ``resolver``, dropping
    empty items and duplicates while preserving order."""
    out: List[str] = []
    for token in str(raw).split(","):
        token = token.strip()
        if not token:
            continue
        name = resolver(token)
        if name not in out:
            out.append(name)
    return out


def make_generator(kind: str, width: int, vectors: int):
    """Instantiate a generator by any accepted spelling.

    ``vectors`` sets the mixed generator's switch point (halfway, the
    paper's Section 9 recipe).
    """
    from .generators import (
        DecorrelatedLfsr,
        MaxVarianceLfsr,
        MixedModeLfsr,
        RampGenerator,
        Type1Lfsr,
        Type2Lfsr,
        UniformWhiteGenerator,
    )

    kind = resolve_generator(kind)
    if kind == "lfsr1":
        return Type1Lfsr(width)
    if kind == "lfsr2":
        return Type2Lfsr(width)
    if kind == "lfsrd":
        return DecorrelatedLfsr(width)
    if kind == "lfsrm":
        return MaxVarianceLfsr(width)
    if kind == "ramp":
        return RampGenerator(width)
    if kind == "mixed":
        return MixedModeLfsr(width, switch_after=max(1, vectors // 2))
    assert kind == "white"
    return UniformWhiteGenerator(width)
