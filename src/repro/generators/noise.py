"""Idealized white-noise sources.

These model the *theoretical* generators the paper's analyses assume:

* :class:`UniformWhiteGenerator` — statistically independent words,
  uniform over the full range (variance 1/3).  Figure 9's "idealized test
  generator producing statistically independent vectors".
* :class:`BernoulliSignGenerator` — independent ±full-scale words
  (variance 1), the idealized counterpart of LFSR-M.

They use a seeded numpy PRNG, so runs are reproducible, but they have no
hardware realization — they exist to separate "LFSR structure" effects
from "spectrum shape" effects in the analyses and tests.
"""

from __future__ import annotations

import numpy as np

from .base import TestGenerator

__all__ = ["UniformWhiteGenerator", "BernoulliSignGenerator"]


class UniformWhiteGenerator(TestGenerator):
    """Independent words uniform over the full two's-complement range."""

    def __init__(self, width: int, seed: int = 12345):
        super().__init__(width, f"White/{width}")
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def generate(self, n: int) -> np.ndarray:
        half = 1 << (self.width - 1)
        return self._rng.integers(-half, half, size=n, dtype=np.int64)

    def hardware_cost(self):
        return {"dff": 0, "gates": 0}


class BernoulliSignGenerator(TestGenerator):
    """Independent ±full-scale words (idealized maximum-variance source)."""

    def __init__(self, width: int, seed: int = 54321):
        super().__init__(width, f"Sign/{width}")
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def generate(self, n: int) -> np.ndarray:
        half = 1 << (self.width - 1)
        bits = self._rng.integers(0, 2, size=n, dtype=np.int64)
        return np.where(bits.astype(bool), half - 1, -half)

    def hardware_cost(self):
        return {"dff": 0, "gates": 0}
