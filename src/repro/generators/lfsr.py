"""Linear-feedback shift-register cores.

Two classical structures (Abramovici et al. [9] of the paper):

* **Fibonacci / Type 1** — external XOR tree: one feedback bit computed
  from the tapped stages, shifted into one end of the register.  All
  register stages carry the *same* m-sequence at different delays, so a
  word read across the register is a sliding window of the bit stream.
* **Galois / Type 2** — embedded XORs between stages: each stage sees a
  differently-combined sequence, making the word spectrum depend on the
  polynomial and shift direction.

Shift directions follow the paper's naming: ``"msb_to_lsb"`` means the
new bit enters the MSB and register contents move toward the LSB;
``"lsb_to_msb"`` is the reverse.  For the Fibonacci word sequence this
only time-reverses the window, leaving the power spectrum unchanged
(Section 6); for Galois structures it matters.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeneratorError
from .base import TestGenerator
from .polynomials import default_poly, degree

__all__ = ["FibonacciLfsr", "GaloisLfsr", "bit_stream_to_words"]

_DIRECTIONS = ("msb_to_lsb", "lsb_to_msb")


def _recurrence_mask(poly: int, width: int) -> int:
    """Mask over the last ``width`` stream bits for the m-sequence recurrence.

    The stream satisfies ``s[n] = XOR_{i<N, p_i=1} s[n - (N - i)]``; bit
    ``j`` of the mask selects ``s[n-1-j]``, so the mask has bit ``N-i-1``
    set for every nonzero low-order coefficient ``p_i``.
    """
    mask = 0
    for i in range(width):
        if poly & (1 << i):
            mask |= 1 << (width - i - 1)
    return mask


def bit_stream_to_words(bits: np.ndarray, width: int, direction: str) -> np.ndarray:
    """Sliding-window words over an m-sequence bit stream.

    ``bits`` must hold ``n + width - 1`` stream bits; the result has ``n``
    words.  For ``msb_to_lsb`` the newest bit occupies the word MSB; for
    ``lsb_to_msb`` it occupies the LSB.
    """
    if direction not in _DIRECTIONS:
        raise GeneratorError(f"unknown shift direction {direction!r}")
    windows = np.lib.stride_tricks.sliding_window_view(bits, width)
    # windows[t, j] = bits[t + j]; the newest bit of word t is bits[t+width-1].
    if direction == "msb_to_lsb":
        # Newest bit (j = width-1) sits at the word MSB, oldest at the LSB.
        weights = 1 << np.arange(width, dtype=np.int64)
    else:
        # Newest bit sits at the word LSB.
        weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    unsigned = windows.astype(np.int64) @ weights
    half = np.int64(1 << (width - 1))
    return (unsigned + half) % (1 << width) - half


class FibonacciLfsr(TestGenerator):
    """Type 1 (external-XOR) LFSR emitting its full register each clock."""

    def __init__(
        self,
        width: int,
        poly: int = 0,
        seed: int = 1,
        direction: str = "msb_to_lsb",
        name: str = "",
    ):
        super().__init__(width, name or f"LFSR-1/{width}")
        self.poly = poly or default_poly(width)
        if degree(self.poly) != width:
            raise GeneratorError(
                f"polynomial degree {degree(self.poly)} != width {width}"
            )
        if direction not in _DIRECTIONS:
            raise GeneratorError(f"unknown shift direction {direction!r}")
        mask = (1 << width) - 1
        self.seed = seed & mask
        if self.seed == 0:
            raise GeneratorError("LFSR seed must be nonzero")
        self.direction = direction
        self._recur = _recurrence_mask(self.poly, width)
        self.reset()

    def reset(self) -> None:
        # The register holds the last `width` stream bits, newest in bit 0.
        self._history = self.seed

    def _next_bits(self, n: int) -> np.ndarray:
        """Advance the stream by ``n`` bits and return them."""
        out = np.empty(n, dtype=np.uint8)
        hist = self._history
        recur = self._recur
        mask = (1 << self.width) - 1
        for i in range(n):
            b = bin(hist & recur).count("1") & 1
            hist = ((hist << 1) | b) & mask
            out[i] = b
        self._history = hist
        return out

    def bit_stream(self, n: int) -> np.ndarray:
        """The raw pseudo-random bit stream (advances state)."""
        return self._next_bits(n)

    def generate(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(0, dtype=np.int64)
        # Seed the window with the current register contents, then extend.
        prefix = np.array(
            [(self._history >> (self.width - 1 - j)) & 1 for j in range(self.width)],
            dtype=np.uint8,
        )
        # prefix is oldest-first: prefix[j] = s[n0 - width + j].
        new_bits = self._next_bits(n)
        stream = np.concatenate([prefix, new_bits])
        words = bit_stream_to_words(stream[1:], self.width, self.direction)
        return words[:n]

    def hardware_cost(self):
        taps = bin(self.poly & ((1 << self.width) - 1)).count("1")
        return {"dff": self.width, "gates": max(0, taps - 1)}


class GaloisLfsr(TestGenerator):
    """Type 2 (internal-XOR) LFSR emitting its full register each clock."""

    def __init__(
        self,
        width: int,
        poly: int = 0,
        seed: int = 1,
        direction: str = "lsb_to_msb",
        name: str = "",
    ):
        super().__init__(width, name or f"LFSR-2/{width}")
        self.poly = poly or default_poly(width)
        if degree(self.poly) != width:
            raise GeneratorError(
                f"polynomial degree {degree(self.poly)} != width {width}"
            )
        if direction not in _DIRECTIONS:
            raise GeneratorError(f"unknown shift direction {direction!r}")
        mask = (1 << width) - 1
        self.seed = seed & mask
        if self.seed == 0:
            raise GeneratorError("LFSR seed must be nonzero")
        self.direction = direction
        self.reset()

    def reset(self) -> None:
        self._state = self.seed

    def _step(self) -> int:
        mask = (1 << self.width) - 1
        low = self.poly & mask
        state = self._state
        if self.direction == "lsb_to_msb":
            # Contents move toward the MSB; the recirculated bit leaves the
            # MSB and XORs into the tapped stages.
            msb = (state >> (self.width - 1)) & 1
            state = ((state << 1) & mask) ^ (low if msb else 0)
        else:
            # Contents move toward the LSB; the bit leaving the LSB XORs in.
            lsb = state & 1
            state >>= 1
            if lsb:
                # Reflect the polynomial onto the right-shifting register.
                state ^= _reflect(low, self.width)
        self._state = state
        return state

    def generate(self, n: int) -> np.ndarray:
        out = np.empty(max(n, 0), dtype=np.int64)
        half = 1 << (self.width - 1)
        span = 1 << self.width
        for i in range(n):
            out[i] = (self._step() + half) % span - half
        return out

    def hardware_cost(self):
        taps = bin(self.poly & ((1 << self.width) - 1)).count("1")
        return {"dff": self.width, "gates": max(0, taps - 1)}


def _reflect(value: int, width: int) -> int:
    out = 0
    for i in range(width):
        if value & (1 << i):
            out |= 1 << (width - 1 - i)
    return out
