"""Quantized sine-wave source.

Not a BIST generator — a stand-in for the filter's *normal operating
signal*.  The fault-injection experiment of Section 5 (Figure 2) drives
the faulty lowpass filter with a sine wave inside its passband to show
the missed fault producing spike trains at the output.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeneratorError
from .base import TestGenerator

__all__ = ["SineGenerator"]


class SineGenerator(TestGenerator):
    """``amplitude * sin(2*pi*freq*n + phase)`` quantized to the word grid.

    ``freq`` is in cycles/sample (0 to 0.5); ``amplitude`` is normalized
    (1.0 = full scale, clipped to the largest representable value).
    """

    def __init__(self, width: int, freq: float, amplitude: float = 0.9,
                 phase: float = 0.0):
        super().__init__(width, f"Sine/{width}@{freq:g}")
        if not 0.0 < freq <= 0.5:
            raise GeneratorError(f"freq must be in (0, 0.5], got {freq}")
        if not 0.0 < amplitude <= 1.0:
            raise GeneratorError(f"amplitude must be in (0, 1], got {amplitude}")
        self.freq = float(freq)
        self.amplitude = float(amplitude)
        self.phase = float(phase)
        self.reset()

    def reset(self) -> None:
        self._n = 0

    def generate(self, n: int) -> np.ndarray:
        t = self._n + np.arange(n, dtype=np.float64)
        self._n += n
        half = 1 << (self.width - 1)
        value = self.amplitude * np.sin(2.0 * np.pi * self.freq * t + self.phase)
        raw = np.floor(value * half + 0.5).astype(np.int64)
        return np.clip(raw, -half, half - 1)

    def hardware_cost(self):
        # Normal-mode stimulus, not test hardware.
        return {"dff": 0, "gates": 0}
