"""Mixed (mode-switching) test generation schemes — Section 9.

The paper's low-cost scheme runs one LFSR and switches its *output
network* mid-session: normal mode (full register word) first, then
maximum-variance mode (one bit selects ±full-scale).  Normal mode covers
the low-order adder bits; maximum-variance mode restores passband power
and exercises the upper bits, compensating the Type 1 rolloff.

:class:`MixedModeLfsr` models exactly that single-LFSR scheme (the state
keeps running across the switch, as in hardware).
:class:`SwitchedGenerator` is the general composition of arbitrary
generator phases used for the LFSR-D/LFSR-M comparison in Table 6.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import GeneratorError
from .base import TestGenerator
from .lfsr import FibonacciLfsr

__all__ = ["MixedModeLfsr", "SwitchedGenerator"]


class MixedModeLfsr(TestGenerator):
    """One Type 1 LFSR, switched to maximum-variance mode after a point.

    ``switch_after`` counts vectors from the start of the session; the
    underlying register keeps clocking through the switch.
    """

    def __init__(self, width: int, switch_after: int, poly: int = 0,
                 seed: int = 1, direction: str = "msb_to_lsb"):
        super().__init__(width, f"LFSR-1+M/{width}@{switch_after}")
        if switch_after < 0:
            raise GeneratorError("switch_after must be >= 0")
        self.switch_after = int(switch_after)
        self._core = FibonacciLfsr(width, poly=poly, seed=seed,
                                   direction=direction)
        self.poly = self._core.poly
        self.reset()

    def reset(self) -> None:
        self._core.reset()
        self._emitted = 0

    def generate(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        produced = 0
        normal_left = max(0, self.switch_after - self._emitted)
        if normal_left > 0:
            take = min(n, normal_left)
            out[:take] = self._core.generate(take)
            produced = take
        if produced < n:
            bits = self._core.bit_stream(n - produced)
            most_positive = np.int64((1 << (self.width - 1)) - 1)
            most_negative = np.int64(-(1 << (self.width - 1)))
            out[produced:] = np.where(bits.astype(bool), most_positive,
                                      most_negative)
        self._emitted += n
        return out

    def hardware_cost(self):
        base = self._core.hardware_cost()
        # Mode multiplexing: one 2:1 mux (~3 gates) per output bit.
        return {"dff": base["dff"], "gates": base["gates"] + 3 * self.width}


class SwitchedGenerator(TestGenerator):
    """Sequential composition of generator phases.

    ``phases`` is a list of ``(generator, n_vectors)``; the final phase
    may use ``n_vectors = None`` to run indefinitely.  All generators
    must share the same width.
    """

    def __init__(self, phases: Sequence[Tuple[TestGenerator, object]],
                 name: str = ""):
        if not phases:
            raise GeneratorError("need at least one phase")
        width = phases[0][0].width
        for gen, count in phases:
            if gen.width != width:
                raise GeneratorError("all phases must share one width")
            if count is not None and int(count) <= 0:
                raise GeneratorError("phase lengths must be positive")
        for gen, count in phases[:-1]:
            if count is None:
                raise GeneratorError("only the last phase may be unbounded")
        label = name or "+".join(g.name for g, _ in phases)
        super().__init__(width, label)
        self.phases: List[Tuple[TestGenerator, object]] = [
            (g, None if c is None else int(c)) for g, c in phases
        ]
        self.reset()

    def reset(self) -> None:
        for gen, _ in self.phases:
            gen.reset()
        self._phase = 0
        self._used = 0  # vectors taken from the current phase

    def generate(self, n: int) -> np.ndarray:
        chunks = []
        remaining = n
        while remaining > 0:
            if self._phase >= len(self.phases):
                raise GeneratorError("all bounded phases exhausted")
            gen, count = self.phases[self._phase]
            if count is None:
                chunks.append(gen.generate(remaining))
                remaining = 0
                break
            left = count - self._used
            take = min(left, remaining)
            if take > 0:
                chunks.append(gen.generate(take))
                self._used += take
                remaining -= take
            if self._used >= count:
                self._phase += 1
                self._used = 0
        return np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)

    def hardware_cost(self):
        dff = sum(g.hardware_cost()["dff"] for g, _ in self.phases)
        gates = sum(g.hardware_cost()["gates"] for g, _ in self.phases)
        return {"dff": dff, "gates": gates + 3 * self.width}
