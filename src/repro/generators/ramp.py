"""Counter-based (Ramp) test generator.

Counters are often already present on-chip and are sometimes reused as
test generators (Gupta/Rajski/Tyszer, ref [10] of the paper).  Read as a
two's-complement word, a free-running counter produces a sawtooth that
sweeps the full input range — concentrating essentially all signal power
at very low frequencies, which is why the paper finds it adequate for
lowpass filters and hopeless for highpass ones.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeneratorError
from .base import TestGenerator

__all__ = ["RampGenerator"]


class RampGenerator(TestGenerator):
    """A count-by-``step`` counter read as a two's-complement word."""

    def __init__(self, width: int, step: int = 1, start: int = 0):
        super().__init__(width, f"Ramp/{width}" if step == 1 else
                         f"Ramp/{width}x{step}")
        if step % (1 << width) == 0:
            raise GeneratorError("step must not be a multiple of 2**width")
        self.step = int(step)
        self.start = int(start)
        self.reset()

    def reset(self) -> None:
        self._count = self.start

    def generate(self, n: int) -> np.ndarray:
        span = 1 << self.width
        half = 1 << (self.width - 1)
        idx = self._count + self.step * np.arange(n, dtype=np.int64)
        self._count = int(self._count + self.step * n)
        return (idx + half) % span - half

    def hardware_cost(self):
        # An incrementer: one half-adder per stage.
        return {"dff": self.width, "gates": 2 * self.width}
