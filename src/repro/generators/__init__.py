"""On-chip test-pattern generators (Section 6 of the paper)."""

from .base import TestGenerator, match_width
from .polynomials import (
    PAPER_TYPE2_POLY_12,
    PRIMITIVE_POLYS,
    default_poly,
    degree,
    is_maximal_length,
    reciprocal,
    search_primitive_polys,
)
from .lfsr import FibonacciLfsr, GaloisLfsr, bit_stream_to_words
from .variants import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    PermutedLfsr,
    Type1Lfsr,
    Type2Lfsr,
)
from .ramp import RampGenerator
from .sine import SineGenerator
from .noise import BernoulliSignGenerator, UniformWhiteGenerator
from .mixed import MixedModeLfsr, SwitchedGenerator

__all__ = [
    "TestGenerator",
    "match_width",
    "PRIMITIVE_POLYS",
    "PAPER_TYPE2_POLY_12",
    "default_poly",
    "degree",
    "reciprocal",
    "is_maximal_length",
    "search_primitive_polys",
    "FibonacciLfsr",
    "GaloisLfsr",
    "bit_stream_to_words",
    "Type1Lfsr",
    "Type2Lfsr",
    "DecorrelatedLfsr",
    "MaxVarianceLfsr",
    "PermutedLfsr",
    "RampGenerator",
    "SineGenerator",
    "UniformWhiteGenerator",
    "BernoulliSignGenerator",
    "MixedModeLfsr",
    "SwitchedGenerator",
]
