"""Feedback polynomials for LFSR test-pattern generators.

Polynomials are integers whose bit ``i`` is the coefficient of ``x**i``;
a degree-``N`` polynomial has bit ``N`` set and (for any useful LFSR)
bit 0 set.  ``PRIMITIVE_POLYS`` lists one known primitive polynomial per
width — primitive feedback gives the maximal period ``2**N - 1`` and the
balanced, decorrelated bit stream the paper's Type 1 spectrum analysis
assumes.  ``PAPER_TYPE2_POLY_12`` is the polynomial 12B9h the paper uses
for its Type 2 example (Section 6).
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import GeneratorError

__all__ = [
    "PRIMITIVE_POLYS",
    "PAPER_TYPE2_POLY_12",
    "degree",
    "reciprocal",
    "default_poly",
    "is_maximal_length",
    "search_primitive_polys",
]

PRIMITIVE_POLYS = {
    2: 0x7,        # x^2 + x + 1
    3: 0xB,        # x^3 + x + 1
    4: 0x13,       # x^4 + x + 1
    5: 0x25,       # x^5 + x^2 + 1
    6: 0x43,       # x^6 + x + 1
    7: 0x89,       # x^7 + x^3 + 1
    8: 0x11D,      # x^8 + x^4 + x^3 + x^2 + 1
    9: 0x211,      # x^9 + x^4 + 1
    10: 0x409,     # x^10 + x^3 + 1
    11: 0x805,     # x^11 + x^2 + 1
    12: 0x1053,    # x^12 + x^6 + x^4 + x + 1
    13: 0x201B,    # x^13 + x^4 + x^3 + x + 1
    14: 0x4443,    # x^14 + x^10 + x^6 + x + 1
    15: 0x8003,    # x^15 + x + 1
    16: 0x1100B,   # x^16 + x^12 + x^3 + x + 1
    17: 0x20009,   # x^17 + x^3 + 1
    18: 0x40081,   # x^18 + x^7 + 1
    19: 0x80027,   # x^19 + x^5 + x^2 + x + 1
    20: 0x100009,  # x^20 + x^3 + 1
    21: 0x200005,  # x^21 + x^2 + 1
    22: 0x400003,  # x^22 + x + 1
    23: 0x800021,  # x^23 + x^5 + 1
    24: 0x1000087, # x^24 + x^7 + x^2 + x + 1
}

#: Polynomial 12B9h from Section 6 of the paper (Type 2 LFSR example):
#: x^12 + x^9 + x^7 + x^5 + x^4 + x^3 + 1.
PAPER_TYPE2_POLY_12 = 0x12B9


def degree(poly: int) -> int:
    """Degree of the polynomial (position of its highest set bit)."""
    if poly <= 0:
        raise GeneratorError(f"invalid polynomial {poly:#x}")
    return poly.bit_length() - 1


def reciprocal(poly: int) -> int:
    """The reciprocal polynomial ``x**N * p(1/x)`` (bit reversal).

    The paper notes that using the reciprocal can move a Type 2 LFSR's
    XOR gates closer to the MSB and flatten its spectrum.
    """
    n = degree(poly)
    out = 0
    for i in range(n + 1):
        if poly & (1 << i):
            out |= 1 << (n - i)
    return out


def default_poly(width: int) -> int:
    """The library's default (primitive) polynomial for a width."""
    try:
        return PRIMITIVE_POLYS[width]
    except KeyError:
        raise GeneratorError(
            f"no default polynomial for width {width}; supply one explicitly"
        ) from None


def search_primitive_polys(width: int, count: int) -> list:
    """Find ``count`` distinct maximal-length polynomials of a width.

    Brute force over odd candidates with an explicit period check, so
    keep to ``width <= 16`` or so.  Used by the polynomial-insensitivity
    study (the paper: the Type 1 spectrum "is not sensitive to the
    particular seed or polynomial used").
    """
    if count < 1:
        raise GeneratorError(f"count must be >= 1, got {count}")
    found = []
    base = 1 << width
    for low in range(3, base, 2):  # bit 0 must be set for maximal length
        poly = base | low
        if is_maximal_length(poly):
            found.append(poly)
            if len(found) == count:
                return found
    raise GeneratorError(
        f"only {len(found)} primitive polynomials of degree {width} exist"
    )


@lru_cache(maxsize=None)
def is_maximal_length(poly: int) -> bool:
    """True when the feedback polynomial yields period ``2**N - 1``.

    Checked by explicit Galois-LFSR iteration, so keep to ``N <= 20`` or
    so; results are cached.
    """
    n = degree(poly)
    if not poly & 1:
        return False  # x divides p(x): degenerate feedback
    mask = (1 << n) - 1
    low = poly & mask
    state = 1
    period = 0
    while True:
        msb = (state >> (n - 1)) & 1
        state = ((state << 1) & mask) ^ (low if msb else 0)
        period += 1
        if state == 1:
            break
        if period > (1 << n):
            raise GeneratorError(f"LFSR with poly {poly:#x} never recycles")
    return period == (1 << n) - 1
