"""Common interface for on-chip test-pattern generators.

Every generator produces a stream of ``width``-bit two's-complement raw
words that feed the filter input directly.  Interpreted per the paper's
convention, each word is a value in ``[-1, 1)`` (normalize by
``2**(width-1)``).

Generators are *stateful iterators*: ``generate(n)`` returns the next
``n`` words and advances the state, exactly like clocking the hardware n
times; ``reset()`` returns to the seed state.  All randomness is
deterministic given the constructor arguments, so every experiment in
this package is reproducible bit-for-bit.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from ..errors import GeneratorError
from ..fixedpoint import Fixed
from ..telemetry import get_telemetry

__all__ = ["TestGenerator", "match_width"]


def match_width(raw: np.ndarray, src_width: int, dst_width: int) -> np.ndarray:
    """Adapt generator words to a consumer of a different width.

    Hardware-wise this is wiring: a wider word drops LSBs (the consumer
    connects to the upper wires), a narrower word feeds the upper bits
    with zeros on the remaining LSBs.  Normalized value is preserved up
    to LSB truncation.
    """
    delta = dst_width - src_width
    if delta == 0:
        return raw
    if delta > 0:
        return raw << delta
    return raw >> -delta


class TestGenerator(abc.ABC):
    """Abstract base class for BIST test-pattern generators."""

    def __init__(self, width: int, name: str):
        if width < 2:
            raise GeneratorError(f"generator width must be >= 2, got {width}")
        self.width = width
        self.name = name

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def generate(self, n: int) -> np.ndarray:
        """Next ``n`` raw two's-complement words (int64 array)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return to the initial (seed) state."""

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> Fixed:
        """Output word format: full-range fractional two's complement."""
        return Fixed(self.width, self.width - 1)

    def normalized(self, n: int) -> np.ndarray:
        """Next ``n`` samples as normalized floats in [-1, 1)."""
        return self.generate(n) / float(1 << (self.width - 1))

    def sequence(self, n: int) -> np.ndarray:
        """``reset()`` then ``generate(n)`` — a fresh test session."""
        tel = get_telemetry()
        with tel.span("generators.sequence", generator=self.name, words=n):
            self.reset()
            out = self.generate(n)
        if tel.enabled:
            tel.counter("generators.words").add(n)
            tel.counter(f"generators.words.{self.name}").add(n)
        return out

    def __iter__(self):
        """Iterate the stream one word at a time (clocking the hardware).

        Infinite iterator; each step draws one word via :meth:`generate`
        and counts it on the ``generators.steps`` telemetry counter.
        """
        tel = get_telemetry()
        steps = tel.counter("generators.steps")
        while True:
            word = self.generate(1)
            steps.add(1)
            yield int(word[0])

    def hardware_cost(self) -> Dict[str, int]:
        """Rough implementation cost: flip-flops and 2-input gates.

        Subclasses refine this; the base estimate is register-only.
        """
        return {"dff": self.width, "gates": 0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} width={self.width}>"
