"""The paper's named test generators: LFSR-1, LFSR-2, LFSR-D, LFSR-M.

These wrap the LFSR cores of :mod:`repro.generators.lfsr` with the output
networks Section 6 describes:

* ``Type1Lfsr`` (**LFSR-1**) — plain Fibonacci LFSR, full register per
  test.  Signal variance 0.3333 with reduced low-frequency power.
* ``Type2Lfsr`` (**LFSR-2**) — Galois LFSR; spectrum depends on the
  polynomial and shift direction.
* ``DecorrelatedLfsr`` (**LFSR-D**) — a Type 1 LFSR followed by an XOR
  decorrelator that inverts all bits *other than the LSB* whenever the
  LSB is 1.  Flat spectrum, variance still 0.3333, no repeated vectors.
* ``MaxVarianceLfsr`` (**LFSR-M**) — one LFSR bit per test selects the
  most positive or most negative word.  Variance 1, flat spectrum, but
  adjacent output bits are fully correlated, so low-order adder bits see
  only a fraction of the test patterns.
* ``PermutedLfsr`` — a Type 1 LFSR with an output permutation network,
  the spectrum-shaping variation mentioned at the end of Section 6's
  Type 1 discussion.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import GeneratorError
from .base import TestGenerator
from .lfsr import FibonacciLfsr, GaloisLfsr
from .polynomials import PAPER_TYPE2_POLY_12

__all__ = [
    "Type1Lfsr",
    "Type2Lfsr",
    "DecorrelatedLfsr",
    "MaxVarianceLfsr",
    "PermutedLfsr",
]


class Type1Lfsr(FibonacciLfsr):
    """LFSR-1: external-XOR LFSR, whole register read as the test word."""

    def __init__(self, width: int, poly: int = 0, seed: int = 1,
                 direction: str = "msb_to_lsb"):
        super().__init__(width, poly=poly, seed=seed, direction=direction,
                         name=f"LFSR-1/{width}")


class Type2Lfsr(GaloisLfsr):
    """LFSR-2: embedded-XOR LFSR.

    Defaults to the paper's 12-bit example polynomial 12B9h with
    LSB-to-MSB shifting when ``width == 12`` and no polynomial is given.
    """

    def __init__(self, width: int, poly: int = 0, seed: int = 1,
                 direction: str = "lsb_to_msb"):
        if poly == 0 and width == 12:
            poly = PAPER_TYPE2_POLY_12
        super().__init__(width, poly=poly, seed=seed, direction=direction,
                         name=f"LFSR-2/{width}")


class DecorrelatedLfsr(TestGenerator):
    """LFSR-D: Type 1 LFSR plus the paper's XOR decorrelator network.

    Whenever the word LSB is 1, all other bits are inverted.  This keeps
    the maximal-length properties (no repeated vectors, near-zero mean,
    variance 0.3333) while spreading power evenly over frequency.
    """

    def __init__(self, width: int, poly: int = 0, seed: int = 1,
                 direction: str = "msb_to_lsb"):
        super().__init__(width, f"LFSR-D/{width}")
        self._core = FibonacciLfsr(width, poly=poly, seed=seed,
                                   direction=direction)
        self.poly = self._core.poly

    def reset(self) -> None:
        self._core.reset()

    def generate(self, n: int) -> np.ndarray:
        words = self._core.generate(n)
        invert_mask = np.int64(((1 << self.width) - 1) & ~1)
        lsb_set = (words & 1).astype(bool)
        flipped = words ^ invert_mask
        # XOR on two's-complement raw values stays in range: only bits
        # 1..width-1 are touched, including the sign bit.
        half = np.int64(1 << (self.width - 1))
        span = np.int64(1 << self.width)
        flipped = (flipped + half) % span - half
        return np.where(lsb_set, flipped, words)

    def hardware_cost(self):
        base = self._core.hardware_cost()
        return {"dff": base["dff"], "gates": base["gates"] + self.width - 1}


class MaxVarianceLfsr(TestGenerator):
    """LFSR-M: the LFSR bit stream selects +full-scale or -full-scale.

    Variance 1 (neglecting the asymmetry of two's complement: the word is
    ``2**(width-1) - 1`` or ``-2**(width-1)``), with a flat spectrum.
    """

    def __init__(self, width: int, poly: int = 0, seed: int = 1):
        super().__init__(width, f"LFSR-M/{width}")
        self._core = FibonacciLfsr(width, poly=poly, seed=seed)
        self.poly = self._core.poly

    def reset(self) -> None:
        self._core.reset()

    def generate(self, n: int) -> np.ndarray:
        bits = self._core.bit_stream(n)
        most_positive = np.int64((1 << (self.width - 1)) - 1)
        most_negative = np.int64(-(1 << (self.width - 1)))
        return np.where(bits.astype(bool), most_positive, most_negative)

    def hardware_cost(self):
        # Mode selection is wiring (replicate one stage across the word).
        return self._core.hardware_cost()


class PermutedLfsr(TestGenerator):
    """A Type 1 LFSR with a fixed output-bit permutation network.

    Section 6 notes the Type 1 spectrum "can be altered by some
    permutations of the output bits"; this wrapper applies an arbitrary
    permutation so that effect can be studied (see the ablation bench).
    """

    def __init__(self, width: int, permutation: Sequence[int],
                 poly: int = 0, seed: int = 1,
                 direction: str = "msb_to_lsb"):
        super().__init__(width, f"LFSR-P/{width}")
        if sorted(permutation) != list(range(width)):
            raise GeneratorError("permutation must rearrange 0..width-1")
        self.permutation = tuple(int(p) for p in permutation)
        self._core = FibonacciLfsr(width, poly=poly, seed=seed,
                                   direction=direction)
        self.poly = self._core.poly

    def reset(self) -> None:
        self._core.reset()

    def generate(self, n: int) -> np.ndarray:
        words = self._core.generate(n)
        out = np.zeros_like(words)
        for dst, src in enumerate(self.permutation):
            out |= ((words >> src) & 1) << dst
        half = np.int64(1 << (self.width - 1))
        span = np.int64(1 << self.width)
        return (out + half) % span - half
