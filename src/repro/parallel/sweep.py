"""Parallel design x generator coverage grids.

One :class:`SweepTask` names a session by content — design name,
generator key, vector count, generator width — so tasks pickle small
and every worker rebuilds exactly the session the parent would have
run.  Workers return bare detection-time arrays (a few hundred KB)
rather than full results; the parent reattaches its own
:class:`~repro.faultsim.dictionary.FaultUniverse` objects, keeping the
fan-out traffic flat in universe size.

With a cache directory, workers share the parent's content-addressed
store: the first process to grade a session publishes it, everyone
else — including every future run — loads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParallelError
from ..generators.base import TestGenerator
from ..generators.mixed import MixedModeLfsr
from ..generators.ramp import RampGenerator
from ..generators.variants import (
    DecorrelatedLfsr,
    MaxVarianceLfsr,
    Type1Lfsr,
    Type2Lfsr,
)
from .pool import parallel_map

__all__ = ["SweepTask", "SweepResult", "run_sweep", "sweep_generator",
           "GENERATOR_KEYS"]

#: Generator keys a sweep task may name (the paper's Tables 4-6 set).
GENERATOR_KEYS = ("LFSR-1", "LFSR-2", "LFSR-D", "LFSR-M", "Ramp", "Mixed")


@dataclass(frozen=True)
class SweepTask:
    """One coverage session of a grid, identified by content."""

    design: str
    generator: str
    n_vectors: int
    width: int = 12

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.design, self.generator, self.n_vectors)


@dataclass
class SweepResult:
    """What a worker ships back: the session's detection times."""

    task: SweepTask
    detect_time: np.ndarray
    fault_count: int


def sweep_generator(key: str, width: int, n_vectors: int) -> TestGenerator:
    """Instantiate the generator a sweep task names."""
    if key == "LFSR-1":
        return Type1Lfsr(width)
    if key == "LFSR-2":
        return Type2Lfsr(width)
    if key == "LFSR-D":
        return DecorrelatedLfsr(width)
    if key == "LFSR-M":
        return MaxVarianceLfsr(width)
    if key == "Ramp":
        return RampGenerator(width)
    if key == "Mixed":
        return MixedModeLfsr(width, switch_after=n_vectors // 2)
    raise ParallelError(f"unknown sweep generator {key!r}; "
                        f"choose from {GENERATOR_KEYS}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker-process state installed by :func:`_init_sweep_worker`.
_WORKER_CTX: Dict[str, Any] = {}


def _init_sweep_worker(cache_dir: Optional[str],
                       max_bytes: Optional[int],
                       coverage_cache: bool = True) -> None:
    from ..experiments.config import ExperimentContext

    cache = None
    if cache_dir is not None:
        from ..cache import ArtifactCache

        cache = ArtifactCache(cache_dir, max_bytes=max_bytes)
    ctx = ExperimentContext(cache=cache, coverage_cache=coverage_cache)
    # Under the fork start method the parent context (designs, universes,
    # netlists already materialized) rides into the child for free; adopt
    # its heavyweight artifacts but never its graded-session memo, so
    # workers always grade (or cache-load) their own sessions.
    parent = _WORKER_CTX.pop("parent", None)
    if parent is not None:
        ctx._designs = parent._designs
        ctx._universes = dict(parent._universes)
        ctx._netlists = dict(parent._netlists)
    _WORKER_CTX["ctx"] = ctx


def _run_sweep_task(task: SweepTask) -> SweepResult:
    ctx = _WORKER_CTX.get("ctx")
    if ctx is None:  # spawned outside parallel_map's initializer
        _init_sweep_worker(None, None)
        ctx = _WORKER_CTX["ctx"]
    gen = sweep_generator(task.generator, task.width, task.n_vectors)
    result = ctx.coverage(task.design, gen, task.n_vectors)
    return SweepResult(task=task,
                       detect_time=np.asarray(result.detect_time,
                                              dtype=np.int64),
                       fault_count=result.universe.fault_count)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_sweep(
    context,
    tasks: Sequence[SweepTask],
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List:
    """Grade a grid of sessions, fanning out across worker processes.

    ``context`` is the parent's
    :class:`~repro.experiments.config.ExperimentContext`; its designs
    and universes are materialized up front (so fork-started workers
    inherit them and the rehydrated results share the parent's universe
    objects), its cache configuration propagates to the workers, and
    every graded session lands in its memo table.  Returns
    :class:`~repro.faultsim.engine.CoverageResult` objects aligned with
    ``tasks``.
    """
    from ..faultsim.engine import coverage_from_detect_times

    tasks = list(tasks)
    for task in tasks:
        if task.design not in context.designs:
            raise ParallelError(f"unknown design {task.design!r}")
        context.universe(task.design)  # warm before forking

    cache = context.cache
    initargs = ((None, None, True) if cache is None
                else (cache.root, cache.max_bytes, context.coverage_cache))

    def _serial(chunk: Sequence[SweepTask]) -> List[SweepResult]:
        out = []
        for task in chunk:
            gen = sweep_generator(task.generator, task.width, task.n_vectors)
            result = context.coverage(task.design, gen, task.n_vectors)
            out.append(SweepResult(
                task=task,
                detect_time=np.asarray(result.detect_time, dtype=np.int64),
                fault_count=result.universe.fault_count))
        return out

    _WORKER_CTX["parent"] = context  # inherited by fork-started workers
    try:
        raw = parallel_map(
            _run_sweep_task, tasks, jobs=jobs, timeout=timeout,
            initializer=_init_sweep_worker, initargs=initargs,
            serial_fallback=_serial, label="parallel.sweep")
    finally:
        _WORKER_CTX.pop("parent", None)

    results = []
    for shipped in raw:
        task = shipped.task
        universe = context.universe(task.design)
        if shipped.fault_count != universe.fault_count:
            raise ParallelError(
                f"worker graded {shipped.fault_count} faults for "
                f"{task.design} but parent universe has "
                f"{universe.fault_count}")
        gen = sweep_generator(task.generator, task.width, task.n_vectors)
        result = coverage_from_detect_times(
            universe, shipped.detect_time, task.n_vectors,
            design_name=task.design, generator_name=gen.name)
        context.adopt_coverage(task.design, gen.name, task.n_vectors, result)
        results.append(result)
    return results
