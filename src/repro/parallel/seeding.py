"""Deterministic per-task seed derivation.

Every fan-out task gets a seed that is a pure function of the base seed
and the task's identity — never of scheduling order, worker identity or
wall clock — so a grid graded across 16 workers is bit-identical to the
same grid graded serially, and to itself on every rerun.
"""

from __future__ import annotations

import hashlib
from typing import List, Union

__all__ = ["derive_seed", "task_seeds", "DEFAULT_BASE_SEED"]

#: The package-wide base seed (the paper's publication year).
DEFAULT_BASE_SEED = 1997

_Component = Union[int, str]


def derive_seed(base_seed: int, *components: _Component) -> int:
    """A 63-bit seed derived from ``base_seed`` and task identity.

    SHA-256 over the canonical rendering of all components; collisions
    between distinct tasks are cryptographically negligible and the
    result is stable across platforms and Python versions.
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode("ascii"))
    for comp in components:
        h.update(b"\x1f")
        h.update(str(comp).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & ((1 << 63) - 1)


def task_seeds(base_seed: int, n: int, label: str = "") -> List[int]:
    """Independent seeds for ``n`` indexed tasks under one label."""
    return [derive_seed(base_seed, label, i) for i in range(n)]
