"""Process-pool fan-out with chunked queues and serial fallback.

:func:`parallel_map` is the execution primitive every fan-out in this
package goes through.  Contract:

* **Order-preserving** — results align with the input items regardless
  of completion order.
* **Deterministic** — workers receive only the task items; anything
  random must come from :mod:`repro.parallel.seeding`.
* **Self-healing** — a worker crash (``BrokenProcessPool``), a chunk
  timeout, or a pool that cannot even start (sandboxed environments)
  degrades to in-process serial execution of the unfinished chunks
  instead of failing the run.  Ordinary exceptions raised by the task
  function are *not* swallowed; they propagate to the caller.

The pool prefers the ``fork`` start method where available so workers
inherit warm per-process caches (reference designs, cell-variant
tables); elsewhere it falls back to the platform default.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ParallelError
from ..telemetry import TraceContext, child_collector, get_telemetry, set_telemetry

__all__ = ["parallel_map", "resolve_jobs", "default_chunk_size"]

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Chunks per worker the default chunking aims for; >1 smooths load
#: imbalance, small enough to keep per-chunk pickling overhead low.
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``$REPRO_JOBS`` > CPU count.

    ``0`` (or ``None``) means "auto"; the result is always >= 1, where
    ``1`` selects the in-process serial path.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ParallelError(f"REPRO_JOBS must be an integer, "
                                    f"got {env!r}")
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ParallelError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunk_size(n_items: int, n_jobs: int) -> int:
    """Chunk items so each worker sees a handful of chunks."""
    return max(1, -(-n_items // (n_jobs * _CHUNKS_PER_WORKER)))


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _pool_initializer(initializer: Optional[Callable],
                      initargs: Sequence) -> None:
    """Worker bootstrap wrapped around the caller's initializer.

    Under the ``fork`` start method workers inherit the parent's
    process-global collector — including open sink file handles.  Clear
    it first so worker telemetry flows only through the per-chunk child
    collectors and never writes into the parent's sinks.
    """
    set_telemetry(None)
    if initializer is not None:
        initializer(*initargs)


def _run_chunk(fn: Callable, chunk: Sequence,
               trace: Optional[TraceContext] = None
               ) -> Tuple[List, Optional[Dict[str, object]]]:
    """Top-level (hence picklable) chunk runner executed in workers.

    When the dispatching process traced the fan-out, ``trace`` names the
    span this chunk belongs under; the chunk then runs inside a child
    collector and the second element of the return value is the
    merge-ready telemetry payload (``None`` when telemetry is off).
    """
    with child_collector(trace) as handle:
        results = [fn(item) for item in chunk]
    return results, handle.payload


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Hard-stop worker processes so shutdown cannot block on a hang."""
    for proc in list(getattr(executor, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - racing process exit
            pass


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    chunk_size: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    serial_fallback: Optional[Callable[[Sequence[T]], List[R]]] = None,
    label: str = "parallel.map",
) -> List[R]:
    """Map ``fn`` over ``items`` across a process pool; ordered results.

    ``fn`` (and ``initializer``) must be picklable module-level
    callables.  ``timeout`` bounds each wait on an outstanding chunk;
    on timeout or worker crash the unfinished chunks run serially in
    the parent via ``serial_fallback`` (default: plain ``fn`` calls).
    """
    items = list(items)
    n_jobs = resolve_jobs(jobs)

    def _default_fallback(chunk: Sequence[T]) -> List[R]:
        return [fn(item) for item in chunk]

    fallback = serial_fallback or _default_fallback
    tel = get_telemetry()
    with tel.span(label, tasks=len(items), jobs=n_jobs):
        if not items:
            return []
        if n_jobs <= 1 or len(items) == 1:
            return fallback(items)
        if chunk_size is None:
            chunk_size = default_chunk_size(len(items), n_jobs)
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]
        results: List[Optional[List[R]]] = [None] * len(chunks)
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(n_jobs, len(chunks)),
                mp_context=_mp_context(),
                initializer=_pool_initializer,
                initargs=(initializer, tuple(initargs)),
            )
        except (OSError, ValueError, PermissionError) as exc:
            logger.warning("%s: cannot start process pool (%s); "
                           "running serially", label, exc)
            if tel.enabled:
                tel.counter("parallel.pool_failures").add(1)
            return fallback(items)

        # Captured while the dispatching span above is open, so worker
        # chunk spans merge back as its children — one tree end to end.
        trace = TraceContext.current()
        degraded: Optional[str] = None
        try:
            futures = {executor.submit(_run_chunk, fn, chunk, trace): idx
                       for idx, chunk in enumerate(chunks)}
            for future, idx in futures.items():
                if degraded is not None:
                    future.cancel()
                    continue
                try:
                    chunk_out, payload = future.result(timeout=timeout)
                    results[idx] = chunk_out
                    if tel.enabled:
                        tel.absorb(payload)
                except FutureTimeoutError:
                    degraded = f"chunk timed out after {timeout:.1f}s"
                except BrokenExecutor as exc:
                    degraded = f"worker pool broke: {exc or 'worker died'}"
            if degraded is not None:
                _terminate_workers(executor)
        finally:
            executor.shutdown(wait=degraded is None, cancel_futures=True)

        if degraded is not None:
            unfinished = [idx for idx, r in enumerate(results) if r is None]
            logger.warning("%s: %s; running %d/%d chunks serially",
                           label, degraded, len(unfinished), len(chunks))
            if tel.enabled:
                tel.counter("parallel.fallbacks").add(1)
                tel.counter("parallel.fallback_chunks").add(len(unfinished))
            for idx in unfinished:
                results[idx] = fallback(chunks[idx])
        if tel.enabled:
            tel.counter("parallel.tasks").add(len(items))
            tel.counter("parallel.chunks").add(len(chunks))

        out: List[R] = []
        for chunk_result in results:
            assert chunk_result is not None
            out.extend(chunk_result)
        return out
