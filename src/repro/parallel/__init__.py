"""Parallel execution layer for fault-simulation campaigns.

The paper's experiment grids are embarrassingly parallel — every
(design, generator, length) session and every 64-fault gate batch is
independent.  This package supplies the substrate:

* :mod:`~repro.parallel.pool` — order-preserving process-pool map with
  chunked work queues, crash/timeout detection and automatic serial
  fallback;
* :mod:`~repro.parallel.seeding` — deterministic per-task seeds, so a
  fanned-out run is bit-identical to its serial counterpart;
* :mod:`~repro.parallel.sweep` — design x generator coverage grids
  (the CLI's ``repro sweep`` / ``repro bench``);
* :mod:`~repro.parallel.gatework` — distributed exact gate-level
  cross-validation batches.
"""

from .gatework import gate_level_missed_parallel
from .pool import default_chunk_size, parallel_map, resolve_jobs
from .seeding import DEFAULT_BASE_SEED, derive_seed, task_seeds
from .sweep import (
    GENERATOR_KEYS,
    SweepResult,
    SweepTask,
    run_sweep,
    sweep_generator,
)

__all__ = [
    "DEFAULT_BASE_SEED",
    "GENERATOR_KEYS",
    "SweepResult",
    "SweepTask",
    "default_chunk_size",
    "derive_seed",
    "gate_level_missed_parallel",
    "parallel_map",
    "resolve_jobs",
    "run_sweep",
    "sweep_generator",
    "task_seeds",
]
