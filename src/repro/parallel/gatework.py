"""Distributed exact gate-level fault grading.

:func:`repro.gates.fault_parallel.fault_parallel_detect` grades 64
faults per cone-restricted pass; a full-universe cross-validation is
thousands of independent passes over one shared netlist and input
sequence.  This module fans those 64-fault batches out across the
process pool: the (netlist, inputs, scheduled faults) payload ships once
per worker through the pool initializer, tasks are bare batch offsets,
and verdicts come back as tiny boolean arrays.  Each worker compiles the
netlist program and simulates the golden machine once, lazily, on its
first batch; faults are pre-ordered by the cone-aware scheduler
(:func:`repro.gates.faults.schedule_fault_batches`) so every batch's
union fanout cone stays small.

A worker crash or timeout falls back to the parent-side serial engine,
so the result is always the exact missed-fault list.

When telemetry is enabled the pool propagates the trace into each
worker (see :mod:`repro.telemetry.propagate`): the ``gates.fault_batch``
spans a worker's :func:`fault_parallel_grade` emits merge back under the
dispatching ``gates.fault_pool`` span, so pooled and serial-fallback
runs produce identically shaped span trees — the only difference is the
``pid`` on the batch spans.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gates.compiled import compiled_program, golden_net_waves
from ..gates.fault_parallel import DEFAULT_WORDS, fault_parallel_grade
from ..gates.faults import schedule_fault_batches
from ..gates.gatesim import pack_input_bits
from ..gates.netlist import GateNetlist
from ..telemetry import get_telemetry
from .pool import parallel_map

__all__ = ["gate_level_missed_parallel"]

#: One task grades this many faults (one multi-word cone pass).
BATCH = 64 * DEFAULT_WORDS

#: Per-worker payload installed by :func:`_init_gate_worker`.
_GATE_STATE: Dict[str, Any] = {}


def _init_gate_worker(nl: GateNetlist, raw: np.ndarray,
                      netlist_faults: Sequence,
                      engine: Optional[str] = None) -> None:
    _GATE_STATE["payload"] = (nl, raw, list(netlist_faults))
    _GATE_STATE["engine"] = engine
    _GATE_STATE.pop("compiled", None)


def _compiled_state(nl: GateNetlist, raw: np.ndarray) -> Tuple:
    """(program, net_waves), compiled/simulated once per worker."""
    state = _GATE_STATE.get("compiled")
    if state is None:
        prog = compiled_program(nl)
        waves = golden_net_waves(prog,
                                 pack_input_bits(raw, len(nl.input_bits)))
        state = (prog, waves)
        _GATE_STATE["compiled"] = state
    return state


def _grade_batch(start: int) -> np.ndarray:
    nl, raw, netlist_faults = _GATE_STATE["payload"]
    prog, waves = _compiled_state(nl, raw)
    batch = netlist_faults[start:start + BATCH]
    return fault_parallel_grade(nl, raw, batch, program=prog,
                                net_waves=waves,
                                engine=_GATE_STATE.get("engine"))


def gate_level_missed_parallel(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence,
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    golden: Optional[np.ndarray] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    engine: Optional[str] = None,
) -> List:
    """Exact missed-fault list, 64-fault batches fanned across workers.

    Drop-in parallel counterpart of
    :func:`repro.gates.fault_parallel.gate_level_missed`; identical
    verdicts, ``ceil(F / 64)`` independent tasks.  (``golden`` is
    accepted for backward compatibility; workers derive the golden
    machine from their own compiled simulation.)  ``engine`` picks each
    worker's cone evaluator tier — every tier is bit-identical.
    """
    faults = list(faults)
    tel = get_telemetry()
    with tel.span("gates.fault_parallel_pool", faults=len(faults),
                  vectors=len(input_raw), jobs=jobs) as span:
        raw = np.asarray(input_raw, dtype=np.int64)
        # Cone-aware schedule: grade in locality order, then scatter the
        # verdicts back so results are independent of the schedule.
        order = [i for batch in schedule_fault_batches(faults, BATCH)
                 for i in batch]
        netlist_faults = [faults[i].netlist_fault for i in order]
        starts = list(range(0, len(netlist_faults), BATCH))

        def _serial(chunk: Sequence[int]) -> List[np.ndarray]:
            prog = compiled_program(nl)
            waves = golden_net_waves(
                prog, pack_input_bits(raw, len(nl.input_bits)))
            out = []
            for start in chunk:
                batch = netlist_faults[start:start + BATCH]
                out.append(fault_parallel_grade(nl, raw, batch,
                                                program=prog,
                                                net_waves=waves,
                                                engine=engine))
            return out

        verdict_blocks = parallel_map(
            _grade_batch, starts, jobs=jobs, timeout=timeout,
            initializer=_init_gate_worker,
            initargs=(nl, raw, netlist_faults, engine),
            serial_fallback=_serial, label="gates.fault_pool")

        verdicts = np.zeros(len(faults), dtype=bool)
        done = 0
        for start, block in zip(starts, verdict_blocks):
            batch_idx = order[start:start + BATCH]
            verdicts[batch_idx] = block
            done += len(batch_idx)
            if tel.enabled:
                tel.progress("gates.grade", done, len(faults),
                             detected=int(verdicts.sum()),
                             coverage=float(verdicts.sum())
                             / max(1, len(faults)))
            if progress is not None:
                progress(done, len(faults))
        missed = [f for f, hit in zip(faults, verdicts) if not hit]
    if tel.enabled and span.duration > 0:
        tel.gauge("gates.faults_per_sec").set(len(faults) / span.duration)
    return missed
