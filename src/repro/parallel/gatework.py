"""Distributed exact gate-level fault grading.

:func:`repro.gates.fault_parallel.fault_parallel_detect` grades 64
faults per topological pass; a full-universe cross-validation is
thousands of independent passes over one shared netlist and input
sequence.  This module fans those 64-fault batches out across the
process pool: the (netlist, inputs, golden, faults) payload ships once
per worker through the pool initializer, tasks are bare batch offsets,
and verdicts come back as tiny boolean arrays.

A worker crash or timeout falls back to the parent-side serial engine,
so the result is always the exact missed-fault list.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..gates.fault_parallel import fault_parallel_detect
from ..gates.netlist import GateNetlist
from ..telemetry import get_telemetry
from .pool import parallel_map

__all__ = ["gate_level_missed_parallel"]

#: One task grades this many faults (one packed machine word).
BATCH = 64

#: Per-worker payload installed by :func:`_init_gate_worker`.
_GATE_STATE: Dict[str, Any] = {}


def _init_gate_worker(nl: GateNetlist, raw: np.ndarray,
                      netlist_faults: Sequence, golden: np.ndarray) -> None:
    _GATE_STATE["payload"] = (nl, raw, list(netlist_faults), golden)


def _grade_batch(start: int) -> np.ndarray:
    nl, raw, netlist_faults, golden = _GATE_STATE["payload"]
    batch = netlist_faults[start:start + BATCH]
    return fault_parallel_detect(nl, raw, batch, golden=golden)


def gate_level_missed_parallel(
    nl: GateNetlist,
    input_raw: Sequence[int],
    faults: Sequence,
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    golden: Optional[np.ndarray] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List:
    """Exact missed-fault list, 64-fault batches fanned across workers.

    Drop-in parallel counterpart of
    :func:`repro.gates.fault_parallel.gate_level_missed`; identical
    verdicts, ``ceil(F / 64)`` independent tasks.  Pass ``golden`` to
    reuse a cached fault-free output waveform.
    """
    faults = list(faults)
    tel = get_telemetry()
    with tel.span("gates.fault_parallel_pool", faults=len(faults),
                  vectors=len(input_raw), jobs=jobs) as span:
        raw = np.asarray(input_raw, dtype=np.int64)
        if golden is None:
            from ..gates.gatesim import simulate_netlist

            golden = simulate_netlist(nl, raw)["output"]
        netlist_faults = [f.netlist_fault for f in faults]
        starts = list(range(0, len(netlist_faults), BATCH))

        def _serial(chunk: Sequence[int]) -> List[np.ndarray]:
            out = []
            for start in chunk:
                batch = netlist_faults[start:start + BATCH]
                out.append(fault_parallel_detect(nl, raw, batch,
                                                 golden=golden))
            return out

        verdict_blocks = parallel_map(
            _grade_batch, starts, jobs=jobs, timeout=timeout,
            initializer=_init_gate_worker,
            initargs=(nl, raw, netlist_faults, golden),
            serial_fallback=_serial, label="gates.fault_pool")

        missed = []
        done = 0
        for start, verdicts in zip(starts, verdict_blocks):
            batch = faults[start:start + BATCH]
            for fault, hit in zip(batch, verdicts):
                if not hit:
                    missed.append(fault)
            done = min(start + BATCH, len(faults))
            if progress is not None:
                progress(done, len(faults))
    if tel.enabled and span.duration > 0:
        tel.gauge("gates.faults_per_sec").set(len(faults) / span.duration)
    return missed
