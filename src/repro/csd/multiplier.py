"""Shift-and-add multiplier plans from CSD coefficients.

A hardwired constant multiplier realizes ``y = c * x`` as a chain of
adders/subtractors over arithmetically shifted copies of ``x``.  This
module turns a :class:`~repro.csd.optimize.QuantizedCoefficient` into an
ordered term list that the RTL builder instantiates one ripple-carry
operator at a time.

Terms are emitted most-significant first so every intermediate partial
sum is dominated by its first term; the running sum is therefore always
the *primary* (high-variance) adder input, matching the variance-mismatch
orientation the fault model expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import CsdError
from .optimize import QuantizedCoefficient

__all__ = ["ShiftAddTerm", "MultiplierPlan", "plan_multiplier"]


@dataclass(frozen=True)
class ShiftAddTerm:
    """One signed, shifted copy of the multiplier input.

    ``shift`` is the right-shift amount applied to ``x`` (the term weight
    is ``2**-shift`` relative to ``x`` scaled by the coefficient grid),
    and ``sign`` is +1 (add) or −1 (subtract).
    """

    shift: int
    sign: int


@dataclass(frozen=True)
class MultiplierPlan:
    """Ordered realization of ``|c| * x`` as shift-add terms.

    Attributes
    ----------
    coefficient:
        The quantized coefficient this plan realizes.
    terms:
        Most-significant-first shift-add terms for the coefficient
        *magnitude*.  Empty for a zero coefficient.
    negate:
        True when the coefficient is negative; the surrounding structure
        (e.g. the tap accumulator) absorbs the negation as a subtraction.
    """

    coefficient: QuantizedCoefficient
    terms: Tuple[ShiftAddTerm, ...]
    negate: bool

    @property
    def is_zero(self) -> bool:
        """True for a zero coefficient (no hardware instantiated)."""
        return not self.terms

    @property
    def adder_count(self) -> int:
        """Ripple-carry operators inside the multiplier itself."""
        return max(0, len(self.terms) - 1)

    @property
    def magnitude(self) -> float:
        """Realized coefficient magnitude ``|c|``."""
        return abs(self.coefficient.value)

    def partial_magnitude_bound(self, upto: int) -> float:
        """Worst-case magnitude of the partial sum of the first ``upto`` terms.

        Relative to a unit-magnitude input; used by the scaling pass to
        size intermediate nodes.
        """
        return sum(2.0 ** -t.shift for t in self.terms[:upto])


def plan_multiplier(coefficient: QuantizedCoefficient) -> MultiplierPlan:
    """Build the shift-add plan for one quantized coefficient.

    Digit positions are converted to right shifts relative to the input:
    a digit at CSD position ``k`` (weight ``2**k`` on the integer grid)
    contributes weight ``2**(k - frac)``, i.e. a right shift of
    ``frac - k`` — always non-negative for coefficients with ``|c| < 1``.
    """
    coef = coefficient
    if coef.raw == 0:
        return MultiplierPlan(coefficient=coef, terms=(), negate=False)
    terms: List[ShiftAddTerm] = []
    for k, d in enumerate(coef.digits):
        if d == 0:
            continue
        shift = coef.frac - k
        if shift < 0:
            raise CsdError(
                f"coefficient magnitude {coef.value} >= 1 cannot be realized "
                "as right shifts only"
            )
        terms.append(ShiftAddTerm(shift=shift, sign=d))
    terms.sort(key=lambda t: t.shift)  # most significant (smallest shift) first
    if terms[0].sign < 0:
        raise CsdError("canonical CSD of a magnitude must lead with a + digit")
    return MultiplierPlan(coefficient=coef, terms=tuple(terms), negate=coef.raw < 0)
